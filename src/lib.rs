//! # txcc — Transactional Collection Classes (PPoPP 2007) in Rust
//!
//! Umbrella crate re-exporting the whole reproduction: the STM substrate,
//! the STM-backed data structures, the transactional collection classes
//! (the paper's contribution), the chip-multiprocessor simulator, and the
//! SPECjbb2000-like workload.
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.

pub use jbb;
pub use sim;
pub use stm;
pub use txcollections;
pub use txstruct;

/// The semantic-class kernel, re-exported at the top level: implement
/// [`SemanticClass`] (the buffer type plus the commit/abort handler bodies)
/// and wrap it in a [`SemanticCore`] to get the paper's §5 protocol —
/// first-touch registration, sharded local state, stripe-sweep ordering and
/// doom dispatch — without re-implementing any of it. [`ClassTables`] adds
/// ready-made key/size/empty lock tables for keyed classes; dooms raised
/// during [`ClassTables::commit_sweep`] go through [`KeyCtx`], and the
/// global phase that the [`GlobalPhase`] token forces to run last dooms
/// point-lock holders through [`PointCtx`]. See `examples/custom_class.rs`
/// for the full walkthrough.
pub use txcollections::{ClassTables, GlobalPhase, KeyCtx, PointCtx, SemanticClass, SemanticCore};
