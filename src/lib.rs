//! # txcc — Transactional Collection Classes (PPoPP 2007) in Rust
//!
//! Umbrella crate re-exporting the whole reproduction: the STM substrate,
//! the STM-backed data structures, the transactional collection classes
//! (the paper's contribution), the chip-multiprocessor simulator, and the
//! SPECjbb2000-like workload.
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.

pub use jbb;
pub use sim;
pub use stm;
pub use txcollections;
pub use txstruct;
