//! Cross-collection integration tests: one transaction spanning several
//! transactional collection classes must be atomic end to end — the
//! composability property that undisciplined open nesting cannot provide.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use stm::atomic;
use txcollections::{
    Channel, TransactionalMap, TransactionalQueue, TransactionalSortedMap, UidGenerator,
};

/// Jobs move from a queue into a results map atomically, under injected
/// aborts: at the end every job is in exactly one place.
#[test]
fn atomic_move_from_queue_to_map() {
    let queue: Arc<TransactionalQueue<u64>> = Arc::new(TransactionalQueue::new());
    let results: Arc<TransactionalMap<u64, u64>> = Arc::new(TransactionalMap::new());
    let total = 300u64;
    atomic(|tx| {
        for j in 0..total {
            queue.put(tx, j);
        }
    });

    std::thread::scope(|s| {
        for w in 0..3u64 {
            let queue = queue.clone();
            let results = results.clone();
            s.spawn(move || {
                let mut idle = 0;
                let mut i = 0u64;
                while idle < 150 {
                    i += 1;
                    let fail = AtomicU32::new(u32::from(i.is_multiple_of(5)));
                    let moved = atomic(|tx| {
                        let Some(job) = queue.poll(tx) else {
                            return false;
                        };
                        results.put_discard(tx, job, w);
                        // Abort after doing both halves: neither may stick.
                        if fail.swap(0, Ordering::SeqCst) == 1 {
                            stm::abort_and_retry();
                        }
                        true
                    });
                    if moved {
                        idle = 0;
                    } else {
                        idle += 1;
                        std::thread::yield_now();
                    }
                }
            });
        }
    });

    let in_map = atomic(|tx| results.size(tx));
    // Drain the queue (committed) and count the leftovers.
    let drained = atomic(|tx| {
        let mut v = Vec::new();
        while let Some(j) = queue.poll(tx) {
            v.push(j);
        }
        v
    });
    assert_eq!(
        in_map as u64 + drained.len() as u64,
        total,
        "jobs lost or duplicated across queue->map move"
    );
    // No job appears in both places.
    for j in drained {
        let present = atomic(|tx| results.contains_key(tx, &j));
        assert!(!present, "job {j} exists in both queue and map");
    }
}

/// Entries migrate between two maps atomically; the union count is
/// invariant at every audit.
#[test]
fn atomic_transfer_between_maps() {
    let hot: Arc<TransactionalMap<u32, u32>> = Arc::new(TransactionalMap::new());
    let cold: Arc<TransactionalSortedMap<u32, u32>> = Arc::new(TransactionalSortedMap::new());
    let n = 80u32;
    atomic(|tx| {
        for k in 0..n {
            hot.put_discard(tx, k, k);
        }
    });

    let stop = Arc::new(AtomicU32::new(0));
    std::thread::scope(|s| {
        // Mover threads: hot -> cold and back, atomically.
        for t in 0..2u32 {
            let hot = hot.clone();
            let cold = cold.clone();
            let stop = stop.clone();
            s.spawn(move || {
                let mut k = t;
                while stop.load(Ordering::SeqCst) == 0 {
                    k = (k + 7) % n;
                    atomic(|tx| {
                        if let Some(v) = hot.remove(tx, &k) {
                            cold.put(tx, k, v);
                        } else if let Some(v) = cold.remove(tx, &k) {
                            hot.put(tx, k, v);
                        }
                    });
                }
            });
        }
        // Auditor: the union size is always n. The guard sets `stop` even
        // if an assertion panics, so the mover loops always terminate.
        {
            struct StopOnDrop(Arc<AtomicU32>);
            impl Drop for StopOnDrop {
                fn drop(&mut self) {
                    self.0.store(1, Ordering::SeqCst);
                }
            }
            let hot = hot.clone();
            let cold = cold.clone();
            let stop = stop.clone();
            s.spawn(move || {
                let _stop_guard = StopOnDrop(stop);
                for _ in 0..40 {
                    let (a, b) = atomic(|tx| (hot.size(tx), cold.size(tx)));
                    assert_eq!(a + b, n as usize, "entries lost mid-transfer");
                }
            });
        }
    });

    let (a, b) = atomic(|tx| (hot.size(tx), cold.size(tx)));
    assert_eq!(a + b, n as usize);
    // Every key is in exactly one map.
    for k in 0..n {
        let (h, c) = atomic(|tx| (hot.contains_key(tx, &k), cold.contains_key(tx, &k)));
        assert!(h ^ c, "key {k} in {} maps", u32::from(h) + u32::from(c));
    }
}

/// Drawing a UID and registering it in a sorted map in one transaction:
/// committed ids are unique and the map matches exactly the committed draws.
#[test]
fn uid_plus_map_registration_is_atomic() {
    let gen = Arc::new(UidGenerator::starting_at(0));
    let registry: Arc<TransactionalSortedMap<i64, u64>> = Arc::new(TransactionalSortedMap::new());
    std::thread::scope(|s| {
        for w in 0..4u64 {
            let gen = gen.clone();
            let registry = registry.clone();
            s.spawn(move || {
                for i in 0..150u64 {
                    let fail = AtomicU32::new(u32::from(i % 7 == 0));
                    atomic(|tx| {
                        let id = gen.next(tx);
                        registry.put_discard(tx, id, w);
                        // Aborted draws leave a gap but no registry entry.
                        if fail.swap(0, Ordering::SeqCst) == 1 {
                            stm::abort_and_retry();
                        }
                    });
                }
            });
        }
    });
    let entries = atomic(|tx| registry.entries(tx));
    assert_eq!(entries.len(), 4 * 150, "committed draws must all register");
    let ids: Vec<i64> = entries.iter().map(|(k, _)| *k).collect();
    let mut dedup = ids.clone();
    dedup.dedup();
    assert_eq!(dedup.len(), ids.len(), "duplicate id registered");
    // Ordered iteration sanity.
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    assert_eq!(ids, sorted);
    // Gaps exist (aborted draws) but the generator never went backwards.
    assert!(gen.peek_committed() >= 600);
}
