//! Commit-order serializability checks for `TransactionalSortedMap` (range
//! and endpoint observations included) and for the pessimistic
//! `EagerTransactionalMap` — same methodology as
//! `serializability_histories.rs`: log every observation with a commit-order
//! stamp, replay serially, demand exact agreement.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use stm::atomic;
use txcollections::{EagerPolicy, EagerTransactionalMap, TransactionalSortedMap};

#[derive(Debug, Clone)]
enum Op {
    Read(u32, Option<u64>),
    Write(u32, u64),
    Remove(u32, Option<u64>),
    Range(u32, u32, Vec<(u32, u64)>),
    FirstKey(Option<u32>),
    LastKey(Option<u32>),
    Ceiling(u32, Option<u32>),
}

#[derive(Debug)]
struct TxnLog {
    stamp: u64,
    ops: Vec<Op>,
}

#[test]
fn sorted_map_histories_are_serializable() {
    let map: Arc<TransactionalSortedMap<u32, u64>> = Arc::new(TransactionalSortedMap::new());
    let seq = Arc::new(AtomicU64::new(0));
    let logs: Arc<Mutex<Vec<TxnLog>>> = Arc::new(Mutex::new(Vec::new()));
    let key_space = 24u64;

    std::thread::scope(|s| {
        for t in 0..4u64 {
            let map = map.clone();
            let seq = seq.clone();
            let logs = logs.clone();
            s.spawn(move || {
                let mut x = 0xFEED_BEEFu64 ^ (t << 40);
                let mut rng = move || {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x
                };
                for _ in 0..200 {
                    let n_ops = 1 + (rng() % 3) as usize;
                    let plan: Vec<(u64, u32, u64)> = (0..n_ops)
                        .map(|_| (rng() % 100, (rng() % key_space) as u32, rng() % 1000))
                        .collect();
                    let stamp_cell = Arc::new(AtomicU64::new(u64::MAX));
                    let sc = stamp_cell.clone();
                    let sq = seq.clone();
                    let m = map.clone();
                    let ops = atomic(move |tx| {
                        let mut ops = Vec::new();
                        for &(roll, k, v) in &plan {
                            match roll % 100 {
                                0..=29 => ops.push(Op::Read(k, m.get(tx, &k))),
                                30..=54 => {
                                    m.put(tx, k, v);
                                    ops.push(Op::Write(k, v));
                                }
                                55..=69 => ops.push(Op::Remove(k, m.remove(tx, &k))),
                                70..=84 => {
                                    let hi = k + 6;
                                    let r = m.range_entries(
                                        tx,
                                        Bound::Included(k),
                                        Bound::Excluded(hi),
                                    );
                                    ops.push(Op::Range(k, hi, r));
                                }
                                85..=89 => ops.push(Op::FirstKey(m.first_key(tx))),
                                90..=94 => ops.push(Op::LastKey(m.last_key(tx))),
                                _ => ops.push(Op::Ceiling(k, m.ceiling_key(tx, &k))),
                            }
                        }
                        let sc2 = sc.clone();
                        let sq2 = sq.clone();
                        // Commit-order stamp; aborted attempts must leave no
                        // stamp, hence no abort pairing. // txlint: allow(TX004)
                        tx.on_commit_top(move |_| {
                            sc2.store(sq2.fetch_add(1, Ordering::SeqCst), Ordering::SeqCst);
                        });
                        ops
                    });
                    let stamp = stamp_cell.load(Ordering::SeqCst);
                    assert_ne!(stamp, u64::MAX);
                    logs.lock().push(TxnLog { stamp, ops });
                }
            });
        }
    });

    let mut logs = Arc::try_unwrap(logs).unwrap().into_inner();
    logs.sort_by_key(|l| l.stamp);
    let mut model: BTreeMap<u32, u64> = BTreeMap::new();
    for (i, log) in logs.iter().enumerate() {
        for op in &log.ops {
            match op {
                Op::Read(k, obs) => assert_eq!(
                    model.get(k).copied(),
                    *obs,
                    "txn #{i}: read({k}) not serializable"
                ),
                Op::Write(k, v) => {
                    model.insert(*k, *v);
                }
                Op::Remove(k, obs) => assert_eq!(
                    model.remove(k),
                    *obs,
                    "txn #{i}: remove({k}) not serializable"
                ),
                Op::Range(lo, hi, obs) => {
                    let want: Vec<(u32, u64)> = model
                        .range((Bound::Included(*lo), Bound::Excluded(*hi)))
                        .map(|(k, v)| (*k, *v))
                        .collect();
                    assert_eq!(&want, obs, "txn #{i}: range [{lo},{hi}) not serializable");
                }
                Op::FirstKey(obs) => assert_eq!(
                    model.keys().next().copied(),
                    *obs,
                    "txn #{i}: firstKey not serializable"
                ),
                Op::LastKey(obs) => assert_eq!(
                    model.keys().next_back().copied(),
                    *obs,
                    "txn #{i}: lastKey not serializable"
                ),
                Op::Ceiling(k, obs) => assert_eq!(
                    model.range(*k..).next().map(|(k, _)| *k),
                    *obs,
                    "txn #{i}: ceiling({k}) not serializable"
                ),
            }
        }
    }
    let final_entries = atomic(|tx| map.entries(tx));
    let model_entries: Vec<(u32, u64)> = model.into_iter().collect();
    assert_eq!(final_entries, model_entries, "final state diverged");
}

fn eager_history(policy: EagerPolicy) {
    let map: Arc<EagerTransactionalMap<u32, u64>> = Arc::new(EagerTransactionalMap::new(policy));
    let seq = Arc::new(AtomicU64::new(0));
    let logs: Arc<Mutex<Vec<TxnLog>>> = Arc::new(Mutex::new(Vec::new()));
    let key_space = 12u64;

    std::thread::scope(|s| {
        for t in 0..4u64 {
            let map = map.clone();
            let seq = seq.clone();
            let logs = logs.clone();
            s.spawn(move || {
                let mut x = 0x5151_5151u64 ^ (t << 16);
                let mut rng = move || {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x
                };
                for _ in 0..150 {
                    let n_ops = 1 + (rng() % 3) as usize;
                    let plan: Vec<(u64, u32, u64)> = (0..n_ops)
                        .map(|_| (rng() % 100, (rng() % key_space) as u32, rng() % 1000))
                        .collect();
                    let stamp_cell = Arc::new(AtomicU64::new(u64::MAX));
                    let sc = stamp_cell.clone();
                    let sq = seq.clone();
                    let m = map.clone();
                    let ops = atomic(move |tx| {
                        let mut ops = Vec::new();
                        for &(roll, k, v) in &plan {
                            if roll < 40 {
                                ops.push(Op::Read(k, m.get(tx, &k)));
                            } else if roll < 80 {
                                m.put(tx, k, v);
                                ops.push(Op::Write(k, v));
                            } else {
                                ops.push(Op::Remove(k, m.remove(tx, &k)));
                            }
                        }
                        let sc2 = sc.clone();
                        let sq2 = sq.clone();
                        // Commit-order stamp; aborted attempts must leave no
                        // stamp, hence no abort pairing. // txlint: allow(TX004)
                        tx.on_commit_top(move |_| {
                            sc2.store(sq2.fetch_add(1, Ordering::SeqCst), Ordering::SeqCst);
                        });
                        ops
                    });
                    let stamp = stamp_cell.load(Ordering::SeqCst);
                    assert_ne!(stamp, u64::MAX);
                    logs.lock().push(TxnLog { stamp, ops });
                }
            });
        }
    });

    let mut logs = Arc::try_unwrap(logs).unwrap().into_inner();
    logs.sort_by_key(|l| l.stamp);
    let mut model: BTreeMap<u32, u64> = BTreeMap::new();
    for (i, log) in logs.iter().enumerate() {
        for op in &log.ops {
            match op {
                Op::Read(k, obs) => assert_eq!(
                    model.get(k).copied(),
                    *obs,
                    "eager txn #{i}: read({k}) not serializable"
                ),
                Op::Write(k, v) => {
                    model.insert(*k, *v);
                }
                Op::Remove(k, obs) => assert_eq!(
                    model.remove(k),
                    *obs,
                    "eager txn #{i}: remove({k}) not serializable"
                ),
                _ => unreachable!(),
            }
        }
    }
    // Final state: every key agrees.
    for k in 0..key_space as u32 {
        let got = atomic(|tx| map.get(tx, &k));
        assert_eq!(got, model.get(&k).copied(), "eager final state: key {k}");
    }
}

#[test]
fn eager_writer_waits_histories_are_serializable() {
    eager_history(EagerPolicy::WriterWaits);
}

#[test]
fn eager_doom_readers_histories_are_serializable() {
    eager_history(EagerPolicy::DoomReaders);
}
