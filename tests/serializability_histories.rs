//! A genuine serializability check for `TransactionalMap` under real-thread
//! concurrency.
//!
//! Every transaction logs its operations (reads with the value observed,
//! writes with the value written) and obtains a **commit-order stamp** from
//! a commit handler — handlers run under the STM's handler lane, which a
//! handler-bearing transaction holds from before its point of no return
//! through handler completion, so the stamps are exactly the serialization
//! order the system claims.
//!
//! Afterwards we replay all committed transactions in stamp order against a
//! sequential model map. If every logged read matches the replayed state,
//! the concurrent execution was equivalent to that serial order —
//! serializability, verified observation by observation.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use stm::atomic;
use txcollections::TransactionalMap;

#[derive(Debug, Clone)]
enum Op {
    Read(u32, Option<u64>),
    Write(u32, u64),
    Remove(u32, Option<u64>),
    Size(usize),
}

#[derive(Debug)]
struct TxnLog {
    stamp: u64,
    ops: Vec<Op>,
}

fn run_history(threads: u64, txns_per_thread: u64, key_space: u64, with_size_ops: bool) {
    let map: Arc<TransactionalMap<u32, u64>> = Arc::new(TransactionalMap::new());
    let seq = Arc::new(AtomicU64::new(0));
    let logs: Arc<Mutex<Vec<TxnLog>>> = Arc::new(Mutex::new(Vec::new()));

    std::thread::scope(|s| {
        for t in 0..threads {
            let map = map.clone();
            let seq = seq.clone();
            let logs = logs.clone();
            s.spawn(move || {
                let mut x = 0x0123_4567_89AB_CDEFu64 ^ (t << 32);
                let mut rng = move || {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x
                };
                for i in 0..txns_per_thread {
                    let n_ops = 1 + (rng() % 4) as usize;
                    let plan: Vec<(u64, u32, u64)> = (0..n_ops)
                        .map(|_| (rng() % 100, (rng() % key_space) as u32, rng() % 1000))
                        .collect();
                    let stamp_cell = Arc::new(AtomicU64::new(u64::MAX));
                    let sc = stamp_cell.clone();
                    let sq = seq.clone();
                    let m = map.clone();
                    let ops = atomic(move |tx| {
                        let mut ops = Vec::new();
                        for &(roll, k, v) in &plan {
                            if roll < 50 {
                                ops.push(Op::Read(k, m.get(tx, &k)));
                            } else if roll < 80 {
                                m.put(tx, k, v);
                                ops.push(Op::Write(k, v));
                            } else if roll < 90 || !with_size_ops {
                                ops.push(Op::Remove(k, m.remove(tx, &k)));
                            } else {
                                ops.push(Op::Size(m.size(tx)));
                            }
                        }
                        // Commit-order stamp: handlers are serialized by the
                        // handler lane.
                        let sc2 = sc.clone();
                        let sq2 = sq.clone();
                        // Commit-order stamp; aborted attempts must leave no
                        // stamp, hence no abort pairing. // txlint: allow(TX004)
                        tx.on_commit_top(move |_| {
                            sc2.store(sq2.fetch_add(1, Ordering::SeqCst), Ordering::SeqCst);
                        });
                        ops
                    });
                    let stamp = stamp_cell.load(Ordering::SeqCst);
                    assert_ne!(stamp, u64::MAX, "commit handler did not run");
                    logs.lock().push(TxnLog { stamp, ops });
                    let _ = i;
                }
            });
        }
    });

    // Replay in stamp order.
    let mut logs = Arc::try_unwrap(logs).unwrap().into_inner();
    logs.sort_by_key(|l| l.stamp);
    let mut model: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
    for (i, log) in logs.iter().enumerate() {
        for op in &log.ops {
            match op {
                Op::Read(k, observed) => {
                    assert_eq!(
                        model.get(k).copied(),
                        *observed,
                        "txn #{i} (stamp {}) read of key {k} not serializable",
                        log.stamp
                    );
                }
                Op::Write(k, v) => {
                    model.insert(*k, *v);
                }
                Op::Remove(k, observed) => {
                    assert_eq!(
                        model.remove(k),
                        *observed,
                        "txn #{i} (stamp {}) remove of key {k} not serializable",
                        log.stamp
                    );
                }
                Op::Size(observed) => {
                    assert_eq!(
                        model.len(),
                        *observed,
                        "txn #{i} (stamp {}) size observation not serializable",
                        log.stamp
                    );
                }
            }
        }
    }
    // Final state agrees too.
    let mut final_entries = atomic(|tx| map.entries(tx));
    final_entries.sort_unstable();
    let mut model_entries: Vec<(u32, u64)> = model.into_iter().collect();
    model_entries.sort_unstable();
    assert_eq!(
        final_entries, model_entries,
        "final state diverged from replay"
    );
}

#[test]
fn histories_are_serializable_hot_keys() {
    // Small key space: heavy semantic conflicts, many dooms and retries.
    run_history(4, 300, 4, false);
}

#[test]
fn histories_are_serializable_medium_keys() {
    run_history(4, 300, 32, false);
}

#[test]
fn histories_with_size_observations_are_serializable() {
    // Size observations widen the conflict surface (size lock).
    run_history(4, 200, 8, true);
}

#[test]
fn histories_are_serializable_across_many_rounds() {
    for round in 0..5 {
        run_history(3, 120, 6, round % 2 == 0);
    }
}
