//! Interaction of closed-nested partial rollback with collection-class
//! thread-local state: store buffers and queue buffers must be restored when
//! a closed frame aborts (the `on_local_undo` machinery), and effects of the
//! surviving attempt must be exactly once.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use stm::{atomic, TVar};
use txcollections::{Channel, TransactionalMap, TransactionalQueue};

/// Force one partial rollback of a closed frame by invalidating a TVar read
/// from another thread, and check the map's store buffer rolled back with
/// the frame.
#[test]
fn closed_frame_abort_rolls_back_map_buffer() {
    let map: Arc<TransactionalMap<u32, String>> = Arc::new(TransactionalMap::new());
    let probe = Arc::new(TVar::new(0u32));
    let frame_runs = Arc::new(AtomicU32::new(0));

    let (m, p, fr) = (map.clone(), probe.clone(), frame_runs.clone());
    atomic(move |tx| {
        m.put(tx, 1, "outer".into());
        let m2 = m.clone();
        let p2 = p.clone();
        let fr2 = fr.clone();
        tx.closed(move |tx| {
            let attempt = fr2.fetch_add(1, Ordering::SeqCst);
            // Buffered write inside the frame.
            m2.put(tx, 2, format!("frame-attempt-{attempt}"));
            let _ = p2.read(tx);
            if attempt == 0 {
                // Invalidate our probe read so the frame (only) retries.
                let pp = p2.clone();
                std::thread::spawn(move || {
                    atomic(|tx| {
                        let v = pp.read(tx);
                        pp.write(tx, v + 1);
                    });
                })
                .join()
                .unwrap();
                let _ = p2.read(tx); // triggers the frame retry
            }
        });
        // Inside the transaction: exactly one buffered value for key 2 (the
        // second attempt's), and the outer write is untouched.
        assert_eq!(m.get(tx, &2).as_deref(), Some("frame-attempt-1"));
        assert_eq!(m.get(tx, &1).as_deref(), Some("outer"));
        assert_eq!(m.size(tx), 2, "store-buffer delta not rolled back");
    });

    assert_eq!(
        frame_runs.load(Ordering::SeqCst),
        2,
        "frame must retry once"
    );
    let final_v = atomic(|tx| map.get(tx, &2));
    assert_eq!(final_v.as_deref(), Some("frame-attempt-1"));
    assert_eq!(atomic(|tx| map.size(tx)), 2);
}

/// Same exercise for the queue: a poll inside an aborted closed frame must
/// not lose the item (it returns via the return buffer at commit).
#[test]
fn closed_frame_abort_returns_polled_item() {
    let queue: Arc<TransactionalQueue<u32>> = Arc::new(TransactionalQueue::new());
    atomic(|tx| queue.put(tx, 7));

    let probe = Arc::new(TVar::new(0u32));
    let frame_runs = Arc::new(AtomicU32::new(0));
    let (q, p, fr) = (queue.clone(), probe.clone(), frame_runs.clone());
    atomic(move |tx| {
        let q2 = q.clone();
        let p2 = p.clone();
        let fr2 = fr.clone();
        tx.closed(move |tx| {
            let attempt = fr2.fetch_add(1, Ordering::SeqCst);
            let item = q2.poll(tx);
            let _ = p2.read(tx);
            if attempt == 0 {
                assert_eq!(item, Some(7), "first frame attempt takes the item");
                let pp = p2.clone();
                std::thread::spawn(move || {
                    atomic(|tx| {
                        let v = pp.read(tx);
                        pp.write(tx, v + 1);
                    });
                })
                .join()
                .unwrap();
                let _ = p2.read(tx); // frame retry
            }
        });
    });
    assert_eq!(frame_runs.load(Ordering::SeqCst), 2);
    // The item consumed by the aborted frame attempt must be back: either
    // the retry consumed it again (then commit consumed it — but the retry's
    // poll found it via the return buffer) or it's still queued. Total must
    // be conserved.
    let remaining = atomic(|tx| {
        let mut v = Vec::new();
        while let Some(x) = queue.poll(tx) {
            v.push(x);
        }
        v
    });
    // The second frame attempt re-polled: since the first attempt's item
    // moved to the return buffer (published at commit), the retry got it
    // from... the shared queue was empty, so the retry polled None; commit
    // then returned the item. Hence it must still be present now.
    assert_eq!(remaining, vec![7], "item lost across frame abort");
}

/// Handlers registered by collections inside aborted closed frames are
/// discarded with the frame — no double application.
#[test]
fn no_double_application_after_frame_retry() {
    // Repeat the map exercise but measure committed state changes globally:
    // the committed map must gain exactly the surviving attempt's writes.
    let map: Arc<TransactionalMap<u32, u32>> = Arc::new(TransactionalMap::new());
    let probe = Arc::new(TVar::new(0u32));
    let runs = Arc::new(AtomicU32::new(0));
    let (m, p, r) = (map.clone(), probe.clone(), runs.clone());
    atomic(move |tx| {
        let m2 = m.clone();
        let p2 = p.clone();
        let r2 = r.clone();
        tx.closed(move |tx| {
            let attempt = r2.fetch_add(1, Ordering::SeqCst);
            // This put's delta must be counted once in the commit.
            m2.put(tx, 100 + attempt, attempt);
            let _ = p2.read(tx);
            if attempt == 0 {
                let pp = p2.clone();
                std::thread::spawn(move || {
                    atomic(|tx| {
                        let v = pp.read(tx);
                        pp.write(tx, v + 1);
                    });
                })
                .join()
                .unwrap();
                let _ = p2.read(tx);
            }
        });
    });
    assert_eq!(runs.load(Ordering::SeqCst), 2);
    let entries = atomic(|tx| map.entries(tx));
    assert_eq!(
        entries,
        vec![(101, 1)],
        "aborted frame attempt's write leaked into the commit"
    );
}
