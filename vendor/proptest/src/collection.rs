//! Collection strategies: `vec`, `btree_map`, `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Debug;
use std::ops::Range;

fn draw_len(rng: &mut TestRng, size: &Range<usize>) -> usize {
    assert!(size.start < size.end, "empty collection size range");
    size.start + rng.below((size.end - size.start) as u64) as usize
}

/// Vectors of `size.start..size.end` elements drawn from `elem`.
pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { elem, size }
}

/// Output of [`vec`].
pub struct VecStrategy<S> {
    elem: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = draw_len(rng, &self.size);
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
}

/// Maps of up to `size.end - 1` entries (duplicate keys collapse, exactly as
/// in real proptest, so the final length may undershoot the draw).
pub fn btree_map<K, V>(keys: K, values: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    BTreeMapStrategy { keys, values, size }
}

/// Output of [`btree_map`].
pub struct BTreeMapStrategy<K, V> {
    keys: K,
    values: V,
    size: Range<usize>,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord + Debug,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = draw_len(rng, &self.size);
        (0..n)
            .map(|_| (self.keys.generate(rng), self.values.generate(rng)))
            .collect()
    }
}

/// Sets of up to `size.end - 1` elements (duplicates collapse).
pub fn btree_set<S>(elem: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy { elem, size }
}

/// Output of [`btree_set`].
pub struct BTreeSetStrategy<S> {
    elem: S,
    size: Range<usize>,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord + Debug,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = draw_len(rng, &self.size);
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn vec_lengths_span_range() {
        let mut rng = TestRng::deterministic("veclen", 0);
        let s = vec(any::<u8>(), 2..6);
        let mut lens = BTreeSet::new();
        for _ in 0..200 {
            lens.insert(s.generate(&mut rng).len());
        }
        assert_eq!(lens, BTreeSet::from([2, 3, 4, 5]));
    }

    #[test]
    fn map_len_bounded() {
        let mut rng = TestRng::deterministic("maplen", 0);
        let s = btree_map(any::<u8>(), any::<u8>(), 0..10);
        for _ in 0..100 {
            assert!(s.generate(&mut rng).len() < 10);
        }
    }
}
