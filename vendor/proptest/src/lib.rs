//! Offline shim for the `proptest` crate.
//!
//! The build container cannot reach crates.io, so this workspace vendors a
//! small, deterministic property-testing engine exposing the slice of the
//! proptest API the test suites use: [`strategy::Strategy`] with `prop_map`,
//! [`arbitrary::any`], [`strategy::Just`], integer-range strategies, tuple
//! strategies, [`collection`] generators (`vec`, `btree_map`, `btree_set`),
//! and the [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//! [`prop_assert_eq!`] macros.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports its generated inputs (via
//!   `Debug`) and the case index, but is not minimized.
//! * **Deterministic seeding.** The RNG is seeded from the test's module
//!   path, name, and case index, so failures reproduce exactly across runs
//!   with no persistence files (`*.proptest-regressions` files are ignored).
//! * **No `prop_flat_map`/recursive strategies** — nothing here needs them.

pub mod strategy;

pub mod arbitrary;

pub mod collection;

pub mod test_runner;

/// The prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Assert a condition inside a `proptest!` body, failing the test case (with
/// its inputs echoed) rather than panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        $crate::prop_assert_eq!($left, $right, "")
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: `{:?}`\n right: `{:?}` {}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                format!($($fmt)*),
            )));
        }
    }};
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}` (both `{:?}`)",
                stringify!($left),
                stringify!($right),
                l,
            )));
        }
    }};
}

/// Uniform choice between several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Define property tests: each `fn name(pat in strategy, ...)` body runs for
/// `ProptestConfig::cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl $config; $($rest)*);
    };
    (
        $(#[$meta:meta])*
        fn $($rest:tt)*
    ) => {
        $crate::proptest!(@impl $crate::test_runner::ProptestConfig::default();
            $(#[$meta])* fn $($rest)*);
    };
    (@impl $config:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    let mut case_desc = ::std::string::String::new();
                    $(
                        let value = $crate::strategy::Strategy::generate(&($strategy), &mut rng);
                        case_desc.push_str(&format!(
                            "  {} = {:?}\n", stringify!($arg), value,
                        ));
                        let $arg = value;
                    )+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {}/{} failed: {}\ninputs:\n{}",
                            case + 1, config.cases, e, case_desc,
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small() -> impl Strategy<Value = u8> {
        prop_oneof![Just(1u8), Just(2u8), 10u8..20]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3..9usize, y in -5i64..5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn oneof_hits_every_arm(xs in prop::collection::vec(small(), 64..65)) {
            prop_assert_eq!(xs.len(), 64);
            prop_assert!(xs.iter().all(|&x| x == 1 || x == 2 || (10..20).contains(&x)));
        }

        #[test]
        fn maps_and_sets_respect_size(
            m in prop::collection::btree_map(any::<u16>(), any::<u32>(), 0..20),
            s in prop::collection::btree_set(any::<u16>(), 5..10),
        ) {
            prop_assert!(m.len() < 20);
            prop_assert!(s.len() < 10);
        }

        #[test]
        fn question_mark_propagates(v in any::<bool>()) {
            let r: Result<(), String> = Ok(());
            r.map_err(TestCaseError::fail)?;
            prop_assert_eq!(v, v);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::deterministic("t", 3);
        let mut b = TestRng::deterministic("t", 3);
        let s = any::<u64>();
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_case_reports_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0..10u32) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
