//! `any::<T>()` — canonical strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draw an arbitrary value of `Self`.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` (mirrors `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Output of [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.bool()
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Printable ASCII keeps failure output readable.
        (0x20u8 + rng.below(0x5f) as u8) as char
    }
}

impl<T: Arbitrary> Arbitrary for Option<T> {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Bias toward Some, as real proptest does.
        if rng.below(4) == 0 {
            None
        } else {
            Some(T::arbitrary(rng))
        }
    }
}

impl Arbitrary for () {
    fn arbitrary(_rng: &mut TestRng) -> Self {}
}

macro_rules! impl_arbitrary_tuple {
    ($($($t:ident),+;)*) => {$(
        impl<$($t: Arbitrary),+> Arbitrary for ($($t,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($t::arbitrary(rng),)+)
            }
        }
    )*};
}

impl_arbitrary_tuple! {
    A;
    A, B;
    A, B, C;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_produce_both_variants() {
        let mut rng = TestRng::deterministic("opt", 0);
        let s = any::<Option<u8>>();
        let (mut some, mut none) = (0, 0);
        for _ in 0..200 {
            match s.generate(&mut rng) {
                Some(_) => some += 1,
                None => none += 1,
            }
        }
        assert!(some > 0 && none > 0, "some={some} none={none}");
    }
}
