//! Test configuration, the deterministic RNG, and case-failure plumbing.

use std::fmt;

/// Per-test configuration (mirrors `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; this shim trades a little coverage
        // for tier-1 wall clock. Suites that care pass `with_cases`.
        ProptestConfig { cases: 64 }
    }
}

/// A failed test case (carries the reason; no shrinking metadata).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    reason: String,
}

impl TestCaseError {
    /// Fail the current case with the given reason.
    pub fn fail<M: fmt::Display>(reason: M) -> Self {
        TestCaseError {
            reason: reason.to_string(),
        }
    }

    /// Alias for [`TestCaseError::fail`] (real proptest distinguishes
    /// rejections from failures; the shim treats both as failures).
    pub fn reject<M: fmt::Display>(reason: M) -> Self {
        Self::fail(reason)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.reason)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic xorshift64* RNG, seeded per (test, case).
///
/// Seeding from the fully qualified test name plus the case index makes every
/// failure reproducible from its panic message alone — no regression files.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case `case` of the test identified by `name`.
    pub fn deterministic(name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h ^= (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        // Never allow the all-zero state.
        TestRng {
            state: if h == 0 { 0x853c_49e6_748f_ea9b } else { h },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift rejection-free mapping is fine at test quality.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_is_in_bounds_and_covers() {
        let mut rng = TestRng::deterministic("below", 0);
        let mut seen = [false; 7];
        for _ in 0..300 {
            seen[rng.below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn different_cases_diverge() {
        let a = TestRng::deterministic("x", 0).next_u64();
        let b = TestRng::deterministic("x", 1).next_u64();
        assert_ne!(a, b);
    }
}
