//! Value-generation strategies (no shrinking — see the crate docs).

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::Range;

/// A recipe for generating values of one type from the deterministic RNG.
///
/// Unlike real proptest there is no value tree: `generate` produces the final
/// value directly, and failing cases are not shrunk.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f` (proptest's `prop_map`).
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among same-valued strategies (output of [`prop_oneof!`]).
///
/// [`prop_oneof!`]: crate::prop_oneof
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Union<T> {
    /// Build a union; panics on an empty arm list.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Integers that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Copy + Debug {
    /// Draw uniformly from `[lo, hi)`; callers guarantee `lo < hi`.
    fn sample(rng: &mut TestRng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                // Width computed in i128 to survive signed ranges and the
                // full u64/usize domain.
                let span = (hi as i128) - (lo as i128);
                debug_assert!(span > 0, "empty range strategy");
                let off = rng.below(span as u64) as i128;
                ((lo as i128) + off) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample(rng, self.start, self.end)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_sampling_covers_domain_and_respects_bounds() {
        let mut rng = TestRng::deterministic("range", 0);
        let s = -3i64..3;
        let mut seen = std::collections::HashSet::new();
        for _ in 0..400 {
            let v = s.generate(&mut rng);
            assert!((-3..3).contains(&v));
            seen.insert(v);
        }
        assert_eq!(seen.len(), 6, "all 6 values should appear");
    }

    #[test]
    fn map_and_tuple_compose() {
        let mut rng = TestRng::deterministic("map", 0);
        let s = (0u8..10, 0u8..10).prop_map(|(a, b)| a as u16 + b as u16);
        for _ in 0..100 {
            assert!(s.generate(&mut rng) < 19);
        }
    }
}
