//! Offline shim for the `parking_lot` crate.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors the tiny slice of the `parking_lot` API it actually uses —
//! [`Mutex`], [`MutexGuard`], [`RwLock`] and its guards — as zero-cost
//! wrappers over `std::sync`. Semantics follow parking_lot, not std:
//!
//! * no lock poisoning — a panic while holding a guard leaves the lock
//!   usable (we recover the inner value from std's `PoisonError`);
//! * `const fn new`, so locks can live in `static`s;
//! * no `Result` return values on `lock`/`read`/`write`.
//!
//! Fairness, timed locking, and the raw-lock plumbing of the real crate are
//! intentionally out of scope: nothing in this workspace uses them.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutual-exclusion lock with parking_lot's panic-transparent semantics.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex::lock`]; releases the lock on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex (usable in `static` items).
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: match self.inner.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            },
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A reader–writer lock with parking_lot's panic-transparent semantics.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a new reader–writer lock (usable in `static` items).
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: match self.inner.read() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            },
        }
    }

    /// Acquire the exclusive write lock. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: match self.inner.write() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            },
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock { .. }")
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic_and_static() {
        static M: Mutex<i32> = Mutex::new(5);
        assert_eq!(*M.lock(), 5);
        *M.lock() += 1;
        assert_eq!(*M.lock(), 6);
    }

    #[test]
    fn mutex_survives_panic_unpoisoned() {
        let m = std::sync::Arc::new(Mutex::new(1));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 1, "lock must stay usable after a panic");
    }

    #[test]
    fn rwlock_many_readers_then_writer() {
        let l = RwLock::new(7u32);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 14);
        }
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
