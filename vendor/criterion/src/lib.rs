//! Offline shim for the `criterion` crate.
//!
//! Supports the API surface the bench targets use — [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], [`criterion_group!`],
//! [`criterion_main!`], [`black_box`] — with a simple timing loop instead of
//! criterion's statistical engine: a short warm-up, then batches until a
//! ~250 ms budget is spent, reporting mean and min per iteration.

use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a value/computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level bench context (one per `criterion_group!` function).
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup: {name}");
        BenchmarkGroup {
            _parent: self,
            group: name.to_string(),
        }
    }

    /// Run a standalone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_bench(id, &mut f);
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    group: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_bench(&format!("{}/{}", self.group, id), &mut f);
        self
    }

    /// End the group (accepted for API compatibility; no summary pass).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, f: &mut F) {
    let mut b = Bencher::default();
    f(&mut b);
    match b.report() {
        Some((iters, mean, min)) => println!(
            "  {id}: mean {} / min {} over {iters} iters",
            fmt_ns(mean),
            fmt_ns(min)
        ),
        None => println!("  {id}: no measurement (iter never called)"),
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else {
        format!("{:.2} ms", ns / 1_000_000.0)
    }
}

/// Passed to the closure given to `bench_function`; call [`Bencher::iter`].
#[derive(Debug, Default)]
pub struct Bencher {
    total_iters: u64,
    total_time: Duration,
    best_batch_ns: Option<f64>,
}

impl Bencher {
    /// Measure `routine`, running it repeatedly under a small time budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + batch-size calibration: grow until a batch costs ≥1 ms.
        let mut batch: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let el = t.elapsed();
            if el >= Duration::from_millis(1) || batch >= (1 << 20) {
                break;
            }
            batch *= 2;
        }
        // Measurement: ~250 ms budget.
        let budget = Duration::from_millis(250);
        let start = Instant::now();
        while start.elapsed() < budget {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let el = t.elapsed();
            self.total_iters += batch;
            self.total_time += el;
            let per = el.as_nanos() as f64 / batch as f64;
            self.best_batch_ns = Some(self.best_batch_ns.map_or(per, |b: f64| b.min(per)));
        }
    }

    fn report(&self) -> Option<(u64, f64, f64)> {
        let best = self.best_batch_ns?;
        let mean = self.total_time.as_nanos() as f64 / self.total_iters as f64;
        Some((self.total_iters, mean, best))
    }
}

/// Define a bench group function from plain `fn(&mut Criterion)` benches.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        #[allow(unreachable_pub)]
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Define `main` from one or more `criterion_group!` names.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::default();
        b.iter(|| black_box(3u64).wrapping_mul(7));
        let (iters, mean, min) = b.report().expect("measured");
        assert!(iters > 0);
        assert!(mean >= min && min > 0.0);
    }

    fn noop_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
    }

    criterion_group!(benches, noop_bench);

    #[test]
    fn group_macro_compiles_and_runs() {
        benches();
    }
}
