//! Quickstart: wrap a map in a `TransactionalMap` and run compound atomic
//! operations from many threads without unnecessary conflicts.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;
use stm::atomic;
use txcollections::TransactionalMap;

fn main() {
    // A TransactionalMap is a drop-in wrapper: it exposes Map operations and
    // can wrap any transactional map backend (here the default TxHashMap).
    let scores: Arc<TransactionalMap<String, u64>> = Arc::new(TransactionalMap::new());

    let players = ["alice", "bob", "carol", "dave"];
    let rounds = 2_000;

    let before = stm::global_stats();
    std::thread::scope(|s| {
        for (t, player) in players.iter().enumerate() {
            let scores = scores.clone();
            s.spawn(move || {
                for round in 0..rounds {
                    // One atomic transaction composing several operations:
                    // read-modify-write of this player's score plus a blind
                    // write of a bookkeeping key. Transactions of different
                    // players commute — no semantic conflicts — even though
                    // they share one hash map (and would collide on its size
                    // field without the wrapper).
                    atomic(|tx| {
                        let key = player.to_string();
                        let cur = scores.get(tx, &key).unwrap_or(0);
                        scores.put(tx, key, cur + (round % 7) + (t as u64));
                        scores.put_discard(tx, format!("last-round-{player}"), round);
                    });
                }
            });
        }
    });
    let stats = stm::global_stats().since(&before);

    println!("final scores:");
    let entries = atomic(|tx| scores.entries(tx));
    let mut entries: Vec<_> = entries
        .into_iter()
        .filter(|(k, _)| !k.starts_with("last-"))
        .collect();
    entries.sort();
    for (k, v) in entries {
        println!("  {k:8} {v}");
    }
    println!(
        "committed {} transactions; {} aborted on memory conflicts, {} on semantic conflicts",
        stats.commits, stats.aborts_read_invalid, stats.aborts_doomed
    );
    println!(
        "semantic conflicts detected by the map itself: {}",
        scores.semantic_stats().total()
    );
}
