//! Delaunay-style work-queue refinement (the motivating example for
//! `TransactionalQueue`, paper §3.3, after Kulkarni et al.).
//!
//! Workers repeatedly take a "bad triangle" from a shared queue, refine it
//! (which may produce new bad triangles that go back on the queue), and
//! occasionally abort mid-refinement. The queue's reduced-isolation design
//! guarantees:
//!
//! * work items produced by an aborted refinement are never seen by others;
//! * work items taken by an aborted refinement are returned to the queue;
//! * every item is processed exactly once.
//!
//! ```sh
//! cargo run --release --example delaunay_worklist
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use stm::atomic;
use txcollections::{Channel, TransactionalQueue};

/// A "triangle" with a quality score; refining a bad one may create up to
/// two new (better) triangles.
#[derive(Clone, Debug)]
struct Triangle {
    id: u64,
    badness: u32,
}

fn main() {
    let queue: Arc<TransactionalQueue<Triangle>> = Arc::new(TransactionalQueue::new());
    let next_id = Arc::new(AtomicU64::new(1_000_000));
    let processed = Arc::new(parking_lot::Mutex::new(Vec::<u64>::new()));
    let injected_aborts = Arc::new(AtomicU64::new(0));

    // Seed the mesh with 200 bad triangles of varying badness.
    atomic(|tx| {
        for id in 0..200u64 {
            queue.put(
                tx,
                Triangle {
                    id,
                    badness: (id % 4) as u32 + 1,
                },
            );
        }
    });

    std::thread::scope(|s| {
        for w in 0..4u64 {
            let queue = queue.clone();
            let next_id = next_id.clone();
            let processed = processed.clone();
            let injected = injected_aborts.clone();
            s.spawn(move || {
                let mut idle = 0;
                let mut x = 0x2545_F491_4F6C_DD1Du64 ^ w;
                let mut rng = move || {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x
                };
                while idle < 200 {
                    // Fail at most once per logical refinement, so the retry
                    // succeeds (the closure re-executes after the abort).
                    let mut fail_once = rng() % 16 == 0;
                    let got = atomic(|tx| {
                        let Some(tri) = queue.poll(tx) else {
                            return None;
                        };
                        // "Refine": a triangle of badness > 1 splits into two
                        // better ones, enqueued atomically with the take.
                        if tri.badness > 1 {
                            for _ in 0..2 {
                                let id = next_id.fetch_add(1, Ordering::Relaxed);
                                queue.put(
                                    tx,
                                    Triangle {
                                        id,
                                        badness: tri.badness - 1,
                                    },
                                );
                            }
                        }
                        // Simulated failure mid-refinement: the taken
                        // triangle must return to the queue, the enqueued
                        // children must vanish.
                        if fail_once {
                            fail_once = false;
                            injected.fetch_add(1, Ordering::Relaxed);
                            stm::abort_and_retry();
                        }
                        Some(tri.id)
                    });
                    match got {
                        Some(id) => {
                            processed.lock().push(id);
                            idle = 0;
                        }
                        None => {
                            idle += 1;
                            std::thread::yield_now();
                        }
                    }
                }
            });
        }
    });

    let mut done = processed.lock().clone();
    let n = done.len();
    done.sort_unstable();
    done.dedup();
    assert_eq!(done.len(), n, "a triangle was refined twice!");
    let leftover = atomic(|tx| queue.poll(tx));
    assert!(leftover.is_none(), "work left behind");
    println!(
        "refined {} triangles across 4 workers ({} injected aborts) — \
         nothing lost, nothing duplicated",
        n,
        injected_aborts.load(Ordering::Relaxed)
    );
}
