//! The UID-generator isolation/serializability trade (paper §1 and §6.3).
//!
//! Two ways to draw order ids from a shared counter inside long
//! transactions:
//!
//! * **serializable** — the draw is a plain transactional read-modify-write:
//!   ids are gapless, but every two drawing transactions conflict, so the
//!   counter serializes the whole workload;
//! * **open-nested** — the draw commits immediately and the parent keeps no
//!   dependency: no conflicts, but aborted parents leave gaps (exactly the
//!   monotonically-increasing-identifier example the database community uses
//!   to motivate reduced isolation).
//!
//! The example measures both under identical contention and verifies
//! uniqueness in both cases.
//!
//! ```sh
//! cargo run --release --example uid_generator
//! ```

use std::sync::Arc;
use stm::atomic;
use txcollections::UidGenerator;

const THREADS: u64 = 4;
const DRAWS: usize = 400;

fn run(use_open_nesting: bool) -> (Vec<i64>, stm::StatsSnapshot, std::time::Duration) {
    let gen = Arc::new(UidGenerator::starting_at(0));
    let ids = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let before = stm::global_stats();
    let start = std::time::Instant::now();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let gen = gen.clone();
            let ids = ids.clone();
            s.spawn(move || {
                for i in 0..DRAWS {
                    let id = atomic(|tx| {
                        let id = if use_open_nesting {
                            gen.next(tx)
                        } else {
                            gen.next_serializable(tx)
                        };
                        // Long transaction: work after the draw, widening the
                        // conflict window of the serializable variant.
                        let mut acc = t + i as u64;
                        for _ in 0..2_000 {
                            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                        }
                        std::hint::black_box(acc);
                        id
                    });
                    ids.lock().push(id);
                }
            });
        }
    });
    let elapsed = start.elapsed();
    let stats = stm::global_stats().since(&before);
    let out = ids.lock().clone();
    (out, stats, elapsed)
}

fn report(name: &str, ids: &[i64], stats: &stm::StatsSnapshot, took: std::time::Duration) {
    let mut sorted = ids.to_vec();
    sorted.sort_unstable();
    let unique = {
        let mut v = sorted.clone();
        v.dedup();
        v.len()
    };
    let max = *sorted.last().unwrap();
    let gaps = (max + 1) as usize - unique;
    println!(
        "{name:14} drew {unique} unique ids (0..={max}, {gaps} gaps) in {took:9.2?} \
         — {} aborts",
        stats.aborts()
    );
    assert_eq!(unique, ids.len(), "duplicate ids issued!");
}

fn main() {
    let (ids, stats, took) = run(false);
    report("serializable", &ids, &stats, took);

    let (ids, stats, took) = run(true);
    report("open-nested", &ids, &stats, took);

    println!(
        "\nthe open-nested generator trades gapless ids (serializability) for \
         conflict-freedom — the structured isolation reduction of §3.3/§6.3"
    );
}
