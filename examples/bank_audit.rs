//! Bank audit: a long-running full-iteration transaction concurrent with a
//! storm of transfers.
//!
//! The audit enumerates every account inside one transaction. With a plain
//! transactional map this would conflict with *every* transfer (size field /
//! bucket memory); with `TransactionalMap` it conflicts only with transfers
//! that actually commit while the audit runs — and the semantic locks
//! guarantee the audited total is always exact.
//!
//! ```sh
//! cargo run --release --example bank_audit
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use stm::atomic;
use txcollections::TransactionalMap;

const ACCOUNTS: u32 = 64;
const INITIAL: i64 = 1_000;
const AUDITS: usize = 50;

fn main() {
    let bank: Arc<TransactionalMap<u32, i64>> = Arc::new(TransactionalMap::new());
    atomic(|tx| {
        for a in 0..ACCOUNTS {
            bank.put_discard(tx, a, INITIAL);
        }
    });

    let stop = Arc::new(AtomicBool::new(false));
    let transfers_done = Arc::new(std::sync::atomic::AtomicU64::new(0));

    std::thread::scope(|s| {
        // Three transfer threads: value-conserving random transfers.
        for t in 0..3u64 {
            let bank = bank.clone();
            let stop = stop.clone();
            let transfers_done = transfers_done.clone();
            s.spawn(move || {
                let mut x = 0x853C_49E6_748F_EA9Bu64 ^ t;
                let mut rng = move || {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x
                };
                while !stop.load(Ordering::Relaxed) {
                    let from = (rng() % ACCOUNTS as u64) as u32;
                    let to = (rng() % ACCOUNTS as u64) as u32;
                    let amount = (rng() % 50) as i64;
                    if from == to {
                        continue;
                    }
                    atomic(|tx| {
                        let f = bank.get(tx, &from).unwrap();
                        if f >= amount {
                            let v = bank.get(tx, &to).unwrap();
                            bank.put(tx, from, f - amount);
                            bank.put(tx, to, v + amount);
                        }
                    });
                    transfers_done.fetch_add(1, Ordering::Relaxed);
                }
            });
        }

        // The auditor: long transactions enumerating all accounts.
        let bank2 = bank.clone();
        let stop2 = stop.clone();
        s.spawn(move || {
            for audit in 1..=AUDITS {
                let (total, count) = atomic(|tx| {
                    let entries = bank2.entries(tx);
                    let total: i64 = entries.iter().map(|(_, v)| *v).sum();
                    (total, entries.len())
                });
                assert_eq!(
                    total,
                    INITIAL * ACCOUNTS as i64,
                    "audit {audit} observed a torn balance sheet!"
                );
                assert_eq!(count, ACCOUNTS as usize);
                if audit % 10 == 0 {
                    println!("audit {audit:3}: {count} accounts, total {total} — consistent");
                }
            }
            stop2.store(true, Ordering::Relaxed);
        });
    });

    println!(
        "all {} audits saw an exact total while {} transfers committed concurrently",
        AUDITS,
        transfers_done.load(Ordering::Relaxed)
    );
}
