//! Building your own transactional class with the paper's §5 guidelines —
//! on the crate's semantic-class kernel.
//!
//! The paper closes: "we have shown a straightforward operational analysis
//! and implementation guidelines that allow programmers to safely design
//! their own concurrent classes." This example walks those guidelines for a
//! `TransactionalHistogram` — shared counting bins with semantic
//! concurrency control — and shows what the kernel leaves for you to write:
//!
//! * **Operational analysis** (yours): `add(bin, n)` operations commute
//!   with each other (blind additions); `count(bin)` conflicts with `add`
//!   to the same bin; `total()` conflicts with any `add`. Since PR 6 that
//!   analysis is *data*, not prose: `HIST_CONFLICT_GRAPH` below declares
//!   the operations and their conflict edges, [`SemanticCore::new`]
//!   synthesizes the lock modes from it and panics at construction if the
//!   declaration is unsound or disagrees with the dispatch matrix, and
//!   txlint's TX010 pass re-checks the declaration without running code.
//! * **Guideline 1** — keep transaction-local state encapsulated: the
//!   `HistLocal` buffer, reached only via [`SemanticCore::with_local`].
//! * **Guideline 2** — register one commit/abort handler pair on first
//!   touch: [`SemanticCore::ensure_registered`], one call per operation;
//!   the kernel makes it idempotent and ordering-safe.
//! * **Guideline 3** — take semantic locks before reading committed state,
//!   then read open-nested: `count`/`total` below.
//! * **Guideline 5-commit** — [`SemanticClass::apply`]: the kernel hands
//!   you the drained buffer inside the commit handler; you apply it and
//!   state what each update *does* ([`UpdateEffect`]); the sweep order and
//!   the who-to-doom case analysis are the kernel's.
//! * **Guideline 4/5-abort** — [`SemanticClass::release`]: drop the buffer
//!   (already drained) and release the lock footprint.
//!
//! Everything the pre-kernel version of this example re-implemented by hand
//! — first-touch registration ordering, locals sharding and draining,
//! stripe sweep order, doom dispatch — is gone: the class is the ~60 lines
//! below.
//!
//! ```sh
//! cargo run --release --example custom_class
//! ```

use std::collections::{HashMap, HashSet};
use stm::{atomic, TVar, Txn};
use txcollections::{
    edge, op, ClassTables, ConflictGraph, ObsMode, Overlap, SemanticClass, SemanticCore,
    SemanticStats, UpdateEffect,
};

const BINS: usize = 16;

// txlint: conflict-graph
/// The histogram's operational analysis as data. `add` is blind (no
/// observation modes) and publishes a per-bin write plus a total change;
/// `count` observes one bin (conflicts with `add` only on the same bin);
/// `total` observes the whole histogram (conflicts with every `add`).
static HIST_CONFLICT_GRAPH: ConflictGraph<'static> = ConflictGraph {
    class: "histogram",
    ops: &[
        op(
            "add",
            &[],
            &[UpdateEffect::KeyWrite, UpdateEffect::SizeChange],
        ),
        op("count", &[ObsMode::Key], &[]),
        op("total", &[ObsMode::Size], &[]),
    ],
    edges: &[
        edge(
            "count",
            "add",
            ObsMode::Key,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        edge(
            "total",
            "add",
            ObsMode::Size,
            UpdateEffect::SizeChange,
            Overlap::Always,
        ),
    ],
};

/// Per-transaction state (guideline 1): buffered deltas plus the bin locks
/// this transaction holds (so `release`/`apply` know the footprint).
#[derive(Default)]
struct HistLocal {
    deltas: HashMap<usize, u64>,
    bin_locks: HashSet<usize>,
}

/// The variant half: the underlying bins and the semantic-lock tables.
struct HistClass {
    bins: Vec<TVar<u64>>,
    tables: ClassTables<usize>,
}

impl SemanticClass for HistClass {
    type Local = HistLocal;
    type Undo = ();

    fn name(&self) -> &'static str {
        "histogram"
    }

    /// Declaring the graph makes `SemanticCore::new` synthesize the lock
    /// modes and cross-check them against the dispatch matrix before the
    /// class can run (try removing an edge: construction panics).
    fn conflict_graph(&self) -> Option<&'static ConflictGraph<'static>> {
        Some(&HIST_CONFLICT_GRAPH)
    }

    /// Commit handler body (guideline 5): apply the buffered deltas to the
    /// underlying bins in direct mode, dooming readers of each touched bin;
    /// then, in the global phase the kernel forces to run last, doom
    /// `total()` observers (size-lock holders). The sweep order — touched
    /// stripes ascending, global stripe last, own locks released last — is
    /// the kernel's, not ours.
    fn apply(&self, local: HistLocal, htx: &mut Txn, id: u64, stats: &SemanticStats) {
        let grew = local.deltas.values().any(|&d| d > 0);
        let global = self.tables.commit_sweep(
            stats,
            id,
            local.deltas.iter(),
            local.bin_locks.iter(),
            |&bin, &d, cx| {
                if d != 0 {
                    let cur = self.bins[bin].read(htx);
                    self.bins[bin].write(htx, cur + d);
                    cx.doom(UpdateEffect::KeyWrite, &bin);
                }
            },
        );
        global.finish(|g| {
            if grew {
                g.doom(UpdateEffect::SizeChange);
            }
        });
    }

    /// Abort handler body (guideline 4): writes were only buffered, so the
    /// compensation is pure release — the kernel already drained the buffer.
    fn release(&self, local: HistLocal, _htx: &mut Txn, id: u64, stats: &SemanticStats) {
        self.tables.release_sweep(stats, id, local.bin_locks.iter());
    }
}

#[derive(Clone)]
struct TransactionalHistogram {
    core: SemanticCore<HistClass>,
}

impl TransactionalHistogram {
    fn new() -> Self {
        TransactionalHistogram {
            core: SemanticCore::new(
                HistClass {
                    bins: (0..BINS).map(|_| TVar::new(0)).collect(),
                    tables: ClassTables::new(4),
                },
                4,
            ),
        }
    }

    /// Blind addition: buffered locally, commutes with every other add
    /// (guideline 3 — no semantic lock because nothing is read).
    fn add(&self, tx: &mut Txn, bin: usize, n: u64) {
        self.core.ensure_registered(tx);
        self.core
            .with_local(tx, |l| *l.deltas.entry(bin).or_insert(0) += n);
    }

    /// Read one bin: take the bin's key lock, then read open-nested
    /// (guideline 1/3), merging the local buffer.
    fn count(&self, tx: &mut Txn, bin: usize) -> u64 {
        self.core.ensure_registered(tx);
        let class = self.core.class();
        class
            .tables
            .take_key_lock(self.core.stats(), bin, tx.handle().clone());
        let var = class.bins[bin].clone();
        let committed = tx.open(move |otx| var.read(otx));
        committed
            + self.core.with_local(tx, |l| {
                l.bin_locks.insert(bin);
                l.deltas.get(&bin).copied().unwrap_or(0)
            })
    }

    /// Read the total: size lock + open-nested sweep.
    fn total(&self, tx: &mut Txn) -> u64 {
        self.core.ensure_registered(tx);
        let class = self.core.class();
        class
            .tables
            .take_size_lock(self.core.stats(), tx.handle().clone());
        let bins = class.bins.clone();
        let committed: u64 = tx.open(move |otx| bins.iter().map(|b| b.read(otx)).sum());
        committed + self.core.with_local(tx, |l| l.deltas.values().sum::<u64>())
    }
}

fn main() {
    let hist = TransactionalHistogram::new();
    let samples_per_thread = 5_000u64;
    let before = stm::global_stats();

    std::thread::scope(|s| {
        for t in 0..4u64 {
            let hist = hist.clone();
            s.spawn(move || {
                let mut x = 0x9E3779B97F4A7C15u64 ^ t;
                for _ in 0..samples_per_thread {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let bin = (x % BINS as u64) as usize;
                    // Long transaction: several adds composed atomically.
                    atomic(|tx| {
                        hist.add(tx, bin, 1);
                        hist.add(tx, (bin + 1) % BINS, 1);
                    });
                }
            });
        }
    });
    let stats = stm::global_stats().since(&before);

    let total = atomic(|tx| hist.total(tx));
    assert_eq!(total, 4 * samples_per_thread * 2, "histogram lost counts!");
    println!("histogram total = {total} (exact) across 4 threads");
    println!(
        "adds commute: {} commits, {} memory-conflict aborts, {} semantic dooms",
        stats.commits, stats.aborts_read_invalid, stats.aborts_doomed
    );
    let spread: Vec<u64> = (0..BINS).map(|b| atomic(|tx| hist.count(tx, b))).collect();
    println!("bin spread: {spread:?}");
    println!(
        "\nthe §5 recipe on the kernel: a declared conflict graph + two \
         handler bodies; lock synthesis, registration, sweep order and doom \
         dispatch come for free."
    );
}
