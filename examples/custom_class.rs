//! Building your own transactional class with the paper's §5 guidelines.
//!
//! The paper closes: "we have shown a straightforward operational analysis
//! and implementation guidelines that allow programmers to safely design
//! their own concurrent classes." This example walks those guidelines for a
//! `TransactionalHistogram` — shared counting bins with semantic
//! concurrency control:
//!
//! * **Operational analysis**: `add(bin, n)` operations commute with each
//!   other (blind additions); `count(bin)` conflicts with `add` to the same
//!   bin; `total()` conflicts with any `add`.
//! * **Semantic locks**: per-bin read locks and a total read lock.
//! * **Guideline 1** — reads go through open-nested transactions after
//!   taking the lock.
//! * **Guideline 3** — writes accumulate in a transaction-local delta
//!   buffer.
//! * **Guidelines 4/5** — one abort handler releases locks and drops the
//!   buffer; one commit handler applies the deltas, dooms conflicting
//!   readers, and then cleans up like the abort handler.
//!
//! ```sh
//! cargo run --release --example custom_class
//! ```

use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use stm::{atomic, TVar, TxHandle, Txn};

const BINS: usize = 16;

struct HistogramInner {
    bins: Vec<TVar<u64>>,
    // Shared transaction state: semantic lock tables (encapsulated).
    bin_lockers: Mutex<HashMap<usize, HashSet<Arc<TxHandle>>>>,
    total_lockers: Mutex<HashSet<Arc<TxHandle>>>,
    // Local transaction state: per-transaction delta buffers.
    locals: Mutex<HashMap<u64, HashMap<usize, u64>>>,
}

#[derive(Clone)]
struct TransactionalHistogram {
    inner: Arc<HistogramInner>,
}

impl TransactionalHistogram {
    fn new() -> Self {
        TransactionalHistogram {
            inner: Arc::new(HistogramInner {
                bins: (0..BINS).map(|_| TVar::new(0)).collect(),
                bin_lockers: Mutex::new(HashMap::new()),
                total_lockers: Mutex::new(HashSet::new()),
                locals: Mutex::new(HashMap::new()),
            }),
        }
    }

    /// Register the single commit/abort handler pair on first use
    /// (guidelines 4 and 5).
    fn ensure_registered(&self, tx: &mut Txn) {
        let id = tx.handle().id();
        let fresh = {
            let mut locals = self.inner.locals.lock();
            if locals.contains_key(&id) {
                false
            } else {
                locals.insert(id, HashMap::new());
                true
            }
        };
        if !fresh {
            return;
        }
        // Commit handler: apply buffered deltas to the underlying bins
        // (direct mode), doom readers of the touched bins and of the total,
        // release our locks.
        let inner = self.inner.clone();
        let h = tx.handle().clone();
        tx.on_commit_top(move |htx| {
            let deltas = inner.locals.lock().remove(&h.id()).unwrap_or_default();
            let mut doomed = 0;
            {
                let mut lockers = inner.bin_lockers.lock();
                for (&bin, &d) in &deltas {
                    if d == 0 {
                        continue;
                    }
                    let cur = inner.bins[bin].read(htx);
                    inner.bins[bin].write(htx, cur + d);
                    if let Some(owners) = lockers.get_mut(&bin) {
                        owners.retain(|o| {
                            if o.id() != h.id() && o.doom() {
                                doomed += 1;
                            }
                            o.id() != h.id()
                        });
                    }
                }
                for owners in lockers.values_mut() {
                    owners.retain(|o| o.id() != h.id());
                }
            }
            if deltas.values().any(|&d| d > 0) {
                let mut totals = inner.total_lockers.lock();
                for o in totals.iter() {
                    if o.id() != h.id() && o.doom() {
                        doomed += 1;
                    }
                }
                totals.retain(|o| o.id() != h.id());
            }
            std::hint::black_box(doomed);
        });
        // Abort handler: the compensating transaction — drop the buffer,
        // release the locks.
        let inner = self.inner.clone();
        let h = tx.handle().clone();
        tx.on_abort_top(move |_| {
            inner.locals.lock().remove(&h.id());
            for owners in inner.bin_lockers.lock().values_mut() {
                owners.retain(|o| o.id() != h.id());
            }
            inner.total_lockers.lock().retain(|o| o.id() != h.id());
        });
    }

    /// Blind addition: buffered locally, commutes with every other add
    /// (guideline 3 — no semantic lock because nothing is read).
    fn add(&self, tx: &mut Txn, bin: usize, n: u64) {
        self.ensure_registered(tx);
        let id = tx.handle().id();
        let mut locals = self.inner.locals.lock();
        *locals.get_mut(&id).unwrap().entry(bin).or_insert(0) += n;
    }

    /// Read one bin: take the bin lock, then read open-nested
    /// (guideline 1), merging the local buffer.
    fn count(&self, tx: &mut Txn, bin: usize) -> u64 {
        self.ensure_registered(tx);
        {
            let mut lockers = self.inner.bin_lockers.lock();
            lockers.entry(bin).or_default().insert(tx.handle().clone());
        }
        let var = self.inner.bins[bin].clone();
        let committed = tx.open(move |otx| var.read(otx));
        let id = tx.handle().id();
        committed
            + self
                .inner
                .locals
                .lock()
                .get(&id)
                .and_then(|d| d.get(&bin))
                .copied()
                .unwrap_or(0)
    }

    /// Read the total: total lock + open-nested sweep.
    fn total(&self, tx: &mut Txn) -> u64 {
        self.ensure_registered(tx);
        self.inner.total_lockers.lock().insert(tx.handle().clone());
        let bins = self.inner.bins.clone();
        let committed: u64 = tx.open(move |otx| bins.iter().map(|b| b.read(otx)).sum());
        let id = tx.handle().id();
        committed
            + self
                .inner
                .locals
                .lock()
                .get(&id)
                .map(|d| d.values().sum::<u64>())
                .unwrap_or(0)
    }
}

fn main() {
    let hist = TransactionalHistogram::new();
    let samples_per_thread = 5_000u64;
    let before = stm::global_stats();

    std::thread::scope(|s| {
        for t in 0..4u64 {
            let hist = hist.clone();
            s.spawn(move || {
                let mut x = 0x9E3779B97F4A7C15u64 ^ t;
                for _ in 0..samples_per_thread {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let bin = (x % BINS as u64) as usize;
                    // Long transaction: several adds composed atomically.
                    atomic(|tx| {
                        hist.add(tx, bin, 1);
                        hist.add(tx, (bin + 1) % BINS, 1);
                    });
                }
            });
        }
    });
    let stats = stm::global_stats().since(&before);

    let total = atomic(|tx| hist.total(tx));
    assert_eq!(total, 4 * samples_per_thread * 2, "histogram lost counts!");
    println!("histogram total = {total} (exact) across 4 threads");
    println!(
        "adds commute: {} commits, {} memory-conflict aborts, {} semantic dooms",
        stats.commits, stats.aborts_read_invalid, stats.aborts_doomed
    );
    let spread: Vec<u64> = (0..BINS).map(|b| atomic(|tx| hist.count(tx, b))).collect();
    println!("bin spread: {spread:?}");
    println!(
        "\nthe full recipe — operational analysis, semantic locks, open-nested \
         reads, buffered writes, commit/abort handlers — in ~150 lines (§5)."
    );
}
