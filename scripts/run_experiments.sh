#!/usr/bin/env bash
# Regenerate every experiment in EXPERIMENTS.md into results/.
# Usage: scripts/run_experiments.sh [results-dir]
set -euo pipefail
cd "$(dirname "$0")/.."
OUT="${1:-results}"
mkdir -p "$OUT"

echo "== building (release) =="
cargo build -p bench --release

for fig in fig1_testmap fig2_testsortedmap fig3_testcompound fig4_specjbb conflict_analysis; do
    echo "== $fig =="
    cargo run -p bench --release --bin "$fig" | tee "$OUT/$fig.txt"
done

for ab in ablation_segmented ablation_isempty ablation_putreturn ablation_eager ablation_rangeindex; do
    echo "== $ab =="
    cargo bench -p bench --bench "$ab" | tee "$OUT/$ab.txt"
done

echo "== criterion microbenches =="
cargo bench -p bench --bench stm_ops -- --noplot | tee "$OUT/stm_ops.txt"
cargo bench -p bench --bench collection_overhead -- --noplot | tee "$OUT/collection_overhead.txt"

echo
echo "All outputs in $OUT/"
