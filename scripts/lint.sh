#!/usr/bin/env bash
# The full lint gate, same as CI: clippy, rustfmt, txlint self-test
# (includes the TX010 conflict-graph fixture and the --format json schema
# check), the synthesized-matrix oracle on its own, then the workspace
# txlint scan + oracle.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo clippy --workspace --tests --benches -- -D warnings"
cargo clippy --workspace --tests --benches -- -D warnings

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> txlint --self-test (rules incl. TX010 + JSON schema)"
cargo run -q -p txlint -- --self-test

echo "==> txlint --oracle (paper tables + synthesized matrices)"
cargo run -q -p txlint -- --oracle

echo "==> txlint workspace scan + oracle"
cargo run -q -p txlint --

echo "lint gate: all clean"
