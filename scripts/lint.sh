#!/usr/bin/env bash
# The full lint gate, same as CI: clippy, rustfmt, txlint self-test,
# then the workspace txlint scan + conflict-matrix oracle.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo clippy --workspace --tests --benches -- -D warnings"
cargo clippy --workspace --tests --benches -- -D warnings

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> txlint --self-test"
cargo run -q -p txlint -- --self-test

echo "==> txlint workspace scan + oracle"
cargo run -q -p txlint --

echo "lint gate: all clean"
