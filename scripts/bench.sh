#!/usr/bin/env bash
# Checked-in scaling benches. Each writes its JSON report to the repo root
# (checked in alongside the code so the numbers travel with the PR):
#   BENCH_PR2.json — commit-path scaling (PR 2): sharded per-TVar commit vs
#                    the reconstructed serialized baseline.
#   BENCH_PR3.json — collection hot-path scaling (PR 3): striped semantic
#                    lock tables vs the single-table baseline.
#   BENCH_PR5.json — tracing overhead (PR 5): the conflict-provenance trace
#                    layer off (must match PR4's sharded commit numbers
#                    within host noise) vs on vs on-with-overflowing-rings.
#   BENCH_PR8.json — boosted vs TVar map backends + amortization sweep
#                    (PR 8): the PR 7 uncontended workloads plus read-only
#                    transactions at ops_per_txn 1/16/64 with repeat vs
#                    distinct keys, reporting per-txn open-commit, flattened-
#                    read, stripe-acquisition, and lock-cache counters.
#   BENCH_PR9.json — snapshot vs validated reads (PR 9): the same read-only
#                    workload under atomic_read and atomic at 1/2/4/8
#                    threads, plus the mixed abort-rate-delta cell (size-
#                    changing writer vs whole-map observers). Ceiling-gated:
#                    snapshot_abort_count = 0, snapshot_lock_acquisitions
#                    = 0, snapshot_fallback_rate bounded.
#   BENCH_PR10.json — dimensional metrics overhead (PR 10): disjoint-RMW
#                    ns/txn with metrics off vs on at 1/2/4/8 threads, a
#                    counting-allocator emission loop, and p50/p99 commit
#                    latency per backend (TVar RMW vs boosted map) from the
#                    enabled commit-latency histogram. Ceiling-gated:
#                    metrics_alloc_count = 0 and the summed on/off ratio.
#                    As everywhere in this file: 1-CPU container, ns/op
#                    medians carry ~38% run-to-run noise — counters and
#                    percentile bucket bounds are the stable signals,
#                    wall-clock is context.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo bench -q -p bench --bench commit_scaling >BENCH_PR2.json
cat BENCH_PR2.json

cargo bench -q -p bench --bench collection_scaling >BENCH_PR3.json
cat BENCH_PR3.json

cargo bench -q -p bench --bench trace_overhead >BENCH_PR5.json
cat BENCH_PR5.json

cargo bench -q -p bench --bench boosted_vs_tvar >BENCH_PR8.json
cat BENCH_PR8.json

cargo bench -q -p bench --bench snapshot_reads >BENCH_PR9.json
cat BENCH_PR9.json

cargo bench -q -p bench --bench metrics_overhead >BENCH_PR10.json
cat BENCH_PR10.json

# Counter-based regression gate: the new report's protocol counters may not
# blow past the previous PR's where the two are comparable, and the
# amortization sweep's repeat_* per-txn leaves must stay under their
# absolute ceilings (ns/op is never gated — 1-CPU hosts are too noisy for
# wall-clock gates).
cargo run -q --release -p bench --bin benchdiff -- BENCH_PR7.json BENCH_PR8.json
cargo run -q --release -p bench --bin benchdiff -- BENCH_PR8.json BENCH_PR9.json
cargo run -q --release -p bench --bin benchdiff -- BENCH_PR9.json BENCH_PR10.json

# Smoke the provenance reporter end to end: traced contended-map soak,
# export, re-parse and structurally validate the exported trace. The second
# soak repeats one key per transaction so the txn-local lock cache is
# exercised under tracing and contention.
cargo build -q --release -p bench --bin txtop
./target/release/txtop --soak --threads 4 --txns 300 --export-json target/txtop_trace.json
./target/release/txtop --validate target/txtop_trace.json
./target/release/txtop --soak --threads 4 --txns 300 --repeat-keys --export-json target/txtop_repeat_trace.json
./target/release/txtop --validate target/txtop_repeat_trace.json

# Dimensional metrics end to end: a contended soak under the metrics layer
# with the flight recorder armed (renders the per-class/per-stripe doom-rate
# table and the latency percentiles), then the Prometheus validation pass —
# two cumulative scrapes with soak activity between must parse and stay
# monotone series-by-series.
./target/release/txtop --metrics --threads 4 --txns 300
./target/release/txtop --metrics --validate --threads 2 --txns 200
