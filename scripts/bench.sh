#!/usr/bin/env bash
# Commit-path scaling bench (PR 2): sharded per-TVar commit vs the
# reconstructed serialized baseline. Writes the JSON report to
# BENCH_PR2.json at the repo root (checked in alongside the code so the
# numbers travel with the PR).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo bench -q -p bench --bench commit_scaling >BENCH_PR2.json
cat BENCH_PR2.json
