#!/usr/bin/env bash
# Checked-in scaling benches. Each writes its JSON report to the repo root
# (checked in alongside the code so the numbers travel with the PR):
#   BENCH_PR2.json — commit-path scaling (PR 2): sharded per-TVar commit vs
#                    the reconstructed serialized baseline.
#   BENCH_PR3.json — collection hot-path scaling (PR 3): striped semantic
#                    lock tables vs the single-table baseline.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo bench -q -p bench --bench commit_scaling >BENCH_PR2.json
cat BENCH_PR2.json

cargo bench -q -p bench --bench collection_scaling >BENCH_PR3.json
cat BENCH_PR3.json
