//! Concurrency stress for the substrates: the red-black tree keeps its
//! invariants under real-thread transactional mutation, and the segmented
//! map linearizes per segment.

use std::sync::Arc;
use stm::atomic;
use txstruct::{SegmentedTxHashMap, TxTreeMap, TxVecDeque};

#[test]
fn treemap_invariants_survive_concurrent_mutation() {
    let t: Arc<TxTreeMap<u64, u64>> = Arc::new(TxTreeMap::new());
    std::thread::scope(|s| {
        for w in 0..4u64 {
            let t = t.clone();
            s.spawn(move || {
                let mut x = 0x1234_5678u64 ^ (w << 8);
                for _ in 0..250 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let k = x % 96;
                    atomic(|tx| {
                        if x.is_multiple_of(3) {
                            t.remove(tx, &k);
                        } else {
                            t.insert(tx, k, x);
                        }
                    });
                }
            });
        }
    });
    atomic(|tx| t.check_invariants(tx)).expect("red-black invariants broken by concurrency");
    // Ordered iteration is still sorted and duplicate-free.
    let entries = atomic(|tx| t.entries(tx));
    let keys: Vec<u64> = entries.iter().map(|(k, _)| *k).collect();
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(keys, sorted);
    assert_eq!(atomic(|tx| t.len(tx)), keys.len());
}

#[test]
fn treemap_multi_op_transactions_are_atomic() {
    // Each transaction inserts a pair and removes a pair: the tree size is
    // invariant at every commit point.
    let t: Arc<TxTreeMap<u64, u64>> = Arc::new(TxTreeMap::new());
    atomic(|tx| {
        for k in 0..40 {
            t.insert(tx, k, k);
        }
    });
    std::thread::scope(|s| {
        for w in 0..3u64 {
            let t = t.clone();
            s.spawn(move || {
                for i in 0..150u64 {
                    let base = 1000 + w * 10_000 + i;
                    atomic(|tx| {
                        t.insert(tx, base, i);
                        t.insert(tx, base + 5000, i);
                        t.remove(tx, &base);
                        t.remove(tx, &(base + 5000));
                    });
                }
            });
        }
    });
    assert_eq!(
        atomic(|tx| t.len(tx)),
        40,
        "net-zero transactions leaked size"
    );
    atomic(|tx| t.check_invariants(tx)).unwrap();
}

#[test]
fn segmented_map_concurrent_counters_are_exact() {
    let m: Arc<SegmentedTxHashMap<u64, u64>> = Arc::new(SegmentedTxHashMap::new(16));
    let keys = 32u64;
    atomic(|tx| {
        for k in 0..keys {
            m.insert(tx, k, 0);
        }
    });
    std::thread::scope(|s| {
        for w in 0..4u64 {
            let m = m.clone();
            s.spawn(move || {
                for i in 0..300u64 {
                    let k = (w * 300 + i) % keys;
                    atomic(|tx| {
                        let v = m.get(tx, &k).unwrap();
                        m.insert(tx, k, v + 1);
                    });
                }
            });
        }
    });
    let total: u64 = atomic(|tx| m.entries(tx).into_iter().map(|(_, v)| v).sum());
    assert_eq!(total, 4 * 300, "lost updates in segmented map");
}

#[test]
fn deque_concurrent_producers_consumers_conserve() {
    let q: Arc<TxVecDeque<u64>> = Arc::new(TxVecDeque::new());
    let consumed = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let n = 500u64;
    std::thread::scope(|s| {
        for p in 0..2u64 {
            let q = q.clone();
            s.spawn(move || {
                for i in 0..n / 2 {
                    let item = p * (n / 2) + i;
                    atomic(|tx| q.push_back(tx, item));
                }
            });
        }
        for _ in 0..2 {
            let q = q.clone();
            let consumed = consumed.clone();
            s.spawn(move || {
                let mut idle = 0;
                while idle < 300 {
                    match atomic(|tx| q.pop_front(tx)) {
                        Some(x) => {
                            consumed.lock().push(x);
                            idle = 0;
                        }
                        None => {
                            idle += 1;
                            std::thread::yield_now();
                        }
                    }
                }
            });
        }
    });
    let mut got = consumed.lock().clone();
    got.extend(atomic(|tx| q.to_vec(tx)));
    got.sort_unstable();
    let want: Vec<u64> = (0..n).collect();
    assert_eq!(got, want, "deque lost or duplicated items");
}
