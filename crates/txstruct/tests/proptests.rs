//! Property-based model tests: the transactional structures must behave
//! exactly like their `std` models under arbitrary operation sequences, and
//! the red–black tree must preserve its invariants at every step.

use proptest::prelude::*;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::ops::Bound;
use stm::atomic;
use txstruct::{TxHashMap, TxTreeMap, TxVecDeque};

#[derive(Debug, Clone)]
enum MapOp {
    Insert(u16, u32),
    Remove(u16),
    Get(u16),
    Len,
    Entries,
}

fn map_op() -> impl Strategy<Value = MapOp> {
    prop_oneof![
        (any::<u16>(), any::<u32>()).prop_map(|(k, v)| MapOp::Insert(k % 128, v)),
        any::<u16>().prop_map(|k| MapOp::Remove(k % 128)),
        any::<u16>().prop_map(|k| MapOp::Get(k % 128)),
        Just(MapOp::Len),
        Just(MapOp::Entries),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tx_hashmap_matches_std_hashmap(ops in prop::collection::vec(map_op(), 1..200)) {
        let sut: TxHashMap<u16, u32> = TxHashMap::with_capacity(4); // force resizes
        let mut model: HashMap<u16, u32> = HashMap::new();
        for op in ops {
            match op {
                MapOp::Insert(k, v) => {
                    let got = atomic(|tx| sut.insert(tx, k, v));
                    prop_assert_eq!(got, model.insert(k, v));
                }
                MapOp::Remove(k) => {
                    let got = atomic(|tx| sut.remove(tx, &k));
                    prop_assert_eq!(got, model.remove(&k));
                }
                MapOp::Get(k) => {
                    let got = atomic(|tx| sut.get(tx, &k));
                    prop_assert_eq!(got, model.get(&k).copied());
                }
                MapOp::Len => {
                    prop_assert_eq!(atomic(|tx| sut.len(tx)), model.len());
                }
                MapOp::Entries => {
                    let mut got = atomic(|tx| sut.entries(tx));
                    got.sort_unstable();
                    let mut want: Vec<(u16, u32)> = model.iter().map(|(k, v)| (*k, *v)).collect();
                    want.sort_unstable();
                    prop_assert_eq!(got, want);
                }
            }
        }
    }

    #[test]
    fn tx_treemap_matches_btreemap(ops in prop::collection::vec(map_op(), 1..200)) {
        let sut: TxTreeMap<u16, u32> = TxTreeMap::new();
        let mut model: BTreeMap<u16, u32> = BTreeMap::new();
        for op in ops {
            match op {
                MapOp::Insert(k, v) => {
                    let got = atomic(|tx| sut.insert(tx, k, v));
                    prop_assert_eq!(got, model.insert(k, v));
                }
                MapOp::Remove(k) => {
                    let got = atomic(|tx| sut.remove(tx, &k));
                    prop_assert_eq!(got, model.remove(&k));
                }
                MapOp::Get(k) => {
                    let got = atomic(|tx| sut.get(tx, &k));
                    prop_assert_eq!(got, model.get(&k).copied());
                }
                MapOp::Len => {
                    prop_assert_eq!(atomic(|tx| sut.len(tx)), model.len());
                }
                MapOp::Entries => {
                    let got = atomic(|tx| sut.entries(tx));
                    let want: Vec<(u16, u32)> = model.iter().map(|(k, v)| (*k, *v)).collect();
                    prop_assert_eq!(got, want);
                }
            }
            atomic(|tx| sut.check_invariants(tx)).map_err(TestCaseError::fail)?;
        }
        // Ordered navigation agrees with the model.
        prop_assert_eq!(
            atomic(|tx| sut.first_key(tx)),
            model.keys().next().copied()
        );
        prop_assert_eq!(
            atomic(|tx| sut.last_key(tx)),
            model.keys().next_back().copied()
        );
    }

    #[test]
    fn tx_treemap_ranges_match_btreemap(
        keys in prop::collection::btree_set(any::<u16>(), 0..60),
        lo in any::<u16>(),
        hi in any::<u16>(),
    ) {
        let (lo, hi) = (lo.min(hi), lo.max(hi));
        let sut: TxTreeMap<u16, u16> = TxTreeMap::new();
        let mut model = BTreeMap::new();
        for &k in &keys {
            atomic(|tx| sut.insert(tx, k, k));
            model.insert(k, k);
        }
        let got = atomic(|tx| sut.range_entries(tx, Bound::Included(&lo), Bound::Excluded(&hi)));
        let want: Vec<(u16, u16)> = model
            .range((Bound::Included(lo), Bound::Excluded(hi)))
            .map(|(k, v)| (*k, *v))
            .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn tx_deque_matches_vecdeque(ops in prop::collection::vec(any::<Option<u8>>(), 1..100)) {
        let sut: TxVecDeque<u8> = TxVecDeque::new();
        let mut model: VecDeque<u8> = VecDeque::new();
        for op in ops {
            match op {
                Some(x) => {
                    atomic(|tx| sut.push_back(tx, x));
                    model.push_back(x);
                }
                None => {
                    let got = atomic(|tx| sut.pop_front(tx));
                    prop_assert_eq!(got, model.pop_front());
                }
            }
            prop_assert_eq!(atomic(|tx| sut.len(tx)), model.len());
            prop_assert_eq!(atomic(|tx| sut.peek_front(tx)), model.front().copied());
        }
    }

    #[test]
    fn treemap_all_ops_in_one_txn(ops in prop::collection::vec(map_op(), 1..100)) {
        // Whole sequence inside a single transaction must also match.
        let sut: TxTreeMap<u16, u32> = TxTreeMap::new();
        let mut model: BTreeMap<u16, u32> = BTreeMap::new();
        let final_entries = atomic(|tx| {
            // Rebuild the model each attempt for re-execution safety.
            model = BTreeMap::new();
            for op in &ops {
                match *op {
                    MapOp::Insert(k, v) => {
                        assert_eq!(sut.insert(tx, k, v), model.insert(k, v));
                    }
                    MapOp::Remove(k) => {
                        assert_eq!(sut.remove(tx, &k), model.remove(&k));
                    }
                    MapOp::Get(k) => {
                        assert_eq!(sut.get(tx, &k), model.get(&k).copied());
                    }
                    MapOp::Len => assert_eq!(sut.len(tx), model.len()),
                    MapOp::Entries => {}
                }
            }
            sut.check_invariants(tx).unwrap();
            sut.entries(tx)
        });
        let want: Vec<(u16, u32)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(final_entries, want);
    }
}

#[test]
fn hashmap_concurrent_mixed_workload_linearizes() {
    // Disjoint key ranges per thread plus a shared contended range: at the
    // end every disjoint key must reflect its last write, and the map's size
    // must equal the union of all present keys.
    let sut: std::sync::Arc<TxHashMap<u32, u32>> = std::sync::Arc::new(TxHashMap::new());
    std::thread::scope(|s| {
        for t in 0..4u32 {
            let sut = sut.clone();
            s.spawn(move || {
                for i in 0..300u32 {
                    let private = 1000 * (t + 1) + (i % 50);
                    let shared = i % 10;
                    atomic(|tx| {
                        sut.insert(tx, private, i);
                        if i % 3 == 0 {
                            sut.remove(tx, &shared);
                        } else {
                            sut.insert(tx, shared, i);
                        }
                    });
                }
            });
        }
    });
    let entries = atomic(|tx| sut.entries(tx));
    let len = atomic(|tx| sut.len(tx));
    assert_eq!(entries.len(), len, "size field out of sync with contents");
    for t in 0..4u32 {
        for k in 0..50u32 {
            let key = 1000 * (t + 1) + k;
            let v = entries.iter().find(|(ek, _)| *ek == key).map(|(_, v)| *v);
            assert_eq!(v, Some(250 + k), "private key {key} has wrong final value");
        }
    }
}
