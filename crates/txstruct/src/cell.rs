//! Transactional scalar cells and counters.

use stm::{TVar, Txn};

/// A single transactional value — a name-level analog of a mutable field in
/// a Java object accessed inside transactions.
pub struct TxCell<T> {
    var: TVar<T>,
}

impl<T> Clone for TxCell<T> {
    fn clone(&self) -> Self {
        TxCell {
            var: self.var.clone(),
        }
    }
}

impl<T: Clone + Send + Sync + 'static> TxCell<T> {
    /// Create a cell with an initial value.
    pub fn new(value: T) -> Self {
        TxCell {
            var: TVar::new(value),
        }
    }

    /// Transactional read.
    pub fn get(&self, tx: &mut Txn) -> T {
        self.var.read(tx)
    }

    /// Transactional write.
    pub fn set(&self, tx: &mut Txn, value: T) {
        self.var.write(tx, value)
    }

    /// Committed value, outside any transaction.
    pub fn get_committed(&self) -> T {
        self.var.read_committed()
    }

    /// The underlying variable (for read/write-set introspection in tests).
    pub fn var(&self) -> &TVar<T> {
        &self.var
    }
}

/// A shared integer counter.
///
/// Used two ways in the reproduction, mirroring paper §6.3:
///
/// * [`TxCounter::add`] — a plain transactional update. Inside a long
///   transaction this makes the counter a serialization point: every two
///   updating transactions conflict (the "Atomos Baseline" behaviour).
/// * [`TxCounter::add_open`] / [`TxCounter::next_uid`] — the update runs in
///   an **open-nested** transaction, so the parent carries no dependency on
///   the counter. This trades serializability for performance: an aborted
///   parent leaves a gap in the sequence, which is exactly the UID-generator
///   isolation/serializability trade the paper (and Gray & Reuter) discuss.
#[derive(Clone, Debug)]
pub struct TxCounter {
    var: TVar<i64>,
}

impl Default for TxCounter {
    fn default() -> Self {
        Self::new(0)
    }
}

impl TxCounter {
    /// Create a counter with an initial value.
    pub fn new(initial: i64) -> Self {
        TxCounter {
            var: TVar::new(initial),
        }
    }

    /// Transactional read (creates a dependency on the counter).
    pub fn get(&self, tx: &mut Txn) -> i64 {
        self.var.read(tx)
    }

    /// Transactional add; returns the pre-add value. Fully serializable but
    /// a conflict hotspot inside long transactions.
    pub fn add(&self, tx: &mut Txn, delta: i64) -> i64 {
        let v = self.var.read(tx);
        self.var.write(tx, v + delta);
        v
    }

    /// Open-nested add; returns the pre-add value. The increment commits
    /// immediately and the parent keeps **no dependency** on the counter.
    /// If the parent later aborts, the increment persists (a gap).
    pub fn add_open(&self, tx: &mut Txn, delta: i64) -> i64 {
        let var = self.var.clone();
        tx.open(move |otx| {
            let v = var.read(otx);
            var.write(otx, v + delta);
            v
        })
    }

    /// Open-nested add with a compensating abort handler: if the parent
    /// aborts, the delta is subtracted back. Restores the counter *value*
    /// on abort (but not the serialization order — intermediate values were
    /// already observable, the structured isolation reduction of §3.3).
    pub fn add_open_compensated(&self, tx: &mut Txn, delta: i64) -> i64 {
        let prev = self.add_open(tx, delta);
        let var = self.var.clone();
        tx.on_abort(move |htx| {
            let v = var.read(htx);
            var.write(htx, v - delta);
        });
        prev
    }

    /// Draw a fresh unique id (open-nested increment). Aborted parents leave
    /// gaps; ids are never reused.
    pub fn next_uid(&self, tx: &mut Txn) -> i64 {
        self.add_open(tx, 1)
    }

    /// Committed value, outside any transaction.
    pub fn get_committed(&self) -> i64 {
        self.var.read_committed()
    }

    /// The underlying variable (for read/write-set introspection in tests).
    pub fn var(&self) -> &TVar<i64> {
        &self.var
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use stm::atomic;

    #[test]
    fn cell_roundtrip() {
        let c = TxCell::new("a".to_string());
        atomic(|tx| c.set(tx, "b".to_string()));
        assert_eq!(c.get_committed(), "b");
        assert_eq!(atomic(|tx| c.get(tx)), "b");
    }

    #[test]
    fn counter_add_returns_previous() {
        let c = TxCounter::new(10);
        let prev = atomic(|tx| c.add(tx, 5));
        assert_eq!(prev, 10);
        assert_eq!(c.get_committed(), 15);
    }

    #[test]
    fn open_add_survives_parent_abort() {
        let c = TxCounter::new(0);
        let first = AtomicU32::new(1);
        atomic(|tx| {
            c.add_open(tx, 1);
            if first.swap(0, Ordering::SeqCst) == 1 {
                stm::abort_and_retry();
            }
        });
        // Two attempts, each bumped the counter: a gap remains.
        assert_eq!(c.get_committed(), 2);
    }

    #[test]
    fn compensated_open_add_rolls_back_value() {
        let c = TxCounter::new(0);
        let first = AtomicU32::new(1);
        atomic(|tx| {
            c.add_open_compensated(tx, 1);
            if first.swap(0, Ordering::SeqCst) == 1 {
                stm::abort_and_retry();
            }
        });
        assert_eq!(c.get_committed(), 1);
    }

    #[test]
    fn uids_unique_under_concurrency() {
        let c = std::sync::Arc::new(TxCounter::new(0));
        let ids = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                let ids = ids.clone();
                s.spawn(move || {
                    for _ in 0..200 {
                        let id = atomic(|tx| c.next_uid(tx));
                        ids.lock().push(id);
                    }
                });
            }
        });
        let mut v = ids.lock().clone();
        v.sort_unstable();
        v.dedup();
        assert_eq!(v.len(), 800, "duplicate UIDs issued");
    }
}
