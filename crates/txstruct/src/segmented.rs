//! A segmented transactional hash map, modeled on the original
//! `java.util.concurrent.ConcurrentHashMap` design.
//!
//! The paper (§2.4) discusses this structure as the conventional remedy for
//! size-field contention: N independent segments, each with its own table
//! and its own size counter, selected by the high bits of the hash. It then
//! argues the remedy is only statistical — "the more updates to the hash
//! table, the more segments likely to be touched. If two long-running
//! transactions perform a number of insert or remove operations on different
//! keys, there is a large probability that at least one key from each
//! transaction will end up in the same segment."
//!
//! This type exists to reproduce that argument quantitatively (the
//! `ablation_segmented` bench): it genuinely spreads single-op transactions,
//! and genuinely fails for multi-op long transactions.

use crate::hashmap::TxHashMap;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use stm::Txn;

/// A hash map split into independently synchronized segments.
pub struct SegmentedTxHashMap<K, V> {
    segments: Vec<TxHashMap<K, V>>,
    shift: u32,
}

impl<K, V> Clone for SegmentedTxHashMap<K, V> {
    fn clone(&self) -> Self {
        SegmentedTxHashMap {
            segments: self.segments.clone(),
            shift: self.shift,
        }
    }
}

fn spread<K: Hash + ?Sized>(key: &K) -> u64 {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

impl<K, V> SegmentedTxHashMap<K, V>
where
    K: Clone + Eq + Hash + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// Create a map with `segments` independent segments (rounded up to a
    /// power of two; ConcurrentHashMap's default level is 16).
    pub fn new(segments: usize) -> Self {
        let n = segments.next_power_of_two().max(1);
        SegmentedTxHashMap {
            segments: (0..n).map(|_| TxHashMap::new()).collect(),
            shift: 64 - n.trailing_zeros(),
        }
    }

    /// Create with per-segment initial capacity.
    pub fn with_capacity(segments: usize, capacity_per_segment: usize) -> Self {
        let n = segments.next_power_of_two().max(1);
        SegmentedTxHashMap {
            segments: (0..n)
                .map(|_| TxHashMap::with_capacity(capacity_per_segment))
                .collect(),
            shift: 64 - n.trailing_zeros(),
        }
    }

    /// Number of segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    fn segment_for(&self, key: &K) -> &TxHashMap<K, V> {
        // High bits select the segment, low bits the bucket within it.
        let idx = if self.segments.len() == 1 {
            0
        } else {
            (spread(key) >> self.shift) as usize
        };
        &self.segments[idx]
    }

    /// Look up a key (touches one segment).
    pub fn get(&self, tx: &mut Txn, key: &K) -> Option<V> {
        self.segment_for(key).get(tx, key)
    }

    /// Whether a key is present.
    pub fn contains_key(&self, tx: &mut Txn, key: &K) -> bool {
        self.segment_for(key).contains_key(tx, key)
    }

    /// Insert or replace (touches one segment's size field).
    pub fn insert(&self, tx: &mut Txn, key: K, value: V) -> Option<V> {
        self.segment_for(&key).insert(tx, key, value)
    }

    /// Remove a key.
    pub fn remove(&self, tx: &mut Txn, key: &K) -> Option<V> {
        self.segment_for(key).remove(tx, key)
    }

    /// Total size. Like `ConcurrentHashMap.size()`, this must visit every
    /// segment — a full-map dependency.
    pub fn len(&self, tx: &mut Txn) -> usize {
        self.segments.iter().map(|s| s.len(tx)).sum()
    }

    /// Whether the map is empty (visits every segment).
    pub fn is_empty(&self, tx: &mut Txn) -> bool {
        self.len(tx) == 0
    }

    /// Snapshot all entries.
    pub fn entries(&self, tx: &mut Txn) -> Vec<(K, V)> {
        let mut out = Vec::new();
        for s in &self.segments {
            out.extend(s.entries(tx));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm::atomic;

    #[test]
    fn routes_by_segment_and_finds_keys() {
        let m: SegmentedTxHashMap<u32, u32> = SegmentedTxHashMap::new(8);
        atomic(|tx| {
            for k in 0..100 {
                m.insert(tx, k, k + 1);
            }
        });
        atomic(|tx| {
            for k in 0..100 {
                assert_eq!(m.get(tx, &k), Some(k + 1));
            }
            assert_eq!(m.len(tx), 100);
        });
    }

    #[test]
    fn remove_updates_one_segment() {
        let m: SegmentedTxHashMap<u32, u32> = SegmentedTxHashMap::new(4);
        atomic(|tx| {
            m.insert(tx, 1, 1);
            m.insert(tx, 2, 2);
        });
        atomic(|tx| {
            assert_eq!(m.remove(tx, &1), Some(1));
            assert_eq!(m.remove(tx, &1), None);
            assert_eq!(m.len(tx), 1);
        });
    }

    #[test]
    fn single_segment_degenerates_to_plain_map() {
        let m: SegmentedTxHashMap<u32, u32> = SegmentedTxHashMap::new(1);
        assert_eq!(m.segment_count(), 1);
        atomic(|tx| {
            m.insert(tx, 42, 0);
            assert!(m.contains_key(tx, &42));
        });
    }

    #[test]
    fn keys_spread_across_segments() {
        let m: SegmentedTxHashMap<u64, ()> = SegmentedTxHashMap::new(16);
        // Count distinct segments touched by 64 keys: with a decent hash it
        // must be well above 1.
        let mut touched = std::collections::HashSet::new();
        for k in 0..64u64 {
            let seg = m.segment_for(&k) as *const _ as usize;
            touched.insert(seg);
        }
        assert!(
            touched.len() >= 8,
            "only {} segments touched",
            touched.len()
        );
    }
}
