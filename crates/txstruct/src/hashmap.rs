//! A transactional chained hash map modeled on `java.util.HashMap`.
//!
//! Faithfully reproduces the conflict artifacts the paper attributes to a
//! plain hash map used inside transactions (§2.4):
//!
//! * a shared **header** holding the `table` reference and the `size` field.
//!   In the paper's HTM, conflicts are detected at cache-line granularity
//!   and `java.util.HashMap`'s `table`, `size`, `modCount` and `threshold`
//!   fields share the object's header line — so every lookup (which reads
//!   `table`) conflicts with every committing insert/remove (which writes
//!   `size`/`modCount`). The header here is a single [`stm::TVar`] for the
//!   same reason: "semantically non-conflicting inserts of new keys will
//!   cause a memory-level data dependency as both inserts will try and
//!   increment the internal size field";
//! * per-bucket state, so two keys hashing to the same bucket conflict;
//! * load-factor resizing that rewrites the whole table inside whichever
//!   transaction happens to trip it.
//!
//! The hash function is deterministic (`DefaultHasher` with the default
//! keys) so simulator runs are reproducible.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use stm::{TVar, Txn};

type Bucket<K, V> = Arc<Vec<(K, V)>>;
type Table<K, V> = Arc<Vec<TVar<Bucket<K, V>>>>;

/// The object-header line: table pointer + size, one conflict unit.
struct Header<K, V> {
    table: Table<K, V>,
    size: usize,
}

impl<K, V> Clone for Header<K, V> {
    fn clone(&self) -> Self {
        Header {
            table: self.table.clone(),
            size: self.size,
        }
    }
}

/// Default number of buckets (mirrors `java.util.HashMap`).
const DEFAULT_CAPACITY: usize = 16;
/// Resize when `size > capacity * 3/4` (Java's default load factor).
const LOAD_FACTOR_NUM: usize = 3;
const LOAD_FACTOR_DEN: usize = 4;

/// A transactional hash map. All operations must run inside a transaction
/// (or a commit/abort handler, where they apply directly).
pub struct TxHashMap<K, V> {
    header: TVar<Header<K, V>>,
}

impl<K, V> Clone for TxHashMap<K, V> {
    fn clone(&self) -> Self {
        TxHashMap {
            header: self.header.clone(),
        }
    }
}

fn hash_of<K: Hash + ?Sized>(key: &K) -> u64 {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

fn new_table<K, V>(capacity: usize) -> Table<K, V>
where
    K: Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    Arc::new(
        (0..capacity.max(1))
            .map(|_| TVar::new(Arc::new(Vec::new())))
            .collect(),
    )
}

impl<K, V> TxHashMap<K, V>
where
    K: Clone + Eq + Hash + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// Create an empty map with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// Create an empty map with at least `capacity` buckets (rounded up to a
    /// power of two). Pre-sizing avoids resize storms in benchmarks.
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two();
        TxHashMap {
            header: TVar::new(Header {
                table: new_table(cap),
                size: 0,
            }),
        }
    }

    /// Number of entries (reads the shared header — the headline conflict
    /// artifact).
    pub fn len(&self, tx: &mut Txn) -> usize {
        self.header.read(tx).size
    }

    /// Whether the map is empty (derived from `size`, as in Java).
    pub fn is_empty(&self, tx: &mut Txn) -> bool {
        self.len(tx) == 0
    }

    /// Look up a key. Reads the header (table pointer) plus one bucket.
    pub fn get(&self, tx: &mut Txn, key: &K) -> Option<V> {
        let h = self.header.read(tx);
        let idx = (hash_of(key) as usize) & (h.table.len() - 1);
        let bucket = h.table[idx].read(tx);
        bucket
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
    }

    /// Whether a key is present.
    pub fn contains_key(&self, tx: &mut Txn, key: &K) -> bool {
        self.get(tx, key).is_some()
    }

    /// Insert or replace; returns the previous value. A new key writes the
    /// header (size increment) — conflicting with every concurrent reader
    /// of the map, as in the paper.
    pub fn insert(&self, tx: &mut Txn, key: K, value: V) -> Option<V> {
        let h = self.header.read(tx);
        let idx = (hash_of(&key) as usize) & (h.table.len() - 1);
        let bucket = h.table[idx].read(tx);
        let mut entries: Vec<(K, V)> = (*bucket).clone();
        let prev = if let Some(slot) = entries.iter_mut().find(|(k, _)| *k == key) {
            Some(std::mem::replace(&mut slot.1, value))
        } else {
            entries.push((key, value));
            None
        };
        h.table[idx].write(tx, Arc::new(entries));
        if prev.is_none() {
            let size = h.size + 1;
            if size * LOAD_FACTOR_DEN > h.table.len() * LOAD_FACTOR_NUM {
                self.resize(tx, &h.table, size, h.table.len() * 2);
            } else {
                self.header.write(
                    tx,
                    Header {
                        table: h.table.clone(),
                        size,
                    },
                );
            }
        }
        prev
    }

    /// Remove a key; returns the previous value.
    pub fn remove(&self, tx: &mut Txn, key: &K) -> Option<V> {
        let h = self.header.read(tx);
        let idx = (hash_of(key) as usize) & (h.table.len() - 1);
        let bucket = h.table[idx].read(tx);
        let pos = bucket.iter().position(|(k, _)| k == key)?;
        let mut entries: Vec<(K, V)> = (*bucket).clone();
        let (_, v) = entries.swap_remove(pos);
        h.table[idx].write(tx, Arc::new(entries));
        self.header.write(
            tx,
            Header {
                table: h.table.clone(),
                size: h.size - 1,
            },
        );
        Some(v)
    }

    /// Rehash into a table of `new_cap` buckets. Touches every bucket — a
    /// deliberate conflict storm, as in any in-place hash map.
    fn resize(&self, tx: &mut Txn, old: &Table<K, V>, size: usize, new_cap: usize) {
        let mut fresh = vec![Vec::new(); new_cap];
        for b in old.iter() {
            for (k, v) in b.read(tx).iter() {
                let idx = (hash_of(k) as usize) & (new_cap - 1);
                fresh[idx].push((k.clone(), v.clone()));
            }
        }
        let table: Table<K, V> =
            Arc::new(fresh.into_iter().map(|b| TVar::new(Arc::new(b))).collect());
        self.header.write(tx, Header { table, size });
    }

    /// Snapshot all entries (bucket order; not sorted).
    pub fn entries(&self, tx: &mut Txn) -> Vec<(K, V)> {
        let h = self.header.read(tx);
        let mut out = Vec::with_capacity(h.size);
        for b in h.table.iter() {
            out.extend(b.read(tx).iter().cloned());
        }
        out
    }

    /// Remove all entries.
    pub fn clear(&self, tx: &mut Txn) {
        let h = self.header.read(tx);
        for b in h.table.iter() {
            if !b.read(tx).is_empty() {
                b.write(tx, Arc::new(Vec::new()));
            }
        }
        self.header.write(
            tx,
            Header {
                table: h.table.clone(),
                size: 0,
            },
        );
    }

    /// Id of the header variable (the "size field" conflict unit), for
    /// read/write-set introspection in tests and benches.
    pub fn header_var_id(&self) -> stm::VarId {
        self.header.id()
    }

    /// Label the header and every current bucket for conflict attribution
    /// (buckets share one label so attribution reports aggregate them).
    /// Buckets created by later resizes are not labeled.
    pub fn set_label(&self, label: &str) {
        stm::label_var(self.header.id(), label.to_string());
        let h = self.header.read_committed();
        for b in h.table.iter() {
            stm::label_var(b.id(), format!("{label}.buckets"));
        }
    }
}

impl<K, V> Default for TxHashMap<K, V>
where
    K: Clone + Eq + Hash + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm::atomic;

    #[test]
    fn insert_get_remove_roundtrip() {
        let m: TxHashMap<u32, String> = TxHashMap::new();
        atomic(|tx| {
            assert_eq!(m.insert(tx, 1, "one".into()), None);
            assert_eq!(m.insert(tx, 2, "two".into()), None);
            assert_eq!(m.insert(tx, 1, "uno".into()), Some("one".into()));
            assert_eq!(m.get(tx, &1), Some("uno".into()));
            assert_eq!(m.len(tx), 2);
            assert_eq!(m.remove(tx, &1), Some("uno".into()));
            assert_eq!(m.get(tx, &1), None);
            assert_eq!(m.len(tx), 1);
        });
    }

    #[test]
    fn survives_resize() {
        let m: TxHashMap<u32, u32> = TxHashMap::with_capacity(2);
        atomic(|tx| {
            for i in 0..100 {
                m.insert(tx, i, i * 10);
            }
        });
        atomic(|tx| {
            assert_eq!(m.len(tx), 100);
            for i in 0..100 {
                assert_eq!(m.get(tx, &i), Some(i * 10), "key {i} lost in resize");
            }
        });
    }

    #[test]
    fn entries_sees_all() {
        let m: TxHashMap<u32, u32> = TxHashMap::new();
        atomic(|tx| {
            for i in 0..20 {
                m.insert(tx, i, i);
            }
        });
        let mut e = atomic(|tx| m.entries(tx));
        e.sort_unstable();
        assert_eq!(e.len(), 20);
        assert_eq!(e[0], (0, 0));
        assert_eq!(e[19], (19, 19));
    }

    #[test]
    fn clear_empties() {
        let m: TxHashMap<u32, u32> = TxHashMap::new();
        atomic(|tx| {
            m.insert(tx, 1, 1);
            m.insert(tx, 2, 2);
            m.clear(tx);
            assert!(m.is_empty(tx));
            assert_eq!(m.get(tx, &1), None);
        });
    }

    #[test]
    fn concurrent_disjoint_inserts_preserve_all() {
        let m: std::sync::Arc<TxHashMap<u64, u64>> =
            std::sync::Arc::new(TxHashMap::with_capacity(1024));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let m = m.clone();
                s.spawn(move || {
                    for i in 0..200u64 {
                        let k = t * 1000 + i;
                        atomic(|tx| {
                            m.insert(tx, k, k);
                        });
                    }
                });
            }
        });
        atomic(|tx| {
            assert_eq!(m.len(tx), 800);
        });
    }

    #[test]
    fn buffered_writes_invisible_until_commit() {
        let m: std::sync::Arc<TxHashMap<u32, u32>> = std::sync::Arc::new(TxHashMap::new());
        let m2 = m.clone();
        atomic(|tx| {
            m.insert(tx, 7, 7);
            // Another (committed-state) observer does not see it yet.
            let outside = std::thread::spawn({
                let m3 = m2.clone();
                move || atomic(|tx| m3.get(tx, &7))
            })
            .join()
            .unwrap();
            assert_eq!(outside, None);
        });
        assert_eq!(atomic(|tx| m.get(tx, &7)), Some(7));
    }

    #[test]
    fn lookups_conflict_with_inserts_at_header_granularity() {
        // The paper's Figure-1 artifact, as a read/write-set assertion: a
        // get's read set and an insert's write set share the header var.
        let m: TxHashMap<u32, u32> = TxHashMap::with_capacity(1024);
        atomic(|tx| {
            m.insert(tx, 1, 1);
        });
        let m1 = m.clone();
        let (_, reader) = stm::speculate(
            move |tx| {
                m1.get(tx, &500);
            },
            0,
        )
        .unwrap();
        let m2 = m.clone();
        let (_, writer) = stm::speculate(
            move |tx| {
                m2.insert(tx, 999, 9);
            },
            0,
        )
        .unwrap();
        let header = m.header_var_id();
        assert!(reader.read_set().contains(&header));
        assert!(writer.write_set().contains(&header));
        reader.abort(stm::AbortCause::Explicit);
        writer.abort(stm::AbortCause::Explicit);
    }
}
