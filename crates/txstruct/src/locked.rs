//! Coarse-grained-lock collections — the "Java" baselines.
//!
//! The paper's Java series use `synchronized` critical sections around plain
//! `java.util` collections. These wrappers reproduce that: each operation
//! takes the collection's mutex for just the duration of the operation, and
//! [`LockHashMap::with_lock`]-style compound sections model holding the lock
//! across several operations (the Figure-3 "coarse grained lock" baseline).

use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::hash::Hash;
use std::ops::Bound;
use std::sync::Arc;

/// A `Mutex<HashMap>` with per-operation locking, standing in for a
/// synchronized `java.util.HashMap`.
pub struct LockHashMap<K, V> {
    inner: Arc<Mutex<HashMap<K, V>>>,
}

impl<K, V> Clone for LockHashMap<K, V> {
    fn clone(&self) -> Self {
        LockHashMap {
            inner: self.inner.clone(),
        }
    }
}

impl<K: Eq + Hash + Clone, V: Clone> LockHashMap<K, V> {
    /// Create an empty map.
    pub fn new() -> Self {
        LockHashMap {
            inner: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// Look up a key (one short critical section).
    pub fn get(&self, key: &K) -> Option<V> {
        self.inner.lock().get(key).cloned()
    }

    /// Insert or replace.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        self.inner.lock().insert(key, value)
    }

    /// Remove a key.
    pub fn remove(&self, key: &K) -> Option<V> {
        self.inner.lock().remove(key)
    }

    /// Whether a key is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.inner.lock().contains_key(key)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Run a compound operation while holding the lock — the coarse-grained
    /// composition idiom of Figure 3.
    pub fn with_lock<T>(&self, f: impl FnOnce(&mut HashMap<K, V>) -> T) -> T {
        f(&mut self.inner.lock())
    }
}

impl<K: Eq + Hash + Clone, V: Clone> Default for LockHashMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

/// A `Mutex<BTreeMap>` standing in for a synchronized `java.util.TreeMap`.
pub struct LockTreeMap<K, V> {
    inner: Arc<Mutex<BTreeMap<K, V>>>,
}

impl<K, V> Clone for LockTreeMap<K, V> {
    fn clone(&self) -> Self {
        LockTreeMap {
            inner: self.inner.clone(),
        }
    }
}

impl<K: Ord + Clone, V: Clone> LockTreeMap<K, V> {
    /// Create an empty map.
    pub fn new() -> Self {
        LockTreeMap {
            inner: Arc::new(Mutex::new(BTreeMap::new())),
        }
    }

    /// Look up a key.
    pub fn get(&self, key: &K) -> Option<V> {
        self.inner.lock().get(key).cloned()
    }

    /// Insert or replace.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        self.inner.lock().insert(key, value)
    }

    /// Remove a key.
    pub fn remove(&self, key: &K) -> Option<V> {
        self.inner.lock().remove(key)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Smallest key.
    pub fn first_key(&self) -> Option<K> {
        self.inner.lock().keys().next().cloned()
    }

    /// Largest key.
    pub fn last_key(&self) -> Option<K> {
        self.inner.lock().keys().next_back().cloned()
    }

    /// Entries in `[lower, upper)`-style bounds, in order.
    pub fn range_entries(&self, lower: Bound<K>, upper: Bound<K>) -> Vec<(K, V)> {
        self.inner
            .lock()
            .range((lower, upper))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Run a compound operation while holding the lock.
    pub fn with_lock<T>(&self, f: impl FnOnce(&mut BTreeMap<K, V>) -> T) -> T {
        f(&mut self.inner.lock())
    }
}

impl<K: Ord + Clone, V: Clone> Default for LockTreeMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

/// A `Mutex<VecDeque>` standing in for a synchronized queue.
pub struct LockDeque<T> {
    inner: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Clone for LockDeque<T> {
    fn clone(&self) -> Self {
        LockDeque {
            inner: self.inner.clone(),
        }
    }
}

impl<T> LockDeque<T> {
    /// Create an empty deque.
    pub fn new() -> Self {
        LockDeque {
            inner: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    /// Enqueue at the back.
    pub fn push_back(&self, item: T) {
        self.inner.lock().push_back(item);
    }

    /// Dequeue from the front.
    pub fn pop_front(&self) -> Option<T> {
        self.inner.lock().pop_front()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

impl<T> Default for LockDeque<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_hashmap_basic() {
        let m = LockHashMap::new();
        assert_eq!(m.insert(1, "a"), None);
        assert_eq!(m.insert(1, "b"), Some("a"));
        assert_eq!(m.get(&1), Some("b"));
        assert_eq!(m.remove(&1), Some("b"));
        assert!(m.is_empty());
    }

    #[test]
    fn lock_hashmap_compound_is_atomic() {
        let m = Arc::new(LockHashMap::new());
        m.insert(0u32, 0u32);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        m.with_lock(|inner| {
                            let v = *inner.get(&0).unwrap();
                            inner.insert(0, v + 1);
                        });
                    }
                });
            }
        });
        assert_eq!(m.get(&0), Some(4000));
    }

    #[test]
    fn lock_treemap_ranges() {
        let m = LockTreeMap::new();
        for k in 0..10 {
            m.insert(k, k);
        }
        let r = m.range_entries(Bound::Included(2), Bound::Excluded(5));
        assert_eq!(r, vec![(2, 2), (3, 3), (4, 4)]);
        assert_eq!(m.first_key(), Some(0));
        assert_eq!(m.last_key(), Some(9));
    }

    #[test]
    fn lock_deque_fifo() {
        let q = LockDeque::new();
        q.push_back(1);
        q.push_back(2);
        assert_eq!(q.pop_front(), Some(1));
        assert_eq!(q.pop_front(), Some(2));
        assert_eq!(q.pop_front(), None);
    }
}
