//! # txstruct — STM-backed data-structure substrates
//!
//! The paper wraps *existing* `java.util` collections (`HashMap`, `TreeMap`)
//! whose memory accesses become part of the enclosing transaction. That is
//! the crux of the problem being solved: a plain hash map used inside a long
//! transaction drags its `size` field and bucket memory into the
//! transaction's read/write set, so semantically independent operations
//! conflict.
//!
//! Rust has no transactional `java.util`, so this crate builds the
//! equivalents out of [`stm::TVar`] cells:
//!
//! * [`TxHashMap`] — chained hash table with a single transactional `size`
//!   field (the Figure-1 conflict artifact) and load-factor-driven resizing.
//! * [`TxTreeMap`] — a red–black tree following the `java.util.TreeMap`
//!   algorithm (parent pointers, null-as-black, rotation fix-ups), whose
//!   rebalancing writes are the Figure-2 conflict artifact.
//! * [`SegmentedTxHashMap`] — a `ConcurrentHashMap`-style segmented table
//!   (per-segment size fields), the prior-art alternative the paper argues
//!   only *statistically* reduces conflicts (§2.4).
//! * [`TxVecDeque`] — the queue substrate wrapped by `TransactionalQueue`.
//! * [`BoostedHashMap`] — the one deliberately **non**-transactional
//!   structure: a sharded concurrent hash map (per-shard mutexes, no TVars
//!   on the hot path) serving as the *boosted* backend, where isolation
//!   comes entirely from the wrapper's semantic locks plus commit/abort
//!   (undo) handlers.
//! * [`TxCell`] / [`TxCounter`] — shared scalars; the counter offers the
//!   open-nested increment used for the paper's UID-generator discussion.
//! * [`LockHashMap`] / [`LockTreeMap`] / [`LockDeque`] — coarse-grained-lock
//!   counterparts standing in for the paper's Java `synchronized` baselines.
//!
//! All transactional types take `&mut stm::Txn` on every operation and are
//! usable both from [`stm::atomic`] bodies and (in direct mode) from commit
//! and abort handlers — which is exactly how `txcollections` drives them.

#![warn(missing_docs)]

mod boosted;
mod cell;
mod deque;
mod hashmap;
mod locked;
mod segmented;
mod treemap;

pub use boosted::BoostedHashMap;
pub use cell::{TxCell, TxCounter};
pub use deque::TxVecDeque;
pub use hashmap::TxHashMap;
pub use locked::{LockDeque, LockHashMap, LockTreeMap};
pub use segmented::SegmentedTxHashMap;
pub use treemap::TxTreeMap;
