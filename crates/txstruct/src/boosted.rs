//! `BoostedHashMap` — a genuinely concurrent sharded hash map with **no
//! TVars on the hot path**, the "boosted" backend of the collection seam.
//!
//! Every other structure in this crate is built from [`stm::TVar`] cells so
//! its memory accesses participate in the enclosing transaction. This one
//! deliberately is not: it is the underlay for transactional *boosting*
//! (Proust's design point, and the production half of the paper's "wrap
//! existing data structures" claim), where the wrapper's semantic locks and
//! commit/abort handlers provide *all* isolation and the wrapped structure
//! only needs to be linearizable on its own operations. Operations here
//! take no `&mut Txn` at all — the `txcollections` backend seam discards
//! the transaction when delegating to this type.
//!
//! Structure: a power-of-two array of shards, each a
//! [`parking_lot::Mutex`]`<HashMap<K, V>>`. Point operations lock exactly
//! one shard for a few nanoseconds; whole-map operations (`len`,
//! `entries`) visit shards in ascending index order (one lock held at a
//! time), which is consistent *enough* because the semantic layer
//! serializes every committed mutation through the stm handler lane and
//! dooms any observer whose semantic lock the mutation invalidates — the
//! same two-case argument that covers the TVar backends (see
//! `docs/PROTOCOL.md`).

use parking_lot::Mutex;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

const DEFAULT_SHARDS: usize = 16;

/// Sharded concurrent hash map; see the module docs. Cheap point
/// operations, no transactional instrumentation — pair it with a
/// `txcollections` wrapper (e.g. `TransactionalMap::boosted()`) to use it
/// from transactions.
pub struct BoostedHashMap<K, V> {
    shards: Box<[Mutex<HashMap<K, V>>]>,
    mask: usize,
}

impl<K, V> BoostedHashMap<K, V>
where
    K: Eq + Hash,
{
    /// Create with the default shard count (16).
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// Create with an explicit shard count (rounded up to a power of two,
    /// minimum 1).
    pub fn with_shards(nshards: usize) -> Self {
        let n = nshards.max(1).next_power_of_two();
        let shards: Vec<Mutex<HashMap<K, V>>> =
            (0..n).map(|_| Mutex::new(HashMap::new())).collect();
        BoostedHashMap {
            shards: shards.into_boxed_slice(),
            mask: n - 1,
        }
    }

    /// Number of shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, key: &K) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) & self.mask
    }

    /// Look up a key.
    #[must_use]
    pub fn get(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        self.shards[self.shard_of(key)].lock().get(key).cloned()
    }

    /// Whether a key is present.
    #[must_use]
    pub fn contains_key(&self, key: &K) -> bool {
        self.shards[self.shard_of(key)].lock().contains_key(key)
    }

    /// Insert or replace; returns the previous value.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        let s = self.shard_of(&key);
        self.shards[s].lock().insert(key, value)
    }

    /// Remove a key; returns the previous value.
    pub fn remove(&self, key: &K) -> Option<V> {
        self.shards[self.shard_of(key)].lock().remove(key)
    }

    /// Number of entries: per-shard counts summed shard-by-shard (ascending,
    /// one lock held at a time). Not a point-in-time snapshot on its own —
    /// the semantic layer's size lock plus the handler lane make it one.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all entries (arbitrary order), collected shard-by-shard.
    #[must_use]
    pub fn entries(&self) -> Vec<(K, V)>
    where
        K: Clone,
        V: Clone,
    {
        let mut out = Vec::new();
        for s in self.shards.iter() {
            let m = s.lock();
            out.extend(m.iter().map(|(k, v)| (k.clone(), v.clone())));
        }
        out
    }
}

impl<K, V> Default for BoostedHashMap<K, V>
where
    K: Eq + Hash,
{
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_ops_roundtrip() {
        let m: BoostedHashMap<u64, String> = BoostedHashMap::new();
        assert_eq!(m.insert(1, "a".into()), None);
        assert_eq!(m.insert(1, "b".into()), Some("a".into()));
        assert_eq!(m.get(&1).as_deref(), Some("b"));
        assert!(m.contains_key(&1));
        assert_eq!(m.len(), 1);
        assert_eq!(m.remove(&1).as_deref(), Some("b"));
        assert!(m.is_empty());
    }

    #[test]
    fn shard_count_rounds_up() {
        let m: BoostedHashMap<u64, u64> = BoostedHashMap::with_shards(5);
        assert_eq!(m.shard_count(), 8);
        let m: BoostedHashMap<u64, u64> = BoostedHashMap::with_shards(0);
        assert_eq!(m.shard_count(), 1);
    }

    #[test]
    fn entries_cover_all_shards() {
        let m: BoostedHashMap<u64, u64> = BoostedHashMap::with_shards(4);
        for k in 0..64 {
            assert_eq!(m.insert(k, k * 10), None);
        }
        let mut es = m.entries();
        es.sort_unstable();
        assert_eq!(es.len(), 64);
        assert!(es.iter().all(|(k, v)| *v == *k * 10));
        assert_eq!(m.len(), 64);
    }

    #[test]
    fn concurrent_inserts_are_linearizable_per_key() {
        use std::sync::Arc;
        let m: Arc<BoostedHashMap<u64, u64>> = Arc::new(BoostedHashMap::new());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let m = m.clone();
                s.spawn(move || {
                    for i in 0..500u64 {
                        let k = t * 1000 + (i % 100);
                        let cur = m.get(&k).unwrap_or(0);
                        let _ = m.insert(k, cur + 1);
                    }
                });
            }
        });
        // Disjoint key ranges: every thread's reads and writes were
        // uncontended, so each key counted all the way up.
        assert_eq!(m.len(), 400);
    }
}
