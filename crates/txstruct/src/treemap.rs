//! A transactional red–black tree modeled on `java.util.TreeMap`.
//!
//! Every node field (color, links, key, value) is a [`stm::TVar`], so
//! insertions and deletions drag their whole search path *plus all
//! rebalancing writes* (rotations, recolorings up to the root) into the
//! enclosing transaction's footprint. This is precisely the behaviour the
//! paper observes for "Atomos TreeMap" in Figure 2: long transactions
//! conflict on internal operations that are semantically irrelevant.
//!
//! The algorithm is a direct port of OpenJDK's `TreeMap` (CLRS with parent
//! pointers and null-treated-as-black, no sentinel), including the
//! successor-swap deletion. Parent links are `Weak` to avoid `Arc` cycles.

use std::cmp::Ordering as Ord_;
use std::ops::Bound;
use std::sync::{Arc, Weak};
use stm::{TVar, Txn};

/// Node color.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Color {
    /// Red node.
    Red,
    /// Black node (absent children are black).
    Black,
}

struct NodeInner<K, V> {
    key: TVar<K>,
    value: TVar<V>,
    color: TVar<Color>,
    left: TVar<Link<K, V>>,
    right: TVar<Link<K, V>>,
    parent: TVar<ParentLink<K, V>>,
}

type NodeRef<K, V> = Arc<NodeInner<K, V>>;
type Link<K, V> = Option<NodeRef<K, V>>;
type ParentLink<K, V> = Option<Weak<NodeInner<K, V>>>;

/// The object-header line: root pointer + size, one conflict unit.
///
/// `java.util.TreeMap` keeps `root`, `size` and `modCount` in adjacent
/// fields; with the paper's cache-line-granularity HTM conflict detection,
/// every lookup (reading `root`) conflicts with every committing
/// insert/remove (writing `size`/`modCount`). Modeling the header as one
/// `TVar` reproduces that artifact — on top of the rotation/recoloring
/// conflicts the per-node `TVar`s already provide.
struct TreeHeader<K, V> {
    root: Link<K, V>,
    size: usize,
}

impl<K, V> Clone for TreeHeader<K, V> {
    fn clone(&self) -> Self {
        TreeHeader {
            root: self.root.clone(),
            size: self.size,
        }
    }
}

/// A transactional sorted map (red–black tree).
pub struct TxTreeMap<K, V> {
    header: TVar<TreeHeader<K, V>>,
}

impl<K, V> Clone for TxTreeMap<K, V> {
    fn clone(&self) -> Self {
        TxTreeMap {
            header: self.header.clone(),
        }
    }
}

fn new_node<K, V>(key: K, value: V) -> NodeRef<K, V>
where
    K: Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    Arc::new(NodeInner {
        key: TVar::new(key),
        value: TVar::new(value),
        color: TVar::new(Color::Black),
        left: TVar::new(None),
        right: TVar::new(None),
        parent: TVar::new(None),
    })
}

impl<K, V> TxTreeMap<K, V>
where
    K: Clone + Ord + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// Create an empty tree.
    pub fn new() -> Self {
        TxTreeMap {
            header: TVar::new(TreeHeader {
                root: None,
                size: 0,
            }),
        }
    }

    fn root_of(&self, tx: &mut Txn) -> Link<K, V> {
        self.header.read(tx).root
    }

    fn set_root(&self, tx: &mut Txn, root: Link<K, V>) {
        let size = self.header.read(tx).size;
        self.header.write(tx, TreeHeader { root, size });
    }

    fn bump_size(&self, tx: &mut Txn, delta: isize) {
        let h = self.header.read(tx);
        self.header.write(
            tx,
            TreeHeader {
                root: h.root,
                size: (h.size as isize + delta) as usize,
            },
        );
    }

    /// Number of entries (shared transactional header, as in Java).
    pub fn len(&self, tx: &mut Txn) -> usize {
        self.header.read(tx).size
    }

    /// Whether the tree is empty (derived from `size`).
    pub fn is_empty(&self, tx: &mut Txn) -> bool {
        self.len(tx) == 0
    }

    // ------------------------------------------------------------------
    // Helpers (null-as-black conventions from TreeMap)
    // ------------------------------------------------------------------

    fn color_of(tx: &mut Txn, n: &Link<K, V>) -> Color {
        match n {
            None => Color::Black,
            Some(n) => n.color.read(tx),
        }
    }

    fn set_color(tx: &mut Txn, n: &Link<K, V>, c: Color) {
        if let Some(n) = n {
            n.color.write(tx, c);
        }
    }

    fn parent_of(tx: &mut Txn, n: &Link<K, V>) -> Link<K, V> {
        n.as_ref()
            .and_then(|n| n.parent.read(tx))
            .and_then(|w| w.upgrade())
    }

    fn left_of(tx: &mut Txn, n: &Link<K, V>) -> Link<K, V> {
        n.as_ref().and_then(|n| n.left.read(tx))
    }

    fn right_of(tx: &mut Txn, n: &Link<K, V>) -> Link<K, V> {
        n.as_ref().and_then(|n| n.right.read(tx))
    }

    fn same(a: &Link<K, V>, b: &Link<K, V>) -> bool {
        match (a, b) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    fn set_parent(tx: &mut Txn, child: &Link<K, V>, parent: &Link<K, V>) {
        if let Some(c) = child {
            c.parent.write(tx, parent.as_ref().map(Arc::downgrade));
        }
    }

    // ------------------------------------------------------------------
    // Search
    // ------------------------------------------------------------------

    fn get_node(&self, tx: &mut Txn, key: &K) -> Link<K, V> {
        let mut p = self.root_of(tx);
        while let Some(n) = p {
            let nk = n.key.read(tx);
            match key.cmp(&nk) {
                Ord_::Less => p = n.left.read(tx),
                Ord_::Greater => p = n.right.read(tx),
                Ord_::Equal => return Some(n),
            }
        }
        None
    }

    /// Look up a key.
    pub fn get(&self, tx: &mut Txn, key: &K) -> Option<V> {
        self.get_node(tx, key).map(|n| n.value.read(tx))
    }

    /// Whether a key is present.
    pub fn contains_key(&self, tx: &mut Txn, key: &K) -> bool {
        self.get_node(tx, key).is_some()
    }

    // ------------------------------------------------------------------
    // Insert
    // ------------------------------------------------------------------

    /// Insert or replace; returns the previous value.
    pub fn insert(&self, tx: &mut Txn, key: K, value: V) -> Option<V> {
        let root = self.root_of(tx);
        let Some(mut t) = root else {
            let n = new_node(key, value);
            self.header.write(
                tx,
                TreeHeader {
                    root: Some(n),
                    size: 1,
                },
            );
            return None;
        };
        loop {
            let tk = t.key.read(tx);
            match key.cmp(&tk) {
                Ord_::Equal => {
                    let old = t.value.read(tx);
                    t.value.write(tx, value);
                    return Some(old);
                }
                Ord_::Less => match t.left.read(tx) {
                    Some(l) => t = l,
                    None => {
                        let n = new_node(key, value);
                        n.color.write(tx, Color::Red);
                        n.parent.write(tx, Some(Arc::downgrade(&t)));
                        t.left.write(tx, Some(n.clone()));
                        self.fix_after_insertion(tx, n);
                        self.bump_size(tx, 1);
                        return None;
                    }
                },
                Ord_::Greater => match t.right.read(tx) {
                    Some(r) => t = r,
                    None => {
                        let n = new_node(key, value);
                        n.color.write(tx, Color::Red);
                        n.parent.write(tx, Some(Arc::downgrade(&t)));
                        t.right.write(tx, Some(n.clone()));
                        self.fix_after_insertion(tx, n);
                        self.bump_size(tx, 1);
                        return None;
                    }
                },
            }
        }
    }

    fn rotate_left(&self, tx: &mut Txn, p: &Link<K, V>) {
        let Some(p_node) = p else { return };
        let r = p_node
            .right
            .read(tx)
            .expect("rotate_left without right child");
        let r_left = r.left.read(tx);
        p_node.right.write(tx, r_left.clone());
        Self::set_parent(tx, &r_left, p);
        let gp = Self::parent_of(tx, p);
        Self::set_parent(tx, &Some(r.clone()), &gp);
        match &gp {
            None => self.set_root(tx, Some(r.clone())),
            Some(g) => {
                let gl = g.left.read(tx);
                if Self::same(&gl, p) {
                    g.left.write(tx, Some(r.clone()));
                } else {
                    g.right.write(tx, Some(r.clone()));
                }
            }
        }
        r.left.write(tx, p.clone());
        Self::set_parent(tx, p, &Some(r));
    }

    fn rotate_right(&self, tx: &mut Txn, p: &Link<K, V>) {
        let Some(p_node) = p else { return };
        let l = p_node
            .left
            .read(tx)
            .expect("rotate_right without left child");
        let l_right = l.right.read(tx);
        p_node.left.write(tx, l_right.clone());
        Self::set_parent(tx, &l_right, p);
        let gp = Self::parent_of(tx, p);
        Self::set_parent(tx, &Some(l.clone()), &gp);
        match &gp {
            None => self.set_root(tx, Some(l.clone())),
            Some(g) => {
                let gr = g.right.read(tx);
                if Self::same(&gr, p) {
                    g.right.write(tx, Some(l.clone()));
                } else {
                    g.left.write(tx, Some(l.clone()));
                }
            }
        }
        l.right.write(tx, p.clone());
        Self::set_parent(tx, p, &Some(l));
    }

    fn fix_after_insertion(&self, tx: &mut Txn, node: NodeRef<K, V>) {
        let mut x: Link<K, V> = Some(node);
        loop {
            let root = self.root_of(tx);
            if x.is_none() || Self::same(&x, &root) {
                break;
            }
            let xp = Self::parent_of(tx, &x);
            if Self::color_of(tx, &xp) != Color::Red {
                break;
            }
            let xpp = Self::parent_of(tx, &xp);
            let xpp_left = Self::left_of(tx, &xpp);
            if Self::same(&xp, &xpp_left) {
                let y = Self::right_of(tx, &xpp); // uncle
                if Self::color_of(tx, &y) == Color::Red {
                    Self::set_color(tx, &xp, Color::Black);
                    Self::set_color(tx, &y, Color::Black);
                    Self::set_color(tx, &xpp, Color::Red);
                    x = xpp;
                } else {
                    if Self::same(&x, &Self::right_of(tx, &xp)) {
                        x = xp;
                        self.rotate_left(tx, &x);
                    }
                    let xp2 = Self::parent_of(tx, &x);
                    let xpp2 = Self::parent_of(tx, &xp2);
                    Self::set_color(tx, &xp2, Color::Black);
                    Self::set_color(tx, &xpp2, Color::Red);
                    self.rotate_right(tx, &xpp2);
                }
            } else {
                let y = Self::left_of(tx, &xpp); // uncle
                if Self::color_of(tx, &y) == Color::Red {
                    Self::set_color(tx, &xp, Color::Black);
                    Self::set_color(tx, &y, Color::Black);
                    Self::set_color(tx, &xpp, Color::Red);
                    x = xpp;
                } else {
                    if Self::same(&x, &Self::left_of(tx, &xp)) {
                        x = xp;
                        self.rotate_right(tx, &x);
                    }
                    let xp2 = Self::parent_of(tx, &x);
                    let xpp2 = Self::parent_of(tx, &xp2);
                    Self::set_color(tx, &xp2, Color::Black);
                    Self::set_color(tx, &xpp2, Color::Red);
                    self.rotate_left(tx, &xpp2);
                }
            }
        }
        let root = self.root_of(tx);
        Self::set_color(tx, &root, Color::Black);
    }

    // ------------------------------------------------------------------
    // Delete
    // ------------------------------------------------------------------

    /// Remove a key; returns the previous value.
    pub fn remove(&self, tx: &mut Txn, key: &K) -> Option<V> {
        let node = self.get_node(tx, key)?;
        let old = node.value.read(tx);
        self.delete_entry(tx, node);
        Some(old)
    }

    fn successor_node(tx: &mut Txn, t: &NodeRef<K, V>) -> Link<K, V> {
        if let Some(r) = t.right.read(tx) {
            let mut p = r;
            while let Some(l) = p.left.read(tx) {
                p = l;
            }
            return Some(p);
        }
        let mut ch: Link<K, V> = Some(t.clone());
        let mut p = Self::parent_of(tx, &ch);
        while let Some(pn) = &p {
            let pr = pn.right.read(tx);
            if !Self::same(&pr, &ch) {
                break;
            }
            ch = p.clone();
            p = Self::parent_of(tx, &ch);
        }
        p
    }

    fn delete_entry(&self, tx: &mut Txn, mut p: NodeRef<K, V>) {
        self.bump_size(tx, -1);

        // Interior node: copy successor's entry here, delete successor.
        if p.left.read(tx).is_some() && p.right.read(tx).is_some() {
            let s = Self::successor_node(tx, &p).expect("interior node has a successor");
            let sk = s.key.read(tx);
            let sv = s.value.read(tx);
            p.key.write(tx, sk);
            p.value.write(tx, sv);
            p = s;
        }

        let p_link: Link<K, V> = Some(p.clone());
        let left = p.left.read(tx);
        let replacement = if left.is_some() {
            left
        } else {
            p.right.read(tx)
        };

        if let Some(repl) = replacement {
            // Splice out p.
            let pp = Self::parent_of(tx, &p_link);
            repl.parent.write(tx, pp.as_ref().map(Arc::downgrade));
            match &pp {
                None => self.set_root(tx, Some(repl.clone())),
                Some(ppn) => {
                    let ppl = ppn.left.read(tx);
                    if Self::same(&ppl, &p_link) {
                        ppn.left.write(tx, Some(repl.clone()));
                    } else {
                        ppn.right.write(tx, Some(repl.clone()));
                    }
                }
            }
            p.left.write(tx, None);
            p.right.write(tx, None);
            p.parent.write(tx, None);
            if p.color.read(tx) == Color::Black {
                self.fix_after_deletion(tx, Some(repl));
            }
        } else if Self::parent_of(tx, &p_link).is_none() {
            self.set_root(tx, None);
        } else {
            // No children: use p itself as the phantom replacement.
            if p.color.read(tx) == Color::Black {
                self.fix_after_deletion(tx, p_link.clone());
            }
            let pp = Self::parent_of(tx, &p_link);
            if let Some(ppn) = &pp {
                let ppl = ppn.left.read(tx);
                if Self::same(&ppl, &p_link) {
                    ppn.left.write(tx, None);
                } else {
                    let ppr = ppn.right.read(tx);
                    if Self::same(&ppr, &p_link) {
                        ppn.right.write(tx, None);
                    }
                }
                p.parent.write(tx, None);
            }
        }
    }

    fn fix_after_deletion(&self, tx: &mut Txn, mut x: Link<K, V>) {
        loop {
            let root = self.root_of(tx);
            if Self::same(&x, &root) || Self::color_of(tx, &x) != Color::Black {
                break;
            }
            let xp = Self::parent_of(tx, &x);
            let xp_left = Self::left_of(tx, &xp);
            if Self::same(&x, &xp_left) {
                let mut sib = Self::right_of(tx, &xp);
                if Self::color_of(tx, &sib) == Color::Red {
                    Self::set_color(tx, &sib, Color::Black);
                    Self::set_color(tx, &xp, Color::Red);
                    self.rotate_left(tx, &xp);
                    let xp2 = Self::parent_of(tx, &x);
                    sib = Self::right_of(tx, &xp2);
                }
                let sl = Self::left_of(tx, &sib);
                let sr = Self::right_of(tx, &sib);
                if Self::color_of(tx, &sl) == Color::Black
                    && Self::color_of(tx, &sr) == Color::Black
                {
                    Self::set_color(tx, &sib, Color::Red);
                    x = Self::parent_of(tx, &x);
                } else {
                    let mut sib = sib;
                    let sr = Self::right_of(tx, &sib);
                    if Self::color_of(tx, &sr) == Color::Black {
                        let sl = Self::left_of(tx, &sib);
                        Self::set_color(tx, &sl, Color::Black);
                        Self::set_color(tx, &sib, Color::Red);
                        self.rotate_right(tx, &sib);
                        let xp2 = Self::parent_of(tx, &x);
                        sib = Self::right_of(tx, &xp2);
                    }
                    let xp2 = Self::parent_of(tx, &x);
                    let pc = Self::color_of(tx, &xp2);
                    Self::set_color(tx, &sib, pc);
                    Self::set_color(tx, &xp2, Color::Black);
                    let sr2 = Self::right_of(tx, &sib);
                    Self::set_color(tx, &sr2, Color::Black);
                    self.rotate_left(tx, &xp2);
                    x = self.root_of(tx);
                }
            } else {
                // Symmetric.
                let mut sib = Self::left_of(tx, &xp);
                if Self::color_of(tx, &sib) == Color::Red {
                    Self::set_color(tx, &sib, Color::Black);
                    Self::set_color(tx, &xp, Color::Red);
                    self.rotate_right(tx, &xp);
                    let xp2 = Self::parent_of(tx, &x);
                    sib = Self::left_of(tx, &xp2);
                }
                let sl = Self::left_of(tx, &sib);
                let sr = Self::right_of(tx, &sib);
                if Self::color_of(tx, &sr) == Color::Black
                    && Self::color_of(tx, &sl) == Color::Black
                {
                    Self::set_color(tx, &sib, Color::Red);
                    x = Self::parent_of(tx, &x);
                } else {
                    let mut sib = sib;
                    let sl = Self::left_of(tx, &sib);
                    if Self::color_of(tx, &sl) == Color::Black {
                        let sr = Self::right_of(tx, &sib);
                        Self::set_color(tx, &sr, Color::Black);
                        Self::set_color(tx, &sib, Color::Red);
                        self.rotate_left(tx, &sib);
                        let xp2 = Self::parent_of(tx, &x);
                        sib = Self::left_of(tx, &xp2);
                    }
                    let xp2 = Self::parent_of(tx, &x);
                    let pc = Self::color_of(tx, &xp2);
                    Self::set_color(tx, &sib, pc);
                    Self::set_color(tx, &xp2, Color::Black);
                    let sl2 = Self::left_of(tx, &sib);
                    Self::set_color(tx, &sl2, Color::Black);
                    self.rotate_right(tx, &xp2);
                    x = self.root_of(tx);
                }
            }
        }
        Self::set_color(tx, &x, Color::Black);
    }

    // ------------------------------------------------------------------
    // Ordered access
    // ------------------------------------------------------------------

    /// Smallest key, if any.
    pub fn first_key(&self, tx: &mut Txn) -> Option<K> {
        self.first_entry(tx).map(|(k, _)| k)
    }

    /// Largest key, if any.
    pub fn last_key(&self, tx: &mut Txn) -> Option<K> {
        self.last_entry(tx).map(|(k, _)| k)
    }

    /// Smallest entry, if any.
    pub fn first_entry(&self, tx: &mut Txn) -> Option<(K, V)> {
        let mut p = self.root_of(tx)?;
        while let Some(l) = p.left.read(tx) {
            p = l;
        }
        Some((p.key.read(tx), p.value.read(tx)))
    }

    /// Largest entry, if any.
    pub fn last_entry(&self, tx: &mut Txn) -> Option<(K, V)> {
        let mut p = self.root_of(tx)?;
        while let Some(r) = p.right.read(tx) {
            p = r;
        }
        Some((p.key.read(tx), p.value.read(tx)))
    }

    /// Smallest entry with key strictly greater than `key` — the stepwise
    /// traversal primitive used by `TransactionalSortedMap`'s merged
    /// iterators (each step is an independent O(log n) descent, so steps can
    /// run in separate open-nested transactions).
    pub fn next_entry_after(&self, tx: &mut Txn, key: &K) -> Option<(K, V)> {
        let mut best: Link<K, V> = None;
        let mut p = self.root_of(tx);
        while let Some(n) = p {
            let nk = n.key.read(tx);
            if nk > *key {
                best = Some(n.clone());
                p = n.left.read(tx);
            } else {
                p = n.right.read(tx);
            }
        }
        best.map(|n| (n.key.read(tx), n.value.read(tx)))
    }

    /// Largest entry with key strictly less than `key`.
    pub fn prev_entry_before(&self, tx: &mut Txn, key: &K) -> Option<(K, V)> {
        let mut best: Link<K, V> = None;
        let mut p = self.root_of(tx);
        while let Some(n) = p {
            let nk = n.key.read(tx);
            if nk < *key {
                best = Some(n.clone());
                p = n.right.read(tx);
            } else {
                p = n.left.read(tx);
            }
        }
        best.map(|n| (n.key.read(tx), n.value.read(tx)))
    }

    /// Largest entry with key `<= key` (floor).
    pub fn floor_entry(&self, tx: &mut Txn, key: &K) -> Option<(K, V)> {
        let mut best: Link<K, V> = None;
        let mut p = self.root_of(tx);
        while let Some(n) = p {
            let nk = n.key.read(tx);
            if nk <= *key {
                best = Some(n.clone());
                p = n.right.read(tx);
            } else {
                p = n.left.read(tx);
            }
        }
        best.map(|n| (n.key.read(tx), n.value.read(tx)))
    }

    /// Smallest entry with key `>= key` (ceiling).
    pub fn ceiling_entry(&self, tx: &mut Txn, key: &K) -> Option<(K, V)> {
        let mut best: Link<K, V> = None;
        let mut p = self.root_of(tx);
        while let Some(n) = p {
            let nk = n.key.read(tx);
            if nk >= *key {
                best = Some(n.clone());
                p = n.left.read(tx);
            } else {
                p = n.right.read(tx);
            }
        }
        best.map(|n| (n.key.read(tx), n.value.read(tx)))
    }

    /// All entries in key order.
    pub fn entries(&self, tx: &mut Txn) -> Vec<(K, V)> {
        self.range_entries(tx, Bound::Unbounded, Bound::Unbounded)
    }

    /// Entries within the given key bounds, in order.
    pub fn range_entries(&self, tx: &mut Txn, lower: Bound<&K>, upper: Bound<&K>) -> Vec<(K, V)> {
        let mut out = Vec::new();
        let mut cur = match lower {
            Bound::Unbounded => self.first_entry(tx),
            Bound::Included(k) => self.ceiling_entry(tx, k),
            Bound::Excluded(k) => self.next_entry_after(tx, k),
        };
        while let Some((k, v)) = cur {
            let in_range = match upper {
                Bound::Unbounded => true,
                Bound::Included(u) => k <= *u,
                Bound::Excluded(u) => k < *u,
            };
            if !in_range {
                break;
            }
            cur = self.next_entry_after(tx, &k);
            out.push((k, v));
        }
        out
    }

    /// Remove all entries.
    pub fn clear(&self, tx: &mut Txn) {
        self.header.write(
            tx,
            TreeHeader {
                root: None,
                size: 0,
            },
        );
    }

    /// Id of the header variable (the root+size conflict unit), for
    /// read/write-set introspection in tests and benches.
    pub fn header_var_id(&self) -> stm::VarId {
        self.header.id()
    }

    // ------------------------------------------------------------------
    // Invariant checking (test support)
    // ------------------------------------------------------------------

    /// Verify the red–black and BST invariants; returns a description of the
    /// first violation. Exposed for the property-test suite.
    #[doc(hidden)]
    pub fn check_invariants(&self, tx: &mut Txn) -> Result<(), String> {
        let root = self.root_of(tx);
        if Self::color_of(tx, &root) == Color::Red {
            return Err("root is red".into());
        }
        let mut count = 0usize;
        let _black_height = self.check_node(tx, &root, None, None, &mut count)?;
        let sz = self.header.read(tx).size;
        if count != sz {
            return Err(format!("size field {sz} != actual node count {count}"));
        }
        Ok(())
    }

    fn check_node(
        &self,
        tx: &mut Txn,
        n: &Link<K, V>,
        lo: Option<&K>,
        hi: Option<&K>,
        count: &mut usize,
    ) -> Result<usize, String> {
        let Some(node) = n else { return Ok(1) };
        *count += 1;
        let k = node.key.read(tx);
        if let Some(lo) = lo {
            if k <= *lo {
                return Err("BST order violated (left bound)".into());
            }
        }
        if let Some(hi) = hi {
            if k >= *hi {
                return Err("BST order violated (right bound)".into());
            }
        }
        let color = node.color.read(tx);
        let left = node.left.read(tx);
        let right = node.right.read(tx);
        if color == Color::Red
            && (Self::color_of(tx, &left) == Color::Red || Self::color_of(tx, &right) == Color::Red)
        {
            return Err(format!("red-red violation at key position {count}"));
        }
        for c in [&left, &right].into_iter().flatten() {
            let cp = Self::parent_of(tx, &Some(c.clone()));
            if !Self::same(&cp, &Some(node.clone())) {
                return Err("parent link inconsistent".into());
            }
        }
        let lh = self.check_node(tx, &left, lo, Some(&k), count)?;
        let rh = self.check_node(tx, &right, Some(&k), hi, count)?;
        if lh != rh {
            return Err(format!("black height mismatch: {lh} vs {rh}"));
        }
        Ok(lh + if color == Color::Black { 1 } else { 0 })
    }
}

impl<K, V> Default for TxTreeMap<K, V>
where
    K: Clone + Ord + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm::atomic;

    #[test]
    fn insert_get_remove_roundtrip() {
        let t: TxTreeMap<i32, i32> = TxTreeMap::new();
        atomic(|tx| {
            assert_eq!(t.insert(tx, 5, 50), None);
            assert_eq!(t.insert(tx, 3, 30), None);
            assert_eq!(t.insert(tx, 8, 80), None);
            assert_eq!(t.insert(tx, 5, 55), Some(50));
            assert_eq!(t.get(tx, &3), Some(30));
            assert_eq!(t.len(tx), 3);
            assert_eq!(t.remove(tx, &3), Some(30));
            assert_eq!(t.get(tx, &3), None);
            assert_eq!(t.len(tx), 2);
            t.check_invariants(tx).unwrap();
        });
    }

    #[test]
    fn ordered_iteration() {
        let t: TxTreeMap<i32, i32> = TxTreeMap::new();
        atomic(|tx| {
            for k in [7, 1, 9, 4, 2, 8, 3, 6, 5] {
                t.insert(tx, k, k * 10);
            }
        });
        let e = atomic(|tx| t.entries(tx));
        let keys: Vec<i32> = e.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn first_last_ceiling() {
        let t: TxTreeMap<i32, i32> = TxTreeMap::new();
        atomic(|tx| {
            for k in [10, 20, 30] {
                t.insert(tx, k, k);
            }
            assert_eq!(t.first_key(tx), Some(10));
            assert_eq!(t.last_key(tx), Some(30));
            assert_eq!(t.ceiling_entry(tx, &15), Some((20, 20)));
            assert_eq!(t.ceiling_entry(tx, &20), Some((20, 20)));
            assert_eq!(t.next_entry_after(tx, &20), Some((30, 30)));
            assert_eq!(t.next_entry_after(tx, &30), None);
        });
    }

    #[test]
    fn range_bounds() {
        let t: TxTreeMap<i32, i32> = TxTreeMap::new();
        atomic(|tx| {
            for k in 0..10 {
                t.insert(tx, k, k);
            }
        });
        let r = atomic(|tx| t.range_entries(tx, Bound::Included(&3), Bound::Excluded(&7)));
        let keys: Vec<i32> = r.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![3, 4, 5, 6]);
    }

    #[test]
    fn invariants_hold_through_mixed_ops() {
        let t: TxTreeMap<u32, u32> = TxTreeMap::new();
        // Deterministic pseudo-random mix.
        let mut x = 0x12345678u64;
        let mut step = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut model = std::collections::BTreeMap::new();
        for _ in 0..500 {
            let k = (step() % 64) as u32;
            let op = step() % 3;
            atomic(|tx| {
                match op {
                    0 | 1 => {
                        t.insert(tx, k, k);
                    }
                    _ => {
                        t.remove(tx, &k);
                    }
                }
                t.check_invariants(tx).unwrap();
            });
            match op {
                0 | 1 => {
                    model.insert(k, k);
                }
                _ => {
                    model.remove(&k);
                }
            }
        }
        let e = atomic(|tx| t.entries(tx));
        let expect: Vec<(u32, u32)> = model.into_iter().collect();
        assert_eq!(e, expect);
    }

    #[test]
    fn clear_resets() {
        let t: TxTreeMap<i32, i32> = TxTreeMap::new();
        atomic(|tx| {
            for k in 0..10 {
                t.insert(tx, k, k);
            }
            t.clear(tx);
            assert!(t.is_empty(tx));
            assert_eq!(t.first_key(tx), None);
        });
    }
}
