//! A transactional double-ended queue — the substrate wrapped by
//! `txcollections::TransactionalQueue`.

use std::collections::VecDeque;
use std::sync::Arc;
use stm::{TVar, Txn};

/// A transactional FIFO/deque backed by a single versioned cell.
///
/// Like a plain `java.util.LinkedList` used as a queue, *any* two operations
/// from different transactions conflict at the memory level (they all touch
/// the same cell). That is intentional: `TransactionalQueue` exists to hide
/// exactly this behind open nesting.
pub struct TxVecDeque<T> {
    items: TVar<Arc<VecDeque<T>>>,
}

impl<T> Clone for TxVecDeque<T> {
    fn clone(&self) -> Self {
        TxVecDeque {
            items: self.items.clone(),
        }
    }
}

impl<T: Clone + Send + Sync + 'static> TxVecDeque<T> {
    /// Create an empty deque.
    pub fn new() -> Self {
        TxVecDeque {
            items: TVar::new(Arc::new(VecDeque::new())),
        }
    }

    /// Number of elements.
    pub fn len(&self, tx: &mut Txn) -> usize {
        self.items.read(tx).len()
    }

    /// Whether empty.
    pub fn is_empty(&self, tx: &mut Txn) -> bool {
        self.items.read(tx).is_empty()
    }

    /// Enqueue at the back.
    pub fn push_back(&self, tx: &mut Txn, item: T) {
        let cur = self.items.read(tx);
        let mut next = (*cur).clone();
        next.push_back(item);
        self.items.write(tx, Arc::new(next));
    }

    /// Enqueue at the front (used to "return" items on abort compensation).
    pub fn push_front(&self, tx: &mut Txn, item: T) {
        let cur = self.items.read(tx);
        let mut next = (*cur).clone();
        next.push_front(item);
        self.items.write(tx, Arc::new(next));
    }

    /// Dequeue from the front.
    pub fn pop_front(&self, tx: &mut Txn) -> Option<T> {
        let cur = self.items.read(tx);
        if cur.is_empty() {
            return None;
        }
        let mut next = (*cur).clone();
        let item = next.pop_front();
        self.items.write(tx, Arc::new(next));
        item
    }

    /// Front element without removing it.
    pub fn peek_front(&self, tx: &mut Txn) -> Option<T> {
        self.items.read(tx).front().cloned()
    }

    /// Snapshot of all elements, front to back.
    pub fn to_vec(&self, tx: &mut Txn) -> Vec<T> {
        self.items.read(tx).iter().cloned().collect()
    }
}

impl<T: Clone + Send + Sync + 'static> Default for TxVecDeque<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm::atomic;

    #[test]
    fn fifo_order() {
        let q = TxVecDeque::new();
        atomic(|tx| {
            q.push_back(tx, 1);
            q.push_back(tx, 2);
            q.push_back(tx, 3);
        });
        let drained = atomic(|tx| {
            let mut v = Vec::new();
            while let Some(x) = q.pop_front(tx) {
                v.push(x);
            }
            v
        });
        assert_eq!(drained, vec![1, 2, 3]);
        assert!(atomic(|tx| q.is_empty(tx)));
    }

    #[test]
    fn peek_does_not_remove() {
        let q = TxVecDeque::new();
        atomic(|tx| {
            q.push_back(tx, 9);
            assert_eq!(q.peek_front(tx), Some(9));
            assert_eq!(q.len(tx), 1);
        });
    }

    #[test]
    fn push_front_returns_items() {
        let q = TxVecDeque::new();
        atomic(|tx| {
            q.push_back(tx, 2);
            q.push_front(tx, 1);
            assert_eq!(q.to_vec(tx), vec![1, 2]);
        });
    }

    #[test]
    fn pop_empty_is_none() {
        let q: TxVecDeque<u8> = TxVecDeque::new();
        assert_eq!(atomic(|tx| q.pop_front(tx)), None);
    }
}
