//! Seeded TX001 violations: irrevocable side effects inside transactions.
//! This file is NOT compiled — it is input for `txlint --self-test`.

fn console_io_in_txn() {
    atomic(|tx| {
        let v = counter.read(tx);
        println!("value is {v}"); // TX001: console I/O
        counter.write(tx, v + 1);
    });
}

fn file_io_in_txn() {
    atomic(|tx| {
        let log = File::create("audit.log"); // TX001: file constructor
        fs::write("state.bin", encode(tx)); // TX001: fs module
    });
}

fn lock_in_txn() {
    atomic(|tx| {
        let guard = shared.lock(); // TX001: mutex acquisition
        guard.push(tx.id());
    });
}

fn channel_send_in_txn() {
    speculate(|tx| {
        results_tx.send(compute(tx)); // TX001: channel send
    });
}

fn sleep_in_txn() {
    atomic(|tx| {
        sleep(Duration::from_millis(10)); // TX001: blocking sleep
        tick.write(tx, now);
    });
}
