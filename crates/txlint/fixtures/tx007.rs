//! Seeded TX007 violation: raw stripe acquisition in a semantic-tables file.
//! NOT compiled — input for `txlint --self-test`.
//!
//! txlint: semantic-tables

struct Table {
    stripes: Vec<std::sync::Mutex<u64>>,
}

impl Table {
    // Raw indexing bypasses the stripes-ascending acquisition order.
    fn bad_direct(&self, idx: usize) -> u64 {
        *self.stripes[idx].lock().unwrap() // TX007
    }

    // Indexing in disguise.
    fn bad_get(&self, idx: usize) -> bool {
        self.stripes.get(idx).is_some() // TX007
    }

    // The sanctioned path names no stripe index at the call site.
    fn good(&self) -> usize {
        self.with_stripe_for(&7u64, |n| *n as usize)
    }

    fn with_stripe_for<R>(&self, _key: &u64, f: impl FnOnce(&u64) -> R) -> R {
        f(&0)
    }
}
