//! Seeded TX005 violation: nested top-level transaction entry.
//! NOT compiled — input for `txlint --self-test`.

fn nested_atomic() {
    atomic(|tx| {
        let v = cell.read(tx);
        // Should be tx.closed(..) or tx.open(..): a nested top-level
        // atomic would contend for the handler lane the outer commit
        // already plans to take.
        atomic(|tx2| {
            // TX005
            audit.write(tx2, v);
        });
    });
}
