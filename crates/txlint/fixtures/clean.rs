//! The sanctioned counterparts of every seeded violation, plus allowlist
//! usage: `txlint --self-test` asserts this file produces zero findings.
//! NOT compiled.

fn io_from_commit_handler() {
    atomic(|tx| {
        let v = counter.read(tx);
        counter.write(tx, v + 1);
        tx.on_commit(move |h| {
            println!("committed value {v}"); // handlers may do I/O
        });
        tx.on_abort(|h| {});
    });
}

fn allowlisted_debug_print() {
    atomic(|tx| {
        println!("debugging a doomed txn"); // txlint: allow(TX001)
        counter.write(tx, 0);
    });
}

fn sanctioned_nesting() {
    atomic(|tx| {
        let v = cell.read(tx);
        tx.closed(|tx2| {
            audit.write(tx2, v);
        });
        tx.open(|otx| backing.len(otx));
    });
}

fn paired_handlers(tx: &mut Txn) {
    let taken = queue.poll(tx);
    tx.on_commit_top(move |h| publish(h, taken));
    tx.on_local_undo(move || restore(taken));
}

fn allocation_free_trace_emission(owner: &TxHandle, stats: &ClassStats, key: &K) {
    // Integers and the class's pre-interned Sym: the sanctioned payloads.
    trace::sem_lock_acquired(owner.id(), stats.class_sym(), LockKind::Key, key_hash64(key));
}

fn construction_time_interning() -> Sym {
    // intern() once, at class construction — not per event.
    intern("histogram")
}

fn non_transactional_observer() {
    // read_committed outside any transaction is the sanctioned use.
    let snapshot = stats_cell.read_committed();
    report(snapshot);
}
