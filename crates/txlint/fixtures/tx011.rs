//! Seeded TX011 violation: a boosted-backend file whose eager in-place
//! mutations never log an `UndoOp` — an abort of this transaction would
//! leave the clobbered value and the vanished entry in the concurrent map.
//! NOT compiled — input for `txlint --self-test`.

// txlint: boosted-backend

impl NakedEagerMap {
    fn put(&self, htx: &mut Txn, key: Key, value: Value) {
        let _old = self.backend.insert(htx, key, value); // TX011: no compensation logged
    }

    fn delete(&self, htx: &mut Txn, key: &Key) {
        let _old = self.backend.remove(htx, key); // TX011: no compensation logged
    }
}
