//! Seeded TX013 violation: a snapshot-mode file reaching lock-acquiring /
//! state-buffering kernel entry points. Snapshot transactions run no
//! release sweep and no handlers, so a semantic lock taken here leaks for
//! the lifetime of the table and buffered state is stranded.
//! NOT compiled — input for `txlint --self-test`.

// txlint: snapshot-mode

impl LeakySnapshotMap {
    fn snapshot_get(&self, key: &Key) -> Option<Value> {
        stm::atomic_read(|tx| {
            self.take_key_lock(tx, key); // TX013: semantic lock in snapshot mode
            self.get(tx, key)
        })
    }

    fn snapshot_size(&self) -> usize {
        stm::atomic_read(|tx| {
            self.core.with_local(tx, |s| s.touch()); // TX013: buffered state in snapshot mode
            self.size(tx)
        })
    }

    fn snapshot_get_clean(&self, key: &Key) -> Option<Value> {
        // fine: the plain read path — the kernel's snapshot skip handles it
        stm::atomic_read(|tx| self.get(tx, key))
    }
}
