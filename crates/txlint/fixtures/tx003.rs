//! Seeded TX003 violation: swallowing abort/retry control flow.
//! NOT compiled — input for `txlint --self-test`.

fn swallow_doom() {
    atomic(|tx| {
        // A doomed transaction unwinds; catching the unwind turns
        // program-directed abort into a silent commit.
        let r = std::panic::catch_unwind(|| risky_update(tx)); // TX003
        if r.is_err() {
            fallback.write(tx, true);
        }
    });
}
