//! Fixture for the `--format json` self-test: exactly one known finding
//! (TX001 on line 7) whose JSON rendering is asserted against the stable
//! `{"file","line","col","code","message","help"}` schema.
//! NOT compiled — input for `txlint --self-test`.

fn report(v: &TVar<u64>) {
    atomic(|tx| { println!("value = {}", v.read(tx)); }); // line 7: TX001
}
