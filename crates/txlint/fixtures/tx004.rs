//! Seeded TX004 violation: commit handler with no paired abort handler.
//! NOT compiled — input for `txlint --self-test`.

fn unpaired_commit_handler() {
    atomic(|tx| {
        let removed = work.poll(tx);
        tx.on_commit(move |h| {
            // Publishes open-nested state at commit...
            publish(h, removed);
        }); // TX004: ...but nothing compensates on abort
    });
}
