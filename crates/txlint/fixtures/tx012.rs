//! Seeded TX012 violation: a fast-path file still routing read-only
//! backend observations through a full open-nested child instead of the
//! flattened `Txn::open_read` — the child frame and unwind guard buy
//! nothing for a body that never mutates.
//! NOT compiled — input for `txlint --self-test`.

// txlint: fast-path

impl SlowReadMap {
    fn lookup(&self, tx: &mut Txn, key: &Key) -> Option<Value> {
        let backend = &self.core.class().backend;
        tx.open(|otx| backend.get(otx, key)) // TX012: read-only body in a real open
    }

    fn count(&self, tx: &mut Txn) -> usize {
        let backend = &self.core.class().backend;
        tx.open(|otx| backend.len(otx)) // TX012: read-only body in a real open
    }

    fn take(&self, tx: &mut Txn) -> Option<Value> {
        let backend = &self.core.class().backend;
        tx.open(|otx| backend.pop_front(otx)) // fine: mutating open stays a child
    }
}
