//! Seeded TX002 violations: TVar access that bypasses or escapes
//! transaction context. NOT compiled — input for `txlint --self-test`.

fn read_around_isolation() {
    atomic(|tx| {
        let snapshot = balance.read_committed(); // TX002: bypasses isolation
        if snapshot > 0 {
            balance.write(tx, snapshot - 1);
        }
    });
}

fn escaped_txn_handle() {
    let cell = TVar::new(0u64);
    let stale = steal_txn_handle();
    cell.read(stale); // TX002: outside any transaction context
    cell.write(stale, 7); // TX002: outside any transaction context
}
