//! Seeded TX008 violation: direct top-level handler registration in a
//! semantic-tables file that is not the kernel.
//! NOT compiled — input for `txlint --self-test`.
//!
//! txlint: semantic-tables

// A collection class re-implementing first-touch registration by hand
// instead of going through SemanticCore::ensure_registered. The ordering
// obligation (probe -> commit handler -> abort handler -> locals insert)
// must live in the kernel file only.
fn register(table: &Table, tx: &mut Txn) {
    let id = tx.handle().id();
    tx.on_commit_top(move |htx| table.apply(htx, id)); // TX008
    tx.on_abort_top(move |htx| table.release(htx, id)); // TX008
}
