//! Seeded TX006 violation: exported commit-path internal.
//! NOT compiled — input for `txlint --self-test`.
//!
//! txlint: commit-internals

// Bare `pub` leaks the commit protocol's surface out of the crate.
pub fn fresh_version() -> u64 {
    // TX006
    0
}

// Crate-private is the sanctioned visibility for commit internals.
pub(crate) fn now() -> u64 {
    0
}

fn lane_width() -> usize {
    1
}
