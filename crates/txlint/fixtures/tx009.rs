//! Seeded TX009 violations: allocating payload construction at trace
//! emission sites.
//! NOT compiled — input for `txlint --self-test`.

// Every emission below builds its payload on the hot path instead of
// passing integers and a pre-interned Sym.
fn emit_with_allocations(id: u64, cause: AbortCause, class_name: &str, label: &Label) {
    // Interning per event takes the global symbol-table mutex on a path
    // that runs under contention; the Sym belongs in the class constructor.
    trace::sem_lock_blocked(intern(class_name), 3); // TX009

    // format! allocates a String per event.
    trace::txn_abort(id, cause, format!("doomed by {id}")); // TX009

    // So do String::from and .to_string().
    trace::doom_edge(id, id + 1, String::from("map"), kind, hash, obs, effect, false); // TX009
    trace::lane_enter(label.to_string()); // TX009
}
