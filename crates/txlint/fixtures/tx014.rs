//! Seeded TX014 violations: allocating payload construction at metrics
//! emission sites in a marked file.
//! NOT compiled — input for `txlint --self-test`.
//!
//! txlint: metrics

// Every emission below builds its payload on the hot path instead of
// passing integers and a Sym interned once at collection construction.
fn emit_with_allocations(stripe: u64, ns: u64, class_name: &str, label: &Label) {
    // Interning per emission takes the global symbol-table mutex on a path
    // that runs inside the commit machinery; the Sym belongs in the class
    // constructor.
    metrics::doom_landed(intern(class_name), stripe); // TX014

    // format! allocates a String per emission.
    metrics::cache_hit(sym_for(format!("{class_name}-hot"))); // TX014

    // So do String::from and .to_string().
    metrics::stripe_blocked(sym_for(String::from("map")), stripe); // TX014
    metrics::hist_record_ns(kind_of(label.to_string()), ns); // TX014
}
