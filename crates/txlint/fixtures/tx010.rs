//! Seeded TX010 violation: a conflict-graph declaration with asymmetric
//! compatibility — `peek` conflicts with `poke`'s key writes, `poke` both
//! observes the key and publishes the write, but the mirrored edge
//! (`poke` doomed by `peek`'s writes) is missing.
//! NOT compiled — input for `txlint --self-test`.

// txlint: conflict-graph
pub static BROKEN_CONFLICT_GRAPH: ConflictGraph<'static> = ConflictGraph {
    class: "broken",
    ops: &[
        op("peek", &[ObsMode::Key], &[UpdateEffect::KeyWrite]),
        op("poke", &[ObsMode::Key], &[UpdateEffect::KeyWrite]),
    ],
    edges: &[
        edge("peek", "poke", ObsMode::Key, UpdateEffect::KeyWrite, Overlap::OnOverlap), // TX010: no mirror
        edge("peek", "peek", ObsMode::Key, UpdateEffect::KeyWrite, Overlap::OnOverlap),
        edge("poke", "poke", ObsMode::Key, UpdateEffect::KeyWrite, Overlap::OnOverlap),
    ],
};
