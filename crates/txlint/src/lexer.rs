//! A small hand-rolled Rust lexer — just enough fidelity for txlint's
//! lexical analyses (identifiers, punctuation, bracket structure), with
//! comments and string/char contents stripped so that nothing inside them
//! can fake a call site. Line/column positions are 1-based, matching rustc
//! diagnostics.

/// Kinds of tokens txlint distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// A single punctuation character (`(`, `.`, `!`, `|`, ...).
    Punct,
    /// String, raw-string, byte-string, or char literal (contents dropped).
    Literal,
    /// Numeric literal.
    Num,
    /// Lifetime (`'a`).
    Lifetime,
}

/// One token with its source position.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    /// Token text; for `Literal` this is a placeholder, not the contents.
    pub text: String,
    pub line: u32,
    pub col: u32,
}

impl Tok {
    /// The token's single punctuation char, if it is punctuation.
    pub fn punct(&self) -> Option<char> {
        if self.kind == TokKind::Punct {
            self.text.chars().next()
        } else {
            None
        }
    }

    /// True if this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_cont(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Consume a `"`-delimited string body (opening quote already consumed).
fn skip_string(c: &mut Cursor) {
    while let Some(b) = c.bump() {
        match b {
            b'\\' => {
                c.bump();
            }
            b'"' => return,
            _ => {}
        }
    }
}

/// Consume a raw string `r##"..."##` (the `r` already consumed; `c` sits on
/// the first `#` or `"`).
fn skip_raw_string(c: &mut Cursor) {
    let mut hashes = 0usize;
    while c.peek() == Some(b'#') {
        c.bump();
        hashes += 1;
    }
    if c.peek() != Some(b'"') {
        return; // not actually a raw string; give up gracefully
    }
    c.bump();
    loop {
        match c.bump() {
            None => return,
            Some(b'"') => {
                let mut seen = 0usize;
                while seen < hashes && c.peek() == Some(b'#') {
                    c.bump();
                    seen += 1;
                }
                if seen == hashes {
                    return;
                }
            }
            _ => {}
        }
    }
}

/// Lex `src` into tokens, skipping whitespace and comments.
pub fn lex(src: &str) -> Vec<Tok> {
    let mut c = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut toks = Vec::new();
    while let Some(b) = c.peek() {
        let (line, col) = (c.line, c.col);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                c.bump();
            }
            b'/' if c.peek2() == Some(b'/') => {
                while let Some(b) = c.peek() {
                    if b == b'\n' {
                        break;
                    }
                    c.bump();
                }
            }
            b'/' if c.peek2() == Some(b'*') => {
                c.bump();
                c.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match (c.peek(), c.peek2()) {
                        (Some(b'*'), Some(b'/')) => {
                            c.bump();
                            c.bump();
                            depth -= 1;
                        }
                        (Some(b'/'), Some(b'*')) => {
                            c.bump();
                            c.bump();
                            depth += 1;
                        }
                        (Some(_), _) => {
                            c.bump();
                        }
                        (None, _) => break,
                    }
                }
            }
            b'"' => {
                c.bump();
                skip_string(&mut c);
                toks.push(Tok {
                    kind: TokKind::Literal,
                    text: "\"..\"".into(),
                    line,
                    col,
                });
            }
            b'\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                c.bump();
                if c.peek().is_some_and(is_ident_start) && c.peek() != Some(b'\\') {
                    let mut name = String::new();
                    while c.peek().is_some_and(is_ident_cont) {
                        name.push(c.bump().unwrap() as char);
                    }
                    if c.peek() == Some(b'\'') {
                        // Single-char literal like 'a'.
                        c.bump();
                        toks.push(Tok {
                            kind: TokKind::Literal,
                            text: "'.'".into(),
                            line,
                            col,
                        });
                    } else {
                        toks.push(Tok {
                            kind: TokKind::Lifetime,
                            text: name,
                            line,
                            col,
                        });
                    }
                } else {
                    // Escaped or symbolic char literal.
                    if c.peek() == Some(b'\\') {
                        c.bump();
                    }
                    c.bump();
                    if c.peek() == Some(b'\'') {
                        c.bump();
                    }
                    toks.push(Tok {
                        kind: TokKind::Literal,
                        text: "'.'".into(),
                        line,
                        col,
                    });
                }
            }
            b'r' | b'b'
                if matches!(c.peek2(), Some(b'"') | Some(b'#'))
                    && (b == b'r' || c.peek2() == Some(b'"')) =>
            {
                // r"..", r#".."#, b".." raw/byte strings. `b#` is not a
                // string start, hence the guard above.
                let first = c.bump().unwrap();
                if first == b'b' && c.peek() == Some(b'"') {
                    c.bump();
                    skip_string(&mut c);
                } else if first == b'r' {
                    skip_raw_string(&mut c);
                }
                toks.push(Tok {
                    kind: TokKind::Literal,
                    text: "\"..\"".into(),
                    line,
                    col,
                });
            }
            _ if is_ident_start(b) => {
                let mut text = String::new();
                while c.peek().is_some_and(is_ident_cont) {
                    text.push(c.bump().unwrap() as char);
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text,
                    line,
                    col,
                });
            }
            _ if b.is_ascii_digit() => {
                let mut text = String::new();
                while c.peek().is_some_and(is_ident_cont) {
                    text.push(c.bump().unwrap() as char);
                }
                toks.push(Tok {
                    kind: TokKind::Num,
                    text,
                    line,
                    col,
                });
            }
            _ => {
                c.bump();
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: (b as char).to_string(),
                    line,
                    col,
                });
            }
        }
    }
    toks
}

/// For every opening bracket token index, the index of its matching closer.
/// Unbalanced brackets are simply absent from the map.
pub fn match_brackets(toks: &[Tok]) -> std::collections::HashMap<usize, usize> {
    let mut map = std::collections::HashMap::new();
    let mut stack: Vec<(char, usize)> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        match t.punct() {
            Some(open @ ('(' | '[' | '{')) => stack.push((open, i)),
            Some(close @ (')' | ']' | '}')) => {
                let want = match close {
                    ')' => '(',
                    ']' => '[',
                    _ => '{',
                };
                // Pop until we find the matching opener (tolerates stray
                // closers from lexing approximations).
                while let Some((open, oi)) = stack.pop() {
                    if open == want {
                        map.insert(oi, i);
                        break;
                    }
                }
            }
            _ => {}
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_idents_and_puncts() {
        let toks = lex("tx.atomic(|tx| x + 1)");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            vec!["tx", ".", "atomic", "(", "|", "tx", "|", "x", "+", "1", ")"]
        );
    }

    #[test]
    fn strings_and_comments_are_opaque() {
        let toks = lex("a // atomic(\n b /* atomic( */ c \"atomic(\" 'x' r#\"atomic(\"#");
        let idents: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, vec!["a", "b", "c"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = lex("&'a str 'x' '\\n'");
        assert_eq!(toks[1].kind, TokKind::Lifetime);
        assert_eq!(toks[1].text, "a");
        assert_eq!(toks[3].kind, TokKind::Literal);
        assert_eq!(toks[4].kind, TokKind::Literal);
    }

    #[test]
    fn positions_are_one_based() {
        let toks = lex("a\n  b");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn bracket_matching_nests() {
        let toks = lex("f(a, (b), [c{d}])");
        let m = match_brackets(&toks);
        // f ( a , ( b ) , [ c { d } ] )
        // 0 1 2 3 4 5 6 7 8 9 ...
        assert_eq!(m[&1], toks.len() - 1);
        assert_eq!(m[&4], 6);
    }
}
