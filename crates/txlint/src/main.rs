//! txlint CLI.
//!
//! ```text
//! cargo run -p txlint --                 # lint the workspace + oracle check
//! cargo run -p txlint -- path/ file.rs   # lint specific paths
//! cargo run -p txlint -- --self-test     # run the seeded-violation fixtures
//! cargo run -p txlint -- --oracle        # conflict-matrix oracle only
//! cargo run -p txlint -- --format json . # findings as a JSON array
//! ```
//!
//! Exit codes: 0 clean, 1 findings/oracle mismatch/self-test failure,
//! 2 usage or I/O error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use txlint::{check_file, collect_rs_files, to_json, Finding, ALL_CODES};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut self_test = false;
    let mut oracle_only = false;
    let mut skip_oracle = false;
    let mut format_json = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--self-test" => self_test = true,
            "--oracle" => oracle_only = true,
            "--no-oracle" => skip_oracle = true,
            "--format" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("json") => format_json = true,
                    Some("rustc") => format_json = false,
                    other => {
                        eprintln!(
                            "txlint: --format expects `json` or `rustc`, got {:?}",
                            other.unwrap_or("<nothing>")
                        );
                        print_usage();
                        return ExitCode::from(2);
                    }
                }
            }
            "--format=json" => format_json = true,
            "--format=rustc" => format_json = false,
            "--help" | "-h" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("txlint: unknown flag `{flag}`");
                print_usage();
                return ExitCode::from(2);
            }
            p => paths.push(PathBuf::from(p)),
        }
        i += 1;
    }

    if self_test {
        return run_self_test();
    }

    let mut failed = false;
    if !skip_oracle {
        let errors = txlint::oracle::check();
        if errors.is_empty() {
            eprintln!(
                "txlint: conflict-matrix oracle OK ({} table rows + {} declared graphs agree with mode_compatible)",
                txlint::oracle::ROWS.len(),
                txlint::oracle::declared_graph_classes().len()
            );
        } else {
            for e in &errors {
                eprintln!("error[oracle]: {e}");
            }
            failed = true;
        }
        if oracle_only {
            return if failed {
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            };
        }
    }

    if paths.is_empty() {
        paths.push(PathBuf::from("."));
    }
    let mut files: Vec<PathBuf> = Vec::new();
    for p in &paths {
        if p.is_dir() {
            files.extend(collect_rs_files(p));
        } else if p.is_file() {
            files.push(p.clone());
        } else {
            eprintln!("txlint: no such path: {}", p.display());
            return ExitCode::from(2);
        }
    }

    let mut findings: Vec<Finding> = Vec::new();
    let nfiles = files.len();
    for f in files {
        match check_file(&f) {
            Ok(mut fs) => findings.append(&mut fs),
            Err(e) => {
                eprintln!("txlint: {}: {e}", f.display());
                return ExitCode::from(2);
            }
        }
    }
    if format_json {
        println!("{}", to_json(&findings));
    } else {
        for f in &findings {
            println!("{f}");
        }
    }
    eprintln!(
        "txlint: {} file(s) checked, {} finding(s)",
        nfiles,
        findings.len()
    );
    if failed || !findings.is_empty() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn print_usage() {
    eprintln!(
        "usage: txlint [--self-test | --oracle | --no-oracle] [--format json|rustc] [paths...]"
    );
}

/// Run the analyzer over the seeded-violation fixtures and assert each rule
/// fires where expected (and nowhere on the clean fixture).
fn run_self_test() -> ExitCode {
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let mut ok = true;

    for code in ALL_CODES {
        let path = fixtures.join(format!("{}.rs", code.to_lowercase()));
        match check_file(&path) {
            Ok(findings) => {
                let hit = findings.iter().filter(|f| f.code == code).count();
                let other: Vec<&Finding> = findings.iter().filter(|f| f.code != code).collect();
                if hit == 0 {
                    eprintln!(
                        "self-test FAIL: {} produced no {code} finding",
                        path.display()
                    );
                    ok = false;
                } else if !other.is_empty() {
                    for f in other {
                        eprintln!(
                            "self-test FAIL: unexpected finding in {}:\n{f}",
                            path.display()
                        );
                    }
                    ok = false;
                } else {
                    eprintln!("self-test ok: {code} fires {hit}x on {}", path.display());
                }
            }
            Err(e) => {
                eprintln!("self-test FAIL: {}: {e}", path.display());
                ok = false;
            }
        }
    }

    // The clean fixture contains the same shapes with allow annotations or
    // the sanctioned alternatives: zero findings expected.
    let clean = fixtures.join("clean.rs");
    match check_file(&clean) {
        Ok(findings) if findings.is_empty() => {
            eprintln!("self-test ok: clean fixture produces no findings");
        }
        Ok(findings) => {
            for f in findings {
                eprintln!("self-test FAIL: clean fixture flagged:\n{f}");
            }
            ok = false;
        }
        Err(e) => {
            eprintln!("self-test FAIL: {}: {e}", clean.display());
            ok = false;
        }
    }

    // The JSON output mode must render the fixture's known findings with
    // the stable schema (and escape the message text correctly).
    let json_fixture = fixtures.join("json_format.rs");
    match check_file(&json_fixture) {
        Ok(findings) => {
            let json = to_json(&findings);
            let expected = [
                "\"code\":\"TX001\"",
                "\"line\":7",
                "\"message\":\"irrevocable console I/O `println!` inside a transaction\"",
                "\"help\":",
            ];
            let shape_ok = json.starts_with('[')
                && json.ends_with(']')
                && findings.len() == 1
                && expected.iter().all(|s| json.contains(s));
            if shape_ok {
                eprintln!("self-test ok: --format json renders the expected schema");
            } else {
                eprintln!(
                    "self-test FAIL: JSON output for {} malformed:\n{json}",
                    json_fixture.display()
                );
                ok = false;
            }
        }
        Err(e) => {
            eprintln!("self-test FAIL: {}: {e}", json_fixture.display());
            ok = false;
        }
    }

    let oracle_errors = txlint::oracle::check();
    if !oracle_errors.is_empty() {
        for e in oracle_errors {
            eprintln!("self-test FAIL: oracle: {e}");
        }
        ok = false;
    }

    if ok {
        eprintln!("txlint self-test: all rules verified");
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
