//! The conflict-matrix oracle: paper Tables 1–8 as machine-readable data.
//!
//! Each [`TableRow`] is one cell of the paper's conflict tables — a
//! concrete reader operation against a concrete committing update, with the
//! paper's verdict on whether they conflict. The oracle replays every row
//! against [`txcollections::mode_compatible`], the single function the
//! production doom protocol dispatches through (via
//! `MapLockTables::doom_update` / `SortedLockTables::doom_update` and the
//! queue commit handler). Any divergence between these rows and that
//! function is a bug in one of them.
//!
//! The same rows are checked *dynamically* by
//! `crates/core/tests/oracle_matrix.rs`, which drives real two-transaction
//! executions through the collections and asserts the doom protocol agrees.
//!
//! Since the lock matrices became *synthesized* from declared conflict
//! graphs, the oracle also validates the synthesis pipeline
//! ([`check_declared_graphs`]): every in-tree [`ConflictGraph`] declaration
//! must be well-formed, its synthesized matrix must agree with the
//! hand-written [`mode_compatible_spec`] on every cell the graph reaches,
//! and the generated production [`mode_compatible`] must equal the spec on
//! all 84 `(mode, effect, overlap)` cells.

use txcollections::{
    declared_graphs, mode_compatible, mode_compatible_spec, reachable_cells, synthesize, validate,
    ObsMode, UpdateEffect,
};

/// One cell of paper Tables 1–8.
#[derive(Debug, Clone, Copy)]
pub struct TableRow {
    /// Which paper table the cell comes from.
    pub table: &'static str,
    /// The observing (reader) operation.
    pub observer: &'static str,
    /// The committing update.
    pub update: &'static str,
    /// The semantic lock mode the observer holds.
    pub obs: ObsMode,
    /// The abstract effect the update publishes against that mode.
    pub effect: UpdateEffect,
    /// Whether the update's key hits the observed key/range (ignored for
    /// whole-collection modes).
    pub overlap: bool,
    /// The paper's verdict: do the operations conflict (observer doomed)?
    pub conflicts: bool,
}

const fn row(
    table: &'static str,
    observer: &'static str,
    update: &'static str,
    obs: ObsMode,
    effect: UpdateEffect,
    overlap: bool,
    conflicts: bool,
) -> TableRow {
    TableRow {
        table,
        observer,
        update,
        obs,
        effect,
        overlap,
        conflicts,
    }
}

/// Paper Tables 1–8, distilled to (mode, effect, overlap) cells.
pub const ROWS: &[TableRow] = &[
    // ------------------------------------------------------------------
    // Tables 1–2: TransactionalMap — get/containsKey/size/isEmpty vs
    // put/remove.
    // ------------------------------------------------------------------
    row(
        "Table 1",
        "get(k)",
        "put(k, v)",
        ObsMode::Key,
        UpdateEffect::KeyWrite,
        true,
        true,
    ),
    row(
        "Table 1",
        "get(k)",
        "put(k', v)",
        ObsMode::Key,
        UpdateEffect::KeyWrite,
        false,
        false,
    ),
    row(
        "Table 1",
        "get(k)",
        "remove(k)",
        ObsMode::Key,
        UpdateEffect::KeyWrite,
        true,
        true,
    ),
    row(
        "Table 1",
        "get(k)",
        "remove(k')",
        ObsMode::Key,
        UpdateEffect::KeyWrite,
        false,
        false,
    ),
    row(
        "Table 1",
        "containsKey(k)",
        "put(k, v) [new]",
        ObsMode::Key,
        UpdateEffect::KeyWrite,
        true,
        true,
    ),
    row(
        "Table 1",
        "size()",
        "put(k, v) [new key]",
        ObsMode::Size,
        UpdateEffect::SizeChange,
        false,
        true,
    ),
    row(
        "Table 1",
        "size()",
        "put(k, v) [replace]",
        ObsMode::Size,
        UpdateEffect::KeyWrite,
        true,
        false,
    ),
    row(
        "Table 1",
        "size()",
        "remove(k) [present]",
        ObsMode::Size,
        UpdateEffect::SizeChange,
        false,
        true,
    ),
    row(
        "Table 2",
        "isEmpty() [§5.1 primitive]",
        "put into empty map",
        ObsMode::Empty,
        UpdateEffect::ZeroCross,
        false,
        true,
    ),
    row(
        "Table 2",
        "isEmpty() [§5.1 primitive]",
        "put into non-empty map",
        ObsMode::Empty,
        UpdateEffect::SizeChange,
        false,
        false,
    ),
    row(
        "Table 2",
        "isEmpty() [§5.1 primitive]",
        "remove leaving non-empty",
        ObsMode::Empty,
        UpdateEffect::SizeChange,
        false,
        false,
    ),
    row(
        "Table 2",
        "isEmpty() [§5.1 primitive]",
        "remove last element",
        ObsMode::Empty,
        UpdateEffect::ZeroCross,
        false,
        true,
    ),
    row(
        "Table 2",
        "iterator.next() -> k",
        "put(k, v)",
        ObsMode::Key,
        UpdateEffect::KeyWrite,
        true,
        true,
    ),
    row(
        "Table 2",
        "exhausted iteration",
        "put(k, v) [new key]",
        ObsMode::Size,
        UpdateEffect::SizeChange,
        false,
        true,
    ),
    // ------------------------------------------------------------------
    // Tables 4–5: TransactionalSortedMap — firstKey/lastKey/subMap
    // iteration vs endpoint-moving and in-range updates.
    // ------------------------------------------------------------------
    row(
        "Table 4",
        "firstKey()",
        "put(k < first)",
        ObsMode::First,
        UpdateEffect::FirstChange,
        false,
        true,
    ),
    row(
        "Table 4",
        "firstKey()",
        "put(interior k)",
        ObsMode::First,
        UpdateEffect::KeyWrite,
        false,
        false,
    ),
    row(
        "Table 4",
        "firstKey()",
        "remove(first)",
        ObsMode::First,
        UpdateEffect::FirstChange,
        false,
        true,
    ),
    row(
        "Table 4",
        "lastKey()",
        "put(k > last)",
        ObsMode::Last,
        UpdateEffect::LastChange,
        false,
        true,
    ),
    row(
        "Table 4",
        "lastKey()",
        "put(interior k)",
        ObsMode::Last,
        UpdateEffect::KeyWrite,
        false,
        false,
    ),
    row(
        "Table 4",
        "lastKey()",
        "remove(last)",
        ObsMode::Last,
        UpdateEffect::LastChange,
        false,
        true,
    ),
    row(
        "Table 5",
        "subMap(a..b) iteration",
        "put(k in [a,b))",
        ObsMode::Range,
        UpdateEffect::KeyWrite,
        true,
        true,
    ),
    row(
        "Table 5",
        "subMap(a..b) iteration",
        "put(k not in [a,b))",
        ObsMode::Range,
        UpdateEffect::KeyWrite,
        false,
        false,
    ),
    row(
        "Table 5",
        "subMap(a..b) iteration",
        "remove(k in [a,b))",
        ObsMode::Range,
        UpdateEffect::KeyWrite,
        true,
        true,
    ),
    row(
        "Table 5",
        "subMap(a..b) iteration",
        "first-key change outside range",
        ObsMode::Range,
        UpdateEffect::FirstChange,
        false,
        false,
    ),
    // ------------------------------------------------------------------
    // Tables 7–8: TransactionalQueue — emptiness/fullness observations vs
    // producing and consuming commits. The queue is deliberately unordered
    // (§3.3), so observing *an* element commutes with everything except a
    // write of that same element.
    // ------------------------------------------------------------------
    row(
        "Table 7",
        "poll() -> null [empty lock]",
        "put() making queue non-empty",
        ObsMode::Empty,
        UpdateEffect::ZeroCross,
        false,
        true,
    ),
    row(
        "Table 7",
        "poll() -> null [empty lock]",
        "put() onto non-empty queue",
        ObsMode::Empty,
        UpdateEffect::SizeChange,
        false,
        false,
    ),
    row(
        "Table 7",
        "peek() -> item",
        "put() of another item",
        ObsMode::Key,
        UpdateEffect::KeyWrite,
        false,
        false,
    ),
    row(
        "Table 7",
        "poll() -> item",
        "take() of another item",
        ObsMode::Key,
        UpdateEffect::KeyWrite,
        false,
        false,
    ),
    row(
        "Table 8",
        "offer() -> false [full lock]",
        "take() freeing capacity",
        ObsMode::Full,
        UpdateEffect::Consume,
        false,
        true,
    ),
    row(
        "Table 8",
        "offer() -> false [full lock]",
        "put() onto the full queue",
        ObsMode::Full,
        UpdateEffect::SizeChange,
        false,
        false,
    ),
    row(
        "Table 8",
        "offer() -> false [full lock]",
        "value-replacing update",
        ObsMode::Full,
        UpdateEffect::KeyWrite,
        false,
        false,
    ),
];

/// Replay every table row against `mode_compatible`. Returns one line per
/// mismatch; empty means the production compatibility function agrees with
/// the paper's tables cell-for-cell.
pub fn check() -> Vec<String> {
    let mut errors = Vec::new();
    for r in ROWS {
        let compatible = mode_compatible(r.obs, r.effect, r.overlap);
        if compatible == r.conflicts {
            errors.push(format!(
                "{}: `{}` vs `{}`: paper says conflicts={}, mode_compatible({:?}, {:?}, {}) = {}",
                r.table, r.observer, r.update, r.conflicts, r.obs, r.effect, r.overlap, compatible
            ));
        }
    }
    // Structural invariants of the full matrix, beyond the sampled rows:
    // exactly the seven paired (mode, effect) cells conflict under overlap,
    // and only the five whole-collection pairs conflict without overlap.
    let conflicting_overlap = ObsMode::ALL
        .iter()
        .flat_map(|o| UpdateEffect::ALL.iter().map(move |e| (*o, *e)))
        .filter(|&(o, e)| !mode_compatible(o, e, true))
        .count();
    if conflicting_overlap != 7 {
        errors.push(format!(
            "matrix shape: expected 7 conflicting (mode, effect) pairs with overlap, got {conflicting_overlap}"
        ));
    }
    let conflicting_no_overlap = ObsMode::ALL
        .iter()
        .flat_map(|o| UpdateEffect::ALL.iter().map(move |e| (*o, *e)))
        .filter(|&(o, e)| !mode_compatible(o, e, false))
        .count();
    if conflicting_no_overlap != 5 {
        errors.push(format!(
            "matrix shape: expected 5 conflicting (mode, effect) pairs without overlap, got {conflicting_no_overlap}"
        ));
    }
    errors.extend(check_declared_graphs());
    errors
}

/// Validate every in-tree conflict-graph declaration and the matrices
/// synthesized from them, three ways:
///
/// 1. each declared graph passes [`validate`] (symmetry, reflexivity,
///    commutativity closure, referential integrity);
/// 2. each graph's synthesized matrix agrees with the hand-written
///    [`mode_compatible_spec`] on every `(mode, effect, overlap)` cell the
///    graph's declarations reach;
/// 3. the generated production [`mode_compatible`] (the union of all
///    synthesized matrices) equals the spec on all 84 cells — exhaustively,
///    including cells no single graph reaches.
pub fn check_declared_graphs() -> Vec<String> {
    let mut errors = Vec::new();
    for graph in declared_graphs() {
        let class = graph.class;
        let declaration_errors = validate(graph);
        if !declaration_errors.is_empty() {
            errors.extend(declaration_errors);
            continue;
        }
        match synthesize(graph) {
            Ok(synth) => {
                for (obs, effect, overlap) in reachable_cells(graph) {
                    let got = synth.matrix.compatible(obs, effect, overlap);
                    let want = mode_compatible_spec(obs, effect, overlap);
                    if got != want {
                        errors.push(format!(
                            "{class}: synthesized matrix disagrees with spec on \
                             ({obs:?}, {effect:?}, overlap={overlap}): synthesized={got}, spec={want}"
                        ));
                    }
                }
            }
            Err(es) => errors.extend(es),
        }
    }
    // The production dispatch function is generated from the union of the
    // declarations; it must be *identical* to the historic hand-written
    // table — all 7 modes x 6 effects x 2 overlap values.
    for o in ObsMode::ALL {
        for e in UpdateEffect::ALL {
            for overlap in [false, true] {
                let generated = mode_compatible(o, e, overlap);
                let spec = mode_compatible_spec(o, e, overlap);
                if generated != spec {
                    errors.push(format!(
                        "generated mode_compatible({o:?}, {e:?}, {overlap}) = {generated}, \
                         but mode_compatible_spec says {spec}"
                    ));
                }
            }
        }
    }
    errors
}

/// The class names of the declared graphs the oracle covers.
pub fn declared_graph_classes() -> Vec<&'static str> {
    declared_graphs().iter().map(|g| g.class).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_agrees_with_production_matrix() {
        let errors = check();
        assert!(
            errors.is_empty(),
            "oracle mismatches:\n{}",
            errors.join("\n")
        );
    }

    #[test]
    fn rows_cover_every_observation_mode_and_effect() {
        for o in ObsMode::ALL {
            assert!(
                ROWS.iter().any(|r| r.obs == o),
                "no table row exercises {o:?}"
            );
        }
        for e in UpdateEffect::ALL {
            assert!(
                ROWS.iter().any(|r| r.effect == e),
                "no table row exercises {e:?}"
            );
        }
    }

    #[test]
    fn every_declared_graph_synthesizes_to_the_spec() {
        let errors = check_declared_graphs();
        assert!(
            errors.is_empty(),
            "synthesis mismatches:\n{}",
            errors.join("\n")
        );
    }

    #[test]
    fn every_collection_class_declares_a_graph() {
        let classes = declared_graph_classes();
        for c in [
            "map",
            "sorted_map",
            "queue",
            "set",
            "eager_map",
            "multiset",
            "priority_queue",
            "interval_map",
        ] {
            assert!(classes.contains(&c), "no declared conflict graph for {c}");
        }
    }

    #[test]
    fn rows_include_both_verdicts_per_table() {
        for t in ["Table 1", "Table 4", "Table 5", "Table 7", "Table 8"] {
            assert!(ROWS.iter().any(|r| r.table == t && r.conflicts));
            assert!(ROWS.iter().any(|r| r.table == t && !r.conflicts));
        }
    }
}
