//! txlint — STM-discipline static analysis for this workspace.
//!
//! The transactional collection classes of the paper only work if user code
//! follows the STM discipline: no irrevocable side effects inside
//! transactions (they cannot be rolled back when the transaction is doomed
//! and re-executed), no unpaired commit handlers (open-nested state needs a
//! compensating abort path), no swallowed abort control flow (doom/retry
//! propagate by unwinding in this runtime). rustc cannot check any of this,
//! so txlint does it lexically: it finds the argument spans of
//! `atomic(..)` / `atomic_with(..)` / `speculate(..)` / `.closed(..)` /
//! `.open(..)` calls (transaction regions) and of `.on_commit*(..)` /
//! `.on_abort*(..)` / `.on_local_undo(..)` calls (handler regions, where
//! the discipline is deliberately relaxed — handlers run under the commit
//! mutex and MAY touch locks and I/O), then applies the TXxxx rules below.
//!
//! | code  | violation |
//! |-------|-----------|
//! | TX001 | irrevocable side effect (I/O, lock acquisition, channel send, sleep) inside a transaction region, outside any handler region |
//! | TX002 | TVar access that bypasses or escapes transaction context (`read_committed` inside a transaction; `TVar::read`/`write` outside any transaction region or `Txn`-taking function) |
//! | TX003 | swallowing abort/retry control flow (`catch_unwind` inside a transaction region) |
//! | TX004 | commit handler registered with no paired abort handler in the same transaction region |
//! | TX005 | nested top-level `atomic`/`atomic_with`/`speculate` inside a transaction region (use `.closed(..)` / `.open(..)`) |
//! | TX006 | non-`pub(crate)` visibility in a file carrying the commit-internals marker comment (the sharded commit protocol's surface — `stm`'s clock/var-lock/handler-lane module — must stay crate-private) |
//! | TX007 | raw stripe access (`stripes[i]` indexing or a `.lock()` on a `stripes` element) in a file carrying the semantic-tables marker comment — stripes must be acquired through the ordered helpers (`with_stripe_for` / `for_stripes_ascending` / `with_global`), which preserve the stripes-ascending lock order the doom-protocol proof depends on |
//! | TX008 | direct `.on_commit_top(..)` / `.on_abort_top(..)` handler registration in a file carrying the semantic-tables marker but not the semantic-kernel marker — collection classes must register through `SemanticCore::ensure_registered`, so the probe → commit handler → abort handler → locals-insert ordering lives in exactly one place (the kernel file) |
//! | TX009 | allocation inside a trace-emission call (`format!`, `String::..`, `.to_string()`/`.to_owned()`, or per-event `intern(..)` in the argument span of an `stm::trace` emitter) — trace events are fixed-width word-packed records pushed from commit/abort/lock hot paths; class names are interned once at collection construction |
//! | TX010 | ill-formed conflict-graph declaration in a file carrying the conflict-graph marker comment — `ConflictGraph` initializers are checked for referential integrity (edges reference declared ops, modes/effects the ops declare), commutativity closure (overlap-gated edges only on keyed modes with `KeyWrite`; `Always` never on keyed modes), symmetry (no asymmetric compatibility: a conflicting pair whose roles both hold in reverse needs the mirrored edge), and reflexivity (a mutating observer needs its self-edge on every cell the graph declares conflicting). The same rules run semantically via `synthesize()` at core construction; TX010 catches them at lint time, before anything runs |
//! | TX011 | eager `backend.insert(..)` / `backend.remove(..)` with no `UndoOp` pairing nearby in a file carrying the boosted-backend marker comment — an in-place mutation against a boosted (non-transactional) backend must log its compensation through `SemanticCore::log_undo` (first write per key), or an abort cannot restore the pre-transaction state; the kernel replays logged entries newest-first before any semantic lock is released |
//! | TX012 | read-only open-nested body (`tx.open(..)` calling only read-layer backend methods) in a file carrying the fast-path marker — pays the full child-transaction protocol for observations `Txn::open_read` validates in place |
//! | TX013 | lock-acquiring or state-buffering kernel call (`take_*_lock`, `with_local`, `log_undo`, ...) in a file carrying the snapshot-mode marker — snapshot transactions run no release sweep and no handlers, so such a call leaks the lock or strands the buffered state |
//! | TX014 | allocation inside a metrics-emission call (`format!`, `String::..`, `.to_string()`/`.to_owned()`, or per-emission `intern(..)` in the argument span of an `stm::metrics` emitter) in a file carrying the metrics marker — metrics counters are fixed-key thread-local slab increments on commit/abort/lock hot paths; class names are interned once at collection construction |
//!
//! Findings are suppressed by `// txlint: allow(TXnnn)` on the finding's
//! line or the line above, or `// txlint: allow-file(TXnnn)` anywhere in
//! the file. See `docs/ANALYSIS.md`.
//!
//! Output is rustc-style by default; `--format json` emits the same
//! findings as a JSON array (see [`to_json`]) for editor/CI integration.

pub mod lexer;
pub mod oracle;
mod rules;

use std::fmt;
use std::path::{Path, PathBuf};

pub use rules::analyze_source;

/// One diagnostic produced by the analyzer.
#[derive(Debug, Clone)]
pub struct Finding {
    pub file: PathBuf,
    pub line: u32,
    pub col: u32,
    /// Rule code, e.g. `"TX001"`.
    pub code: &'static str,
    pub message: String,
    /// A fix-it style hint.
    pub help: &'static str,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}:{}:{}: error[{}]: {}",
            self.file.display(),
            self.line,
            self.col,
            self.code,
            self.message
        )?;
        write!(f, "    help: {}", self.help)
    }
}

/// All rule codes, for `--explain` style listings and self-tests.
pub const ALL_CODES: [&str; 14] = [
    "TX001", "TX002", "TX003", "TX004", "TX005", "TX006", "TX007", "TX008", "TX009", "TX010",
    "TX011", "TX012", "TX013", "TX014",
];

/// Escape a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render findings as a JSON array (the `--format json` output mode). The
/// schema is one object per finding:
/// `{"file", "line", "col", "code", "message", "help"}` — stable and
/// machine-parseable, unlike the rustc-style text.
pub fn to_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"file\":\"{}\",\"line\":{},\"col\":{},\"code\":\"{}\",\"message\":\"{}\",\"help\":\"{}\"}}",
            json_escape(&f.file.display().to_string()),
            f.line,
            f.col,
            f.code,
            json_escape(&f.message),
            json_escape(f.help)
        ));
    }
    if !findings.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

/// Apply `// txlint: allow(..)` / `allow-file(..)` annotations: drop every
/// finding whose code is allowed on its own line, the line above, or
/// file-wide.
pub fn apply_allowlist(src: &str, findings: Vec<Finding>) -> Vec<Finding> {
    let lines: Vec<&str> = src.lines().collect();
    let file_allows: Vec<String> = lines
        .iter()
        .flat_map(|l| parse_allow(l, "allow-file"))
        .collect();
    findings
        .into_iter()
        .filter(|f| {
            if file_allows.iter().any(|c| c == f.code) {
                return false;
            }
            let here = lines.get(f.line as usize - 1).copied().unwrap_or("");
            let above = if f.line >= 2 {
                lines.get(f.line as usize - 2).copied().unwrap_or("")
            } else {
                ""
            };
            !parse_allow(here, "allow")
                .iter()
                .chain(parse_allow(above, "allow").iter())
                .any(|c| c == f.code)
        })
        .collect()
}

/// Extract codes from a `// txlint: <verb>(TX001, TX002)` comment on
/// `line`. Any `//` segment of the line may carry the annotation; text may
/// follow the closing parenthesis (a rationale is encouraged).
fn parse_allow(line: &str, verb: &str) -> Vec<String> {
    line.split("//")
        .skip(1)
        .filter_map(|comment| {
            let rest = comment.trim().strip_prefix("txlint:")?.trim();
            // `allow-file` must not be matched by the `allow` prefix probe.
            if verb == "allow" && rest.starts_with("allow-file") {
                return None;
            }
            rest.strip_prefix(verb)
                .and_then(|r| r.trim().strip_prefix('('))
                .and_then(|r| r.split(')').next())
        })
        .flat_map(|args| args.split(',').map(|c| c.trim().to_string()))
        .collect()
}

/// Analyze one file from disk: lex, run the rules, apply the allowlist.
pub fn check_file(path: &Path) -> std::io::Result<Vec<Finding>> {
    let src = std::fs::read_to_string(path)?;
    Ok(apply_allowlist(&src, analyze_source(path, &src)))
}

/// Recursively collect workspace `.rs` files under `root`, skipping build
/// output, VCS metadata, vendored shims, and txlint's own violation
/// fixtures.
pub fn collect_rs_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if matches!(name.as_ref(), "target" | ".git" | "fixtures" | "vendor") {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(src: &str) -> Vec<&'static str> {
        let fs = apply_allowlist(src, analyze_source(Path::new("t.rs"), src));
        fs.iter().map(|f| f.code).collect()
    }

    #[test]
    fn allowlist_same_line_and_above() {
        let src = "fn f() { atomic(|tx| { println!(\"x\"); }); } // txlint: allow(TX001)\n";
        assert!(codes(src).is_empty());
        let src = "// txlint: allow(TX001)\nfn f() { atomic(|tx| { println!(\"x\"); }); }\n";
        assert!(codes(src).is_empty());
    }

    #[test]
    fn allow_file_suppresses_everywhere() {
        let src =
            "// txlint: allow-file(TX001)\n\n\nfn f() { atomic(|tx| { println!(\"x\"); }); }\n";
        assert!(codes(src).is_empty());
    }

    #[test]
    fn allow_of_other_code_does_not_suppress() {
        let src = "fn f() { atomic(|tx| { println!(\"x\"); }); } // txlint: allow(TX002)\n";
        assert_eq!(codes(src), vec!["TX001"]);
    }

    #[test]
    fn display_is_rustc_style() {
        let f = Finding {
            file: PathBuf::from("a/b.rs"),
            line: 3,
            col: 7,
            code: "TX001",
            message: "m".into(),
            help: "h",
        };
        let s = f.to_string();
        assert!(s.starts_with("a/b.rs:3:7: error[TX001]: m"));
        assert!(s.contains("help: h"));
    }
}
