//! The TXxxx rules, implemented over the token stream from [`crate::lexer`].
//!
//! The central abstraction is the *region*: the argument span of a call
//! that introduces transactional context. A token is "inside a transaction"
//! iff its index falls strictly inside some transaction region and outside
//! every handler region (handlers run under the handler lane after the
//! transaction's fate is decided, so the discipline is relaxed there by
//! design — that is where the collection classes themselves take locks and
//! mutate shared structures).

use crate::lexer::{lex, match_brackets, Tok, TokKind};
use crate::Finding;
use std::collections::{HashMap, HashSet};
use std::path::Path;

/// Call names whose argument span is a transaction region. `atomic_read`
/// belongs here: its snapshot body re-runs on the validated path after a
/// chain-truncation fallback, so the irrevocability and context rules bind
/// exactly as they do under `atomic`.
const TXN_ENTRY_FNS: [&str; 4] = ["atomic", "atomic_read", "atomic_with", "speculate"];
/// Method names (after `.`) whose argument span is a nested-transaction
/// region.
const TXN_NEST_METHODS: [&str; 2] = ["closed", "open"];
/// Method names whose argument span is a handler region.
const HANDLER_METHODS: [&str; 5] = [
    "on_commit",
    "on_commit_top",
    "on_abort",
    "on_abort_top",
    "on_local_undo",
];
/// Handler methods that register commit-side effects (TX004 trigger).
const COMMIT_HANDLERS: [&str; 2] = ["on_commit", "on_commit_top"];
/// Handler methods that give the transaction an abort/undo path (TX004
/// pairing).
const ABORT_HANDLERS: [&str; 3] = ["on_abort", "on_abort_top", "on_local_undo"];

/// Output macros whose expansion performs irrevocable console I/O.
const IO_MACROS: [&str; 5] = ["print", "println", "eprint", "eprintln", "dbg"];
/// Type paths whose associated functions open files, sockets, or processes.
const IO_TYPES: [&str; 6] = [
    "File",
    "OpenOptions",
    "TcpStream",
    "TcpListener",
    "UdpSocket",
    "Command",
];
/// Free functions performing irrevocable effects when called inside a
/// transaction.
const IO_FNS: [&str; 4] = ["stdin", "stdout", "stderr", "sleep"];

/// The `stm::trace` emission entry points. Their argument spans must stay
/// allocation-free: events are fixed-width word-packed records pushed from
/// commit/abort/lock hot paths, and class names are interned to [`Sym`]s
/// once at collection construction, never per event (TX009).
const TRACE_EMITTERS: [&str; 13] = [
    "txn_begin",
    "txn_commit",
    "txn_abort",
    "frame_retry",
    "open_commit",
    "open_retry",
    "lane_enter",
    "lane_exit",
    "var_lock_spin",
    "sem_lock_blocked",
    "sem_lock_acquired",
    "sem_lock_released",
    "doom_edge",
];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RegionKind {
    /// `atomic(..)` / `atomic_with(..)` / `speculate(..)` — a top-level
    /// transaction entry point.
    Entry,
    /// `.closed(..)` / `.open(..)` — a nested transaction.
    Nested,
}

#[derive(Debug)]
struct Region {
    /// Token index of the opening `(`.
    open: usize,
    /// Token index of the matching `)`.
    close: usize,
    kind: RegionKind,
    /// Token index of the call name (for TX005 reporting).
    name_idx: usize,
}

struct FileModel<'a> {
    toks: &'a [Tok],
    txn_regions: Vec<Region>,
    handler_regions: Vec<(usize, usize)>,
    /// Argument spans of `spawn(..)` calls: the closure runs on a fresh
    /// thread, outside any transaction lexically enclosing the call.
    escape_regions: Vec<(usize, usize)>,
    /// Body spans of `fn`s that take a `Txn` parameter — transactional
    /// context for TX002 purposes.
    txn_fn_bodies: Vec<(usize, usize)>,
    /// Names of locals bound to `TVar::new(..)` or typed `: TVar<..>`.
    tvar_locals: HashSet<String>,
}

impl FileModel<'_> {
    fn in_txn(&self, i: usize) -> bool {
        self.txn_regions.iter().any(|r| {
            r.open < i
                && i < r.close
                // A spawn(..) opened inside this region and containing the
                // token moves it to another thread: not this transaction.
                && !self
                    .escape_regions
                    .iter()
                    .any(|&(eo, ec)| r.open < eo && eo < i && i < ec)
        })
    }

    fn in_handler(&self, i: usize) -> bool {
        self.handler_regions.iter().any(|&(o, c)| o < i && i < c)
    }

    fn in_txn_fn(&self, i: usize) -> bool {
        self.txn_fn_bodies.iter().any(|&(o, c)| o < i && i < c)
    }

    /// Inside a transaction region and not inside a handler region: the
    /// span where the irrevocability discipline applies.
    fn in_strict_txn(&self, i: usize) -> bool {
        self.in_txn(i) && !self.in_handler(i)
    }
}

fn build_model<'a>(toks: &'a [Tok], brackets: &HashMap<usize, usize>) -> FileModel<'a> {
    let mut txn_regions = Vec::new();
    let mut handler_regions = Vec::new();
    let mut escape_regions = Vec::new();
    let mut txn_fn_bodies = Vec::new();
    let mut tvar_locals = HashSet::new();

    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let next_is_open = toks.get(i + 1).and_then(Tok::punct) == Some('(');
        let prev_punct = i.checked_sub(1).and_then(|p| toks[p].punct());
        let prev_is_fn_kw = i >= 1 && toks[i - 1].is_ident("fn");

        // Transaction entry calls: `atomic(..)` but not `fn atomic(..)`.
        if TXN_ENTRY_FNS.contains(&t.text.as_str()) && next_is_open && !prev_is_fn_kw {
            if let Some(&close) = brackets.get(&(i + 1)) {
                txn_regions.push(Region {
                    open: i + 1,
                    close,
                    kind: RegionKind::Entry,
                    name_idx: i,
                });
            }
        }
        // `thread::spawn(..)` / `scope.spawn(..)`: the closure runs on a
        // different thread.
        if t.is_ident("spawn") && next_is_open {
            if let Some(&close) = brackets.get(&(i + 1)) {
                escape_regions.push((i + 1, close));
            }
        }

        // Nested transactions and handler registrations are method calls.
        if prev_punct == Some('.') && next_is_open {
            if let Some(&close) = brackets.get(&(i + 1)) {
                if TXN_NEST_METHODS.contains(&t.text.as_str()) {
                    txn_regions.push(Region {
                        open: i + 1,
                        close,
                        kind: RegionKind::Nested,
                        name_idx: i,
                    });
                } else if HANDLER_METHODS.contains(&t.text.as_str()) {
                    handler_regions.push((i + 1, close));
                }
            }
        }

        // `fn name(... Txn ...) { body }` — body is transactional context.
        if t.is_ident("fn") {
            if let Some(params_open) =
                (i + 1..toks.len().min(i + 4)).find(|&j| toks[j].punct() == Some('('))
            {
                if let Some(&params_close) = brackets.get(&params_open) {
                    let takes_txn = toks[params_open..=params_close]
                        .iter()
                        .any(|t| t.is_ident("Txn"));
                    if takes_txn {
                        if let Some(body_open) = (params_close + 1..toks.len())
                            .find(|&j| matches!(toks[j].punct(), Some('{') | Some(';')))
                        {
                            if toks[body_open].punct() == Some('{') {
                                if let Some(&body_close) = brackets.get(&body_open) {
                                    txn_fn_bodies.push((body_open, body_close));
                                }
                            }
                        }
                    }
                }
            }
        }

        // TVar bindings: `let x = TVar::new(..)`, `x: TVar<..>`.
        if t.is_ident("TVar") {
            // `name = TVar :: new` — name is 2 tokens back past `=`.
            if i >= 2 && toks[i - 1].punct() == Some('=') && toks[i - 2].kind == TokKind::Ident {
                tvar_locals.insert(toks[i - 2].text.clone());
            }
            // `name : TVar <` — struct fields and typed lets alike.
            if i >= 2 && toks[i - 1].punct() == Some(':') && toks[i - 2].kind == TokKind::Ident {
                tvar_locals.insert(toks[i - 2].text.clone());
            }
        }
    }

    FileModel {
        toks,
        txn_regions,
        handler_regions,
        escape_regions,
        txn_fn_bodies,
        tvar_locals,
    }
}

fn finding(
    path: &Path,
    t: &Tok,
    code: &'static str,
    message: String,
    help: &'static str,
) -> Finding {
    Finding {
        file: path.to_path_buf(),
        line: t.line,
        col: t.col,
        code,
        message,
        help,
    }
}

/// Run all TXxxx rules over one file's source. Allowlist annotations are
/// NOT applied here — see [`crate::apply_allowlist`].
pub fn analyze_source(path: &Path, src: &str) -> Vec<Finding> {
    let toks = lex(src);
    let brackets = match_brackets(&toks);
    let m = build_model(&toks, &brackets);
    let mut out = Vec::new();

    tx001_irrevocable_effects(path, &m, &mut out);
    tx002_tvar_context(path, &m, &mut out);
    tx003_swallowed_abort(path, &m, &mut out);
    tx004_unpaired_commit_handler(path, &m, &mut out);
    tx005_nested_atomic(path, &m, &mut out);
    tx006_commit_internals_visibility(path, src, &m, &mut out);
    tx007_raw_stripe_access(path, src, &m, &mut out);
    tx008_direct_handler_registration(path, src, &m, &mut out);
    tx009_alloc_in_trace_emission(path, &m, &mut out);
    tx010_conflict_graph(path, src, &m, &mut out);
    tx011_unlogged_eager_mutation(path, src, &m, &mut out);
    tx012_read_only_open(path, src, &m, &mut out);
    tx013_snapshot_mode_locking(path, src, &m, &mut out);
    tx014_alloc_in_metrics_emission(path, src, &m, &mut out);

    out.sort_by_key(|f| (f.line, f.col));
    out
}

fn tx001_irrevocable_effects(path: &Path, m: &FileModel, out: &mut Vec<Finding>) {
    let toks = m.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !m.in_strict_txn(i) {
            continue;
        }
        let next = toks.get(i + 1);
        let next2 = toks.get(i + 2);
        let prev_punct = i.checked_sub(1).and_then(|p| toks[p].punct());
        let name = t.text.as_str();

        // Console output macros: `println!(..)`.
        if IO_MACROS.contains(&name) && next.and_then(Tok::punct) == Some('!') {
            out.push(finding(
                path,
                t,
                "TX001",
                format!("irrevocable console I/O `{name}!` inside a transaction"),
                "buffer output and emit it from an on_commit handler, or move it outside atomic()",
            ));
            continue;
        }
        // File/socket/process constructors: `File::open(..)` etc.
        let is_path_head =
            next.and_then(Tok::punct) == Some(':') && next2.and_then(Tok::punct) == Some(':');
        if IO_TYPES.contains(&name) && is_path_head {
            out.push(finding(
                path,
                t,
                "TX001",
                format!("irrevocable side effect: `{name}::..` inside a transaction"),
                "perform file/network/process effects in an on_commit handler",
            ));
            continue;
        }
        // `fs::..` module path (std::fs::write and friends).
        if name == "fs" && is_path_head {
            out.push(finding(
                path,
                t,
                "TX001",
                "irrevocable filesystem effect `fs::..` inside a transaction".to_string(),
                "perform file effects in an on_commit handler",
            ));
            continue;
        }
        // Free functions: stdin()/stdout()/stderr()/sleep(..).
        if IO_FNS.contains(&name)
            && next.and_then(Tok::punct) == Some('(')
            && prev_punct != Some('.')
        {
            out.push(finding(
                path,
                t,
                "TX001",
                format!("irrevocable effect `{name}(..)` inside a transaction"),
                "transactions may re-execute after a doom; move this outside atomic() or into a handler",
            ));
            continue;
        }
        // Blocking lock acquisition: `.lock()` / `.try_lock()` with no
        // arguments (TVar accessors always take a txn argument, so the
        // empty argument list is the mutex signature).
        if (name == "lock" || name == "try_lock")
            && prev_punct == Some('.')
            && next.and_then(Tok::punct) == Some('(')
            && next2.and_then(Tok::punct) == Some(')')
        {
            out.push(finding(
                path,
                t,
                "TX001",
                format!("lock acquisition `.{name}()` inside a transaction"),
                "a doomed transaction unwinds without running drop-order guarantees you may expect; take locks in commit/abort handlers (they run under the handler lane)",
            ));
            continue;
        }
        // Channel sends: `.send(..)` — the receiver observes the value even
        // if this transaction later aborts.
        if name == "send" && prev_punct == Some('.') && next.and_then(Tok::punct) == Some('(') {
            out.push(finding(
                path,
                t,
                "TX001",
                "channel `.send(..)` inside a transaction leaks uncommitted state".to_string(),
                "buffer the message and send from an on_commit handler (or use TransactionalQueue::put)",
            ));
        }
    }
}

fn tx002_tvar_context(path: &Path, m: &FileModel, out: &mut Vec<Finding>) {
    let toks = m.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let prev_punct = i.checked_sub(1).and_then(|p| toks[p].punct());
        let next_is_open = toks.get(i + 1).and_then(Tok::punct) == Some('(');

        // `.read_committed(..)` inside a transaction bypasses isolation:
        // the transaction acts on a value its read set will never validate.
        if t.is_ident("read_committed")
            && prev_punct == Some('.')
            && next_is_open
            && m.in_strict_txn(i)
        {
            out.push(finding(
                path,
                t,
                "TX002",
                "`read_committed` inside a transaction reads around isolation".to_string(),
                "use TVar::read(tx) inside transactions; read_committed is for non-transactional observers only",
            ));
            continue;
        }

        // `tvar_local.read(..)` / `.write(..)` outside any transactional
        // context: the Txn handle must have escaped its atomic() scope.
        if (t.is_ident("read") || t.is_ident("write")) && prev_punct == Some('.') && next_is_open {
            let recv_is_tvar = i
                .checked_sub(2)
                .map(|p| toks[p].kind == TokKind::Ident && m.tvar_locals.contains(&toks[p].text))
                .unwrap_or(false);
            if recv_is_tvar && !m.in_txn(i) && !m.in_handler(i) && !m.in_txn_fn(i) {
                out.push(finding(
                    path,
                    t,
                    "TX002",
                    format!(
                        "TVar `.{}(..)` outside any transaction context",
                        t.text
                    ),
                    "TVar accesses must run inside atomic()/speculate() or a fn taking &mut Txn; a Txn handle used here has escaped its transaction",
                ));
            }
        }
    }
}

fn tx003_swallowed_abort(path: &Path, m: &FileModel, out: &mut Vec<Finding>) {
    for (i, t) in m.toks.iter().enumerate() {
        if t.is_ident("catch_unwind") && m.in_strict_txn(i) {
            out.push(finding(
                path,
                t,
                "TX003",
                "`catch_unwind` inside a transaction swallows doom/retry control flow".to_string(),
                "this runtime propagates program-directed aborts by unwinding; catching them turns a doomed transaction into a silently committed one",
            ));
        }
    }
}

fn tx004_unpaired_commit_handler(path: &Path, m: &FileModel, out: &mut Vec<Finding>) {
    for region in &m.txn_regions {
        let mut first_commit: Option<&Tok> = None;
        let mut commit_name = "";
        let mut has_abort = false;
        for i in region.open + 1..region.close {
            let t = &m.toks[i];
            if t.kind != TokKind::Ident
                || m.toks[i - 1].punct() != Some('.')
                || m.toks.get(i + 1).and_then(Tok::punct) != Some('(')
            {
                continue;
            }
            // Only consider handlers registered directly in this region,
            // not in a nested transaction region (which is checked itself).
            let in_deeper = m.txn_regions.iter().any(|r| {
                r.open > region.open && r.close < region.close && r.open < i && i < r.close
            });
            if in_deeper {
                continue;
            }
            if COMMIT_HANDLERS.contains(&t.text.as_str()) && first_commit.is_none() {
                first_commit = Some(t);
                commit_name = match t.text.as_str() {
                    "on_commit" => "on_commit",
                    _ => "on_commit_top",
                };
            }
            if ABORT_HANDLERS.contains(&t.text.as_str()) {
                has_abort = true;
            }
        }
        if let Some(t) = first_commit {
            if !has_abort {
                out.push(finding(
                    path,
                    t,
                    "TX004",
                    format!(
                        "`{commit_name}` registered with no paired abort handler in this transaction"
                    ),
                    "open-nested effects need compensation: register on_abort/on_abort_top/on_local_undo alongside every commit handler",
                ));
            }
        }
    }
}

fn tx005_nested_atomic(path: &Path, m: &FileModel, out: &mut Vec<Finding>) {
    for region in &m.txn_regions {
        if region.kind != RegionKind::Entry {
            continue;
        }
        let i = region.name_idx;
        if m.in_txn(i) && !m.in_handler(i) {
            let name = &m.toks[i].text;
            out.push(finding(
                path,
                &m.toks[i],
                "TX005",
                format!("nested top-level `{name}(..)` inside a transaction"),
                "for nesting use tx.closed(..) (subsumption/partial rollback) or tx.open(..) (open nesting); a nested atomic() would deadlock on the handler lane or flatten semantics",
            ));
        }
    }
}

/// Marker comment (assembled at runtime so txlint's own sources do not
/// carry the contiguous marker text) declaring a file to be commit-path
/// internals: everything in it must stay crate-private.
fn commit_internals_marker() -> String {
    format!("txlint: {}", "commit-internals")
}

fn tx006_commit_internals_visibility(
    path: &Path,
    src: &str,
    m: &FileModel,
    out: &mut Vec<Finding>,
) {
    if !src.contains(&commit_internals_marker()) {
        return;
    }
    let toks = m.toks;
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("pub") {
            continue;
        }
        // `pub(crate)` is the only sanctioned visibility; bare `pub`,
        // `pub(super)`, `pub(in ..)` all leak commit internals.
        let crate_restricted = toks.get(i + 1).and_then(Tok::punct) == Some('(')
            && toks.get(i + 2).is_some_and(|t| t.is_ident("crate"))
            && toks.get(i + 3).and_then(Tok::punct) == Some(')');
        if !crate_restricted {
            out.push(finding(
                path,
                t,
                "TX006",
                "non-`pub(crate)` visibility in a commit-internals file".to_string(),
                "the sharded commit protocol (clock, per-var locks, handler lane) is an internal invariant surface; keep it pub(crate) and export behavior through Txn/TVar",
            ));
        }
    }
}

/// Marker comment (assembled at runtime like the commit-internals one)
/// declaring a file to be a semantic-lock-table *consumer*: it may only
/// acquire stripes through the ordered-acquisition helpers.
fn semantic_tables_marker() -> String {
    format!("txlint: {}", "semantic-tables")
}

fn tx007_raw_stripe_access(path: &Path, src: &str, m: &FileModel, out: &mut Vec<Finding>) {
    if !src.contains(&semantic_tables_marker()) {
        return;
    }
    let toks = m.toks;
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("stripes") {
            continue;
        }
        // `stripes[i]` — raw indexing into the stripe array. Everything
        // downstream of it (`.lock()`, `.try_lock()`, passing the mutex
        // around) bypasses the stripes-ascending acquisition order, so the
        // indexing itself is the violation.
        if toks.get(i + 1).and_then(Tok::punct) == Some('[') {
            out.push(finding(
                path,
                t,
                "TX007",
                "raw stripe indexing `stripes[..]` in a semantic-tables file".to_string(),
                "acquire stripes only through the ordered helpers (with_stripe_for / for_stripes_ascending / with_global); raw indexing bypasses the stripes-ascending lock order the doom-protocol proof depends on",
            ));
            continue;
        }
        // `stripes.get(..)` / `stripes.get_mut(..)` — indexing in disguise.
        if toks.get(i + 1).and_then(Tok::punct) == Some('.')
            && toks
                .get(i + 2)
                .is_some_and(|t| t.is_ident("get") || t.is_ident("get_mut"))
            && toks.get(i + 3).and_then(Tok::punct) == Some('(')
        {
            out.push(finding(
                path,
                &toks[i + 2],
                "TX007",
                format!(
                    "raw stripe access `stripes.{}(..)` in a semantic-tables file",
                    toks[i + 2].text
                ),
                "acquire stripes only through the ordered helpers (with_stripe_for / for_stripes_ascending / with_global); raw indexing bypasses the stripes-ascending lock order the doom-protocol proof depends on",
            ));
        }
    }
}

/// Marker comment (assembled at runtime like the others) declaring a file
/// to be *the* semantic-class kernel — the one semantic-tables file allowed
/// to register top-level commit/abort handlers directly.
fn semantic_kernel_marker() -> String {
    format!("txlint: {}", "semantic-kernel")
}

fn tx008_direct_handler_registration(
    path: &Path,
    src: &str,
    m: &FileModel,
    out: &mut Vec<Finding>,
) {
    // Scope: semantic-tables files (collection classes). The kernel file
    // carries the semantic-kernel marker too and is the sanctioned home of
    // the registration protocol.
    if !src.contains(&semantic_tables_marker()) || src.contains(&semantic_kernel_marker()) {
        return;
    }
    let toks = m.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        if (t.is_ident("on_commit_top") || t.is_ident("on_abort_top"))
            && i.checked_sub(1).and_then(|p| toks[p].punct()) == Some('.')
            && toks.get(i + 1).and_then(Tok::punct) == Some('(')
        {
            out.push(finding(
                path,
                t,
                "TX008",
                format!(
                    "direct `.{}(..)` handler registration in a semantic-tables file",
                    t.text
                ),
                "collection classes must register handlers through SemanticCore::ensure_registered, which discharges the probe -> commit handler -> abort handler -> locals-insert ordering once; only the kernel file (semantic-kernel marker) registers on_commit_top/on_abort_top directly",
            ));
        }
    }
}

fn tx009_alloc_in_trace_emission(path: &Path, m: &FileModel, out: &mut Vec<Finding>) {
    let toks = m.toks;
    let brackets = match_brackets(toks);
    // Argument spans of trace-emitter *calls* (their `fn` declarations in
    // trace.rs are not call sites).
    let mut spans: Vec<(usize, usize, &str)> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident
            || !TRACE_EMITTERS.contains(&t.text.as_str())
            || (i >= 1 && toks[i - 1].is_ident("fn"))
            || toks.get(i + 1).and_then(Tok::punct) != Some('(')
        {
            continue;
        }
        if let Some(&close) = brackets.get(&(i + 1)) {
            spans.push((i + 1, close, t.text.as_str()));
        }
    }
    if spans.is_empty() {
        return;
    }
    const HELP: &str = "trace events are fixed-width word-packed records pushed from hot paths; pass integers and pre-interned Sym values (intern the class name once at collection construction, not per event)";
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let Some(&(_, _, emitter)) = spans.iter().find(|&&(o, c, _)| o < i && i < c) else {
            continue;
        };
        let prev_punct = i.checked_sub(1).and_then(|p| toks[p].punct());
        let next_punct = toks.get(i + 1).and_then(Tok::punct);
        let next2_punct = toks.get(i + 2).and_then(Tok::punct);
        let name = t.text.as_str();

        // `format!(..)` allocates a String per emission.
        if name == "format" && next_punct == Some('!') {
            out.push(finding(
                path,
                t,
                "TX009",
                format!("allocating `format!` in `{emitter}(..)` trace emission"),
                HELP,
            ));
            continue;
        }
        // `String::from(..)` / `String::new()` and friends.
        if name == "String" && next_punct == Some(':') && next2_punct == Some(':') {
            out.push(finding(
                path,
                t,
                "TX009",
                format!("`String::..` construction in `{emitter}(..)` trace emission"),
                HELP,
            ));
            continue;
        }
        // `.to_string()` / `.to_owned()` on a payload expression.
        if (name == "to_string" || name == "to_owned")
            && prev_punct == Some('.')
            && next_punct == Some('(')
        {
            out.push(finding(
                path,
                t,
                "TX009",
                format!("allocating `.{name}()` in `{emitter}(..)` trace emission"),
                HELP,
            ));
            continue;
        }
        // `intern(..)` per event: interning takes the global symbol-table
        // mutex and is meant to run once per class, at construction.
        if name == "intern" && next_punct == Some('(') {
            out.push(finding(
                path,
                t,
                "TX009",
                format!("per-event `intern(..)` in `{emitter}(..)` trace emission"),
                HELP,
            ));
        }
    }
}

/// The `stm::metrics` emission functions whose argument spans must stay
/// allocation-free (TX014, the dimensional-metrics mirror of TX009). Bare
/// call names, matched with the same call-shape test as [`TRACE_EMITTERS`].
const METRICS_EMITTERS: [&str; 10] = [
    "doom_landed",
    "stripe_blocked",
    "cache_hit",
    "lane_entered",
    "pin_entered",
    "fallback_taken",
    "commit_counted",
    "abort_counted",
    "hist_elapsed",
    "hist_record_ns",
];

/// Marker comment (assembled at runtime so this file never carries the
/// contiguous text) declaring a file to contain metrics emission sites
/// whose argument spans must not allocate or format.
fn metrics_marker() -> String {
    format!("txlint: {}", "metrics")
}

/// TX014: no allocation or formatting inside metrics-emitter argument
/// spans, in files carrying the metrics marker. The metrics layer promises
/// one relaxed load per site when disabled and zero allocation when
/// enabled; a `format!`/`String::..`/`.to_string()`/`intern(..)` inside an
/// emitter call defeats that on every emission. Mirror of TX009, gated by
/// the marker because the emitter names are ordinary words that would
/// false-positive in unrelated files.
fn tx014_alloc_in_metrics_emission(path: &Path, src: &str, m: &FileModel, out: &mut Vec<Finding>) {
    if !src.contains(&metrics_marker()) {
        return;
    }
    let toks = m.toks;
    let brackets = match_brackets(toks);
    // Argument spans of metrics-emitter *calls* (their `fn` declarations in
    // metrics.rs are not call sites).
    let mut spans: Vec<(usize, usize, &str)> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident
            || !METRICS_EMITTERS.contains(&t.text.as_str())
            || (i >= 1 && toks[i - 1].is_ident("fn"))
            || toks.get(i + 1).and_then(Tok::punct) != Some('(')
        {
            continue;
        }
        if let Some(&close) = brackets.get(&(i + 1)) {
            spans.push((i + 1, close, t.text.as_str()));
        }
    }
    if spans.is_empty() {
        return;
    }
    const HELP: &str = "metrics counters are fixed-key slab increments on hot paths; pass integers and pre-interned Sym values (intern the class name once at collection construction, not per emission)";
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let Some(&(_, _, emitter)) = spans.iter().find(|&&(o, c, _)| o < i && i < c) else {
            continue;
        };
        let prev_punct = i.checked_sub(1).and_then(|p| toks[p].punct());
        let next_punct = toks.get(i + 1).and_then(Tok::punct);
        let next2_punct = toks.get(i + 2).and_then(Tok::punct);
        let name = t.text.as_str();

        // `format!(..)` allocates a String per emission.
        if name == "format" && next_punct == Some('!') {
            out.push(finding(
                path,
                t,
                "TX014",
                format!("allocating `format!` in `{emitter}(..)` metrics emission"),
                HELP,
            ));
            continue;
        }
        // `String::from(..)` / `String::new()` and friends.
        if name == "String" && next_punct == Some(':') && next2_punct == Some(':') {
            out.push(finding(
                path,
                t,
                "TX014",
                format!("`String::..` construction in `{emitter}(..)` metrics emission"),
                HELP,
            ));
            continue;
        }
        // `.to_string()` / `.to_owned()` on a payload expression.
        if (name == "to_string" || name == "to_owned")
            && prev_punct == Some('.')
            && next_punct == Some('(')
        {
            out.push(finding(
                path,
                t,
                "TX014",
                format!("allocating `.{name}()` in `{emitter}(..)` metrics emission"),
                HELP,
            ));
            continue;
        }
        // `intern(..)` per emission: interning takes the global symbol-table
        // mutex and is meant to run once per class, at construction.
        if name == "intern" && next_punct == Some('(') {
            out.push(finding(
                path,
                t,
                "TX014",
                format!("per-emission `intern(..)` in `{emitter}(..)` metrics emission"),
                HELP,
            ));
        }
    }
}

/// Marker comment (assembled at runtime like the others) declaring a file
/// to contain `ConflictGraph` declarations that must be well-formed.
fn conflict_graph_marker() -> String {
    format!("txlint: {}", "conflict-graph")
}

/// One `op("name", &[modes..], &[effects..])` declaration, recovered
/// lexically. Modes/effects are kept as the enum variant names.
struct CgOp {
    name: String,
    observes: Vec<String>,
    effects: Vec<String>,
    /// Token index of the `op` call name, for reporting.
    tok_idx: usize,
}

/// One `edge("observer", "updater", ObsMode::M, UpdateEffect::E,
/// Overlap::W)` declaration, recovered lexically.
struct CgEdge {
    observer: String,
    updater: String,
    obs: String,
    effect: String,
    when: String,
    tok_idx: usize,
}

/// Recover the contents of a string literal from the raw source: the lexer
/// replaces literal text with a placeholder, but records the token's exact
/// 1-based (line, col), so the original can be sliced back out.
fn literal_str(lines: &[&str], t: &Tok) -> Option<String> {
    let line = lines.get(t.line as usize - 1)?;
    let bytes = line.as_bytes();
    let start = t.col as usize - 1;
    if bytes.get(start) != Some(&b'"') {
        return None;
    }
    let mut out = String::new();
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => return Some(out),
            b'\\' => {
                out.push(*bytes.get(i + 1)? as char);
                i += 2;
            }
            c => {
                out.push(c as char);
                i += 1;
            }
        }
    }
    None
}

/// Collect `Enum::Variant` qualified idents for `enum_name` in the token
/// span `(open, close)`.
fn qualified_variants(toks: &[Tok], open: usize, close: usize, enum_name: &str) -> Vec<String> {
    let mut out = Vec::new();
    for i in open + 1..close {
        if toks[i].is_ident(enum_name)
            && toks.get(i + 1).and_then(Tok::punct) == Some(':')
            && toks.get(i + 2).and_then(Tok::punct) == Some(':')
            && toks.get(i + 3).is_some_and(|t| t.kind == TokKind::Ident)
        {
            out.push(toks[i + 3].text.clone());
        }
    }
    out
}

/// Whether an observation mode (by variant name) is keyed — i.e. names a
/// specific key or key range, so overlap can gate its conflicts.
fn cg_keyed(mode: &str) -> bool {
    mode == "Key" || mode == "Range"
}

/// TX010: lexical well-formedness of `ConflictGraph { .. }` declarations in
/// files carrying the conflict-graph marker. Mirrors the semantic
/// `validate()` in the core crate — referential integrity, commutativity
/// closure, symmetry, reflexivity — so an ill-formed declaration is a lint
/// error before anything runs.
fn tx010_conflict_graph(path: &Path, src: &str, m: &FileModel, out: &mut Vec<Finding>) {
    if !src.contains(&conflict_graph_marker()) {
        return;
    }
    let toks = m.toks;
    let brackets = match_brackets(toks);
    let lines: Vec<&str> = src.lines().collect();

    for (gi, gt) in toks.iter().enumerate() {
        // `ConflictGraph {` is an initializer; `ConflictGraph<'static>` /
        // `ConflictGraph<'a>` occurrences are type ascriptions — skip them.
        if !gt.is_ident("ConflictGraph") || toks.get(gi + 1).and_then(Tok::punct) != Some('{') {
            continue;
        }
        let Some(&gclose) = brackets.get(&(gi + 1)) else {
            continue;
        };

        // Recover the op and edge declarations in this initializer.
        let mut ops: Vec<CgOp> = Vec::new();
        let mut edges: Vec<CgEdge> = Vec::new();
        let mut i = gi + 2;
        while i < gclose {
            let t = &toks[i];
            let call_open = i + 1;
            if t.kind == TokKind::Ident && toks.get(call_open).and_then(Tok::punct) == Some('(') {
                if let Some(&call_close) = brackets.get(&call_open) {
                    let lits: Vec<&Tok> = toks[call_open + 1..call_close]
                        .iter()
                        .filter(|t| t.kind == TokKind::Literal)
                        .collect();
                    if t.is_ident("op") {
                        if let Some(name) = lits.first().and_then(|l| literal_str(&lines, l)) {
                            ops.push(CgOp {
                                name,
                                observes: qualified_variants(
                                    toks, call_open, call_close, "ObsMode",
                                ),
                                effects: qualified_variants(
                                    toks,
                                    call_open,
                                    call_close,
                                    "UpdateEffect",
                                ),
                                tok_idx: i,
                            });
                        }
                        i = call_close + 1;
                        continue;
                    }
                    if t.is_ident("edge") && lits.len() >= 2 {
                        let observer = literal_str(&lines, lits[0]);
                        let updater = literal_str(&lines, lits[1]);
                        let obs = qualified_variants(toks, call_open, call_close, "ObsMode");
                        let effect =
                            qualified_variants(toks, call_open, call_close, "UpdateEffect");
                        let when = qualified_variants(toks, call_open, call_close, "Overlap");
                        if let (
                            Some(observer),
                            Some(updater),
                            Some(obs),
                            Some(effect),
                            Some(when),
                        ) = (
                            observer,
                            updater,
                            obs.first().cloned(),
                            effect.first().cloned(),
                            when.first().cloned(),
                        ) {
                            edges.push(CgEdge {
                                observer,
                                updater,
                                obs,
                                effect,
                                when,
                                tok_idx: i,
                            });
                        }
                        i = call_close + 1;
                        continue;
                    }
                }
            }
            i += 1;
        }

        cg_check(path, toks, &ops, &edges, gi, out);
    }
}

/// The well-formedness rules, applied to one recovered graph. Kept in the
/// same order as the semantic validator so the two stay diffable.
fn cg_check(
    path: &Path,
    toks: &[Tok],
    ops: &[CgOp],
    edges: &[CgEdge],
    graph_tok: usize,
    out: &mut Vec<Finding>,
) {
    const HELP: &str = "conflict-graph declarations must satisfy the same rules synthesize() enforces at core construction: edges reference declared ops/modes/effects, overlap-gating only on keyed modes with KeyWrite, the compatibility relation is symmetric, and mutating observers carry their reflexive self-edges";
    let op_by_name = |name: &str| ops.iter().find(|o| o.name == name);
    let has_edge = |observer: &str, updater: &str, obs: &str, effect: &str| {
        edges.iter().any(|e| {
            e.observer == observer && e.updater == updater && e.obs == obs && e.effect == effect
        })
    };

    // Duplicate op names make every by-name reference ambiguous.
    for (i, o) in ops.iter().enumerate() {
        if ops[..i].iter().any(|p| p.name == o.name) {
            out.push(finding(
                path,
                &toks[o.tok_idx],
                "TX010",
                format!("duplicate op declaration `{}` in conflict graph", o.name),
                HELP,
            ));
        }
    }

    for e in edges {
        let t = &toks[e.tok_idx];
        // Referential integrity: both endpoints declared, and the edge's
        // cell is one the endpoints actually declare.
        let obs_op = op_by_name(&e.observer);
        let upd_op = op_by_name(&e.updater);
        if obs_op.is_none() {
            out.push(finding(
                path,
                t,
                "TX010",
                format!("edge references undeclared observer `{}`", e.observer),
                HELP,
            ));
        }
        if upd_op.is_none() {
            out.push(finding(
                path,
                t,
                "TX010",
                format!("edge references undeclared updater `{}`", e.updater),
                HELP,
            ));
        }
        if let Some(o) = obs_op {
            if !o.observes.contains(&e.obs) {
                out.push(finding(
                    path,
                    t,
                    "TX010",
                    format!(
                        "edge observer `{}` does not declare mode {}",
                        e.observer, e.obs
                    ),
                    HELP,
                ));
            }
        }
        if let Some(u) = upd_op {
            if !u.effects.contains(&e.effect) {
                out.push(finding(
                    path,
                    t,
                    "TX010",
                    format!(
                        "edge updater `{}` does not declare effect {}",
                        e.updater, e.effect
                    ),
                    HELP,
                ));
            }
        }

        // Commutativity closure: overlap can only gate conflicts on keyed
        // modes hit by key writes; whole-collection modes conflict always.
        match e.when.as_str() {
            "OnOverlap" if !cg_keyed(&e.obs) || e.effect != "KeyWrite" => {
                out.push(finding(
                    path,
                    t,
                    "TX010",
                    format!(
                        "edge ({}, {}) on cell ({}, {}): overlap cannot gate the conflict (use Always)",
                        e.observer, e.updater, e.obs, e.effect
                    ),
                    HELP,
                ));
            }
            "Always" if cg_keyed(&e.obs) => {
                out.push(finding(
                    path,
                    t,
                    "TX010",
                    format!(
                        "edge ({}, {}) on keyed cell ({}, {}): Always is ill-formed (use OnOverlap)",
                        e.observer, e.updater, e.obs, e.effect
                    ),
                    HELP,
                ));
            }
            _ => {}
        }

        // Symmetry: if the roles also hold in reverse (the observer itself
        // publishes the effect and the updater itself observes the mode),
        // the conflict relation must declare the mirrored edge too.
        if let (Some(o), Some(u)) = (obs_op, upd_op) {
            if o.effects.contains(&e.effect)
                && u.observes.contains(&e.obs)
                && !has_edge(&e.updater, &e.observer, &e.obs, &e.effect)
            {
                out.push(finding(
                    path,
                    t,
                    "TX010",
                    format!(
                        "asymmetric compatibility: edge ({}, {}) on cell ({}, {}) has no mirror ({}, {})",
                        e.observer, e.updater, e.obs, e.effect, e.updater, e.observer
                    ),
                    HELP,
                ));
            }
        }
    }

    // Reflexivity: an op that both observes a mode and publishes an effect
    // the graph declares conflicting must conflict with itself on that cell
    // (two instances of the op race exactly like any observer/updater pair).
    for o in ops {
        for mode in &o.observes {
            for eff in &o.effects {
                let cell_declared = edges.iter().any(|e| e.obs == *mode && e.effect == *eff);
                if cell_declared && !has_edge(&o.name, &o.name, mode, eff) {
                    out.push(finding(
                        path,
                        &toks[o.tok_idx],
                        "TX010",
                        format!(
                            "op `{}` observes {} and publishes {} but declares no reflexive self-edge on that cell",
                            o.name, mode, eff
                        ),
                        HELP,
                    ));
                }
            }
        }
    }

    // An initializer with no ops at all is a broken recovery or an empty
    // graph — either way the marker promised a checkable declaration.
    if ops.is_empty() {
        out.push(finding(
            path,
            &toks[graph_tok],
            "TX010",
            "ConflictGraph initializer declares no ops".to_string(),
            HELP,
        ));
    }
}

/// Marker comment (assembled at runtime like the others) declaring a file
/// to mutate a boosted (non-transactional) backend **eagerly**: every
/// in-place `backend.insert(..)` / `backend.remove(..)` site must pair
/// with a logged `UndoOp` compensation, or an abort cannot restore the
/// pre-transaction state.
fn boosted_backend_marker() -> String {
    format!("txlint: {}", "boosted-backend")
}

/// How far (in tokens, either direction) from an eager mutation site the
/// undo pairing may sit. Generous enough for the buffered-`old`-value
/// dance around `tx.open`, tight enough that a pairing in an unrelated
/// function does not vouch for a naked mutation.
const TX011_PAIRING_WINDOW: usize = 120;

fn tx011_unlogged_eager_mutation(path: &Path, src: &str, m: &FileModel, out: &mut Vec<Finding>) {
    if !src.contains(&boosted_backend_marker()) {
        return;
    }
    let toks = m.toks;
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("backend") || toks.get(i + 1).and_then(Tok::punct) != Some('.') {
            continue;
        }
        let Some(method) = toks.get(i + 2) else {
            continue;
        };
        if !(method.is_ident("insert") || method.is_ident("remove"))
            || toks.get(i + 3).and_then(Tok::punct) != Some('(')
        {
            continue;
        }
        let lo = i.saturating_sub(TX011_PAIRING_WINDOW);
        let hi = (i + TX011_PAIRING_WINDOW).min(toks.len());
        let paired = toks[lo..hi]
            .iter()
            .any(|p| p.is_ident("log_undo") || p.is_ident("UndoOp"));
        if !paired {
            out.push(finding(
                path,
                method,
                "TX011",
                format!(
                    "eager `backend.{}(..)` with no `UndoOp` logged nearby in a \
                     boosted-backend file",
                    method.text
                ),
                "an in-place mutation against a boosted backend must record its compensation: log an UndoOp through SemanticCore::log_undo (first write per key) so the abort handler can replay it, newest first, before any semantic lock is released",
            ));
        }
    }
}

/// Marker comment (assembled at runtime like the others) declaring a file
/// ported to the single-op fast path: read-only backend observations must
/// go through the flattened `Txn::open_read`, not a full open-nested child
/// with its own frame and unwind guard.
fn fast_path_marker() -> String {
    format!("txlint: {}", "fast-path")
}

/// Backend methods that only observe state. An open-nested body made
/// entirely of these is read-only and should be flattened.
const TX012_READ_METHODS: &[&str] = &[
    "get",
    "contains_key",
    "len",
    "entries",
    "peek_front",
    "first_entry",
    "last_entry",
    "ceiling_entry",
    "floor_entry",
    "next_entry_after",
    "prev_entry_before",
    "range_entries",
    "read",
];

/// Backend methods that mutate state. Their presence in an open body makes
/// it a real open-nested child — `open_read` is read-only by contract.
const TX012_WRITE_METHODS: &[&str] = &[
    "insert",
    "remove",
    "push_back",
    "push_front",
    "pop_front",
    "write",
];

fn tx012_read_only_open(path: &Path, src: &str, m: &FileModel, out: &mut Vec<Finding>) {
    if !src.contains(&fast_path_marker()) {
        return;
    }
    let toks = m.toks;
    let brackets = match_brackets(toks);
    for (i, t) in toks.iter().enumerate() {
        // `<recv>.open(` — `open_read` lexes as its own ident and never
        // matches here.
        if !t.is_ident("open")
            || i.checked_sub(1).and_then(|p| toks[p].punct()) != Some('.')
            || toks.get(i + 1).and_then(Tok::punct) != Some('(')
        {
            continue;
        }
        let Some(&close) = brackets.get(&(i + 1)) else {
            continue;
        };
        let body = &toks[i + 2..close];
        let is_method = |j: usize| {
            j.checked_sub(1).and_then(|p| body[p].punct()) == Some('.')
                && body.get(j + 1).and_then(Tok::punct) == Some('(')
        };
        let mut reads = false;
        let mut writes = false;
        for (j, b) in body.iter().enumerate() {
            if b.kind != TokKind::Ident || !is_method(j) {
                continue;
            }
            let name = b.text.as_str();
            reads |= TX012_READ_METHODS.contains(&name);
            writes |= TX012_WRITE_METHODS.contains(&name);
        }
        if reads && !writes {
            out.push(finding(
                path,
                t,
                "TX012",
                "read-only open-nested body in a fast-path file".to_string(),
                "a body that only observes the backend pays a child frame and an unwind guard for nothing: call Txn::open_read, which validates the logged reads in place and keeps the doom probe",
            ));
        }
    }
}

/// Marker comment declaring a file that implements snapshot-mode (read-only,
/// never-aborting) entry points: code in it must stay off every
/// lock-acquiring or state-buffering kernel surface.
fn snapshot_mode_marker() -> String {
    format!("txlint: {}", "snapshot-mode")
}

/// Kernel entry points that acquire semantic locks or buffer transactional
/// state. A snapshot transaction runs no release sweep and no handlers, so
/// any of these reached from snapshot-mode code either leaks a lock for the
/// lifetime of the table or strands buffered state — the dynamic guards
/// abort, but snapshot-mode files must not even contain the call.
const TX013_LOCKING_METHODS: &[&str] = &[
    "take_key_lock",
    "take_size_lock",
    "take_empty_lock",
    "take_full_lock",
    "take_first_lock",
    "take_last_lock",
    "take_range_lock",
    "add_range_lock",
    "extend_range_upper",
    "note_key_lock",
    "note_point_lock",
    "with_local",
    "log_undo",
];

fn tx013_snapshot_mode_locking(path: &Path, src: &str, m: &FileModel, out: &mut Vec<Finding>) {
    if !src.contains(&snapshot_mode_marker()) {
        return;
    }
    let toks = m.toks;
    for (i, t) in toks.iter().enumerate() {
        // `<recv>.take_key_lock(` and friends — method-call shape only, so
        // an identifier in, say, a match arm or a string (already stripped
        // by the lexer) cannot fire.
        if t.kind != TokKind::Ident
            || !TX013_LOCKING_METHODS.contains(&t.text.as_str())
            || i.checked_sub(1).and_then(|p| toks[p].punct()) != Some('.')
            || toks.get(i + 1).and_then(Tok::punct) != Some('(')
        {
            continue;
        }
        out.push(finding(
            path,
            t,
            "TX013",
            format!("`{}` called in a snapshot-mode file", t.text),
            "snapshot transactions take no semantic locks and buffer no state (there is no sweep or handler to undo either); route the operation through the collection's plain transactional API under stm::atomic instead",
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(src: &str) -> Vec<&'static str> {
        analyze_source(Path::new("t.rs"), src)
            .iter()
            .map(|f| f.code)
            .collect()
    }

    #[test]
    fn tx001_println_in_txn() {
        assert_eq!(
            codes("fn f() { atomic(|tx| { println!(\"hi\"); }); }"),
            vec!["TX001"]
        );
    }

    #[test]
    fn tx001_ok_outside_txn() {
        assert!(codes("fn f() { println!(\"hi\"); }").is_empty());
    }

    #[test]
    fn tx001_ok_inside_commit_handler() {
        let src = "fn f() { atomic(|tx| { tx.on_commit(|h| { println!(\"hi\"); }); tx.on_abort(|h| {}); }); }";
        assert!(codes(src).is_empty());
    }

    #[test]
    fn tx001_lock_in_txn_but_not_tvar_read() {
        assert_eq!(
            codes("fn f() { atomic(|tx| { m.lock(); }); }"),
            vec!["TX001"]
        );
        // TVar::read takes an argument: not a mutex acquisition.
        assert!(codes("fn f() { atomic(|tx| { v.read(tx); }); }").is_empty());
    }

    #[test]
    fn tx002_read_committed_in_txn() {
        assert_eq!(
            codes("fn f() { atomic(|tx| { v.read_committed(); }); }"),
            vec!["TX002"]
        );
        assert!(codes("fn f() { v.read_committed(); }").is_empty());
    }

    #[test]
    fn tx002_tvar_access_outside_context() {
        let src = "fn f() { let v = TVar::new(1); v.read(stale); }";
        assert_eq!(codes(src), vec!["TX002"]);
        // Inside a Txn-taking fn it is fine.
        let src = "fn f(tx: &mut Txn) { let v = TVar::new(1); v.read(tx); }";
        assert!(codes(src).is_empty());
    }

    #[test]
    fn tx003_catch_unwind() {
        assert_eq!(
            codes("fn f() { atomic(|tx| { std::panic::catch_unwind(|| g()); }); }"),
            vec!["TX003"]
        );
        assert!(codes("fn f() { std::panic::catch_unwind(|| g()); }").is_empty());
    }

    #[test]
    fn tx004_commit_without_abort() {
        assert_eq!(
            codes("fn f() { atomic(|tx| { tx.on_commit(|h| {}); }); }"),
            vec!["TX004"]
        );
        let paired = "fn f() { atomic(|tx| { tx.on_commit(|h| {}); tx.on_abort(|h| {}); }); }";
        assert!(codes(paired).is_empty());
        let undo =
            "fn f() { atomic(|tx| { tx.on_commit_top(|h| {}); tx.on_local_undo(|| {}); }); }";
        assert!(codes(undo).is_empty());
    }

    #[test]
    fn tx004_nested_region_scopes_independently() {
        // The outer region's commit handler is paired; the nested closed()
        // region registers only a commit handler -> one finding.
        let src = "fn f() { atomic(|tx| { tx.on_commit(|h| {}); tx.on_abort(|h| {}); \
                   tx.closed(|tx2| { tx2.on_commit(|h| {}); }); }); }";
        assert_eq!(codes(src), vec!["TX004"]);
    }

    #[test]
    fn tx005_nested_atomic() {
        assert_eq!(
            codes("fn f() { atomic(|tx| { atomic(|tx2| { g(); }); }); }"),
            vec!["TX005"]
        );
        // closed/open nesting is the sanctioned form.
        assert!(codes("fn f() { atomic(|tx| { tx.closed(|tx2| { g(); }); }); }").is_empty());
    }

    #[test]
    fn tx006_marker_file_rejects_bare_pub() {
        let marked = |body: &str| format!("// {}\n{body}\n", commit_internals_marker());
        assert_eq!(
            codes(&marked("pub fn fresh_version() -> u64 { 0 }")),
            vec!["TX006"]
        );
        assert_eq!(
            codes(&marked("pub(super) fn now() -> u64 { 0 }")),
            vec!["TX006"]
        );
        assert!(codes(&marked("pub(crate) fn now() -> u64 { 0 }")).is_empty());
        assert!(codes(&marked("fn private() {}")).is_empty());
        // Without the marker, visibility is none of txlint's business.
        assert!(codes("pub fn api() {}").is_empty());
    }

    #[test]
    fn tx007_marker_file_rejects_raw_stripe_access() {
        let marked = |body: &str| format!("// {}\n{body}\n", semantic_tables_marker());
        assert_eq!(
            codes(&marked("fn f(&self) { let g = self.stripes[3].lock(); }")),
            vec!["TX007"]
        );
        assert_eq!(
            codes(&marked("fn f(&self) { let g = self.stripes.get(3); }")),
            vec!["TX007"]
        );
        // The sanctioned helpers do not index the array at the call site.
        assert!(codes(&marked(
            "fn f(&self) { self.tables.with_stripe_for(&k, &self.stats, |s| s.len()); }"
        ))
        .is_empty());
        // Without the marker, stripe indexing is none of txlint's business
        // (locks.rs itself implements the helpers).
        assert!(codes("fn f(&self) { let g = self.stripes[3].lock(); }").is_empty());
    }

    #[test]
    fn tx008_semantic_tables_file_rejects_direct_registration() {
        let marked = |body: &str| format!("// {}\n{body}\n", semantic_tables_marker());
        let direct = "fn reg(tbl: &T, tx: &mut Txn) { \
                      tx.on_commit_top(|h| tbl.apply(h)); \
                      tx.on_abort_top(|h| tbl.release(h)); }";
        assert_eq!(codes(&marked(direct)), vec!["TX008", "TX008"]);
        // Routing through the kernel is the sanctioned form.
        let via_core =
            "fn reg(core: &SemanticCore<C>, tx: &mut Txn) { core.ensure_registered(tx); }";
        assert!(codes(&marked(via_core)).is_empty());
        // The kernel file itself carries both markers and is exempt.
        let kernel = format!(
            "// {}\n// {}\n{direct}\n",
            semantic_tables_marker(),
            semantic_kernel_marker()
        );
        assert!(codes(&kernel).is_empty());
        // Without the semantic-tables marker, registration is unrestricted
        // (user code registers its own handlers freely).
        assert!(codes(direct).is_empty());
    }

    #[test]
    fn tx009_allocation_in_trace_emission() {
        assert_eq!(
            codes("fn f() { trace::sem_lock_blocked(intern(class_name), stripe); }"),
            vec!["TX009"]
        );
        assert_eq!(
            codes("fn f() { trace::txn_abort(id, cause, format!(\"{who}\")); }"),
            vec!["TX009"]
        );
        assert_eq!(
            codes("fn f() { trace::lane_enter(label.to_string()); }"),
            vec!["TX009"]
        );
        assert_eq!(
            codes("fn f() { trace::doom_edge(d, v, String::from(\"map\"), k, h, o, e, c); }"),
            vec!["TX009"]
        );
        // Integers and pre-interned syms are the sanctioned payloads.
        assert!(codes(
            "fn f() { trace::sem_lock_acquired(owner.id(), stats.class_sym(), LockKind::Key, key_hash64(&key)); }"
        )
        .is_empty());
        // The emitters' own declarations are not call sites.
        assert!(
            codes("pub fn doom_edge(doomer: u64, victim: u64) { push(doomer, victim); }")
                .is_empty()
        );
        // Allocation outside an emitter span is none of TX009's business.
        assert!(codes("fn f() { let s = format!(\"x\"); trace::txn_begin(id); }").is_empty());
        // Construction-time interning (outside any emission span) is the
        // sanctioned pattern.
        assert!(codes("fn new() -> Self { Self { class: intern(\"map\") } }").is_empty());
    }

    fn cg_marked(body: &str) -> String {
        format!("// {}\n{body}\n", conflict_graph_marker())
    }

    const CG_VALID: &str = r#"static G: ConflictGraph<'static> = ConflictGraph {
        class: "t",
        ops: &[
            op("get", &[ObsMode::Key], &[]),
            op("put", &[ObsMode::Key], &[UpdateEffect::KeyWrite]),
            op("size", &[ObsMode::Size], &[]),
        ],
        edges: &[
            edge("get", "put", ObsMode::Key, UpdateEffect::KeyWrite, Overlap::OnOverlap),
            edge("put", "put", ObsMode::Key, UpdateEffect::KeyWrite, Overlap::OnOverlap),
        ],
    };"#;

    #[test]
    fn tx010_well_formed_graph_is_clean() {
        assert!(codes(&cg_marked(CG_VALID)).is_empty());
        // Without the marker the rule does not run at all.
        assert!(codes(CG_VALID).is_empty());
    }

    #[test]
    fn tx010_missing_mirror_edge() {
        // Both ops observe Key and publish KeyWrite; the (b, a) mirror and
        // both self-edges are missing -> asymmetric + 2x reflexivity.
        let src = cg_marked(
            r#"static G: ConflictGraph<'static> = ConflictGraph {
                class: "t",
                ops: &[
                    op("a", &[ObsMode::Key], &[UpdateEffect::KeyWrite]),
                    op("b", &[ObsMode::Key], &[UpdateEffect::KeyWrite]),
                ],
                edges: &[
                    edge("a", "b", ObsMode::Key, UpdateEffect::KeyWrite, Overlap::OnOverlap),
                ],
            };"#,
        );
        let cs = codes(&src);
        assert_eq!(cs, vec!["TX010"; 3], "asymmetric + two missing self-edges");
        let msgs: Vec<String> = analyze_source(Path::new("t.rs"), &src)
            .iter()
            .map(|f| f.message.clone())
            .collect();
        assert!(msgs.iter().any(|m| m.contains("asymmetric compatibility")));
        assert!(msgs.iter().any(|m| m.contains("no reflexive self-edge")));
    }

    #[test]
    fn tx010_overlap_gating_rules() {
        // Overlap cannot gate a whole-collection mode.
        let src = cg_marked(
            r#"static G: ConflictGraph<'static> = ConflictGraph {
                class: "t",
                ops: &[
                    op("size", &[ObsMode::Size], &[]),
                    op("put", &[], &[UpdateEffect::SizeChange]),
                ],
                edges: &[
                    edge("size", "put", ObsMode::Size, UpdateEffect::SizeChange, Overlap::OnOverlap),
                ],
            };"#,
        );
        let cs = codes(&src);
        assert!(!cs.is_empty() && cs.iter().all(|c| *c == "TX010"));
        // Always on a keyed mode is the dual violation.
        let src = cg_marked(
            r#"static G: ConflictGraph<'static> = ConflictGraph {
                class: "t",
                ops: &[
                    op("get", &[ObsMode::Key], &[]),
                    op("put", &[], &[UpdateEffect::KeyWrite]),
                ],
                edges: &[
                    edge("get", "put", ObsMode::Key, UpdateEffect::KeyWrite, Overlap::Always),
                ],
            };"#,
        );
        let cs = codes(&src);
        assert!(!cs.is_empty() && cs.iter().all(|c| *c == "TX010"));
    }

    #[test]
    fn tx010_referential_integrity() {
        let src = cg_marked(
            r#"static G: ConflictGraph<'static> = ConflictGraph {
                class: "t",
                ops: &[
                    op("size", &[ObsMode::Size], &[]),
                    op("put", &[], &[UpdateEffect::SizeChange]),
                ],
                edges: &[
                    edge("ghost", "put", ObsMode::Size, UpdateEffect::SizeChange, Overlap::Always),
                    edge("size", "put", ObsMode::Empty, UpdateEffect::SizeChange, Overlap::Always),
                ],
            };"#,
        );
        let msgs: Vec<String> = analyze_source(Path::new("t.rs"), &src)
            .iter()
            .map(|f| f.message.clone())
            .collect();
        assert!(msgs
            .iter()
            .any(|m| m.contains("undeclared observer `ghost`")));
        assert!(msgs
            .iter()
            .any(|m| m.contains("does not declare mode Empty")));
    }

    #[test]
    fn tx011_unlogged_eager_mutation_fires() {
        let marked = |body: &str| format!("// {}\n{body}\n", boosted_backend_marker());
        assert_eq!(
            codes(&marked(
                "fn put(&self, htx: &mut Txn) { let _ = self.backend.insert(htx, k, v); }"
            )),
            vec!["TX011"]
        );
        assert_eq!(
            codes(&marked(
                "fn del(&self, htx: &mut Txn) { let _ = self.backend.remove(htx, &k); }"
            )),
            vec!["TX011"]
        );
    }

    #[test]
    fn tx011_logged_mutation_is_clean() {
        let marked = |body: &str| format!("// {}\n{body}\n", boosted_backend_marker());
        // Pairing via the kernel log call...
        assert!(codes(&marked(
            "fn put(&self, tx: &mut Txn) { let old = self.backend.insert(tx, k, v); \
             self.core.log_undo(tx, entry_for(old)); }"
        ))
        .is_empty());
        // ...or via a literal UndoOp construction in the window.
        assert!(codes(&marked(
            "fn del(&self, tx: &mut Txn) { let old = self.backend.remove(tx, &k); \
             if let Some(v) = old { log.push(UndoOp::Restore(k, v)); } }"
        ))
        .is_empty());
    }

    #[test]
    fn tx012_read_only_open_fires() {
        let src = "// txlint: fast-path\n\
                   fn f(tx: &mut Txn) { let v = tx.open(|otx| backend.get(otx, &k)); }";
        assert_eq!(codes(src), vec!["TX012"]);
    }

    #[test]
    fn tx012_mutating_open_is_clean() {
        let src = "// txlint: fast-path\n\
                   fn f(tx: &mut Txn) { let v = tx.open(|otx| backend.pop_front(otx)); }";
        assert_eq!(codes(src), Vec::<&str>::new());
    }

    #[test]
    fn tx012_open_read_is_clean() {
        let src = "// txlint: fast-path\n\
                   fn f(tx: &mut Txn) { let v = tx.open_read(|otx| backend.get(otx, &k)); }";
        assert_eq!(codes(src), Vec::<&str>::new());
    }

    #[test]
    fn tx012_ignores_unmarked_files() {
        let src = "fn f(tx: &mut Txn) { let v = tx.open(|otx| backend.get(otx, &k)); }";
        assert_eq!(codes(src), Vec::<&str>::new());
    }

    #[test]
    fn tx013_lock_call_in_snapshot_file_fires() {
        let src = "// txlint: snapshot-mode\n\
                   fn f(&self) { stm::atomic_read(|tx| { self.take_key_lock(tx, &k); \
                   self.get(tx, &k) }); }";
        assert_eq!(codes(src), vec!["TX013"]);
    }

    #[test]
    fn tx013_buffering_call_in_snapshot_file_fires() {
        let src = "// txlint: snapshot-mode\n\
                   fn f(&self) { stm::atomic_read(|tx| self.core.with_local(tx, |s| s.0 += 1)); }";
        assert_eq!(codes(src), vec!["TX013"]);
    }

    #[test]
    fn tx013_plain_reads_are_clean() {
        let src = "// txlint: snapshot-mode\n\
                   fn f(&self) { stm::atomic_read(|tx| self.get(tx, &k)); }";
        assert_eq!(codes(src), Vec::<&str>::new());
    }

    #[test]
    fn tx013_ignores_unmarked_files() {
        let src = "fn f(&self, tx: &mut Txn) { self.take_key_lock(tx, &k); }";
        assert_eq!(codes(src), Vec::<&str>::new());
    }

    #[test]
    fn tx013_doc_text_cannot_fake_a_call_site() {
        // The lexer strips comment bodies, so prose mentioning the entry
        // points (as the real snapshot.rs docs do) never fires.
        let src = "// txlint: snapshot-mode\n\
                   /// Never calls .take_key_lock( or .with_local( here.\n\
                   fn f(&self) { stm::atomic_read(|tx| self.get(tx, &k)); }";
        assert_eq!(codes(src), Vec::<&str>::new());
    }

    fn metrics_marked(body: &str) -> String {
        format!("// {}\n{body}\n", metrics_marker())
    }

    #[test]
    fn tx014_allocation_in_metrics_emission() {
        assert_eq!(
            codes(&metrics_marked(
                "fn f() { metrics::doom_landed(intern(class_name), stripe); }"
            )),
            vec!["TX014"]
        );
        assert_eq!(
            codes(&metrics_marked(
                "fn f() { metrics::cache_hit(sym_for(format!(\"{class}\"))); }"
            )),
            vec!["TX014"]
        );
        assert_eq!(
            codes(&metrics_marked(
                "fn f() { metrics::stripe_blocked(key_of(label.to_string()), idx); }"
            )),
            vec!["TX014"]
        );
        assert_eq!(
            codes(&metrics_marked(
                "fn f() { metrics::hist_record_ns(kind_of(String::from(\"commit\")), ns); }"
            )),
            vec!["TX014"]
        );
    }

    #[test]
    fn tx014_sanctioned_payloads_are_clean() {
        // Integers and pre-interned syms are the sanctioned payloads.
        assert!(codes(&metrics_marked(
            "fn f() { metrics::doom_landed(self.stats.class_sym(), stripe_of(self.key_hash)); }"
        ))
        .is_empty());
        // The emitters' own declarations (metrics.rs) are not call sites.
        assert!(codes(&metrics_marked(
            "pub fn doom_landed(class: Sym, stripe: u64) { bump(class, stripe); }"
        ))
        .is_empty());
        // Allocation outside an emitter span is none of TX014's business.
        assert!(codes(&metrics_marked(
            "fn f() { let s = format!(\"x\"); metrics::commit_counted(); }"
        ))
        .is_empty());
        // Construction-time interning (outside any emission span) stays the
        // sanctioned pattern in marked files too.
        assert!(codes(&metrics_marked(
            "fn new() -> Self { Self { class: intern(\"map\") } }"
        ))
        .is_empty());
    }

    #[test]
    fn tx014_ignores_unmarked_files() {
        // The emitter names are ordinary words; without the marker the rule
        // must not run at all.
        let src = "fn f() { metrics::doom_landed(intern(class_name), stripe); }";
        assert_eq!(codes(src), Vec::<&str>::new());
    }

    #[test]
    fn tx012_mixed_read_write_body_is_clean() {
        let src = "// txlint: fast-path\n\
                   fn f(tx: &mut Txn) { tx.open(|otx| { let _ = backend.get(otx, &k); \
                   backend.insert(otx, k, v) }); }";
        assert_eq!(codes(src), Vec::<&str>::new());
    }

    #[test]
    fn tx011_ignores_unmarked_files_and_reads() {
        // No marker: none of txlint's business.
        assert!(
            codes("fn put(&self, htx: &mut Txn) { let _ = self.backend.insert(htx, k, v); }")
                .is_empty()
        );
        // Reads in a marked file are not mutations.
        let marked = |body: &str| format!("// {}\n{body}\n", boosted_backend_marker());
        assert!(codes(&marked(
            "fn get(&self, tx: &mut Txn) -> Option<V> { self.backend.get(tx, &k) }"
        ))
        .is_empty());
    }

    #[test]
    fn fn_named_atomic_is_not_a_region() {
        assert!(codes("fn atomic(f: impl FnOnce()) { f(); println!(\"x\"); }").is_empty());
    }

    #[test]
    fn spawned_thread_escapes_the_transaction() {
        // The spawned closure's atomic() runs on a fresh thread: not TX005,
        // and its body is a transaction region of its own.
        let src = "fn f() { atomic(|tx| { std::thread::spawn(move || { \
                   atomic(|tx2| { g(tx2); }); }).join(); v.read(tx); }); }";
        assert!(codes(src).is_empty());
        // But irrevocable effects inside the *spawned* atomic still count.
        let src = "fn f() { atomic(|tx| { std::thread::spawn(move || { \
                   atomic(|tx2| { println!(\"x\"); }); }); }); }";
        assert_eq!(codes(src), vec!["TX001"]);
    }
}
