//! Top-level transaction handles and program-directed abort.
//!
//! The paper (§4, "Program-directed transaction abort") requires that "an
//! open-nested transaction needs a way to request a reference to its top-level
//! transaction that can be stored as the owner of a lock. Later if another
//! transaction detects a conflict with that lock, the transaction reference
//! can be used to abort the conflicting transaction." [`TxHandle`] is that
//! reference: semantic lock tables store `Arc<TxHandle>` owners, and a
//! committing transaction's commit handler calls [`TxHandle::doom`] on
//! conflicting owners.
//!
//! A fresh handle is created for every top-level *attempt*, so a doom aimed at
//! a previous attempt can never spuriously kill a retry.
//!
//! ## Doom vs. commit
//!
//! Since the commit path was sharded (per-`TVar` versioned locks instead of a
//! global commit mutex), a doom can race with the victim's own commit. The
//! race is decided by a single atomic word holding both the lifecycle state
//! and the doom bit: [`TxHandle::doom`] is a CAS that only succeeds while the
//! state is `Active`, and the committer's first irrevocable step is a CAS from
//! `Active` (with the doom bit clear) to an internal *committing* state. One
//! of the two CASes wins; a doomed transaction can never publish, and a
//! transaction that has started publishing can never be doomed.

use crate::stats;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

static NEXT_TX_ID: AtomicU64 = AtomicU64::new(1);

// Layout of `TxHandle::word`: low two bits are the lifecycle state, bit 2 is
// the doom request. Committing is an internal fourth state (reported as
// `Active` to observers: the transaction has not finished, it merely can no
// longer be doomed).
const STATE_ACTIVE: u32 = 0;
const STATE_COMMITTED: u32 = 1;
const STATE_ABORTED: u32 = 2;
const STATE_COMMITTING: u32 = 3;
const STATE_MASK: u32 = 0b011;
const DOOM_BIT: u32 = 0b100;

/// Lifecycle state of a top-level transaction attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TxState {
    /// Still executing (or waiting to commit).
    Active = 0,
    /// Passed the point of no return; dooming it is a no-op.
    Committed = 1,
    /// Aborted (doomed, conflicted, or explicitly).
    Aborted = 2,
}

/// Identity of one top-level transaction attempt.
///
/// Handles are the owners recorded in semantic lock tables and the target of
/// program-directed abort. They are cheap to clone (`Arc`) and compare by
/// [`TxHandle::id`].
#[derive(Debug)]
pub struct TxHandle {
    id: u64,
    /// `(doom bit | lifecycle state)` in one word — see the module docs.
    word: AtomicU32,
    /// Number of prior aborted attempts of the same logical transaction;
    /// contention managers use it as a priority hint.
    retries: AtomicU32,
    /// Attempt id of the transaction whose doom landed on this one (0 when
    /// never doomed or doomed without attribution). Written before the doom
    /// CAS, so any observer of the doom bit sees it; racing doomers may
    /// overwrite each other, which is benign — each was a real conflict.
    culprit: AtomicU64,
}

impl TxHandle {
    /// Create a handle for a new top-level attempt. `retries` carries the
    /// abort count of the logical transaction across attempts.
    pub fn new(retries: u32) -> Arc<Self> {
        Arc::new(TxHandle {
            id: NEXT_TX_ID.fetch_add(1, Ordering::Relaxed),
            word: AtomicU32::new(STATE_ACTIVE),
            retries: AtomicU32::new(retries),
            culprit: AtomicU64::new(0),
        })
    }

    /// Unique id of this attempt.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Number of times the logical transaction behind this attempt has
    /// already aborted.
    pub fn retries(&self) -> u32 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Current lifecycle state. The internal committing phase reports as
    /// [`TxState::Active`]: the transaction has not finished, and observers
    /// (lock tables pruning finished owners) must keep treating it as live.
    pub fn state(&self) -> TxState {
        match self.word.load(Ordering::Acquire) & STATE_MASK {
            STATE_COMMITTED => TxState::Committed,
            STATE_ABORTED => TxState::Aborted,
            _ => TxState::Active,
        }
    }

    /// Request that this transaction abort (program-directed abort).
    ///
    /// Returns `true` if the doom landed while the transaction was still
    /// active. Dooming a committed transaction has no effect — the caller
    /// already serialized after it. The CAS loop races against the victim's
    /// own [`begin_commit`](Self::begin_commit): once the victim has entered
    /// its committing phase the doom fails, so "doomed" and "published" are
    /// mutually exclusive outcomes of a single atomic word.
    #[must_use = "whether the doom landed; a false return means the target already finished"]
    pub fn doom(&self) -> bool {
        self.doom_from(0)
    }

    /// [`doom`](Self::doom) with provenance: `doomer` is the attempt id of
    /// the committing transaction issuing the doom, recorded as this
    /// victim's [`culprit`](Self::culprit) so the abort path (and the trace
    /// layer) can attribute the abort. Pass 0 for an unattributed doom.
    #[must_use = "whether the doom landed; a false return means the target already finished"]
    pub fn doom_from(&self, doomer: u64) -> bool {
        let mut w = self.word.load(Ordering::Acquire);
        loop {
            if w & STATE_MASK != STATE_ACTIVE {
                return false;
            }
            if w & DOOM_BIT != 0 {
                // Already doomed: the first doomer keeps the attribution.
                return true;
            }
            // Store the culprit before the CAS so the release on a
            // successful CAS publishes it to whoever observes the doom bit.
            self.culprit.store(doomer, Ordering::Relaxed);
            match self.word.compare_exchange_weak(
                w,
                w | DOOM_BIT,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    stats::record_doom_issued();
                    return true;
                }
                Err(cur) => w = cur,
            }
        }
    }

    /// Attempt id of the transaction that doomed this one (0 when never
    /// doomed or doomed without attribution). Meaningful only after
    /// [`is_doomed`](Self::is_doomed) returns true.
    pub fn culprit(&self) -> u64 {
        self.culprit.load(Ordering::Relaxed)
    }

    /// Whether a doom request has been posted.
    #[inline]
    #[must_use]
    pub fn is_doomed(&self) -> bool {
        self.word.load(Ordering::Acquire) & DOOM_BIT != 0
    }

    /// Enter the committing phase: the point of no return with respect to
    /// dooming. Fails iff a doom landed first (or the state is not active).
    /// Call after read validation succeeds and before the first write is
    /// published.
    pub(crate) fn begin_commit(&self) -> Result<(), ()> {
        match self.word.compare_exchange(
            STATE_ACTIVE,
            STATE_COMMITTING,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => Ok(()),
            Err(_) => Err(()),
        }
    }

    /// Committing-phase entry for the simulator's unchecked commit: the
    /// simulator's eager violation protocol guarantees no doom is pending at
    /// a commit event, so this asserts instead of failing.
    pub(crate) fn begin_commit_unchecked(&self) {
        debug_assert!(
            !self.is_doomed(),
            "simulator committed a doomed transaction"
        );
        self.word.store(STATE_COMMITTING, Ordering::Release);
    }

    pub(crate) fn mark_committed(&self) {
        self.word.store(STATE_COMMITTED, Ordering::Release);
    }

    pub(crate) fn mark_aborted(&self) {
        self.word.store(STATE_ABORTED, Ordering::Release);
    }
}

impl PartialEq for TxHandle {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}
impl Eq for TxHandle {}

impl std::hash::Hash for TxHandle {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.id.hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique() {
        let a = TxHandle::new(0);
        let b = TxHandle::new(0);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn doom_only_lands_on_active() {
        let h = TxHandle::new(0);
        assert_eq!(h.state(), TxState::Active);
        assert!(h.doom());
        assert!(h.is_doomed());

        let h2 = TxHandle::new(0);
        h2.mark_committed();
        assert!(!h2.doom());
        assert!(!h2.is_doomed());
    }

    #[test]
    fn doom_and_begin_commit_are_mutually_exclusive() {
        // Doom first: the commit CAS must fail.
        let h = TxHandle::new(0);
        assert!(h.doom());
        assert!(h.begin_commit().is_err());
        assert_eq!(h.state(), TxState::Active);

        // Commit first: the doom must fail, and the handle still reads as
        // Active (it has not finished) until mark_committed.
        let h2 = TxHandle::new(0);
        assert!(h2.begin_commit().is_ok());
        assert!(!h2.doom());
        assert!(!h2.is_doomed());
        assert_eq!(h2.state(), TxState::Active);
        h2.mark_committed();
        assert_eq!(h2.state(), TxState::Committed);
    }

    #[test]
    fn doom_from_records_first_culprit() {
        let victim = TxHandle::new(0);
        assert_eq!(victim.culprit(), 0);
        assert!(victim.doom_from(42));
        assert_eq!(victim.culprit(), 42);
        // A second doom still reports success but keeps the attribution.
        assert!(victim.doom_from(99));
        assert_eq!(victim.culprit(), 42);
    }

    #[test]
    fn handles_compare_by_id() {
        let a = TxHandle::new(0);
        let b = TxHandle::new(0);
        assert_eq!(*a, *a);
        assert_ne!(*a, *b);
    }
}
