//! Top-level transaction handles and program-directed abort.
//!
//! The paper (§4, "Program-directed transaction abort") requires that "an
//! open-nested transaction needs a way to request a reference to its top-level
//! transaction that can be stored as the owner of a lock. Later if another
//! transaction detects a conflict with that lock, the transaction reference
//! can be used to abort the conflicting transaction." [`TxHandle`] is that
//! reference: semantic lock tables store `Arc<TxHandle>` owners, and a
//! committing transaction's commit handler calls [`TxHandle::doom`] on
//! conflicting owners.
//!
//! A fresh handle is created for every top-level *attempt*, so a doom aimed at
//! a previous attempt can never spuriously kill a retry.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

static NEXT_TX_ID: AtomicU64 = AtomicU64::new(1);

/// Lifecycle state of a top-level transaction attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TxState {
    /// Still executing (or waiting to commit).
    Active = 0,
    /// Passed the point of no return; dooming it is a no-op.
    Committed = 1,
    /// Aborted (doomed, conflicted, or explicitly).
    Aborted = 2,
}

/// Identity of one top-level transaction attempt.
///
/// Handles are the owners recorded in semantic lock tables and the target of
/// program-directed abort. They are cheap to clone (`Arc`) and compare by
/// [`TxHandle::id`].
#[derive(Debug)]
pub struct TxHandle {
    id: u64,
    state: AtomicU8,
    doomed: std::sync::atomic::AtomicBool,
    /// Number of prior aborted attempts of the same logical transaction;
    /// contention managers use it as a priority hint.
    retries: AtomicU32,
}

impl TxHandle {
    /// Create a handle for a new top-level attempt. `retries` carries the
    /// abort count of the logical transaction across attempts.
    pub fn new(retries: u32) -> Arc<Self> {
        Arc::new(TxHandle {
            id: NEXT_TX_ID.fetch_add(1, Ordering::Relaxed),
            state: AtomicU8::new(TxState::Active as u8),
            doomed: std::sync::atomic::AtomicBool::new(false),
            retries: AtomicU32::new(retries),
        })
    }

    /// Unique id of this attempt.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Number of times the logical transaction behind this attempt has
    /// already aborted.
    pub fn retries(&self) -> u32 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Current lifecycle state.
    pub fn state(&self) -> TxState {
        match self.state.load(Ordering::Acquire) {
            0 => TxState::Active,
            1 => TxState::Committed,
            _ => TxState::Aborted,
        }
    }

    /// Request that this transaction abort (program-directed abort).
    ///
    /// Returns `true` if the doom landed while the transaction was still
    /// active. Dooming a committed transaction has no effect — the caller
    /// already serialized after it. All dooming in this system happens from
    /// commit/abort handlers running under the global commit mutex, so
    /// doom-vs-commit races are excluded by construction.
    #[must_use = "whether the doom landed; a false return means the target already finished"]
    pub fn doom(&self) -> bool {
        if self.state() != TxState::Active {
            return false;
        }
        self.doomed.store(true, Ordering::Release);
        true
    }

    /// Whether a doom request has been posted.
    #[inline]
    #[must_use]
    pub fn is_doomed(&self) -> bool {
        self.doomed.load(Ordering::Relaxed)
    }

    pub(crate) fn mark_committed(&self) {
        self.state
            .store(TxState::Committed as u8, Ordering::Release);
    }

    pub(crate) fn mark_aborted(&self) {
        self.state.store(TxState::Aborted as u8, Ordering::Release);
    }
}

impl PartialEq for TxHandle {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}
impl Eq for TxHandle {}

impl std::hash::Hash for TxHandle {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.id.hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique() {
        let a = TxHandle::new(0);
        let b = TxHandle::new(0);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn doom_only_lands_on_active() {
        let h = TxHandle::new(0);
        assert_eq!(h.state(), TxState::Active);
        assert!(h.doom());
        assert!(h.is_doomed());

        let h2 = TxHandle::new(0);
        h2.mark_committed();
        assert!(!h2.doom());
        assert!(!h2.is_doomed());
    }

    #[test]
    fn handles_compare_by_id() {
        let a = TxHandle::new(0);
        let b = TxHandle::new(0);
        assert_eq!(*a, *a);
        assert_ne!(*a, *b);
    }
}
