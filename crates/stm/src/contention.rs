//! Contention management for the threaded runtime.
//!
//! Optimistic concurrency control can livelock: a long transaction may be
//! repeatedly rolled back by shorter ones (paper §5.1). The contention
//! manager decides how long an aborted attempt waits before retrying;
//! priority (attempt count) feeds into the wait so repeat victims back off
//! *less* over time relative to their adversaries, a simplified Karma-style
//! scheme.

use std::time::Duration;

/// Back-off strategy applied between attempts of a top-level transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackoffPolicy {
    /// Retry immediately. Appropriate for the deterministic simulator and
    /// for low-contention workloads.
    None,
    /// Randomized exponential back-off, doubling from `base_us` up to
    /// `max_us` microseconds.
    Exponential {
        /// Initial back-off in microseconds.
        base_us: u64,
        /// Upper bound in microseconds.
        max_us: u64,
    },
    /// Exponential back-off attenuated by attempt count: a transaction that
    /// has lost many times waits proportionally less, giving it a better
    /// chance to finish (priority accumulation).
    Karma {
        /// Initial back-off in microseconds.
        base_us: u64,
        /// Upper bound in microseconds.
        max_us: u64,
    },
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy::Exponential {
            base_us: 2,
            max_us: 1000,
        }
    }
}

/// Computes per-attempt delays from a [`BackoffPolicy`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ContentionManager {
    policy: BackoffPolicy,
}

impl ContentionManager {
    /// Create a manager with the given policy.
    pub fn new(policy: BackoffPolicy) -> Self {
        ContentionManager { policy }
    }

    /// Delay to apply before retry number `attempt` (1-based).
    pub fn delay(&self, attempt: u32) -> Duration {
        match self.policy {
            BackoffPolicy::None => Duration::ZERO,
            BackoffPolicy::Exponential { base_us, max_us } => {
                Duration::from_micros(exp_backoff(base_us, max_us, attempt))
            }
            BackoffPolicy::Karma { base_us, max_us } => {
                let raw = exp_backoff(base_us, max_us, attempt);
                // More prior losses -> higher priority -> shorter wait.
                Duration::from_micros(raw / u64::from(attempt.max(1)))
            }
        }
    }

    /// Sleep (or spin briefly for sub-scheduler delays) before a retry.
    pub fn pause(&self, attempt: u32) {
        let d = self.delay(attempt);
        if d.is_zero() {
            std::hint::spin_loop();
        } else if d < Duration::from_micros(50) {
            let start = std::time::Instant::now();
            while start.elapsed() < d {
                std::hint::spin_loop();
            }
        } else {
            std::thread::sleep(d);
        }
    }
}

fn exp_backoff(base_us: u64, max_us: u64, attempt: u32) -> u64 {
    let shift = attempt.min(20);
    let ceiling = base_us.saturating_mul(1u64 << shift).min(max_us);
    // Cheap xorshift jitter seeded from the attempt and a thread-dependent
    // address; contention back-off needs decorrelation, not quality.
    let seed = (attempt as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut x = seed ^ (&seed as *const u64 as u64);
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    if ceiling == 0 {
        0
    } else {
        x % ceiling.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_policy_is_zero_delay() {
        let cm = ContentionManager::new(BackoffPolicy::None);
        assert_eq!(cm.delay(1), Duration::ZERO);
        assert_eq!(cm.delay(10), Duration::ZERO);
    }

    #[test]
    fn exponential_is_bounded() {
        let cm = ContentionManager::new(BackoffPolicy::Exponential {
            base_us: 4,
            max_us: 100,
        });
        for attempt in 1..40 {
            assert!(cm.delay(attempt) <= Duration::from_micros(100));
        }
    }

    #[test]
    fn karma_attenuates_with_attempts() {
        let cm = ContentionManager::new(BackoffPolicy::Karma {
            base_us: 64,
            max_us: 1_000_000,
        });
        // The *ceiling* for a high-attempt transaction shrinks by /attempt;
        // sample many delays and compare maxima.
        let max_low: Duration = (0..200).map(|_| cm.delay(3)).max().unwrap();
        let _ = max_low; // jitter makes strict ordering flaky; bound instead:
        for _ in 0..200 {
            assert!(cm.delay(20) <= Duration::from_micros(1_000_000 / 20 + 1));
        }
    }
}
