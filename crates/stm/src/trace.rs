//! Conflict-provenance tracing: a structured event layer for the runtime.
//!
//! The stats counters (`crate::stats`) say *how many* transactions aborted;
//! they cannot say *why this one* aborted or *who* doomed it via *which*
//! semantic lock. This module records that provenance as a bounded stream of
//! typed events — transaction lifecycle, handler-lane entry/exit, lock-spin
//! contention, and (emitted by the collection layer above) semantic lock
//! acquisitions and `doomer → victim` edges with the conflicting mode pair.
//!
//! # Design constraints
//!
//! * **Off by default, free when off.** Every emission function starts with
//!   one relaxed atomic load ([`enabled`]); tier-1 perf is untouched unless a
//!   [`TraceGuard`] is live (verified by the `trace_overhead` bench).
//! * **Zero allocation on the hot path.** Events are fixed-width
//!   `[u64; 5]` records written into a per-thread ring buffer; strings are
//!   pre-interned [`Sym`]s (txlint TX009 rejects `format!`/`String` in
//!   event construction inside transactions).
//! * **Lock-free, bounded, drop-oldest.** Each thread owns its ring and is
//!   its only writer; a full ring overwrites the oldest slot and bumps the
//!   dropped counter (`trace_events_dropped` in [`crate::StatsSnapshot`]).
//!   Readers ([`snapshot`]) reconcile with writers through a per-slot
//!   seqlock — a torn slot is detected by its version and skipped, never
//!   misread.
//!
//! # Usage
//!
//! ```
//! let _guard = stm::trace::TraceConfig::default().enable();
//! stm::atomic(|tx| { /* traced work */ });
//! let snap = stm::trace::snapshot();
//! assert!(snap.events.iter().any(|e| matches!(e, stm::trace::TraceEvent::TxnCommit { .. })));
//! println!("{}", snap.to_json());
//! ```

use crate::interrupt::AbortCause;
use crate::stats;
use parking_lot::Mutex;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

// ----------------------------------------------------------------------
// Symbol interning
// ----------------------------------------------------------------------

/// An interned `&'static str` — the no-alloc way to put a class name into a
/// fixed-width event. `Sym(0)` is the reserved "unknown" symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Sym(pub u16);

impl Sym {
    /// The reserved "unknown" symbol (instances that never set a name).
    pub const UNKNOWN: Sym = Sym(0);

    /// Resolve back to the interned string (`"?"` for [`Sym::UNKNOWN`] or a
    /// symbol from another process's trace).
    pub fn name(self) -> &'static str {
        sym_name(self)
    }
}

static SYMS: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());

/// Intern a static string, returning a stable [`Sym`] for event encoding.
/// Call once per class at construction time, never on the emission path.
pub fn intern(name: &'static str) -> Sym {
    let mut syms = SYMS.lock();
    if let Some(i) = syms.iter().position(|&s| s == name) {
        return Sym((i + 1) as u16);
    }
    assert!(syms.len() < u16::MAX as usize - 1, "symbol table exhausted");
    syms.push(name);
    Sym(syms.len() as u16)
}

/// Resolve a [`Sym`] to its interned string (`"?"` if unknown).
pub fn sym_name(sym: Sym) -> &'static str {
    if sym.0 == 0 {
        return "?";
    }
    SYMS.lock().get(sym.0 as usize - 1).copied().unwrap_or("?")
}

// ----------------------------------------------------------------------
// Vocabulary: lock kinds, observation modes, update effects
// ----------------------------------------------------------------------

/// The kind of semantic lock an event refers to (the collection layer's
/// lock taxonomy: per-key locks, whole-collection point locks, sorted-map
/// endpoint and range locks, and the bounded queue's fullness lock).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum LockKind {
    /// A per-key read lock.
    Key = 0,
    /// The size point lock.
    Size = 1,
    /// The zero-crossing emptiness lock.
    Empty = 2,
    /// A sorted-map endpoint lock (first/last key).
    Endpoint = 3,
    /// A sorted-map range lock.
    Range = 4,
    /// A bounded queue's fullness lock.
    Full = 5,
}

impl LockKind {
    /// Decode from the wire byte (unknown values map to [`LockKind::Key`]).
    pub fn from_u8(b: u8) -> LockKind {
        match b {
            1 => LockKind::Size,
            2 => LockKind::Empty,
            3 => LockKind::Endpoint,
            4 => LockKind::Range,
            5 => LockKind::Full,
            _ => LockKind::Key,
        }
    }

    /// Lower-case name used by the JSON exporter and `txtop`.
    pub fn name(self) -> &'static str {
        match self {
            LockKind::Key => "key",
            LockKind::Size => "size",
            LockKind::Empty => "empty",
            LockKind::Endpoint => "endpoint",
            LockKind::Range => "range",
            LockKind::Full => "full",
        }
    }
}

/// Names of the collection layer's observation modes, indexed by the mode
/// code carried in [`TraceEvent::DoomEdge`] (`txcollections::ObsMode` order).
pub const OBS_NAMES: [&str; 7] = ["Key", "Size", "Empty", "First", "Last", "Range", "Full"];

/// Names of the collection layer's update effects, indexed by the effect
/// code in [`TraceEvent::DoomEdge`] (`txcollections::UpdateEffect` order).
pub const EFFECT_NAMES: [&str; 6] = [
    "KeyWrite",
    "SizeChange",
    "ZeroCross",
    "FirstChange",
    "LastChange",
    "Consume",
];

/// Name of an observation-mode code (`"?"` when out of range).
pub fn obs_name(code: u8) -> &'static str {
    OBS_NAMES.get(code as usize).copied().unwrap_or("?")
}

/// Name of an update-effect code (`"?"` when out of range).
pub fn effect_name(code: u8) -> &'static str {
    EFFECT_NAMES.get(code as usize).copied().unwrap_or("?")
}

fn cause_code(cause: AbortCause) -> u8 {
    match cause {
        AbortCause::ReadInvalid => 0,
        AbortCause::Doomed => 1,
        AbortCause::Explicit => 2,
    }
}

fn cause_from(code: u8) -> AbortCause {
    match code {
        1 => AbortCause::Doomed,
        2 => AbortCause::Explicit,
        _ => AbortCause::ReadInvalid,
    }
}

/// Lower-case abort-cause name used by the JSON exporter and `txtop`.
pub fn cause_name(cause: AbortCause) -> &'static str {
    match cause {
        AbortCause::ReadInvalid => "read_invalid",
        AbortCause::Doomed => "doomed",
        AbortCause::Explicit => "explicit",
    }
}

// ----------------------------------------------------------------------
// Event encoding
// ----------------------------------------------------------------------

// Event kind codes (word0 bits 0..8).
const K_TXN_BEGIN: u8 = 0;
const K_TXN_COMMIT: u8 = 1;
const K_TXN_ABORT: u8 = 2;
const K_FRAME_RETRY: u8 = 3;
const K_OPEN_COMMIT: u8 = 4;
const K_OPEN_RETRY: u8 = 5;
const K_LANE_ENTER: u8 = 6;
const K_LANE_EXIT: u8 = 7;
const K_VAR_LOCK_SPIN: u8 = 8;
const K_SEM_BLOCKED: u8 = 9;
const K_SEM_ACQUIRED: u8 = 10;
const K_SEM_RELEASED: u8 = 11;
const K_DOOM_EDGE: u8 = 12;
const K_OPEN_FLAT: u8 = 13;
const K_CACHE_HIT: u8 = 14;
const K_SNAPSHOT_TXN: u8 = 15;
const K_SNAPSHOT_FALLBACK: u8 = 16;

// word0 layout: kind(0..8) | sym(8..24) | aux(24..32) | aux2(32..40) |
// flags(40..48). words 1..5: seq, a, b, c.
#[inline]
fn pack0(kind: u8, sym: Sym, aux: u8, aux2: u8, flags: u8) -> u64 {
    kind as u64
        | (sym.0 as u64) << 8
        | (aux as u64) << 24
        | (aux2 as u64) << 32
        | (flags as u64) << 40
}

/// One decoded trace event. `seq` is a process-global order (drawn from one
/// atomic counter at emission time); `ts` is nanoseconds since the first
/// event of the process (coarse wall-clock for occupancy estimates, absent
/// on doom edges, whose fifth word carries the key hash instead).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A top-level transaction attempt began executing.
    TxnBegin {
        /// Global emission order.
        seq: u64,
        /// Attempt id ([`crate::TxHandle::id`]).
        txn: u64,
        /// Nanoseconds since trace start.
        ts: u64,
    },
    /// A top-level attempt committed (point of no return passed, writes
    /// published, handlers run).
    TxnCommit {
        /// Global emission order.
        seq: u64,
        /// Attempt id.
        txn: u64,
        /// Nanoseconds since trace start.
        ts: u64,
    },
    /// A top-level attempt aborted. When `cause` is [`AbortCause::Doomed`],
    /// `culprit` is the attempt id of the transaction whose commit issued
    /// the doom (0 if unattributed).
    TxnAbort {
        /// Global emission order.
        seq: u64,
        /// Attempt id.
        txn: u64,
        /// Why the attempt aborted.
        cause: AbortCause,
        /// Dooming attempt id (0 when not a doom or unattributed).
        culprit: u64,
        /// Nanoseconds since trace start.
        ts: u64,
    },
    /// A closed-nested frame rolled back and re-executed (partial rollback).
    FrameRetry {
        /// Global emission order.
        seq: u64,
        /// Attempt id.
        txn: u64,
        /// Nanoseconds since trace start.
        ts: u64,
    },
    /// An open-nested child committed.
    OpenCommit {
        /// Global emission order.
        seq: u64,
        /// Owning top-level attempt id.
        txn: u64,
        /// Nanoseconds since trace start.
        ts: u64,
    },
    /// An open-nested child failed validation and re-executed.
    OpenRetry {
        /// Global emission order.
        seq: u64,
        /// Owning top-level attempt id.
        txn: u64,
        /// Nanoseconds since trace start.
        ts: u64,
    },
    /// The handler lane was acquired (handler execution or a writing
    /// open-nested commit).
    LaneEnter {
        /// Global emission order.
        seq: u64,
        /// Attempt id holding the lane.
        txn: u64,
        /// Nanoseconds since trace start.
        ts: u64,
    },
    /// The handler lane was released.
    LaneExit {
        /// Global emission order.
        seq: u64,
        /// Attempt id that held the lane.
        txn: u64,
        /// Nanoseconds since trace start.
        ts: u64,
    },
    /// A per-`TVar` commit-lock acquisition found the lock held and spun.
    VarLockSpin {
        /// Global emission order.
        seq: u64,
        /// The contended var's id.
        var: u64,
        /// Nanoseconds since trace start.
        ts: u64,
    },
    /// A semantic-table stripe mutex was found held (a blocked semantic
    /// lock acquisition or handler sweep). `stripe` is the stripe index,
    /// `u64::MAX` for the global point-lock stripe.
    SemLockBlocked {
        /// Global emission order.
        seq: u64,
        /// Collection class name.
        class: Sym,
        /// Contended stripe index (`u64::MAX` = global stripe).
        stripe: u64,
        /// Nanoseconds since trace start.
        ts: u64,
    },
    /// A semantic lock was acquired by a transaction body.
    SemLockAcquired {
        /// Global emission order.
        seq: u64,
        /// Acquiring attempt id.
        txn: u64,
        /// Collection class name.
        class: Sym,
        /// Which lock table.
        kind: LockKind,
        /// Stripe-hash of the key (0 for point locks).
        key_hash: u64,
        /// Nanoseconds since trace start.
        ts: u64,
    },
    /// A transaction's semantic locks of one kind were released by its
    /// commit or abort handler (`count` locks at once).
    SemLockReleased {
        /// Global emission order.
        seq: u64,
        /// Releasing attempt id.
        txn: u64,
        /// Collection class name.
        class: Sym,
        /// Which lock table.
        kind: LockKind,
        /// How many locks this release covered.
        count: u64,
        /// Nanoseconds since trace start.
        ts: u64,
    },
    /// A committing transaction doomed a semantic lock holder: the edge
    /// `doomer → victim`, with the conflicting `(obs, effect)` mode pair.
    /// `compatible` is `mode_compatible(obs, effect, overlap)` as evaluated
    /// by the doom protocol — always `false` for an edge that landed.
    DoomEdge {
        /// Global emission order.
        seq: u64,
        /// Committing attempt that issued the doom.
        doomer: u64,
        /// Attempt that absorbed it.
        victim: u64,
        /// Collection class name.
        class: Sym,
        /// Which lock table the conflict was found in.
        kind: LockKind,
        /// Stripe-hash of the conflicting key (0 for point locks).
        key_hash: u64,
        /// Observation-mode code of the victim's lock (see [`obs_name`]).
        obs: u8,
        /// Update-effect code of the doomer's write (see [`effect_name`]).
        effect: u8,
        /// The `mode_compatible` verdict for the pair (false = conflict).
        compatible: bool,
    },
    /// A read-only open was served flattened: no child transaction, the
    /// reads validated inline against per-var stamps (or, for boosted
    /// backends, performed directly under an already-held semantic lock).
    OpenFlattened {
        /// Global emission order.
        seq: u64,
        /// Owning top-level attempt id.
        txn: u64,
        /// Nanoseconds since trace start.
        ts: u64,
    },
    /// A semantic-lock acquisition was satisfied by the transaction's own
    /// lock cache — the `(kind, key)` lock was already held, so no stripe
    /// was touched.
    LockCacheHit {
        /// Global emission order.
        seq: u64,
        /// Attempt id whose cache hit.
        txn: u64,
        /// Collection class name.
        class: Sym,
        /// Which lock table the cached lock belongs to.
        kind: LockKind,
        /// Stripe-hash of the key (0 for point locks).
        key_hash: u64,
        /// Nanoseconds since trace start.
        ts: u64,
    },
    /// A snapshot ([`crate::atomic_read`]) transaction completed, having
    /// served `reads` variable reads from the version chains with no
    /// read-set, no validation, and no semantic locks. Emitted just before
    /// the attempt's [`TraceEvent::TxnCommit`].
    SnapshotTxn {
        /// Global emission order.
        seq: u64,
        /// Attempt id.
        txn: u64,
        /// Chain reads served by the attempt.
        reads: u64,
        /// Nanoseconds since trace start.
        ts: u64,
    },
    /// A snapshot attempt abandoned to the validated path (a version chain
    /// was truncated past its snapshot). Emitted just before the attempt's
    /// closing [`TraceEvent::TxnAbort`]; the re-run appears as a fresh
    /// ordinary transaction.
    SnapshotFallback {
        /// Global emission order.
        seq: u64,
        /// Attempt id of the abandoned snapshot attempt.
        txn: u64,
        /// Nanoseconds since trace start.
        ts: u64,
    },
}

impl TraceEvent {
    /// Global emission order of this event.
    pub fn seq(&self) -> u64 {
        match self {
            TraceEvent::TxnBegin { seq, .. }
            | TraceEvent::TxnCommit { seq, .. }
            | TraceEvent::TxnAbort { seq, .. }
            | TraceEvent::FrameRetry { seq, .. }
            | TraceEvent::OpenCommit { seq, .. }
            | TraceEvent::OpenRetry { seq, .. }
            | TraceEvent::LaneEnter { seq, .. }
            | TraceEvent::LaneExit { seq, .. }
            | TraceEvent::VarLockSpin { seq, .. }
            | TraceEvent::SemLockBlocked { seq, .. }
            | TraceEvent::SemLockAcquired { seq, .. }
            | TraceEvent::SemLockReleased { seq, .. }
            | TraceEvent::DoomEdge { seq, .. }
            | TraceEvent::OpenFlattened { seq, .. }
            | TraceEvent::LockCacheHit { seq, .. }
            | TraceEvent::SnapshotTxn { seq, .. }
            | TraceEvent::SnapshotFallback { seq, .. } => *seq,
        }
    }

    fn decode(w: [u64; 5]) -> Option<TraceEvent> {
        let kind = (w[0] & 0xff) as u8;
        let sym = Sym(((w[0] >> 8) & 0xffff) as u16);
        let aux = ((w[0] >> 24) & 0xff) as u8;
        let aux2 = ((w[0] >> 32) & 0xff) as u8;
        let flags = ((w[0] >> 40) & 0xff) as u8;
        let (seq, a, b, c) = (w[1], w[2], w[3], w[4]);
        Some(match kind {
            K_TXN_BEGIN => TraceEvent::TxnBegin { seq, txn: a, ts: c },
            K_TXN_COMMIT => TraceEvent::TxnCommit { seq, txn: a, ts: c },
            K_TXN_ABORT => TraceEvent::TxnAbort {
                seq,
                txn: a,
                cause: cause_from(aux),
                culprit: b,
                ts: c,
            },
            K_FRAME_RETRY => TraceEvent::FrameRetry { seq, txn: a, ts: c },
            K_OPEN_COMMIT => TraceEvent::OpenCommit { seq, txn: a, ts: c },
            K_OPEN_RETRY => TraceEvent::OpenRetry { seq, txn: a, ts: c },
            K_LANE_ENTER => TraceEvent::LaneEnter { seq, txn: a, ts: c },
            K_LANE_EXIT => TraceEvent::LaneExit { seq, txn: a, ts: c },
            K_VAR_LOCK_SPIN => TraceEvent::VarLockSpin { seq, var: a, ts: c },
            K_SEM_BLOCKED => TraceEvent::SemLockBlocked {
                seq,
                class: sym,
                stripe: a,
                ts: c,
            },
            K_SEM_ACQUIRED => TraceEvent::SemLockAcquired {
                seq,
                txn: a,
                class: sym,
                kind: LockKind::from_u8(aux),
                key_hash: b,
                ts: c,
            },
            K_SEM_RELEASED => TraceEvent::SemLockReleased {
                seq,
                txn: a,
                class: sym,
                kind: LockKind::from_u8(aux),
                count: b,
                ts: c,
            },
            K_DOOM_EDGE => TraceEvent::DoomEdge {
                seq,
                doomer: a,
                victim: b,
                class: sym,
                kind: LockKind::from_u8(aux),
                key_hash: c,
                obs: aux2 >> 4,
                effect: aux2 & 0x0f,
                compatible: flags & 1 != 0,
            },
            K_OPEN_FLAT => TraceEvent::OpenFlattened { seq, txn: a, ts: c },
            K_CACHE_HIT => TraceEvent::LockCacheHit {
                seq,
                txn: a,
                class: sym,
                kind: LockKind::from_u8(aux),
                key_hash: b,
                ts: c,
            },
            K_SNAPSHOT_TXN => TraceEvent::SnapshotTxn {
                seq,
                txn: a,
                reads: b,
                ts: c,
            },
            K_SNAPSHOT_FALLBACK => TraceEvent::SnapshotFallback { seq, txn: a, ts: c },
            _ => return None,
        })
    }
}

// ----------------------------------------------------------------------
// Per-thread seqlock rings and the global registry
// ----------------------------------------------------------------------

const WORDS: usize = 5;
const DEFAULT_RING_SLOTS: usize = 4096;

struct Slot {
    /// Per-slot seqlock version: odd while the owner thread is writing.
    seq: AtomicU64,
    words: [AtomicU64; WORDS],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            words: [const { AtomicU64::new(0) }; WORDS],
        }
    }
}

struct Ring {
    /// Monotonic count of events written (next logical index). Written only
    /// by the owner thread; read by snapshotters.
    head: AtomicU64,
    /// Events overwritten since the last enable (drop-oldest accounting).
    dropped: AtomicU64,
    slots: Box<[Slot]>,
}

impl Ring {
    fn new(nslots: usize) -> Ring {
        Ring {
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            slots: (0..nslots).map(|_| Slot::new()).collect(),
        }
    }

    /// Owner-thread-only append. Seqlock discipline: bump the slot version
    /// to odd, store the payload, bump to even, then publish the new head.
    fn push(&self, words: [u64; WORDS]) {
        let h = self.head.load(Ordering::Relaxed);
        let n = self.slots.len() as u64;
        if h >= n {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            stats::record_trace_dropped();
        }
        let slot = &self.slots[(h % n) as usize];
        let v = slot.seq.load(Ordering::Relaxed);
        slot.seq.store(v + 1, Ordering::SeqCst);
        for (w, val) in slot.words.iter().zip(words) {
            w.store(val, Ordering::Relaxed);
        }
        slot.seq.store(v + 2, Ordering::SeqCst);
        self.head.store(h + 1, Ordering::Release);
    }

    /// Seqlock read of logical index `i` (must be in `[head-slots, head)`).
    fn read(&self, i: u64) -> Option<[u64; WORDS]> {
        let slot = &self.slots[(i % self.slots.len() as u64) as usize];
        for _ in 0..4 {
            let v1 = slot.seq.load(Ordering::SeqCst);
            if v1 & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let mut out = [0u64; WORDS];
            for (o, w) in out.iter_mut().zip(&slot.words) {
                *o = w.load(Ordering::Relaxed);
            }
            let v2 = slot.seq.load(Ordering::SeqCst);
            if v1 == v2 {
                return Some(out);
            }
        }
        None
    }
}

static REGISTRY: Mutex<Vec<Arc<Ring>>> = Mutex::new(Vec::new());
static ENABLE_COUNT: AtomicU32 = AtomicU32::new(0);
static SEQ: AtomicU64 = AtomicU64::new(0);
static RING_SLOTS: AtomicUsize = AtomicUsize::new(DEFAULT_RING_SLOTS);
static START: OnceLock<Instant> = OnceLock::new();

thread_local! {
    static RING: RefCell<Option<Arc<Ring>>> = const { RefCell::new(None) };
}

#[inline]
fn now_ns() -> u64 {
    START.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Whether tracing is currently enabled (one relaxed load — this is the
/// entire cost of every emission site while tracing is off).
#[inline]
pub fn enabled() -> bool {
    ENABLE_COUNT.load(Ordering::Relaxed) != 0
}

#[inline]
#[allow(clippy::too_many_arguments)]
fn emit(kind: u8, sym: Sym, aux: u8, aux2: u8, flags: u8, a: u64, b: u64, c: u64) {
    let seq = SEQ.fetch_add(1, Ordering::Relaxed) + 1;
    let words = [pack0(kind, sym, aux, aux2, flags), seq, a, b, c];
    RING.with(|cell| {
        let mut r = cell.borrow_mut();
        let ring = r.get_or_insert_with(|| {
            let ring = Arc::new(Ring::new(RING_SLOTS.load(Ordering::Relaxed)));
            REGISTRY.lock().push(Arc::clone(&ring));
            ring
        });
        ring.push(words);
    });
}

// ----------------------------------------------------------------------
// Configuration and the RAII enable guard
// ----------------------------------------------------------------------

/// Tracing configuration. Off by default; build one and call
/// [`TraceConfig::enable`] to turn collection on for a scope.
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Slots per thread ring (rounded up to a power of two, min 16). Applies
    /// to rings created after enabling — a thread's ring keeps its size for
    /// the thread's lifetime, so set this before spawning traced workers.
    pub ring_slots: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            ring_slots: DEFAULT_RING_SLOTS,
        }
    }
}

impl TraceConfig {
    /// Enable tracing for the lifetime of the returned guard (RAII;
    /// reentrant — nested guards keep tracing on until the last one drops).
    /// The outermost enable resets all rings and the dropped accounting, so
    /// a fresh guard starts a fresh trace.
    pub fn enable(self) -> TraceGuard {
        let slots = self.ring_slots.max(16).next_power_of_two();
        if ENABLE_COUNT.fetch_add(1, Ordering::SeqCst) == 0 {
            RING_SLOTS.store(slots, Ordering::Relaxed);
            for ring in REGISTRY.lock().iter() {
                ring.head.store(0, Ordering::Release);
                ring.dropped.store(0, Ordering::Relaxed);
            }
        }
        TraceGuard { _priv: () }
    }
}

/// RAII guard returned by [`TraceConfig::enable`]; tracing stays on until
/// every live guard has dropped.
#[must_use = "tracing stays enabled only while the guard is live"]
pub struct TraceGuard {
    _priv: (),
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        ENABLE_COUNT.fetch_sub(1, Ordering::SeqCst);
    }
}

// ----------------------------------------------------------------------
// Emission API — fixed-width, no-alloc (txlint TX009)
// ----------------------------------------------------------------------

#[inline]
pub(crate) fn txn_begin(txn: u64) {
    if enabled() {
        emit(K_TXN_BEGIN, Sym::UNKNOWN, 0, 0, 0, txn, 0, now_ns());
    }
}

#[inline]
pub(crate) fn txn_commit(txn: u64) {
    if enabled() {
        emit(K_TXN_COMMIT, Sym::UNKNOWN, 0, 0, 0, txn, 0, now_ns());
    }
}

#[inline]
pub(crate) fn txn_abort(txn: u64, cause: AbortCause, culprit: u64) {
    if enabled() {
        emit(
            K_TXN_ABORT,
            Sym::UNKNOWN,
            cause_code(cause),
            0,
            0,
            txn,
            culprit,
            now_ns(),
        );
    }
}

#[inline]
pub(crate) fn frame_retry(txn: u64) {
    if enabled() {
        emit(K_FRAME_RETRY, Sym::UNKNOWN, 0, 0, 0, txn, 0, now_ns());
    }
}

#[inline]
pub(crate) fn open_commit(txn: u64) {
    if enabled() {
        emit(K_OPEN_COMMIT, Sym::UNKNOWN, 0, 0, 0, txn, 0, now_ns());
    }
}

#[inline]
pub(crate) fn open_retry(txn: u64) {
    if enabled() {
        emit(K_OPEN_RETRY, Sym::UNKNOWN, 0, 0, 0, txn, 0, now_ns());
    }
}

#[inline]
pub(crate) fn open_flattened(txn: u64) {
    if enabled() {
        emit(K_OPEN_FLAT, Sym::UNKNOWN, 0, 0, 0, txn, 0, now_ns());
    }
}

/// Record a txn-local lock-cache hit: transaction `txn` already held the
/// `(kind, key_hash)` lock on `class` and skipped the stripe round trip.
/// Public for the collection layer's kernel — the no-alloc emission API
/// (txlint TX009).
#[inline]
pub fn lock_cache_hit(txn: u64, class: Sym, kind: LockKind, key_hash: u64) {
    if enabled() {
        emit(
            K_CACHE_HIT,
            class,
            kind as u8,
            0,
            0,
            txn,
            key_hash,
            now_ns(),
        );
    }
}

#[inline]
pub(crate) fn snapshot_txn(txn: u64, reads: u64) {
    if enabled() {
        emit(K_SNAPSHOT_TXN, Sym::UNKNOWN, 0, 0, 0, txn, reads, now_ns());
    }
}

#[inline]
pub(crate) fn snapshot_fallback(txn: u64) {
    if enabled() {
        emit(K_SNAPSHOT_FALLBACK, Sym::UNKNOWN, 0, 0, 0, txn, 0, now_ns());
    }
}

#[inline]
pub(crate) fn lane_enter(txn: u64) {
    if enabled() {
        emit(K_LANE_ENTER, Sym::UNKNOWN, 0, 0, 0, txn, 0, now_ns());
    }
}

#[inline]
pub(crate) fn lane_exit(txn: u64) {
    if enabled() {
        emit(K_LANE_EXIT, Sym::UNKNOWN, 0, 0, 0, txn, 0, now_ns());
    }
}

#[inline]
pub(crate) fn var_lock_spin(var: u64) {
    if enabled() {
        emit(K_VAR_LOCK_SPIN, Sym::UNKNOWN, 0, 0, 0, var, 0, now_ns());
    }
}

/// Record a contended semantic-table stripe acquisition (a blocked lock
/// take or handler sweep). `stripe` is the stripe index, `u64::MAX` for the
/// global point-lock stripe. Public for the collection layer's lock tables.
#[inline]
pub fn sem_lock_blocked(class: Sym, stripe: u64) {
    if enabled() {
        emit(K_SEM_BLOCKED, class, 0, 0, 0, stripe, 0, now_ns());
    }
}

/// Record a semantic lock acquisition by transaction `txn`. `key_hash` is
/// the key's stripe hash (0 for point locks). Public for the collection
/// layer's lock tables — the no-alloc emission API (txlint TX009).
#[inline]
pub fn sem_lock_acquired(txn: u64, class: Sym, kind: LockKind, key_hash: u64) {
    if enabled() {
        emit(
            K_SEM_ACQUIRED,
            class,
            kind as u8,
            0,
            0,
            txn,
            key_hash,
            now_ns(),
        );
    }
}

/// Record the release of `count` semantic locks of one kind held by `txn`
/// (emitted by commit/abort handler sweeps). Public for the collection
/// layer's lock tables.
#[inline]
pub fn sem_lock_released(txn: u64, class: Sym, kind: LockKind, count: u64) {
    if enabled() && count > 0 {
        emit(
            K_SEM_RELEASED,
            class,
            kind as u8,
            0,
            0,
            txn,
            count,
            now_ns(),
        );
    }
}

/// Record a landed doom edge `doomer → victim` over a semantic lock of
/// `kind` on `key_hash`, with the conflicting `(obs, effect)` mode-pair
/// codes and the `mode_compatible` verdict that justified the doom. Public
/// for the collection layer's doom protocol.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn doom_edge(
    doomer: u64,
    victim: u64,
    class: Sym,
    kind: LockKind,
    key_hash: u64,
    obs: u8,
    effect: u8,
    compatible: bool,
) {
    if enabled() {
        emit(
            K_DOOM_EDGE,
            class,
            kind as u8,
            (obs << 4) | (effect & 0x0f),
            compatible as u8,
            doomer,
            victim,
            key_hash,
        );
    }
}

// ----------------------------------------------------------------------
// Snapshot and JSON export
// ----------------------------------------------------------------------

/// A point-in-time copy of every thread's ring, decoded and ordered by
/// global sequence number.
#[derive(Debug, Clone, Default)]
pub struct TraceSnapshot {
    /// Decoded events, ascending `seq`.
    pub events: Vec<TraceEvent>,
    /// Events lost to ring overflow (drop-oldest) since tracing was enabled.
    pub dropped: u64,
}

/// Collect and decode the current contents of every thread's ring. Safe to
/// call while tracing is live (torn slots are detected and skipped), but
/// meant to be called after the traced workload quiesces.
pub fn snapshot() -> TraceSnapshot {
    let rings: Vec<Arc<Ring>> = REGISTRY.lock().clone();
    let mut events = Vec::new();
    let mut dropped = 0;
    for ring in rings {
        dropped += ring.dropped.load(Ordering::Relaxed);
        let head = ring.head.load(Ordering::Acquire);
        let n = ring.slots.len() as u64;
        let lo = head.saturating_sub(n);
        for i in lo..head {
            if let Some(words) = ring.read(i) {
                if let Some(ev) = TraceEvent::decode(words) {
                    events.push(ev);
                }
            }
        }
    }
    events.sort_by_key(|e| e.seq());
    TraceSnapshot { events, dropped }
}

impl TraceSnapshot {
    /// Export as JSON: `{"version":1,"dropped":N,"events":[...]}`. Each
    /// event object carries a `"kind"` tag plus its fields; symbols and
    /// mode codes are resolved to names. Hand-rolled (no serde — the
    /// exporter runs outside transactions, so allocation is fine here).
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut s = String::with_capacity(64 + self.events.len() * 96);
        let _ = write!(
            s,
            "{{\"version\":1,\"dropped\":{},\"events\":[",
            self.dropped
        );
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = match e {
                TraceEvent::TxnBegin { seq, txn, ts } => write!(
                    s,
                    "{{\"kind\":\"txn_begin\",\"seq\":{seq},\"txn\":{txn},\"ts\":{ts}}}"
                ),
                TraceEvent::TxnCommit { seq, txn, ts } => write!(
                    s,
                    "{{\"kind\":\"txn_commit\",\"seq\":{seq},\"txn\":{txn},\"ts\":{ts}}}"
                ),
                TraceEvent::TxnAbort {
                    seq,
                    txn,
                    cause,
                    culprit,
                    ts,
                } => write!(
                    s,
                    "{{\"kind\":\"txn_abort\",\"seq\":{seq},\"txn\":{txn},\"cause\":\"{}\",\"culprit\":{culprit},\"ts\":{ts}}}",
                    cause_name(*cause)
                ),
                TraceEvent::FrameRetry { seq, txn, ts } => write!(
                    s,
                    "{{\"kind\":\"frame_retry\",\"seq\":{seq},\"txn\":{txn},\"ts\":{ts}}}"
                ),
                TraceEvent::OpenCommit { seq, txn, ts } => write!(
                    s,
                    "{{\"kind\":\"open_commit\",\"seq\":{seq},\"txn\":{txn},\"ts\":{ts}}}"
                ),
                TraceEvent::OpenRetry { seq, txn, ts } => write!(
                    s,
                    "{{\"kind\":\"open_retry\",\"seq\":{seq},\"txn\":{txn},\"ts\":{ts}}}"
                ),
                TraceEvent::LaneEnter { seq, txn, ts } => write!(
                    s,
                    "{{\"kind\":\"lane_enter\",\"seq\":{seq},\"txn\":{txn},\"ts\":{ts}}}"
                ),
                TraceEvent::LaneExit { seq, txn, ts } => write!(
                    s,
                    "{{\"kind\":\"lane_exit\",\"seq\":{seq},\"txn\":{txn},\"ts\":{ts}}}"
                ),
                TraceEvent::VarLockSpin { seq, var, ts } => write!(
                    s,
                    "{{\"kind\":\"var_lock_spin\",\"seq\":{seq},\"var\":{var},\"ts\":{ts}}}"
                ),
                TraceEvent::SemLockBlocked {
                    seq,
                    class,
                    stripe,
                    ts,
                } => write!(
                    s,
                    "{{\"kind\":\"sem_lock_blocked\",\"seq\":{seq},\"class\":\"{}\",\"stripe\":{stripe},\"ts\":{ts}}}",
                    class.name()
                ),
                TraceEvent::SemLockAcquired {
                    seq,
                    txn,
                    class,
                    kind,
                    key_hash,
                    ts,
                } => write!(
                    s,
                    "{{\"kind\":\"sem_lock_acquired\",\"seq\":{seq},\"txn\":{txn},\"class\":\"{}\",\"lock\":\"{}\",\"key_hash\":{key_hash},\"ts\":{ts}}}",
                    class.name(),
                    kind.name()
                ),
                TraceEvent::SemLockReleased {
                    seq,
                    txn,
                    class,
                    kind,
                    count,
                    ts,
                } => write!(
                    s,
                    "{{\"kind\":\"sem_lock_released\",\"seq\":{seq},\"txn\":{txn},\"class\":\"{}\",\"lock\":\"{}\",\"count\":{count},\"ts\":{ts}}}",
                    class.name(),
                    kind.name()
                ),
                TraceEvent::DoomEdge {
                    seq,
                    doomer,
                    victim,
                    class,
                    kind,
                    key_hash,
                    obs,
                    effect,
                    compatible,
                } => write!(
                    s,
                    "{{\"kind\":\"doom_edge\",\"seq\":{seq},\"doomer\":{doomer},\"victim\":{victim},\"class\":\"{}\",\"lock\":\"{}\",\"key_hash\":{key_hash},\"obs\":\"{}\",\"effect\":\"{}\",\"compatible\":{compatible}}}",
                    class.name(),
                    kind.name(),
                    obs_name(*obs),
                    effect_name(*effect)
                ),
                TraceEvent::OpenFlattened { seq, txn, ts } => write!(
                    s,
                    "{{\"kind\":\"open_flattened\",\"seq\":{seq},\"txn\":{txn},\"ts\":{ts}}}"
                ),
                TraceEvent::LockCacheHit {
                    seq,
                    txn,
                    class,
                    kind,
                    key_hash,
                    ts,
                } => write!(
                    s,
                    "{{\"kind\":\"lock_cache_hit\",\"seq\":{seq},\"txn\":{txn},\"class\":\"{}\",\"lock\":\"{}\",\"key_hash\":{key_hash},\"ts\":{ts}}}",
                    class.name(),
                    kind.name()
                ),
                TraceEvent::SnapshotTxn { seq, txn, reads, ts } => write!(
                    s,
                    "{{\"kind\":\"snapshot_txn\",\"seq\":{seq},\"txn\":{txn},\"reads\":{reads},\"ts\":{ts}}}"
                ),
                TraceEvent::SnapshotFallback { seq, txn, ts } => write!(
                    s,
                    "{{\"kind\":\"snapshot_fallback\",\"seq\":{seq},\"txn\":{txn},\"ts\":{ts}}}"
                ),
            };
        }
        s.push_str("]}");
        s
    }
}

/// Trace state is process-global; unit tests that touch it (here and in
/// `stats`) serialize on this mutex so rings, resets, and snapshots do not
/// interleave.
#[cfg(test)]
pub(crate) static TEST_LOCK: Mutex<()> = Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_means_no_events() {
        let _g = TEST_LOCK.lock();
        assert!(!enabled());
        txn_begin(12345);
        let snap = snapshot();
        assert!(!snap
            .events
            .iter()
            .any(|e| matches!(e, TraceEvent::TxnBegin { txn: 12345, .. })));
    }

    #[test]
    fn roundtrip_all_event_kinds() {
        let _g = TEST_LOCK.lock();
        let guard = TraceConfig::default().enable();
        let sym = intern("probe-class");
        txn_begin(1);
        txn_commit(1);
        txn_abort(2, AbortCause::Doomed, 1);
        frame_retry(3);
        open_commit(3);
        open_retry(3);
        lane_enter(1);
        lane_exit(1);
        var_lock_spin(77);
        sem_lock_blocked(sym, u64::MAX);
        sem_lock_acquired(4, sym, LockKind::Key, 0xdead);
        sem_lock_released(4, sym, LockKind::Key, 3);
        doom_edge(1, 2, sym, LockKind::Size, 0, 1, 1, false);
        let snap = snapshot();
        drop(guard);
        let find = |f: &dyn Fn(&TraceEvent) -> bool| snap.events.iter().any(f);
        assert!(find(&|e| matches!(e, TraceEvent::TxnBegin { txn: 1, .. })));
        assert!(find(&|e| matches!(
            e,
            TraceEvent::TxnAbort {
                txn: 2,
                cause: AbortCause::Doomed,
                culprit: 1,
                ..
            }
        )));
        assert!(find(&|e| matches!(
            e,
            TraceEvent::SemLockAcquired {
                txn: 4,
                kind: LockKind::Key,
                key_hash: 0xdead,
                ..
            }
        )));
        assert!(find(&|e| matches!(
            e,
            TraceEvent::DoomEdge {
                doomer: 1,
                victim: 2,
                kind: LockKind::Size,
                obs: 1,
                effect: 1,
                compatible: false,
                ..
            }
        )));
        // seq is strictly increasing in the snapshot.
        let seqs: Vec<u64> = snap.events.iter().map(|e| e.seq()).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted);
        // JSON export mentions the interned class name and the mode pair.
        let json = snap.to_json();
        assert!(json.contains("\"class\":\"probe-class\""));
        assert!(json.contains("\"obs\":\"Size\""));
        assert!(json.contains("\"effect\":\"SizeChange\""));
        assert!(json.starts_with("{\"version\":1,"));
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let _g = TEST_LOCK.lock();
        let guard = TraceConfig { ring_slots: 16 }.enable();
        // A fresh thread gets a fresh ring at the configured size.
        let handle = std::thread::spawn(|| {
            for i in 0..40u64 {
                txn_begin(7_000_000 + i);
            }
        });
        handle.join().unwrap();
        let snap = snapshot();
        drop(guard);
        let mine: Vec<u64> = snap
            .events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::TxnBegin { txn, .. } if (7_000_000..7_000_040).contains(txn) => {
                    Some(*txn - 7_000_000)
                }
                _ => None,
            })
            .collect();
        // Oldest dropped: only the final 16 of the 40 events survive.
        assert_eq!(mine, (24..40).collect::<Vec<u64>>());
        assert!(snap.dropped >= 24);
    }

    #[test]
    fn interning_is_stable_and_reversible() {
        let a = intern("alpha-table");
        let b = intern("beta-table");
        assert_ne!(a, b);
        assert_eq!(intern("alpha-table"), a);
        assert_eq!(a.name(), "alpha-table");
        assert_eq!(Sym::UNKNOWN.name(), "?");
    }
}
