//! Transaction contexts, nesting frames, and the commit machinery.
//!
//! txlint: metrics — metrics-emitter argument spans here must not allocate
//! or format (TX014).

use crate::clock;
use crate::handle::TxHandle;
use crate::handlers::{Handler, LocalUndo};
use crate::interrupt::{self, AbortCause, TxInterrupt};
use crate::metrics;
use crate::stats;
use crate::trace;
use crate::tvar::{AnyVar, TVar, VarId};
use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

/// How reads and writes behave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnMode {
    /// Normal execution: reads are logged and validated, writes are buffered
    /// in a redo log until commit.
    Speculative,
    /// Handler execution under the handler lane: reads see committed state,
    /// writes publish immediately (per-var commit lock + a fresh clock
    /// version each). Nesting operations are flattened.
    Direct,
}

struct ReadEntry {
    var: Arc<dyn AnyVar>,
    version: u64,
    /// Virtual-cycle offset within the body at which the read first
    /// happened (simulator timing; meaningless in threaded mode).
    offset: u64,
}

struct WriteEntry {
    var: Arc<dyn AnyVar>,
    val: Arc<dyn Any + Send + Sync>,
}

/// Why a frame exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FrameKind {
    /// The outermost frame of a top-level or open-nested transaction.
    Root,
    /// A closed-nested frame with partial-rollback support.
    Closed,
}

pub(crate) struct Frame {
    kind: FrameKind,
    reads: HashMap<VarId, ReadEntry>,
    writes: HashMap<VarId, WriteEntry>,
    commit_handlers: Vec<Handler>,
    abort_handlers: Vec<Handler>,
    local_undos: Vec<LocalUndo>,
}

impl Frame {
    fn new(kind: FrameKind) -> Self {
        Frame {
            kind,
            reads: HashMap::new(),
            writes: HashMap::new(),
            commit_handlers: Vec::new(),
            abort_handlers: Vec::new(),
            local_undos: Vec::new(),
        }
    }

    /// Borrowed view of the write set's vars for commit locking. One Vec is
    /// unavoidable (the locks must be sorted by `VarId`), but borrowing
    /// avoids an `Arc` refcount bump per written var per commit attempt —
    /// the frame outlives the [`clock::CommitGuard`] on every path.
    fn write_vars(&self) -> Vec<&dyn AnyVar> {
        self.writes.values().map(|w| w.var.as_ref()).collect()
    }

    /// Run this frame's local undos (reverse order) and drop its handlers —
    /// the frame-abort protocol.
    fn abort_locally(&mut self) {
        while let Some(u) = self.local_undos.pop() {
            u();
        }
        self.commit_handlers.clear();
        self.abort_handlers.clear();
    }
}

/// A transaction context. Obtained from [`crate::atomic`] (top-level),
/// [`Txn::closed`] / [`Txn::open`] (nested), or handler invocation (direct
/// mode).
pub struct Txn {
    mode: TxnMode,
    handle: Arc<TxHandle>,
    /// Read-validity horizon: all logged reads were consistent at this clock
    /// value. Extended incrementally when a newer version is encountered.
    rv: u64,
    frames: Vec<Frame>,
    /// True for the child context of [`Txn::open`].
    is_open_child: bool,
    /// Per-attempt extension slots, keyed by an owner-unique tag (the
    /// semantic kernel uses the address of the owning collection core).
    /// This is where layers above the runtime park per-transaction state
    /// that must die with the attempt — the kernel's registration marker
    /// and its txn-local semantic-lock cache. Linear scan on purpose: a
    /// transaction touches a handful of collection instances at most.
    ext: Vec<(usize, Box<dyn Any + Send>)>,
    /// True while an [`Txn::open_read`] body runs: `read_var` serves
    /// committed values and records them into `flat_reads` instead of the
    /// frame read set (the flattened read-only open).
    flat_mode: bool,
    /// Scratch `(var, version)` log for `open_read`, validated when the
    /// body returns; the buffer is reused across calls.
    flat_reads: Vec<(Arc<dyn AnyVar>, u64)>,
    /// Cached `Arc<TxHandle>` clone reused across this parent's open
    /// children, so `Txn::open` costs one refcount bump per transaction
    /// instead of one per operation.
    spare_open_handle: Option<Arc<TxHandle>>,
    /// `Some(s)` for a snapshot transaction ([`crate::atomic_read`]): every
    /// read is served from the newest chain entry with version `<= s`, with
    /// no read-set entry, no validation, and no semantic locks. `None` for
    /// ordinary transactions.
    snapshot: Option<u64>,
    /// Reads served from the version chains by this snapshot attempt,
    /// flushed to the global counter in one add at completion.
    snapshot_reads_served: u64,
}

impl Txn {
    pub(crate) fn new_top(handle: Arc<TxHandle>) -> Self {
        trace::txn_begin(handle.id());
        Txn {
            mode: TxnMode::Speculative,
            handle,
            rv: clock::now(),
            frames: vec![Frame::new(FrameKind::Root)],
            is_open_child: false,
            ext: Vec::new(),
            flat_mode: false,
            flat_reads: Vec::new(),
            spare_open_handle: None,
            snapshot: None,
            snapshot_reads_served: 0,
        }
    }

    /// Context for a snapshot transaction reading at clock value `s` (the
    /// caller holds the epoch pin protecting the chains down to `s`).
    pub(crate) fn new_snapshot(handle: Arc<TxHandle>, s: u64) -> Self {
        trace::txn_begin(handle.id());
        Txn {
            mode: TxnMode::Speculative,
            handle,
            rv: s,
            frames: vec![Frame::new(FrameKind::Root)],
            is_open_child: false,
            ext: Vec::new(),
            flat_mode: false,
            flat_reads: Vec::new(),
            spare_open_handle: None,
            snapshot: Some(s),
            snapshot_reads_served: 0,
        }
    }

    fn new_open_child(handle: Arc<TxHandle>) -> Self {
        Txn {
            mode: TxnMode::Speculative,
            handle,
            rv: clock::now(),
            frames: vec![Frame::new(FrameKind::Root)],
            is_open_child: true,
            ext: Vec::new(),
            flat_mode: false,
            flat_reads: Vec::new(),
            spare_open_handle: None,
            snapshot: None,
            snapshot_reads_served: 0,
        }
    }

    /// The top-level handle owning this transaction (also for open-nested
    /// children: lock ownership is always top-level, paper §3.1).
    pub fn handle(&self) -> &Arc<TxHandle> {
        &self.handle
    }

    /// Current execution mode.
    pub fn mode(&self) -> TxnMode {
        self.mode
    }

    #[allow(dead_code)]
    pub(crate) fn set_mode(&mut self, mode: TxnMode) {
        self.mode = mode;
    }

    /// True for a snapshot transaction (see [`crate::atomic_read`]). The
    /// semantic kernel checks this to skip lock acquisition and registration
    /// entirely; write-shaped entry points reject such transactions.
    pub fn in_snapshot(&self) -> bool {
        self.snapshot.is_some()
    }

    /// The clock value a snapshot transaction reads at, if this is one.
    pub fn snapshot_version(&self) -> Option<u64> {
        self.snapshot
    }

    /// Abandon the current snapshot attempt: the version chains cannot serve
    /// it (an entry was truncated past the snapshot, or the structure does
    /// not keep per-version history — boosted and eager backends). The
    /// runner re-executes the body on the validated path and counts the
    /// fallback; this is the *counted, never silent* escape hatch.
    ///
    /// No-op outside snapshot mode (so capability checks can call it
    /// unconditionally).
    pub fn snapshot_fallback(&self) {
        if self.snapshot.is_some() {
            interrupt::throw(TxInterrupt::SnapshotFallback);
        }
    }

    /// Abort the attempt cleanly and report `diag` at the `atomic` boundary
    /// — for transactional API calls that are forbidden in the current
    /// context. See [`TxInterrupt::Misuse`].
    fn misuse(&self, diag: &'static str) -> ! {
        interrupt::throw(TxInterrupt::Misuse(diag));
    }

    /// Abort with `diag` if this is a snapshot transaction; no-op otherwise.
    /// Write-shaped entry points in layers above this crate (the semantic
    /// kernel's local-state and undo-log surfaces) call this unconditionally
    /// so a buffering or compensating operation can never run under a
    /// transaction that registers no handlers to drain it.
    pub fn reject_in_snapshot(&self, diag: &'static str) {
        if self.snapshot.is_some() {
            self.misuse(diag);
        }
    }

    /// Abort immediately if another transaction has doomed this one.
    #[inline]
    fn check_doom(&self) {
        if self.handle.is_doomed() {
            interrupt::throw(TxInterrupt::Retry(AbortCause::Doomed));
        }
    }

    // ------------------------------------------------------------------
    // Read / write
    // ------------------------------------------------------------------

    pub(crate) fn read_var<T: Clone + Send + Sync + 'static>(&mut self, var: &TVar<T>) -> T {
        if self.mode == TxnMode::Direct {
            return var.read_committed();
        }
        if let Some(s) = self.snapshot {
            // Snapshot read: the newest committed value at or below `s`,
            // straight off the version chain. No read-set entry, no rv
            // extension, no doom check (a snapshot holds no locks and can
            // never be doomed); a truncated chain abandons the attempt.
            match var.core.read_at(s) {
                Some(val) => {
                    self.snapshot_reads_served += 1;
                    return val;
                }
                None => {
                    self.snapshot_fallback();
                    unreachable!("snapshot_fallback always throws in snapshot mode");
                }
            }
        }
        self.check_doom();
        if self.flat_mode {
            // Flattened read-only open: serve the committed value and log
            // `(var, version)` for the validation sweep at the end of the
            // `open_read` body. Like an open child, this deliberately does
            // *not* see the parent's buffered writes and leaves no entry in
            // the parent's read set.
            let (ver, val) = var.committed_pair();
            self.flat_reads.push((var.any(), ver));
            return val;
        }
        let id = var.id();
        // Redo-log lookup, innermost frame first.
        for frame in self.frames.iter().rev() {
            if let Some(w) = frame.writes.get(&id) {
                return w
                    .val
                    .downcast_ref::<T>()
                    .expect("write-set type mismatch")
                    .clone();
            }
        }
        let (ver, val) = var.committed_pair();
        // Repeated read: version unchanged implies value unchanged.
        if let Some((fi, recorded)) = self.find_read(id) {
            if ver == recorded {
                return val;
            }
            // The var changed under us after we read it: unrecoverable for
            // the frame that read it; partially recoverable if that frame is
            // the innermost closed frame.
            self.conflict_on_frames(&[fi]);
        }
        if ver > self.rv {
            self.extend_or_abort();
            // Re-read: the extension moved rv past the version we saw, unless
            // the var changed yet again (extremely rare); loop via recursion
            // depth 1 amortized — iterate instead.
            let mut pair = var.committed_pair();
            while pair.0 > self.rv {
                self.extend_or_abort();
                pair = var.committed_pair();
            }
            let (ver2, val2) = pair;
            let offset = crate::cost::current_cost();
            self.current_frame().reads.insert(
                id,
                ReadEntry {
                    var: var.any(),
                    version: ver2,
                    offset,
                },
            );
            return val2;
        }
        let offset = crate::cost::current_cost();
        self.current_frame().reads.insert(
            id,
            ReadEntry {
                var: var.any(),
                version: ver,
                offset,
            },
        );
        val
    }

    pub(crate) fn write_var<T: Clone + Send + Sync + 'static>(&mut self, var: &TVar<T>, val: T) {
        if self.mode == TxnMode::Direct {
            // Handler context (holding the handler lane): lock the var, draw
            // a fresh version, apply-and-release.
            clock::publish_direct(var.core.as_ref(), &val);
            return;
        }
        if self.snapshot.is_some() {
            self.misuse(
                "TVar write inside a snapshot transaction: atomic_read bodies are read-only \
                 (use stm::atomic for read-write transactions)",
            );
        }
        if self.flat_mode {
            // Not a panic: the body is re-executable, so we abort the whole
            // attempt cleanly (compensation runs, locks release) and report
            // the misuse at the `atomic` boundary instead.
            self.misuse(
                "TVar write inside an open_read body: flattened opens are read-only \
                 (use tx.open for read-write open-nested bodies)",
            );
        }
        self.check_doom();
        self.current_frame().writes.insert(
            var.id(),
            WriteEntry {
                var: var.any(),
                val: Arc::new(val),
            },
        );
    }

    fn current_frame(&mut self) -> &mut Frame {
        self.frames.last_mut().expect("transaction has no frames")
    }

    /// Locate an existing read entry; returns (frame index, recorded version).
    fn find_read(&self, id: VarId) -> Option<(usize, u64)> {
        for (fi, frame) in self.frames.iter().enumerate().rev() {
            if let Some(r) = frame.reads.get(&id) {
                return Some((fi, r.version));
            }
        }
        None
    }

    /// Timestamp extension: re-validate every logged read against current
    /// memory; on success, advance `rv`. On failure, abort — partially if all
    /// invalid reads live in the innermost frame and it is closed-nested.
    fn extend_or_abort(&mut self) {
        // Read the clock *before* validating: any commit that changes a
        // validated var after this point locked it after we checked it, and
        // (lock-all before fetch-add) therefore published with a version
        // above `new_rv` — a later read of that var re-triggers extension.
        // `stable_version` waits out in-flight publishes, so each validated
        // read reflects a complete commit; we hold no locks, so the wait
        // cannot deadlock.
        let new_rv = clock::now();
        let mut invalid_frames: Vec<usize> = Vec::new();
        for (fi, frame) in self.frames.iter().enumerate() {
            for r in frame.reads.values() {
                if clock::stable_version(r.var.as_ref()) != r.version {
                    invalid_frames.push(fi);
                    break;
                }
            }
        }
        if invalid_frames.is_empty() {
            self.rv = new_rv;
            return;
        }
        self.conflict_on_frames(&invalid_frames);
    }

    /// Abort in response to invalidated reads in the given frames: a
    /// frame-local retry if the damage is confined to the innermost closed
    /// frame, otherwise a whole-transaction retry.
    fn conflict_on_frames(&mut self, invalid_frames: &[usize]) -> ! {
        let innermost = self.frames.len() - 1;
        let confined = invalid_frames.iter().all(|&fi| fi == innermost);
        if confined && self.frames[innermost].kind == FrameKind::Closed {
            stats::record_frame_retry();
            trace::frame_retry(self.handle.id());
            interrupt::throw(TxInterrupt::RetryFrame(innermost));
        }
        interrupt::throw(TxInterrupt::Retry(AbortCause::ReadInvalid));
    }

    // ------------------------------------------------------------------
    // Handler / undo registration
    // ------------------------------------------------------------------

    /// Snapshot transactions are pure reads: handlers and undos registered
    /// on one would silently never run, so registration is a misuse abort.
    fn reject_registration_in_snapshot(&self) {
        if self.snapshot.is_some() {
            self.misuse(
                "handler/undo registration inside a snapshot transaction: atomic_read \
                 bodies are read-only and never commit or abort anything",
            );
        }
    }

    /// Register a commit handler on the *current nesting frame* (paper
    /// semantics: discarded if this frame aborts, promoted on commit).
    pub fn on_commit(&mut self, h: impl FnOnce(&mut Txn) + Send + 'static) {
        self.reject_registration_in_snapshot();
        self.current_frame().commit_handlers.push(Box::new(h));
    }

    /// Register an abort handler on the current nesting frame.
    pub fn on_abort(&mut self, h: impl FnOnce(&mut Txn) + Send + 'static) {
        self.reject_registration_in_snapshot();
        self.current_frame().abort_handlers.push(Box::new(h));
    }

    /// Register a commit handler on the **top-level** frame, surviving any
    /// enclosing closed-nested aborts. Collection classes use this because
    /// their semantic locks are owned by the top-level handle.
    pub fn on_commit_top(&mut self, h: impl FnOnce(&mut Txn) + Send + 'static) {
        self.reject_registration_in_snapshot();
        self.frames[0].commit_handlers.push(Box::new(h));
    }

    /// Register an abort handler on the top-level frame.
    pub fn on_abort_top(&mut self, h: impl FnOnce(&mut Txn) + Send + 'static) {
        self.reject_registration_in_snapshot();
        self.frames[0].abort_handlers.push(Box::new(h));
    }

    /// Register a compensation for thread-local state mutated in the current
    /// frame; runs (in reverse order) if this frame aborts.
    pub fn on_local_undo(&mut self, u: impl FnOnce() + Send + 'static) {
        self.reject_registration_in_snapshot();
        self.current_frame().local_undos.push(Box::new(u));
    }

    // ------------------------------------------------------------------
    // Nesting
    // ------------------------------------------------------------------

    /// Run `f` as a closed-nested transaction: it sees the parent's state,
    /// and a conflict confined to it rolls back and re-executes only `f`
    /// (partial rollback, paper §4 "Nested transactions").
    pub fn closed<T>(&mut self, mut f: impl FnMut(&mut Txn) -> T) -> T {
        if self.mode == TxnMode::Direct {
            return f(self); // flat in handler context (holding the lane)
        }
        if self.snapshot.is_some() {
            // Snapshot reads are consistent by construction, so nesting has
            // nothing to isolate: flatten. (Writes inside abort as misuse.)
            return f(self);
        }
        debug_assert!(!self.flat_mode, "closed nesting inside an open_read body");
        let my_index = self.frames.len();
        loop {
            self.frames.push(Frame::new(FrameKind::Closed));
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(self)));
            match outcome {
                Ok(v) => {
                    self.merge_top_frame();
                    return v;
                }
                Err(payload) => {
                    // This frame is aborting no matter what the payload is.
                    let mut frame = self.frames.pop().expect("frame stack underflow");
                    frame.abort_locally();
                    match interrupt::classify(payload) {
                        Ok(TxInterrupt::RetryFrame(i)) if i == my_index => {
                            // Damage was confined to us: re-extend over the
                            // remaining frames and re-run the body.
                            self.extend_or_abort();
                            continue;
                        }
                        Ok(other) => interrupt::throw(other),
                        Err(user) => std::panic::resume_unwind(user),
                    }
                }
            }
        }
    }

    /// Merge the innermost frame into its parent (closed-nested commit).
    fn merge_top_frame(&mut self) {
        let child = self.frames.pop().expect("frame stack underflow");
        let parent = self.current_frame();
        for (id, r) in child.reads {
            parent.reads.entry(id).or_insert(r);
        }
        for (id, w) in child.writes {
            parent.writes.insert(id, w);
        }
        parent.commit_handlers.extend(child.commit_handlers);
        parent.abort_handlers.extend(child.abort_handlers);
        parent.local_undos.extend(child.local_undos);
    }

    /// Run `f` as an **open-nested** transaction: an independent transaction
    /// that commits (and becomes visible to everyone) immediately, leaving no
    /// read or write dependencies in the parent. Handlers it registers are
    /// promoted to the parent's current frame on commit. A memory conflict
    /// re-executes only `f`; a doom of the top-level handle propagates.
    ///
    /// Unlike Moss's formulation, the child does *not* see the parent's
    /// uncommitted buffered writes: the collection classes keep their
    /// uncommitted state in thread-local buffers precisely so that open
    /// children never need it (paper §5 guidelines).
    pub fn open<T>(&mut self, mut f: impl FnMut(&mut Txn) -> T) -> T {
        if self.mode == TxnMode::Direct {
            return f(self); // handler context: effects are already immediate
        }
        if self.snapshot.is_some() {
            return f(self); // flatten, as in `closed`
        }
        debug_assert!(!self.flat_mode, "open inside an open_read body");
        // One handle clone per parent transaction, not one per op: the clone
        // shuttles between `spare_open_handle` and the child across retries.
        let mut handle = self
            .spare_open_handle
            .take()
            .unwrap_or_else(|| Arc::clone(&self.handle));
        loop {
            self.check_doom();
            let mut child = Txn::new_open_child(handle);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut child)));
            match outcome {
                Ok(v) => match child.try_commit_open() {
                    Ok((committed, h)) => {
                        self.spare_open_handle = Some(h);
                        let parent = self.current_frame();
                        parent.commit_handlers.extend(committed.commit_handlers);
                        parent.abort_handlers.extend(committed.abort_handlers);
                        parent.local_undos.extend(committed.local_undos);
                        stats::record_open_commit();
                        trace::open_commit(self.handle.id());
                        return v;
                    }
                    Err(h) => {
                        handle = h;
                        stats::record_open_retry();
                        trace::open_retry(self.handle.id());
                        continue;
                    }
                },
                Err(payload) => {
                    handle = child.into_handle();
                    match interrupt::classify(payload) {
                        // A read conflict inside the child retries only the child.
                        Ok(TxInterrupt::Retry(AbortCause::ReadInvalid))
                        | Ok(TxInterrupt::RetryFrame(_)) => {
                            stats::record_open_retry();
                            trace::open_retry(self.handle.id());
                            continue;
                        }
                        // Doom / explicit abort concern the whole transaction.
                        Ok(other) => interrupt::throw(other),
                        Err(user) => std::panic::resume_unwind(user),
                    }
                }
            }
        }
    }

    /// Run `f` as a **flattened read-only open** — semantically a
    /// [`Txn::open`] whose body performs no writes and registers nothing,
    /// executed without constructing a child `Txn` or a `catch_unwind`.
    /// Reads inside the body see committed state (never the parent's
    /// buffered writes, exactly like an open child) and are logged into a
    /// reusable scratch buffer; when the body returns, every logged read is
    /// validated against its per-var stamp — the same check as
    /// `try_commit_open`'s read-only path — and a failed validation re-runs
    /// the body. The flattened-read obligation (docs/PROTOCOL.md): this is
    /// observably equivalent to `open` for read-only bodies because both
    /// publish nothing and both return only values whose versions were
    /// simultaneously valid after the last read.
    ///
    /// The body must not write vars (asserted), open children, or register
    /// handlers. A doom of the top-level handle propagates, as in `open`.
    pub fn open_read<T>(&mut self, mut f: impl FnMut(&mut Txn) -> T) -> T {
        if self.mode == TxnMode::Direct {
            return f(self); // handler context: reads are already committed
        }
        if self.snapshot.is_some() {
            // Snapshot mode subsumes the flattened open: every read is
            // already served at one consistent version, so there is no
            // scratch log to validate and no retry loop to run.
            return f(self);
        }
        debug_assert!(!self.flat_mode, "open_read does not nest");
        loop {
            self.check_doom();
            self.flat_reads.clear();
            self.flat_mode = true;
            let v = f(self);
            self.flat_mode = false;
            let valid = self
                .flat_reads
                .iter()
                .all(|(var, ver)| clock::read_valid(var.as_ref(), *ver, false));
            if valid {
                stats::record_open_flattened();
                trace::open_flattened(self.handle.id());
                return v;
            }
            stats::record_open_retry();
            trace::open_retry(self.handle.id());
        }
    }

    /// Commit an open-nested child: validate, publish, and surrender its
    /// root frame (handlers and local undos) plus its handle clone to the
    /// caller. `Err(handle)` means validation failed and the child should
    /// re-execute (the handle comes back so the retry reuses it).
    fn try_commit_open(mut self) -> Result<(Frame, Arc<TxHandle>), Arc<TxHandle>> {
        debug_assert!(self.is_open_child);
        debug_assert_eq!(self.frames.len(), 1, "open child must end with one frame");
        // Advisory doom check (cheap early exit). The authoritative
        // doom-vs-commit decision for the *top-level* transaction is its own
        // `begin_commit` CAS; an open child that slips past a doom here only
        // publishes effects the abort handlers will compensate.
        if self.handle.is_doomed() {
            interrupt::throw(TxInterrupt::Retry(AbortCause::Doomed));
        }
        let frame = &self.frames[0];
        if frame.writes.is_empty() {
            // Read-only child: validate against per-var stamps; no locks, no
            // lane, no clock traffic.
            for r in frame.reads.values() {
                if !clock::read_valid(r.var.as_ref(), r.version, false) {
                    return Err(self.handle);
                }
            }
            let frame = self.frames.pop().unwrap();
            return Ok((frame, self.handle));
        }
        // A *writing* open commit publishes direct-mode-visible state, so it
        // serializes with handler execution: lane first, then var locks (a
        // lane-holder's direct writes spin on var locks, so the lane must
        // never be awaited while var locks are held).
        let lane = clock::lane_lock(self.handle.id());
        let guard = clock::CommitGuard::lock_write_set(frame.write_vars());
        for (id, r) in frame.reads.iter() {
            let own = frame.writes.contains_key(id);
            if !clock::read_valid(r.var.as_ref(), r.version, own) {
                // guard + lane drop: locks released, versions unchanged
                drop(guard);
                drop(lane);
                return Err(self.handle);
            }
        }
        guard.publish(|wv, horizon| {
            for w in frame.writes.values() {
                w.var.apply(w.val.as_ref(), wv, horizon);
            }
        });
        drop(lane);
        let frame = self.frames.pop().unwrap();
        Ok((frame, self.handle))
    }

    /// Surrender this child's handle clone (retry paths that unwound out of
    /// the body). `Txn` has no `Drop`, so the move is free.
    fn into_handle(self) -> Arc<TxHandle> {
        self.handle
    }

    // ------------------------------------------------------------------
    // Extension slots (the semantic kernel's per-attempt state)
    // ------------------------------------------------------------------

    /// True if an extension slot tagged `tag` exists on this attempt. The
    /// semantic kernel's first-touch probe: replaces a sharded-table lookup
    /// with a scan of a (nearly always tiny) local vector.
    pub fn ext_contains(&self, tag: usize) -> bool {
        self.ext.iter().any(|(t, _)| *t == tag)
    }

    /// Insert an extension slot. `tag` must be unique per owner (use the
    /// owner's address); inserting a duplicate tag is a logic error.
    pub fn ext_insert(&mut self, tag: usize, slot: Box<dyn Any + Send>) {
        debug_assert!(!self.ext_contains(tag), "duplicate extension tag");
        self.ext.push((tag, slot));
    }

    /// Mutable access to the slot tagged `tag`, if present.
    pub fn ext_get_mut(&mut self, tag: usize) -> Option<&mut (dyn Any + Send)> {
        self.ext
            .iter_mut()
            .find(|(t, _)| *t == tag)
            .map(|(_, s)| s.as_mut())
    }

    /// Remove and return the slot tagged `tag`. Handlers use this to drop
    /// kernel state (the lock cache) *before* any semantic lock is
    /// released — the cache-lifetime obligation of docs/PROTOCOL.md.
    pub fn ext_remove(&mut self, tag: usize) -> Option<Box<dyn Any + Send>> {
        let i = self.ext.iter().position(|(t, _)| *t == tag)?;
        Some(self.ext.swap_remove(i).1)
    }

    // ------------------------------------------------------------------
    // Top-level commit / abort (driven by the runtime or the simulator)
    // ------------------------------------------------------------------

    /// Attempt the top-level commit — the sharded two-phase commit:
    ///
    /// 1. a transaction with commit handlers first acquires the **handler
    ///    lane** and holds it through step 6 — such transactions (every
    ///    collection-touching transaction is one) therefore serialize their
    ///    whole commit exactly as under the old global mutex, which is what
    ///    keeps the doom protocol's decision point (step 4) ordered
    ///    consistently with handler execution order;
    /// 2. lock the write set in `VarId` order ([`clock::CommitGuard`]);
    /// 3. validate the read set against per-var version stamps, failing fast
    ///    if a read var is locked by another committer;
    /// 4. win the doom-vs-commit race (`TxHandle::begin_commit` — the point
    ///    of no return);
    /// 5. draw one clock `fetch_add` and publish-and-release;
    /// 6. run commit handlers in direct mode (still under the lane).
    ///
    /// Handler-free transactions — plain memory transactions, the fast path
    /// this refactor shards — skip steps 1 and 6 and execute the rest fully
    /// in parallel with every other disjoint-write-set committer.
    pub(crate) fn try_commit_top(&mut self) -> Result<(), AbortCause> {
        debug_assert!(!self.is_open_child);
        debug_assert_eq!(self.frames.len(), 1, "unbalanced nesting at commit");
        let commit_t0 = metrics::timer();
        let frame = &self.frames[0];
        let has_handlers = !frame.commit_handlers.is_empty();
        // Lane before var locks, never the reverse: a lane-holder's direct
        // writes spin on var locks, so waiting for the lane while holding a
        // var lock could deadlock.
        let lane = if has_handlers {
            Some(clock::lane_lock(self.handle.id()))
        } else {
            None
        };
        {
            // Scope the guard (it borrows the frame) so the frame borrow is
            // provably dead before the handlers need `&mut self`.
            let guard = if frame.writes.is_empty() {
                None
            } else {
                Some(clock::CommitGuard::lock_write_set(frame.write_vars()))
            };
            for (id, r) in frame.reads.iter() {
                let own = frame.writes.contains_key(id);
                if !clock::read_valid(r.var.as_ref(), r.version, own) {
                    return Err(AbortCause::ReadInvalid); // guard + lane drop release everything
                }
            }
            if self.handle.begin_commit().is_err() {
                return Err(AbortCause::Doomed);
            }
            // Point of no return: a doom can no longer land.
            if let Some(guard) = guard {
                guard.publish(|wv, horizon| {
                    for w in frame.writes.values() {
                        w.var.apply(w.val.as_ref(), wv, horizon);
                    }
                });
            }
        }
        self.handle.mark_committed();
        if has_handlers {
            self.run_commit_handlers();
        }
        drop(lane);
        stats::record_commit();
        metrics::hist_elapsed(metrics::HistKind::CommitLatency, commit_t0);
        metrics::commit_counted();
        trace::txn_commit(self.handle.id());
        if !has_handlers {
            stats::record_lane_free_commit();
        }
        Ok(())
    }

    /// Commit without read validation. Used by the simulator, whose eager
    /// TCC-style violation maintains the invariant that a transaction
    /// reaching its commit event has a valid read set (any conflicting commit
    /// would already have violated it). Debug builds still assert validity.
    pub(crate) fn commit_top_unchecked(&mut self) {
        debug_assert!(!self.is_open_child);
        debug_assert_eq!(self.frames.len(), 1, "unbalanced nesting at commit");
        let frame = &self.frames[0];
        debug_assert!(
            frame.reads.values().all(|r| r.var.version() == r.version),
            "simulator invariant violated: stale read at commit"
        );
        let has_handlers = !frame.commit_handlers.is_empty();
        let lane = if has_handlers {
            Some(clock::lane_lock(self.handle.id()))
        } else {
            None
        };
        // Same two-phase publish as `try_commit_top`, minus validation and
        // the doom CAS (the simulator's eager violation protocol already
        // guarantees both; `begin_commit_unchecked` debug-asserts it).
        self.handle.begin_commit_unchecked();
        if !frame.writes.is_empty() {
            let guard = clock::CommitGuard::lock_write_set(frame.write_vars());
            guard.publish(|wv, horizon| {
                for w in frame.writes.values() {
                    w.var.apply(w.val.as_ref(), wv, horizon);
                }
            });
        }
        self.handle.mark_committed();
        if has_handlers {
            self.run_commit_handlers();
        }
        drop(lane);
        stats::record_commit();
        metrics::commit_counted();
        trace::txn_commit(self.handle.id());
        if !has_handlers {
            stats::record_lane_free_commit();
        }
    }

    /// Complete a successful snapshot attempt. There is nothing to validate,
    /// publish, or run — the attempt logged no reads, buffered no writes,
    /// and was barred from registering handlers — so completion is: mark
    /// committed, flush the batched read counter, emit the trace pair.
    pub(crate) fn finish_snapshot(&mut self) {
        debug_assert!(self.snapshot.is_some());
        self.handle.mark_committed();
        stats::record_commit();
        metrics::commit_counted();
        if self.snapshot_reads_served > 0 {
            stats::record_snapshot_reads(self.snapshot_reads_served);
        }
        trace::snapshot_txn(self.handle.id(), self.snapshot_reads_served);
        trace::txn_commit(self.handle.id());
    }

    /// Abandon a snapshot attempt (chain-truncation fallback, misuse, or a
    /// user panic unwinding through the body). A snapshot holds no locks and
    /// buffered nothing, so there is no compensation to run; this closes the
    /// begin/terminal trace pairing and flushes reads served so far. Not
    /// recorded as an abort in [`crate::global_stats`] — the transaction
    /// never speculated anything, and `snapshot_fallbacks` is the
    /// meaningful signal (see docs/OBSERVABILITY.md).
    pub(crate) fn abandon_snapshot(&mut self) {
        debug_assert!(self.snapshot.is_some());
        self.handle.mark_aborted();
        if self.snapshot_reads_served > 0 {
            stats::record_snapshot_reads(self.snapshot_reads_served);
        }
        trace::txn_abort(self.handle.id(), AbortCause::Explicit, 0);
    }

    /// Drain commit handlers in direct mode. The caller holds the handler
    /// lane (committer-holds-lane-through-handlers), so the collections'
    /// apply-buffer-then-doom-scan protocol never interleaves with another
    /// transaction's handlers.
    fn run_commit_handlers(&mut self) {
        self.mode = TxnMode::Direct;
        // Drain iteratively so a handler that registers another handler
        // still gets it run.
        loop {
            let hs: Vec<Handler> = std::mem::take(&mut self.frames[0].commit_handlers);
            if hs.is_empty() {
                break;
            }
            for h in hs {
                stats::record_handler_run();
                h(self);
            }
        }
    }

    /// The abort path: run local undos (innermost first, reverse order), then
    /// abort handlers in direct mode under the handler lane. Called by the
    /// runtime after any failed attempt and by [`crate::PreparedTxn::abort`].
    pub(crate) fn run_abort_path(&mut self, cause: AbortCause) {
        // A doom may have unwound out of an `open_read` body mid-flight;
        // clear the flag so handler-mode reads behave normally.
        self.flat_mode = false;
        // Undos touch only this transaction's thread-local buffers (behind
        // each collection's own mutex), so they need no lane. Frames should
        // already be collapsed to the root by unwinding, but be robust to
        // aborts raised with frames still stacked.
        while self.frames.len() > 1 {
            let mut f = self.frames.pop().unwrap();
            while let Some(u) = f.local_undos.pop() {
                u();
            }
            // Handlers of un-merged frames are discarded per the paper.
        }
        while let Some(u) = self.frames[0].local_undos.pop() {
            u();
        }
        if !self.frames[0].abort_handlers.is_empty() {
            // Compensation runs under the handler lane, serialized with all
            // other handler execution and writing open commits.
            let _lane = clock::lane_lock(self.handle.id());
            self.mode = TxnMode::Direct;
            loop {
                let hs: Vec<Handler> = std::mem::take(&mut self.frames[0].abort_handlers);
                if hs.is_empty() {
                    break;
                }
                for h in hs {
                    stats::record_handler_run();
                    h(self);
                }
            }
            self.frames[0].commit_handlers.clear();
            // Mark aborted only now, still holding the lane: compensation
            // (undo of any in-place effects, semantic-lock release) is
            // complete, so observers that treat a non-Active owner's locks as
            // stale can never see un-compensated state. (Marking before the
            // handlers ran let a pessimistic writer's in-place value be read
            // during the undo window.)
            self.handle.mark_aborted();
        } else {
            self.frames[0].commit_handlers.clear();
            self.handle.mark_aborted();
        }
        stats::record_abort(cause);
        metrics::abort_counted(cause);
        // Every begun attempt reaches exactly one of `trace::txn_commit` /
        // this emission, so a trace never holds a dangling begin.
        let culprit = if cause == AbortCause::Doomed {
            self.handle.culprit()
        } else {
            0
        };
        trace::txn_abort(self.handle.id(), cause, culprit);
    }

    // ------------------------------------------------------------------
    // Introspection (simulator support)
    // ------------------------------------------------------------------

    /// Ids of every var read (and not overwritten before first read) by the
    /// root frame. Only meaningful once nesting has collapsed.
    pub fn read_ids(&self) -> Vec<VarId> {
        self.read_ids_iter().collect()
    }

    /// Non-allocating form of [`Txn::read_ids`] for validation-style sweeps
    /// that only need to walk the footprint once.
    pub fn read_ids_iter(&self) -> impl Iterator<Item = VarId> + '_ {
        self.frames[0].reads.keys().copied()
    }

    /// `(var, body-cycle-offset)` of every root-frame read — the simulator
    /// uses offsets to decide whether a read had already happened when a
    /// conflicting commit broadcast arrived.
    pub fn read_offsets(&self) -> Vec<(VarId, u64)> {
        self.read_offsets_iter().collect()
    }

    /// Non-allocating form of [`Txn::read_offsets`].
    pub fn read_offsets_iter(&self) -> impl Iterator<Item = (VarId, u64)> + '_ {
        self.frames[0].reads.iter().map(|(id, r)| (*id, r.offset))
    }

    /// Ids of every var written by the root frame.
    pub fn write_ids(&self) -> Vec<VarId> {
        self.frames[0].writes.keys().copied().collect()
    }

    /// Number of logged reads (diagnostics).
    pub fn read_set_len(&self) -> usize {
        self.frames.iter().map(|f| f.reads.len()).sum()
    }

    /// Number of logged writes (diagnostics).
    pub fn write_set_len(&self) -> usize {
        self.frames.iter().map(|f| f.writes.len()).sum()
    }
}
