//! Control-flow interrupts for abort/retry.
//!
//! Aborting a transaction from deep inside a data-structure operation needs a
//! non-local exit. We use `std::panic::resume_unwind` with a private payload
//! type: unlike `panic!`, `resume_unwind` does not invoke the panic hook, so
//! retries are silent. The runtime's catch site inspects the payload — our
//! own [`TxInterrupt`] drives the retry machinery, anything else is a genuine
//! user panic and is propagated after abort handlers run.

use std::any::Any;
use std::panic;

/// Why a transaction attempt aborted. Recorded in statistics and surfaced by
/// the prepared-transaction API.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbortCause {
    /// Read-set validation failed (memory-level conflict).
    ReadInvalid,
    /// Another transaction issued a program-directed abort
    /// (semantic conflict via [`crate::TxHandle::doom`]).
    Doomed,
    /// The program aborted itself via [`abort_and_retry`] or [`user_abort`].
    Explicit,
}

/// Internal unwind payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TxInterrupt {
    /// Abort the whole top-level transaction and retry it.
    Retry(AbortCause),
    /// Abort the whole top-level transaction and do NOT retry; `atomic`
    /// panics with a user abort error instead.
    UserAbort,
    /// Partially roll back: discard frames above (and including) the frame
    /// with this index, then re-run that closed-nested frame only.
    RetryFrame(usize),
    /// A snapshot ([`crate::atomic_read`]) attempt cannot be served from the
    /// version chains (an entry was truncated past the snapshot version):
    /// abandon the attempt and re-run on the validated path. Counted as a
    /// fallback, never as an abort.
    SnapshotFallback,
    /// The program called a transactional API in a context where it is
    /// forbidden (a write inside `open_read` or inside a snapshot
    /// transaction). The attempt is aborted *cleanly* — compensation runs,
    /// locks release — and the runner then panics with this diagnostic at
    /// the `atomic` boundary, outside any re-executable closure, keeping the
    /// runtime recoverable (the failure mode TX003 exists to catch).
    Misuse(&'static str),
}

pub(crate) fn throw(i: TxInterrupt) -> ! {
    panic::resume_unwind(Box::new(i))
}

/// Downcast an unwind payload back into a [`TxInterrupt`], or return it.
pub(crate) fn classify(payload: Box<dyn Any + Send>) -> Result<TxInterrupt, Box<dyn Any + Send>> {
    match payload.downcast::<TxInterrupt>() {
        Ok(i) => Ok(*i),
        Err(p) => Err(p),
    }
}

/// Run `f`, catching only our own interrupts; user panics resume unwinding
/// after `on_unwind` has been given a chance to clean up.
#[allow(dead_code)]
pub(crate) fn catch<T>(f: impl FnOnce() -> T) -> Result<T, TxInterrupt> {
    match panic::catch_unwind(panic::AssertUnwindSafe(f)) {
        Ok(v) => Ok(v),
        Err(payload) => match classify(payload) {
            Ok(i) => Err(i),
            Err(user) => panic::resume_unwind(user),
        },
    }
}

/// Abort the current transaction attempt and retry it from the top.
///
/// This is the program-directed self-abort of paper §4 ("some systems provide
/// an interface for transactions to abort themselves"). Abort handlers run
/// before the retry.
pub fn abort_and_retry() -> ! {
    throw(TxInterrupt::Retry(AbortCause::Explicit))
}

/// Abort the current transaction attempt and give up: [`crate::atomic`]
/// panics with `"transaction aborted by user request"` after running abort
/// handlers. Use this for consistency-violation bail-outs.
pub fn user_abort() -> ! {
    throw(TxInterrupt::UserAbort)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catch_returns_value() {
        assert_eq!(catch(|| 41 + 1), Ok(42));
    }

    #[test]
    fn catch_intercepts_interrupts() {
        let r = catch(|| -> () { throw(TxInterrupt::Retry(AbortCause::Explicit)) });
        match r {
            Err(TxInterrupt::Retry(AbortCause::Explicit)) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn catch_passes_user_panics_through() {
        let r = panic::catch_unwind(|| catch(|| panic!("boom")));
        assert!(r.is_err());
    }
}
