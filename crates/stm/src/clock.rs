//! Global version clock, per-`TVar` commit locking, and the handler lane.
//!
//! txlint: commit-internals — everything here is `pub(crate)`: the only way
//! to publish writes is through [`CommitGuard`] / [`publish_direct`], so no
//! collection-layer code can bypass the commit protocol.
//!
//! txlint: metrics — metrics-emitter argument spans here must not allocate
//! or format (TX014).
//!
//! The STM uses a single monotonically increasing version clock. Every
//! committed write stamps its `TVar` with a version drawn from this clock
//! (one atomic `fetch_add` per writing commit), and every transaction records
//! the clock value at which it started (`rv`). A read observing a version
//! newer than `rv` triggers timestamp extension or a retry, which is what
//! gives transactions an opaque (always-consistent) view of memory.
//!
//! ## The sharded commit protocol (TL2-style two-phase commit)
//!
//! There is no global commit mutex. A writing commit instead:
//!
//! 1. acquires the per-var versioned **commit locks** of its entire write set
//!    in `VarId` order (globally consistent order ⇒ deadlock-free) via
//!    [`CommitGuard::lock_write_set`];
//! 2. validates its read set against the per-var version stamps with
//!    [`read_valid`] — failing fast (no spinning) if a read-set var is locked
//!    by another committer, which both avoids hold-and-wait cycles between
//!    committers and is almost always the right call (a held lock means the
//!    version is about to change);
//! 3. wins the doom-vs-commit race (`TxHandle::begin_commit`, top-level
//!    only);
//! 4. draws a fresh write version with one clock `fetch_add` and applies the
//!    write set ([`CommitGuard::publish`]); each `apply` releases that var's
//!    commit lock as it stamps the new version.
//!
//! Transactions with disjoint write sets therefore commit fully in parallel.
//! The **lock-all, then validate, then `fetch_add`** order is load-bearing
//! for opacity: any commit that invalidates a read after our validation must
//! have locked the var after we checked it, hence drawn its write version
//! after our `fetch_add`-free validation point, hence published with a
//! version above any reader's current horizon — readers catch it via the
//! version check (plus the locked-bit spin in the read path) and extend.
//!
//! ## The handler lane
//!
//! Commit/abort *handlers* — the part of the system the collections' doom
//! protocol needs serialized — run under a dedicated mutex, the [`lane_lock`]
//! **handler lane**. Only transactions that actually registered handlers (and
//! open-nested commits that publish writes, which are the other source of
//! direct-mode-visible mutation) ever take it; a plain memory transaction
//! commits without touching any shared lock except its own write set's.
//!
//! Lock order (see `docs/PROTOCOL.md` for the full proof):
//! **var locks → clock → handler lane → table mutex**, with the release
//! discipline that a top-level committer fully releases its var locks
//! (publishing is what releases them) *before* acquiring the lane, and a
//! writing open-nested commit acquires the lane *before* its var locks.
//! Nobody ever waits for the lane while holding a var lock, and var locks
//! are only ever held for bounded, non-blocking critical sections, so the
//! lane-holder's direct writes (which spin on var locks) always terminate.

use crate::stats;
use crate::trace;
use crate::tvar::AnyVar;
use parking_lot::{Mutex, MutexGuard};
use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering};

static GLOBAL_CLOCK: AtomicU64 = AtomicU64::new(0);
static HANDLER_LANE: Mutex<()> = Mutex::new(());

/// Current value of the global version clock.
pub(crate) fn now() -> u64 {
    GLOBAL_CLOCK.load(Ordering::Acquire)
}

/// Draw a fresh, globally unique write version (atomic `fetch_add`).
///
/// Call only while holding the commit locks of every var about to be stamped
/// with it: a reader that observes a version above its horizon must be able
/// to rely on lock-then-validate to resynchronize.
pub(crate) fn fresh_version() -> u64 {
    GLOBAL_CLOCK.fetch_add(1, Ordering::AcqRel) + 1
}

/// Acquire the handler lane. Taken by commit/abort handler execution and by
/// writing open-nested commits; never while holding any var commit lock.
/// `txn` is the holding attempt's id, recorded on the trace lane-occupancy
/// events (enter after acquisition, exit on drop).
pub(crate) fn lane_lock(txn: u64) -> LaneGuard {
    stats::record_lane_entry();
    crate::metrics::lane_entered();
    let inner = HANDLER_LANE.lock();
    trace::lane_enter(txn);
    LaneGuard { txn, _inner: inner }
}

/// RAII ownership of the handler lane; emits the trace lane-exit event when
/// released so `txtop` can compute lane occupancy.
pub(crate) struct LaneGuard {
    txn: u64,
    _inner: MutexGuard<'static, ()>,
}

impl Drop for LaneGuard {
    fn drop(&mut self) {
        trace::lane_exit(self.txn);
    }
}

/// Spin until `var`'s commit lock is acquired, yielding so single-CPU hosts
/// make progress. Holders release in bounded time (publish or validation
/// failure), so this terminates.
pub(crate) fn lock_var_spin(var: &dyn AnyVar) {
    if var.try_lock_commit() {
        return;
    }
    stats::record_var_lock_spin();
    trace::var_lock_spin(var.id());
    loop {
        std::hint::spin_loop();
        std::thread::yield_now();
        if var.try_lock_commit() {
            return;
        }
    }
}

/// Commit-time read validation against a var's `(version, locked)` stamp,
/// loaded as one word so a concurrent publish cannot slip between a version
/// check and a lock check.
///
/// Valid iff the version still matches the recorded one **and** the var is
/// not commit-locked by another transaction. `locked_by_self` is true when
/// the var is in the caller's own (already locked) write set.
pub(crate) fn read_valid(var: &dyn AnyVar, recorded: u64, locked_by_self: bool) -> bool {
    let stamp = var.stamp();
    (stamp >> 1) == recorded && (stamp & 1 == 0 || locked_by_self)
}

/// A var's committed version, waiting out any in-flight publish. Used by
/// timestamp extension, which holds no locks and therefore may spin.
pub(crate) fn stable_version(var: &dyn AnyVar) -> u64 {
    let mut stamp = var.stamp();
    while stamp & 1 != 0 {
        std::hint::spin_loop();
        std::thread::yield_now();
        stamp = var.stamp();
    }
    stamp >> 1
}

/// A direct-mode (handler) write: lock the var, draw a fresh version, apply.
/// The apply releases the lock. Callers hold the handler lane, never any var
/// commit lock, so the spin cannot deadlock.
pub(crate) fn publish_direct(var: &dyn AnyVar, val: &(dyn Any + Send + Sync)) {
    lock_var_spin(var);
    let wv = fresh_version();
    var.apply(val, wv, crate::epoch::publish_horizon());
}

/// Ownership of a write set's commit locks: phase one of the two-phase
/// commit. Dropping the guard before [`publish`](Self::publish) (validation
/// failure, doom) releases every lock with versions unchanged.
///
/// The guard *borrows* the write set's vars from the committing frame — the
/// frame outlives every commit attempt, so taking an `Arc` refcount per var
/// per attempt would be pure overhead on the commit hot path.
pub(crate) struct CommitGuard<'a> {
    locked: Vec<&'a dyn AnyVar>,
    armed: bool,
}

impl<'a> CommitGuard<'a> {
    /// Acquire the commit locks of `vars` in `VarId` order (the globally
    /// consistent order that makes concurrent committers deadlock-free).
    pub(crate) fn lock_write_set(mut vars: Vec<&'a dyn AnyVar>) -> CommitGuard<'a> {
        vars.sort_unstable_by_key(|v| v.id());
        for v in &vars {
            lock_var_spin(*v);
        }
        CommitGuard {
            locked: vars,
            armed: true,
        }
    }

    /// Phase two: draw the write version and apply the write set.
    /// `apply_all` must stamp every locked var with the version it is given
    /// (each `apply` releases that var's lock) and thread the horizon into
    /// every `apply`. The reclamation horizon is sampled **once per commit**
    /// here — while snapshot readers are pinned, `min_pinned()` is an
    /// O(threads) slot scan, and paying it per published var would tax every
    /// writer with `O(write_set × threads)` for a single long-lived reader.
    pub(crate) fn publish(mut self, apply_all: impl FnOnce(u64, u64)) {
        let wv = fresh_version();
        let horizon = crate::epoch::publish_horizon();
        apply_all(wv, horizon);
        self.armed = false;
    }
}

impl Drop for CommitGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            for v in &self.locked {
                v.unlock_commit();
            }
        }
    }
}
