//! Global version clock and the global commit mutex.
//!
//! The STM uses a single monotonically increasing version clock. Every
//! committed write stamps its `TVar` with a version drawn from this clock, and
//! every transaction records the clock value at which it started (`rv`). A
//! read observing a version newer than `rv` triggers timestamp extension or a
//! retry, which is what gives transactions an opaque (always-consistent) view
//! of memory.
//!
//! Commits are serialized by [`commit_lock`]. Holding it guarantees that no
//! other transaction can publish writes, run commit/abort handlers, or doom a
//! transaction concurrently — the invariant that makes the semantic-lock
//! dooming protocol in `txcollections` race-free (see that crate's docs).

use parking_lot::{Mutex, MutexGuard};
use std::sync::atomic::{AtomicU64, Ordering};

static GLOBAL_CLOCK: AtomicU64 = AtomicU64::new(0);
static COMMIT_MUTEX: Mutex<()> = Mutex::new(());

/// Current value of the global version clock.
pub(crate) fn now() -> u64 {
    GLOBAL_CLOCK.load(Ordering::Acquire)
}

/// The version the next commit will write. Call only while holding the
/// commit mutex; pair with [`publish`] **after** all writes are applied.
///
/// Ordering matters for opacity: writes land with a version `> now()`, and
/// the clock only advances once the whole write set is visible. A reader
/// that sees a version above its read horizon therefore knows a commit is
/// (or was) in flight and must synchronize (timestamp extension under the
/// commit mutex) rather than mix old and new values.
pub(crate) fn next_version() -> u64 {
    GLOBAL_CLOCK.load(Ordering::Acquire) + 1
}

/// Publish a fully applied commit at version `v` (commit mutex held).
pub(crate) fn publish(v: u64) {
    GLOBAL_CLOCK.store(v, Ordering::Release);
}

/// Acquire the global commit mutex.
pub(crate) fn commit_lock() -> MutexGuard<'static, ()> {
    COMMIT_MUTEX.lock()
}
