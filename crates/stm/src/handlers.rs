//! Commit and abort handlers.
//!
//! Handlers are the cleanup/publication mechanism of multi-level transactions
//! (paper §4, "Commit and abort handlers"). A handler receives the
//! transaction context in **direct mode** ([`crate::TxnMode::Direct`]): reads
//! return committed state (each read is per-var atomic and waits out
//! in-flight publishes) and writes publish immediately (per-var commit lock
//! plus a fresh clock version each), because handlers run while the **handler
//! lane** is held — after the owning transaction's point of no return (commit
//! handlers) or after its memory rollback (abort handlers). The lane
//! serializes all handler execution and all writing open-nested commits, so a
//! handler's updates can never conflict with another transaction's handlers,
//! which subsumes the paper's "commit handlers run closed-nested so conflicts
//! replay only the handler": under the lane the replay case simply cannot
//! arise. Plain memory commits do *not* take the lane — they publish in
//! parallel under their own write set's var locks.
//!
//! Handlers registered inside a nested frame are *discarded* if that frame
//! aborts and *promoted to the parent frame* if it commits, exactly per the
//! paper. The transactional collection classes register their single
//! commit/abort handler pair directly on the top-level frame
//! ([`crate::Txn::on_commit_top`]) because their lock owners are top-level
//! handles.

use crate::txn::Txn;

/// A commit or abort handler. Runs exactly once, in direct mode, under the
/// handler lane.
pub(crate) type Handler = Box<dyn FnOnce(&mut Txn) + Send>;

/// A compensation for *thread-local, non-transactional* state mutated inside
/// a nesting frame (e.g. a collection's store buffer). Runs in reverse
/// registration order when the registering frame aborts; dropped when the
/// top-level transaction commits.
///
/// This is the encapsulated alternative to Moss's interleaved-undo semantics
/// discussed (and rejected as unnecessary) in paper §5.1: because only the
/// registering transaction can touch the buffered state, replaying local
/// undos at frame-abort time is always safe.
pub(crate) type LocalUndo = Box<dyn FnOnce() + Send>;

/// Alias kept for API clarity: handlers receive the transaction in direct
/// mode; the type is the same [`Txn`].
pub type HandlerCtx = Txn;
