//! Transactional variables.
//!
//! A [`TVar<T>`] is a shared, versioned cell. All access from inside a
//! transaction goes through [`TVar::read`] / [`TVar::write`], which log the
//! access in the current nesting frame of the [`Txn`]. Values are stored and
//! buffered by clone; in practice `T` is either small and `Copy`-like or an
//! `Arc`-wrapped payload.
//!
//! Each var additionally carries a **versioned commit lock** (`vlock`): one
//! atomic word holding `(version << 1) | locked`. Committers acquire the lock
//! bit (in `VarId` order across their write set), and publishing a value
//! stores the new version with the bit clear — so releasing the lock and
//! stamping the version are a single atomic store, and validators read
//! version + lock state as one word. See `clock.rs` for the protocol.

use crate::cost;
use crate::stats;
use crate::txn::Txn;
use parking_lot::{Mutex, RwLock};
use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Upper bound on the per-var history chain. A snapshot pinned so far in the
/// past that its entry fell off the end takes the counted fallback path
/// instead; the bound is what keeps worst-case memory per var constant.
pub(crate) const MAX_CHAIN_DEPTH: usize = 8;

static NEXT_VAR_ID: AtomicU64 = AtomicU64::new(1);
static LABELS: Mutex<Option<HashMap<VarId, String>>> = Mutex::new(None);
/// Lock-free gate for the common no-label case: [`var_label`] sits on abort
/// paths, and most programs never label anything, so they should not take a
/// global mutex just to learn the table is empty.
static LABELS_USED: AtomicBool = AtomicBool::new(false);

/// Attach a human-readable label to a variable, for conflict attribution
/// (the TAPE-style profiling of paper §6.3: identifying which shared
/// locations cause lost work).
pub fn label_var(id: VarId, label: impl Into<String>) {
    // Publish the gate before the entry: a reader that sees the flag clear
    // may miss this label (it raced the registration), but a reader that
    // looks up after we return always takes the slow path.
    LABELS_USED.store(true, Ordering::Release);
    LABELS
        .lock()
        .get_or_insert_with(HashMap::new)
        .insert(id, label.into());
}

/// Look up a variable's label, if any. Lock-free when no label was ever
/// registered.
pub fn var_label(id: VarId) -> Option<String> {
    if !LABELS_USED.load(Ordering::Acquire) {
        return None;
    }
    LABELS.lock().as_ref().and_then(|m| m.get(&id).cloned())
}

/// Globally unique identifier of a [`TVar`]. The simulator intersects
/// read/write sets by `VarId`.
pub type VarId = u64;

/// Type-erased view of a `TVar` used by read/write sets and the committer.
pub(crate) trait AnyVar: Send + Sync {
    fn id(&self) -> VarId;
    /// Committed version stamp (ignores the lock bit).
    fn version(&self) -> u64;
    /// Raw `(version << 1) | locked` word, loaded once — the unit of
    /// commit-time validation.
    fn stamp(&self) -> u64;
    /// Try to acquire the commit lock; `false` if another committer holds it.
    fn try_lock_commit(&self) -> bool;
    /// Release the commit lock without publishing (failed commit).
    fn unlock_commit(&self);
    /// Publish a buffered value with the given write version, releasing the
    /// commit lock in the same store.
    /// `val` must be the `T` of the underlying var (guaranteed by the logger).
    /// `horizon` is the chain-reclamation horizon for the publishing commit,
    /// sampled once per commit via [`crate::epoch::publish_horizon`] —
    /// `u64::MAX` means no snapshot reader is pinned and history maintenance
    /// can be skipped entirely.
    fn apply(&self, val: &(dyn Any + Send + Sync), version: u64, horizon: u64);
}

pub(crate) struct VarCore<T> {
    id: VarId,
    /// `(version << 1) | locked` — see the module docs.
    vlock: AtomicU64,
    cell: RwLock<(u64, T)>,
    /// Multi-version history: previously committed `(version, value)` pairs,
    /// newest first, forming a *contiguous* suffix of this var's committed
    /// history ending just before `cell`. Maintained only while snapshot
    /// readers are pinned (see `epoch.rs`); bounded by [`MAX_CHAIN_DEPTH`].
    ///
    /// The contiguity invariant is what makes [`VarCore::read_at`] sound:
    /// every publish either pushes the outgoing head onto the chain or (when
    /// no reader is pinned) clears the chain, so a chain entry `<= s` is
    /// always the *latest* committed value at snapshot `s` — never a stale
    /// value with skipped versions between it and `s`.
    hist: Mutex<Vec<(u64, T)>>,
    /// Relaxed mirror of `!hist.is_empty()`, so the no-readers publish path
    /// pays one load instead of a mutex. Publishes to one var are serialized
    /// by its commit lock, whose release/acquire pair orders this flag.
    has_hist: AtomicBool,
}

impl<T: Clone + Send + Sync + 'static> VarCore<T> {
    /// Wait out an in-flight publish on this var (reads must not accept a
    /// value another committer is about to replace without noticing: the
    /// subsequent version check plus this spin is what keeps the transaction
    /// body's view opaque).
    fn await_unlocked(&self) {
        while self.vlock.load(Ordering::Acquire) & 1 != 0 {
            std::hint::spin_loop();
            std::thread::yield_now();
        }
    }

    /// Read the newest committed value at or below snapshot version `s`, or
    /// `None` if the chain has been truncated (or never maintained) past it —
    /// the caller then takes the counted validated-path fallback.
    ///
    /// The head check is gated on the versioned commit lock: accepting a
    /// head stamped `<= s` is sound **only** while the var is unlocked. A
    /// committer draws its write version with the clock `fetch_add` *after*
    /// locking its whole write set, so a commit that could still publish a
    /// version `<= s` drew it before our snapshot sampled the clock — and
    /// therefore still holds this var's lock. Skipping the lock check is the
    /// torn-read bug: a snapshot pinned between a committer's `fetch_add`
    /// and its last per-var apply would see already-applied vars at the new
    /// version (`<= s`) and unapplied vars at their old versions (also
    /// `<= s`) — an inconsistent cut through one atomic write set.
    ///
    /// The only wait is the bounded spin when a publish is in flight *and*
    /// the committed head is still at or below `s`; every other path is one
    /// stamp load, one `RwLock` read of `cell`, and a stamp re-check.
    pub(crate) fn read_at(&self, s: u64) -> Option<T> {
        loop {
            let w = self.vlock.load(Ordering::Acquire);
            if w & 1 == 0 {
                if w >> 1 <= s {
                    let g = self.cell.read();
                    // Re-check the stamp under the cell guard: a commit may
                    // have locked *and published* between the stamp load and
                    // the cell read. Versions never repeat (the clock is a
                    // monotone fetch_add), so stamp equality proves the pair
                    // under the guard is still the one the stamp described.
                    if self.vlock.load(Ordering::Acquire) == w {
                        return Some(g.1.clone());
                    }
                    continue;
                }
            } else {
                // A publish is in flight. If the committed head is already
                // past `s`, the in-flight version is provably past it too
                // (per-var versions are monotone), so the chain below stays
                // the right place to look. Otherwise the pending write may
                // be `<= s` — taking the head *or* the chain here could
                // serve a stale value as `latest(v, s)` — so wait out the
                // short publish window (the committer releases every lock
                // by publishing or unwinding, so this terminates).
                if self.cell.read().0 <= s {
                    std::hint::spin_loop();
                    std::thread::yield_now();
                    continue;
                }
            }
            // Head is newer than the snapshot: look in the chain. A publish
            // swaps the cell *while holding* the history lock, so having
            // seen the new head, the outgoing value is already in the chain
            // (or was deliberately reclaimed, in which case we miss —
            // counted, never silent).
            let h = self.hist.lock();
            return h.iter().find(|e| e.0 <= s).map(|e| e.1.clone());
        }
    }

    /// Current history-chain length (diagnostic; used by the reclamation
    /// stress tests to assert chains stay bounded).
    fn chain_len(&self) -> usize {
        self.hist.lock().len()
    }

    /// Drop chain entries no live pin can reach: everything strictly older
    /// than the newest entry at or below `horizon` (future pins sample a
    /// clock already past every committed version, so they never need the
    /// chain at all), plus anything beyond the depth bound. Returns the
    /// number of reclaimed entries.
    fn truncate_chain(h: &mut Vec<(u64, T)>, horizon: u64) -> usize {
        let before = h.len();
        if let Some(i) = h.iter().position(|e| e.0 <= horizon) {
            h.truncate(i + 1);
        }
        h.truncate(MAX_CHAIN_DEPTH);
        before - h.len()
    }
}

impl<T: Clone + Send + Sync + 'static> AnyVar for VarCore<T> {
    fn id(&self) -> VarId {
        self.id
    }

    fn version(&self) -> u64 {
        self.vlock.load(Ordering::Acquire) >> 1
    }

    fn stamp(&self) -> u64 {
        self.vlock.load(Ordering::Acquire)
    }

    fn try_lock_commit(&self) -> bool {
        let w = self.vlock.load(Ordering::Acquire);
        if w & 1 != 0 {
            return false;
        }
        self.vlock
            .compare_exchange(w, w | 1, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    fn unlock_commit(&self) {
        let w = self.vlock.load(Ordering::Acquire);
        debug_assert!(w & 1 != 0, "unlock_commit on an unlocked var");
        self.vlock.store(w & !1, Ordering::Release);
    }

    fn apply(&self, val: &(dyn Any + Send + Sync), version: u64, horizon: u64) {
        let v = val
            .downcast_ref::<T>()
            .expect("write-set entry type mismatch");
        if horizon != u64::MAX {
            // A snapshot somewhere may still need the outgoing head: push it
            // onto the chain. The history lock is held across the cell swap
            // so a snapshot reader that misses the old head in `cell` is
            // guaranteed to find it in the chain once it takes this lock.
            // The horizon was sampled once for the whole commit: a pin that
            // lands mid-batch is safe anyway, because its stabilization loop
            // (`epoch::pin`) guarantees this commit's version is at or below
            // the pinned epoch — the new head itself serves that snapshot.
            let mut h = self.hist.lock();
            {
                let mut g = self.cell.write();
                let old = std::mem::replace(&mut *g, (version, v.clone()));
                h.insert(0, old);
            }
            self.has_hist.store(true, Ordering::Relaxed);
            let reclaimed = Self::truncate_chain(&mut h, horizon);
            drop(h);
            if reclaimed > 0 {
                stats::record_chain_reclaimed(reclaimed as u64);
            }
        } else {
            // No snapshot pinned anywhere: overwrite in place, as before the
            // multi-version chain existed. Any leftover chain must be cleared
            // — skipping a push while keeping older entries would leave a
            // version *gap*, and a later snapshot could then read a stale
            // entry as if it were the state at its version.
            if self.has_hist.load(Ordering::Relaxed) {
                let mut h = self.hist.lock();
                let reclaimed = h.len();
                h.clear();
                self.has_hist.store(false, Ordering::Relaxed);
                drop(h);
                if reclaimed > 0 {
                    stats::record_chain_reclaimed(reclaimed as u64);
                }
            }
            let mut g = self.cell.write();
            *g = (version, v.clone());
        }
        // Stamp + release in one store.
        self.vlock.store(version << 1, Ordering::Release);
    }
}

/// A transactional shared variable holding a `T`.
///
/// Cloning a `TVar` clones the *reference* (it is an `Arc` internally); both
/// clones name the same cell.
///
/// ```
/// use stm::{atomic, TVar};
/// let v = TVar::new(1);
/// atomic(|tx| { let x = v.read(tx); v.write(tx, x + 1); });
/// assert_eq!(v.read_committed(), 2);
/// ```
pub struct TVar<T> {
    pub(crate) core: Arc<VarCore<T>>,
}

impl<T> Clone for TVar<T> {
    fn clone(&self) -> Self {
        TVar {
            core: Arc::clone(&self.core),
        }
    }
}

impl<T: Clone + Send + Sync + 'static> TVar<T> {
    /// Create a new variable with an initial committed value.
    pub fn new(value: T) -> Self {
        TVar {
            core: Arc::new(VarCore {
                id: NEXT_VAR_ID.fetch_add(1, Ordering::Relaxed),
                vlock: AtomicU64::new(0),
                cell: RwLock::new((0, value)),
                hist: Mutex::new(Vec::new()),
                has_hist: AtomicBool::new(false),
            }),
        }
    }

    /// Unique id of this variable.
    pub fn id(&self) -> VarId {
        self.core.id
    }

    /// Label this variable for conflict attribution (see [`label_var`]).
    pub fn set_label(&self, label: impl Into<String>) {
        label_var(self.core.id, label);
    }

    /// Transactional read. Returns the transaction's own buffered value if it
    /// has written this var, otherwise a validated committed snapshot.
    #[must_use = "a read both yields the value and records a dependency; use `let _ =` when only the dependency is wanted"]
    pub fn read(&self, tx: &mut Txn) -> T {
        cost::add_cost(cost::MEM_ACCESS_COST);
        tx.read_var(self)
    }

    /// Transactional write (buffered in the current frame's redo log until
    /// commit).
    pub fn write(&self, tx: &mut Txn, value: T) {
        cost::add_cost(cost::MEM_ACCESS_COST);
        tx.write_var(self, value);
    }

    /// Read the committed value directly, outside any transaction.
    ///
    /// Single reads are trivially atomic (and wait out an in-flight publish);
    /// use a transaction for anything that must be consistent across multiple
    /// variables.
    #[must_use]
    pub fn read_committed(&self) -> T {
        self.core.await_unlocked();
        self.core.cell.read().1.clone()
    }

    /// Committed version stamp (diagnostic).
    pub fn version(&self) -> u64 {
        self.core.version()
    }

    /// Length of this var's multi-version history chain (diagnostic). Zero
    /// whenever no snapshot reader has been pinned across a recent publish;
    /// never exceeds the compiled-in chain depth bound.
    pub fn chain_len(&self) -> usize {
        self.core.chain_len()
    }

    pub(crate) fn committed_pair(&self) -> (u64, T) {
        self.core.await_unlocked();
        let g = self.core.cell.read();
        (g.0, g.1.clone())
    }

    pub(crate) fn any(&self) -> Arc<dyn AnyVar> {
        self.core.clone()
    }
}

impl<T: Clone + Send + Sync + Default + 'static> Default for TVar<T> {
    fn default() -> Self {
        TVar::new(T::default())
    }
}

impl<T: std::fmt::Debug + Clone + Send + Sync + 'static> std::fmt::Debug for TVar<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (ver, val) = self.committed_pair();
        f.debug_struct("TVar")
            .field("id", &self.core.id)
            .field("version", &ver)
            .field("value", &val)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_var_has_version_zero() {
        let v = TVar::new(7u32);
        assert_eq!(v.version(), 0);
        assert_eq!(v.read_committed(), 7);
    }

    #[test]
    fn ids_unique_and_clone_shares_identity() {
        let a = TVar::new(0u8);
        let b = TVar::new(0u8);
        assert_ne!(a.id(), b.id());
        let a2 = a.clone();
        assert_eq!(a.id(), a2.id());
    }

    #[test]
    fn apply_updates_value_and_version() {
        let v = TVar::new(1i32);
        let any = v.any();
        any.apply(&42i32, 9, u64::MAX);
        assert_eq!(v.read_committed(), 42);
        assert_eq!(v.version(), 9);
    }

    #[test]
    fn commit_lock_roundtrip_preserves_version() {
        let v = TVar::new(5u8);
        let any = v.any();
        assert!(any.try_lock_commit());
        assert!(!any.try_lock_commit(), "lock is exclusive");
        assert_eq!(any.stamp() & 1, 1);
        assert_eq!(any.version(), 0, "version unchanged while locked");
        any.unlock_commit();
        assert_eq!(any.stamp(), 0);
        // A publish through apply releases and stamps in one store.
        assert!(any.try_lock_commit());
        any.apply(&9u8, 3, u64::MAX);
        assert_eq!(any.stamp(), 3 << 1);
        assert_eq!(v.read_committed(), 9);
    }

    #[test]
    fn read_at_waits_out_in_flight_publish_instead_of_tearing() {
        // Regression for the torn-snapshot race: a commit of {a, b} draws
        // its write version before applying vars one at a time, so a
        // snapshot pinned at s >= wv can catch `a` already applied while
        // `b` still holds its pre-commit value — both stamped <= s. The
        // read must wait out `b`'s in-flight publish (its commit lock is
        // the witness), never accept the stale head.
        let a = TVar::new(0i32);
        let b = TVar::new(0i32);
        let (any_a, any_b) = (a.any(), b.any());
        assert!(any_a.try_lock_commit());
        assert!(any_b.try_lock_commit());
        let wv = 5;
        any_a.apply(&1i32, wv, u64::MAX);
        assert_eq!(a.core.read_at(wv), Some(1), "applied var shows new value");
        let reader = {
            let core = Arc::clone(&b.core);
            std::thread::spawn(move || core.read_at(wv))
        };
        // Let the reader reach the spin window while `b` is still locked;
        // a torn read_at returns Some(0) here without waiting.
        std::thread::sleep(std::time::Duration::from_millis(50));
        any_b.apply(&2i32, wv, u64::MAX);
        assert_eq!(
            reader.join().unwrap(),
            Some(2),
            "snapshot saw a torn write set"
        );
    }

    #[test]
    fn read_at_serves_chain_without_waiting_when_head_is_newer() {
        // An in-flight publish only forces a wait when the committed head
        // is still at or below the snapshot: a head already newer proves
        // the pending version is newer too, so the chain answers at once.
        let v = TVar::new(0u32);
        let any = v.any();
        // horizon 0 retains the outgoing head on the chain: [(0, 0)].
        any.apply(&1u32, 4, 0);
        assert!(any.try_lock_commit(), "simulate a publish in flight");
        assert_eq!(v.core.read_at(3), Some(0), "chain hit, no spin");
        any.unlock_commit();
        assert_eq!(v.core.read_at(4), Some(1));
    }

    #[test]
    fn labels_fast_path_and_registration() {
        let v = TVar::new(0u8);
        // Whether or not another test registered a label, this id has none.
        assert_eq!(var_label(v.id()), None);
        v.set_label("counter");
        assert_eq!(var_label(v.id()).as_deref(), Some("counter"));
    }
}
