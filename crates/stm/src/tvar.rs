//! Transactional variables.
//!
//! A [`TVar<T>`] is a shared, versioned cell. All access from inside a
//! transaction goes through [`TVar::read`] / [`TVar::write`], which log the
//! access in the current nesting frame of the [`Txn`]. Values are stored and
//! buffered by clone; in practice `T` is either small and `Copy`-like or an
//! `Arc`-wrapped payload.

use crate::cost;
use crate::txn::Txn;
use parking_lot::{Mutex, RwLock};
use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static NEXT_VAR_ID: AtomicU64 = AtomicU64::new(1);
static LABELS: Mutex<Option<HashMap<VarId, String>>> = Mutex::new(None);

/// Attach a human-readable label to a variable, for conflict attribution
/// (the TAPE-style profiling of paper §6.3: identifying which shared
/// locations cause lost work).
pub fn label_var(id: VarId, label: impl Into<String>) {
    LABELS
        .lock()
        .get_or_insert_with(HashMap::new)
        .insert(id, label.into());
}

/// Look up a variable's label, if any.
pub fn var_label(id: VarId) -> Option<String> {
    LABELS.lock().as_ref().and_then(|m| m.get(&id).cloned())
}

/// Globally unique identifier of a [`TVar`]. The simulator intersects
/// read/write sets by `VarId`.
pub type VarId = u64;

/// Type-erased view of a `TVar` used by read/write sets and the committer.
pub(crate) trait AnyVar: Send + Sync {
    #[allow(dead_code)]
    fn id(&self) -> VarId;
    /// Committed version stamp.
    fn version(&self) -> u64;
    /// Publish a buffered value with the given write version.
    /// `val` must be the `T` of the underlying var (guaranteed by the logger).
    fn apply(&self, val: &(dyn Any + Send + Sync), version: u64);
}

pub(crate) struct VarCore<T> {
    id: VarId,
    cell: RwLock<(u64, T)>,
}

impl<T: Clone + Send + Sync + 'static> AnyVar for VarCore<T> {
    fn id(&self) -> VarId {
        self.id
    }

    fn version(&self) -> u64 {
        self.cell.read().0
    }

    fn apply(&self, val: &(dyn Any + Send + Sync), version: u64) {
        let v = val
            .downcast_ref::<T>()
            .expect("write-set entry type mismatch");
        let mut g = self.cell.write();
        *g = (version, v.clone());
    }
}

/// A transactional shared variable holding a `T`.
///
/// Cloning a `TVar` clones the *reference* (it is an `Arc` internally); both
/// clones name the same cell.
///
/// ```
/// use stm::{atomic, TVar};
/// let v = TVar::new(1);
/// atomic(|tx| { let x = v.read(tx); v.write(tx, x + 1); });
/// assert_eq!(v.read_committed(), 2);
/// ```
pub struct TVar<T> {
    pub(crate) core: Arc<VarCore<T>>,
}

impl<T> Clone for TVar<T> {
    fn clone(&self) -> Self {
        TVar {
            core: Arc::clone(&self.core),
        }
    }
}

impl<T: Clone + Send + Sync + 'static> TVar<T> {
    /// Create a new variable with an initial committed value.
    pub fn new(value: T) -> Self {
        TVar {
            core: Arc::new(VarCore {
                id: NEXT_VAR_ID.fetch_add(1, Ordering::Relaxed),
                cell: RwLock::new((0, value)),
            }),
        }
    }

    /// Unique id of this variable.
    pub fn id(&self) -> VarId {
        self.core.id
    }

    /// Label this variable for conflict attribution (see [`label_var`]).
    pub fn set_label(&self, label: impl Into<String>) {
        label_var(self.core.id, label);
    }

    /// Transactional read. Returns the transaction's own buffered value if it
    /// has written this var, otherwise a validated committed snapshot.
    #[must_use = "a read both yields the value and records a dependency; use `let _ =` when only the dependency is wanted"]
    pub fn read(&self, tx: &mut Txn) -> T {
        cost::add_cost(cost::MEM_ACCESS_COST);
        tx.read_var(self)
    }

    /// Transactional write (buffered in the current frame's redo log until
    /// commit).
    pub fn write(&self, tx: &mut Txn, value: T) {
        cost::add_cost(cost::MEM_ACCESS_COST);
        tx.write_var(self, value);
    }

    /// Read the committed value directly, outside any transaction.
    ///
    /// Single reads are trivially atomic; use a transaction for anything that
    /// must be consistent across multiple variables.
    #[must_use]
    pub fn read_committed(&self) -> T {
        self.core.cell.read().1.clone()
    }

    /// Committed version stamp (diagnostic).
    pub fn version(&self) -> u64 {
        self.core.version()
    }

    pub(crate) fn committed_pair(&self) -> (u64, T) {
        let g = self.core.cell.read();
        (g.0, g.1.clone())
    }

    pub(crate) fn any(&self) -> Arc<dyn AnyVar> {
        self.core.clone()
    }
}

impl<T: Clone + Send + Sync + Default + 'static> Default for TVar<T> {
    fn default() -> Self {
        TVar::new(T::default())
    }
}

impl<T: std::fmt::Debug + Clone + Send + Sync + 'static> std::fmt::Debug for TVar<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (ver, val) = self.committed_pair();
        f.debug_struct("TVar")
            .field("id", &self.core.id)
            .field("version", &ver)
            .field("value", &val)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_var_has_version_zero() {
        let v = TVar::new(7u32);
        assert_eq!(v.version(), 0);
        assert_eq!(v.read_committed(), 7);
    }

    #[test]
    fn ids_unique_and_clone_shares_identity() {
        let a = TVar::new(0u8);
        let b = TVar::new(0u8);
        assert_ne!(a.id(), b.id());
        let a2 = a.clone();
        assert_eq!(a.id(), a2.id());
    }

    #[test]
    fn apply_updates_value_and_version() {
        let v = TVar::new(1i32);
        let any = v.any();
        any.apply(&42i32, 9);
        assert_eq!(v.read_committed(), 42);
        assert_eq!(v.version(), 9);
    }
}
