//! Dimensional windowed metrics: the third observability layer.
//!
//! txlint: metrics — emission sites in this file and in every other file
//! carrying this marker must not allocate or format inside metrics-emitter
//! argument spans (TX014, the mirror of the trace layer's TX009).
//!
//! [`crate::stats`] answers *how much* globally (scalar process-wide
//! counters); [`crate::trace`] answers *why* for individual events (word-
//! packed rings). Neither answers the question the adaptive contention
//! management work needs: **which class, which stripe, which cause, at what
//! rate, and at what latency cost** — windowed. This module is that layer:
//!
//! * a **dimensional registry** of counters keyed by `(class, stripe,
//!   kind)` — dooms landed, stripe blocks, cache hits, lane entries,
//!   commits, aborts by cause, snapshot fallbacks, epoch pins — stored in
//!   fixed-capacity **thread-local open-addressed slabs** (one writer per
//!   slab, relaxed stores only, zero allocation per emission; overflow is
//!   counted, never silent);
//! * **log2-bucketed latency histograms** (commit latency, semantic-lock
//!   wait, transaction wall time, snapshot read time) as mergeable
//!   per-thread shards with p50/p90/p99/max extraction;
//! * a **windowing reaper**: [`window`] merges every shard into a
//!   [`MetricsWindow`], and [`MetricsWindow::diff`] generalizes
//!   [`crate::StatsSnapshot::diff`] to the dimensional space, turning raw
//!   counters into per-interval rates;
//! * **exporters** — Prometheus text exposition ([`MetricsWindow::to_prometheus`])
//!   and the repo's hand-rolled JSON style ([`MetricsWindow::to_json`]);
//! * a **flight recorder** ([`FlightRecorder`]): trace rings and metrics run
//!   continuously at their low always-on cost, and an armed doom-rate
//!   trigger dumps the ring snapshot plus the offending metrics window to
//!   disk, so an abort storm narrates itself post-hoc.
//!
//! ## Off-cost discipline
//!
//! Identical to the trace layer: when no [`MetricsGuard`] is live, every
//! emission site is **one relaxed atomic load** ([`enabled`]) and nothing
//! else — no time sampling, no thread-local access, no shard registration.
//! Timing sites use [`timer`], which returns `None` while disabled so the
//! `Instant::now()` call itself is skipped.

use crate::interrupt::AbortCause;
use crate::trace::{self, Sym};
use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

// ----------------------------------------------------------------------
// Dimensions
// ----------------------------------------------------------------------

/// Stripe dimension value for events on a collection's **global stripe**
/// (point locks: size/empty/endpoint/range), mirroring the trace layer's
/// `u64::MAX` convention.
pub const STRIPE_GLOBAL: u16 = 0xFFFF;

/// Stripe dimension value for events with **no stripe axis** (process-level
/// events: commits, aborts, lane entries, epoch pins, snapshot fallbacks).
pub const STRIPE_NONE: u16 = 0xFFFE;

/// Largest representable real stripe index; higher indices clamp here (the
/// dimensional grid is u16, real tables are never near this wide).
pub const STRIPE_MAX: u16 = 0xFFFD;

/// Map a raw stripe index (the trace convention: `u64::MAX` = global
/// stripe) onto the u16 metrics dimension.
pub fn stripe_dim(stripe: u64) -> u16 {
    if stripe == u64::MAX {
        STRIPE_GLOBAL
    } else if stripe >= STRIPE_MAX as u64 {
        STRIPE_MAX
    } else {
        stripe as u16
    }
}

/// Render a stripe dimension value for human/exporter output.
pub fn stripe_label(stripe: u16) -> String {
    match stripe {
        STRIPE_GLOBAL => "global".to_string(),
        STRIPE_NONE => "-".to_string(),
        s => s.to_string(),
    }
}

/// What a dimensional counter counts. The `(class, stripe, kind)` triple is
/// the registry key; kinds without a natural class/stripe use
/// [`Sym::UNKNOWN`] / [`STRIPE_NONE`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u16)]
pub enum MetricKind {
    /// A semantic doom landed against a victim holding a lock of this
    /// class, attributed to the stripe the conflicting lock lives in (key
    /// dooms: the key's default-grid stripe bucket; point/range dooms: the
    /// global stripe).
    Doom = 0,
    /// A semantic stripe acquisition (key stripe or global stripe) found
    /// the mutex held and had to block.
    StripeBlocked = 1,
    /// A `(kind, key)` acquisition served from the kernel's txn-local lock
    /// cache (no stripe round trip).
    CacheHit = 2,
    /// A handler-lane acquisition.
    LaneEntry = 3,
    /// A top-level commit.
    Commit = 4,
    /// An abort whose cause was memory-level read invalidation.
    AbortReadInvalid = 5,
    /// An abort whose cause was a semantic doom.
    AbortDoomed = 6,
    /// An abort requested by the program.
    AbortExplicit = 7,
    /// A snapshot transaction abandoning to the validated path.
    SnapshotFallback = 8,
    /// An epoch pin taken by a snapshot transaction.
    EpochPin = 9,
}

/// Every [`MetricKind`], for exporters and table renderers.
pub const ALL_KINDS: [MetricKind; 10] = [
    MetricKind::Doom,
    MetricKind::StripeBlocked,
    MetricKind::CacheHit,
    MetricKind::LaneEntry,
    MetricKind::Commit,
    MetricKind::AbortReadInvalid,
    MetricKind::AbortDoomed,
    MetricKind::AbortExplicit,
    MetricKind::SnapshotFallback,
    MetricKind::EpochPin,
];

impl MetricKind {
    /// Stable lowercase label (the Prometheus `kind` label value).
    pub fn name(self) -> &'static str {
        match self {
            MetricKind::Doom => "doom",
            MetricKind::StripeBlocked => "stripe_blocked",
            MetricKind::CacheHit => "cache_hit",
            MetricKind::LaneEntry => "lane_entry",
            MetricKind::Commit => "commit",
            MetricKind::AbortReadInvalid => "abort_read_invalid",
            MetricKind::AbortDoomed => "abort_doomed",
            MetricKind::AbortExplicit => "abort_explicit",
            MetricKind::SnapshotFallback => "snapshot_fallback",
            MetricKind::EpochPin => "epoch_pin",
        }
    }

    fn from_u16(v: u16) -> Option<MetricKind> {
        ALL_KINDS.get(v as usize).copied()
    }
}

/// Which latency distribution a timing sample belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum HistKind {
    /// Top-level commit latency: entry of `try_commit_top` to post-publish.
    CommitLatency = 0,
    /// Time blocked acquiring a contended semantic stripe (key or global).
    SemLockWait = 1,
    /// Transaction wall time across all retry attempts (`atomic_with`
    /// entry to committed return).
    TxnWall = 2,
    /// Snapshot (`atomic_read`) wall time, successful snapshot path only.
    SnapshotRead = 3,
}

/// Number of histogram kinds (shard array width).
pub const HIST_KINDS: usize = 4;

/// Every [`HistKind`], for exporters and table renderers.
pub const ALL_HISTS: [HistKind; HIST_KINDS] = [
    HistKind::CommitLatency,
    HistKind::SemLockWait,
    HistKind::TxnWall,
    HistKind::SnapshotRead,
];

impl HistKind {
    /// Stable metric name (Prometheus series prefix; unit is nanoseconds).
    pub fn name(self) -> &'static str {
        match self {
            HistKind::CommitLatency => "stm_commit_latency_ns",
            HistKind::SemLockWait => "stm_sem_lock_wait_ns",
            HistKind::TxnWall => "stm_txn_wall_ns",
            HistKind::SnapshotRead => "stm_snapshot_read_ns",
        }
    }
}

// ----------------------------------------------------------------------
// Registry key packing
// ----------------------------------------------------------------------

/// `(class, stripe, kind)` packed into one u64 slab key. The kind field is
/// stored +1 so a fully-zero triple never packs to 0 — 0 is the slab's
/// empty-slot sentinel.
fn pack_key(class: Sym, stripe: u16, kind: MetricKind) -> u64 {
    ((class.0 as u64) << 32) | ((stripe as u64) << 16) | (kind as u64 + 1)
}

fn unpack_key(key: u64) -> Option<(Sym, u16, MetricKind)> {
    let kind = MetricKind::from_u16(((key & 0xFFFF) - 1) as u16)?;
    Some((
        Sym(((key >> 32) & 0xFFFF) as u16),
        ((key >> 16) & 0xFFFF) as u16,
        kind,
    ))
}

/// Slot-index mixer for the open-addressed slab (golden-ratio multiply; the
/// packed key's entropy is in the low/mid bits).
fn slot_mix(key: u64) -> u64 {
    key.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_right(21)
}

// ----------------------------------------------------------------------
// Per-thread shards
// ----------------------------------------------------------------------

/// One dimensional-counter slot: `key == 0` means empty. Written only by
/// the owning thread; scanned concurrently by [`window`].
struct Slot {
    key: AtomicU64,
    count: AtomicU64,
}

/// One per-kind histogram shard: 64 log2 buckets (bucket *b* holds samples
/// with `floor(log2(max(v,1))) == b`), plus the exact running sum and max.
struct HistShard {
    buckets: [AtomicU64; 64],
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistShard {
    fn new() -> HistShard {
        HistShard {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, v: u64) {
        let b = 63 - v.max(1).leading_zeros() as usize;
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// One thread's metrics shard: a fixed-capacity counter slab plus one
/// histogram shard per [`HistKind`]. Single writer (the owning thread),
/// many concurrent readers (window merges).
struct Shard {
    slots: Box<[Slot]>,
    hists: [HistShard; HIST_KINDS],
}

impl Shard {
    fn new(nslots: usize) -> Shard {
        Shard {
            slots: (0..nslots)
                .map(|_| Slot {
                    key: AtomicU64::new(0),
                    count: AtomicU64::new(0),
                })
                .collect(),
            hists: std::array::from_fn(|_| HistShard::new()),
        }
    }

    /// Owner-thread increment. Linear probe from the mixed slot; a full
    /// slab counts the increment as dropped rather than spilling.
    fn bump(&self, key: u64) {
        let mask = self.slots.len() - 1;
        let mut idx = slot_mix(key) as usize & mask;
        for _ in 0..self.slots.len() {
            let k = self.slots[idx].key.load(Ordering::Relaxed);
            if k == key {
                self.slots[idx].count.fetch_add(1, Ordering::Relaxed);
                return;
            }
            if k == 0 {
                // Single writer per shard: no claim race. A concurrent
                // window scan may observe the key before the count lands —
                // it reads a benign zero entry.
                self.slots[idx].key.store(key, Ordering::Relaxed);
                self.slots[idx].count.fetch_add(1, Ordering::Relaxed);
                return;
            }
            idx = (idx + 1) & mask;
        }
        DROPPED.fetch_add(1, Ordering::Relaxed);
    }

    fn reset(&self) {
        for s in self.slots.iter() {
            s.key.store(0, Ordering::Relaxed);
            s.count.store(0, Ordering::Relaxed);
        }
        for h in &self.hists {
            h.reset();
        }
    }
}

static REGISTRY: Mutex<Vec<Arc<Shard>>> = Mutex::new(Vec::new());
static ENABLE_COUNT: AtomicU32 = AtomicU32::new(0);
/// Slab capacity for shards created while the current enable is live
/// (normalized at enable time; shards keep their capacity across resets).
static SLAB_SLOTS: AtomicUsize = AtomicUsize::new(DEFAULT_SLAB_SLOTS);
/// Increments that found their thread's slab full — the counted, never
/// silent overflow path.
static DROPPED: AtomicU64 = AtomicU64::new(0);

/// Default per-thread counter-slab capacity (slots; power of two).
pub const DEFAULT_SLAB_SLOTS: usize = 512;

thread_local! {
    static SHARD: RefCell<Option<Arc<Shard>>> = const { RefCell::new(None) };
}

/// Is the metrics layer live? One relaxed load — the entire cost of every
/// emission site while disabled.
#[inline]
pub fn enabled() -> bool {
    ENABLE_COUNT.load(Ordering::Relaxed) != 0
}

fn with_shard(f: impl FnOnce(&Shard)) {
    SHARD.with(|cell| {
        let mut cell = cell.borrow_mut();
        let shard = cell.get_or_insert_with(|| {
            let shard = Arc::new(Shard::new(SLAB_SLOTS.load(Ordering::Relaxed)));
            REGISTRY.lock().push(Arc::clone(&shard));
            shard
        });
        f(shard);
    });
}

// ----------------------------------------------------------------------
// Enable / disable
// ----------------------------------------------------------------------

/// Configuration for [`MetricsConfig::enable`].
#[derive(Debug, Clone, Copy)]
pub struct MetricsConfig {
    /// Per-thread counter-slab capacity (rounded up to a power of two, at
    /// least 64). Applies to shards created while this enable is live;
    /// existing shards keep their capacity.
    pub slab_slots: usize,
}

impl Default for MetricsConfig {
    fn default() -> Self {
        MetricsConfig {
            slab_slots: DEFAULT_SLAB_SLOTS,
        }
    }
}

impl MetricsConfig {
    /// Turn the metrics layer on, returning the RAII guard that keeps it
    /// on. Enables nest (refcounted, like [`crate::trace::TraceConfig`]);
    /// the **outermost** enable zeroes every registered shard so windows
    /// start clean.
    pub fn enable(self) -> MetricsGuard {
        let reg = REGISTRY.lock();
        if ENABLE_COUNT.load(Ordering::Relaxed) == 0 {
            SLAB_SLOTS.store(
                self.slab_slots.max(64).next_power_of_two(),
                Ordering::Relaxed,
            );
            for shard in reg.iter() {
                shard.reset();
            }
            DROPPED.store(0, Ordering::Relaxed);
        }
        ENABLE_COUNT.fetch_add(1, Ordering::Relaxed);
        MetricsGuard { _priv: () }
    }
}

/// RAII handle keeping the metrics layer enabled; dropping the last live
/// guard disables it (emission sites return to one relaxed load).
#[must_use = "metrics stay enabled only while the guard is live"]
pub struct MetricsGuard {
    _priv: (),
}

impl Drop for MetricsGuard {
    fn drop(&mut self) {
        ENABLE_COUNT.fetch_sub(1, Ordering::Relaxed);
    }
}

// ----------------------------------------------------------------------
// Emission (hot paths — no allocation, no formatting; TX014)
// ----------------------------------------------------------------------

#[inline]
fn bump_counter(class: Sym, stripe: u16, kind: MetricKind) {
    with_shard(|s| s.bump(pack_key(class, stripe, kind)));
}

/// A semantic doom landed against a lock of `class` on `stripe` (raw
/// convention: `u64::MAX` = global stripe). Called by the collection
/// layer's doom dispatch.
pub fn doom_landed(class: Sym, stripe: u64) {
    if enabled() {
        bump_counter(class, stripe_dim(stripe), MetricKind::Doom);
    }
}

/// A semantic stripe acquisition blocked on a held mutex.
pub fn stripe_blocked(class: Sym, stripe: u64) {
    if enabled() {
        bump_counter(class, stripe_dim(stripe), MetricKind::StripeBlocked);
    }
}

/// A `(kind, key)` acquisition was served by the kernel's txn-local lock
/// cache.
pub fn cache_hit(class: Sym) {
    if enabled() {
        bump_counter(class, STRIPE_NONE, MetricKind::CacheHit);
    }
}

/// A handler-lane acquisition.
pub(crate) fn lane_entered() {
    if enabled() {
        bump_counter(Sym::UNKNOWN, STRIPE_NONE, MetricKind::LaneEntry);
    }
}

/// A top-level commit.
pub(crate) fn commit_counted() {
    if enabled() {
        bump_counter(Sym::UNKNOWN, STRIPE_NONE, MetricKind::Commit);
    }
}

/// A top-level abort, dimensioned by cause.
pub(crate) fn abort_counted(cause: AbortCause) {
    if enabled() {
        let kind = match cause {
            AbortCause::ReadInvalid => MetricKind::AbortReadInvalid,
            AbortCause::Doomed => MetricKind::AbortDoomed,
            AbortCause::Explicit => MetricKind::AbortExplicit,
        };
        bump_counter(Sym::UNKNOWN, STRIPE_NONE, kind);
    }
}

/// A snapshot transaction fell back to the validated path.
pub(crate) fn fallback_taken() {
    if enabled() {
        bump_counter(Sym::UNKNOWN, STRIPE_NONE, MetricKind::SnapshotFallback);
    }
}

/// A snapshot epoch pin was taken.
pub(crate) fn pin_entered() {
    if enabled() {
        bump_counter(Sym::UNKNOWN, STRIPE_NONE, MetricKind::EpochPin);
    }
}

/// Start a latency measurement: `Some(now)` when metrics are live, `None`
/// (free) when disabled. Pair with [`hist_elapsed`].
#[inline]
pub fn timer() -> Option<Instant> {
    if enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

/// Record the time elapsed since a [`timer`] start into `kind`'s
/// histogram; a `None` start (metrics were disabled) is free.
#[inline]
pub fn hist_elapsed(kind: HistKind, start: Option<Instant>) {
    if let Some(t0) = start {
        hist_record_ns(kind, t0.elapsed().as_nanos() as u64);
    }
}

/// Record one latency sample (nanoseconds) into `kind`'s histogram.
pub fn hist_record_ns(kind: HistKind, ns: u64) {
    if enabled() {
        with_shard(|s| s.hists[kind as usize].record(ns));
    }
}

// ----------------------------------------------------------------------
// Merged histograms
// ----------------------------------------------------------------------

/// A merged (or windowed) log2 histogram: bucket *b* counts samples `v`
/// with `floor(log2(max(v,1))) == b`, i.e. `v` in `[2^b, 2^(b+1))`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    /// Per-bucket sample counts.
    pub buckets: [u64; 64],
    /// Exact sum of all recorded values.
    pub sum: u64,
    /// Largest recorded value **since enable** (maxima are not windowable;
    /// a diffed window carries the later snapshot's cumulative max).
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 64],
            sum: 0,
            max: 0,
        }
    }
}

/// Inclusive upper bound of log2 bucket `b` (the Prometheus `le` value).
pub fn bucket_upper(b: usize) -> u64 {
    if b >= 63 {
        u64::MAX
    } else {
        (1u64 << (b + 1)) - 1
    }
}

impl Histogram {
    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The value at quantile `q` in `[0, 1]`, resolved to the inclusive
    /// upper bound of the bucket containing the target rank (log2
    /// resolution: at most 2x above the true sample). Zero when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut acc = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            acc += n;
            if acc >= target {
                return bucket_upper(b);
            }
        }
        bucket_upper(63)
    }

    /// Median ([`Histogram::percentile`] at 0.50).
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.percentile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// Merge another histogram into this one (bucket-wise add; max of
    /// maxes). Shard merging and cross-backend aggregation both use this.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, n) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += n;
        }
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Bucket-wise saturating difference (`self - earlier`); `max` stays
    /// the later (cumulative) max.
    #[must_use]
    pub fn diff(&self, earlier: &Histogram) -> Histogram {
        let mut out = *self;
        for (b, e) in out.buckets.iter_mut().zip(earlier.buckets.iter()) {
            *b = b.saturating_sub(*e);
        }
        out.sum = self.sum.saturating_sub(earlier.sum);
        out
    }
}

// ----------------------------------------------------------------------
// Windows
// ----------------------------------------------------------------------

/// A point-in-time merge of every thread's shard — the dimensional
/// generalization of [`crate::StatsSnapshot`]. Obtain with [`window`];
/// subtract two with [`MetricsWindow::diff`] to get per-interval rates.
#[derive(Debug, Clone)]
pub struct MetricsWindow {
    counters: BTreeMap<u64, u64>,
    hists: [Histogram; HIST_KINDS],
    dropped: u64,
    taken: Option<Instant>,
    wall_ns: u64,
}

/// Merge every registered shard into a [`MetricsWindow`]. Values are
/// cumulative since the outermost enable; concurrent recording makes this
/// a consistent-enough snapshot (each counter is read once, monotone).
pub fn window() -> MetricsWindow {
    let mut counters: BTreeMap<u64, u64> = BTreeMap::new();
    let mut hists: [Histogram; HIST_KINDS] = Default::default();
    let reg = REGISTRY.lock();
    for shard in reg.iter() {
        for slot in shard.slots.iter() {
            let key = slot.key.load(Ordering::Relaxed);
            if key == 0 {
                continue;
            }
            let count = slot.count.load(Ordering::Relaxed);
            if count > 0 {
                *counters.entry(key).or_insert(0) += count;
            }
        }
        for (kind, h) in shard.hists.iter().enumerate() {
            let mut part = Histogram::default();
            for (b, bucket) in h.buckets.iter().enumerate() {
                part.buckets[b] = bucket.load(Ordering::Relaxed);
            }
            part.sum = h.sum.load(Ordering::Relaxed);
            part.max = h.max.load(Ordering::Relaxed);
            hists[kind].merge(&part);
        }
    }
    drop(reg);
    MetricsWindow {
        counters,
        hists,
        dropped: DROPPED.load(Ordering::Relaxed),
        taken: Some(Instant::now()),
        wall_ns: 0,
    }
}

impl MetricsWindow {
    /// Dimensional difference (`self - earlier`), saturating per key, with
    /// the elapsed wall time between the two snapshots recorded so callers
    /// can turn counts into rates. Keys present only in `earlier`
    /// (impossible without a reset race) drop out.
    #[must_use]
    pub fn diff(&self, earlier: &MetricsWindow) -> MetricsWindow {
        let mut counters = BTreeMap::new();
        for (&key, &count) in &self.counters {
            let delta = count.saturating_sub(earlier.counters.get(&key).copied().unwrap_or(0));
            if delta > 0 {
                counters.insert(key, delta);
            }
        }
        let mut hists: [Histogram; HIST_KINDS] = Default::default();
        for (i, h) in hists.iter_mut().enumerate() {
            *h = self.hists[i].diff(&earlier.hists[i]);
        }
        let wall_ns = match (self.taken, earlier.taken) {
            (Some(a), Some(b)) => a.saturating_duration_since(b).as_nanos() as u64,
            _ => 0,
        };
        MetricsWindow {
            counters,
            hists,
            dropped: self.dropped.saturating_sub(earlier.dropped),
            taken: self.taken,
            wall_ns,
        }
    }

    /// Wall time this window spans: nonzero only for [`MetricsWindow::diff`]
    /// results (a raw snapshot has no interval).
    pub fn wall_ns(&self) -> u64 {
        self.wall_ns
    }

    /// Increments lost to slab overflow within this window.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The count at one dimensional key.
    pub fn counter(&self, class: Sym, stripe: u16, kind: MetricKind) -> u64 {
        self.counters
            .get(&pack_key(class, stripe, kind))
            .copied()
            .unwrap_or(0)
    }

    /// Every nonzero dimensional entry, in stable key order.
    pub fn entries(&self) -> impl Iterator<Item = (Sym, u16, MetricKind, u64)> + '_ {
        self.counters
            .iter()
            .filter_map(|(&key, &count)| unpack_key(key).map(|(c, s, k)| (c, s, k, count)))
    }

    /// Total across all classes/stripes for one kind.
    pub fn kind_total(&self, kind: MetricKind) -> u64 {
        self.entries()
            .filter(|&(_, _, k, _)| k == kind)
            .map(|(_, _, _, n)| n)
            .sum()
    }

    /// `(class, stripe, count)` rows for one kind, hottest first.
    pub fn by_class_stripe(&self, kind: MetricKind) -> Vec<(Sym, u16, u64)> {
        let mut rows: Vec<(Sym, u16, u64)> = self
            .entries()
            .filter(|&(_, _, k, _)| k == kind)
            .map(|(c, s, _, n)| (c, s, n))
            .collect();
        rows.sort_by(|a, b| b.2.cmp(&a.2).then(a.0 .0.cmp(&b.0 .0)).then(a.1.cmp(&b.1)));
        rows
    }

    /// The merged histogram for one latency kind.
    pub fn histogram(&self, kind: HistKind) -> &Histogram {
        &self.hists[kind as usize]
    }

    /// Prometheus text exposition (version 0.0.4): one `stm_events_total`
    /// counter family carrying the `class`/`stripe`/`kind` labels, the
    /// overflow counter, and one histogram family per [`HistKind`] with
    /// cumulative `le` buckets. Scraping [`window`] snapshots (not diffs)
    /// keeps every series monotone, as the exposition format requires.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "# HELP stm_events_total Dimensional STM runtime events by class, stripe, and kind.\n",
        );
        out.push_str("# TYPE stm_events_total counter\n");
        for (class, stripe, kind, count) in self.entries() {
            out.push_str(&format!(
                "stm_events_total{{class=\"{}\",stripe=\"{}\",kind=\"{}\"}} {}\n",
                class.name(),
                stripe_label(stripe),
                kind.name(),
                count
            ));
        }
        out.push_str(
            "# HELP stm_metrics_dropped_total Increments lost to per-thread slab overflow.\n",
        );
        out.push_str("# TYPE stm_metrics_dropped_total counter\n");
        out.push_str(&format!("stm_metrics_dropped_total {}\n", self.dropped));
        for kind in ALL_HISTS {
            let h = self.histogram(kind);
            let name = kind.name();
            out.push_str(&format!(
                "# HELP {name} Log2-bucketed latency histogram (nanoseconds).\n"
            ));
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let mut acc = 0u64;
            let top = h
                .buckets
                .iter()
                .rposition(|&n| n > 0)
                .map(|b| b + 1)
                .unwrap_or(0);
            for b in 0..top {
                acc += h.buckets[b];
                out.push_str(&format!(
                    "{name}_bucket{{le=\"{}\"}} {acc}\n",
                    bucket_upper(b)
                ));
            }
            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
            out.push_str(&format!("{name}_sum {}\n", h.sum));
            out.push_str(&format!("{name}_count {}\n", h.count()));
        }
        out
    }

    /// Hand-rolled JSON export, matching the repo's dependency-free style.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"wall_ns\": {},\n", self.wall_ns));
        out.push_str(&format!("  \"dropped\": {},\n", self.dropped));
        out.push_str("  \"counters\": [\n");
        let rows: Vec<String> = self
            .entries()
            .map(|(class, stripe, kind, count)| {
                format!(
                    "    {{\"class\": \"{}\", \"stripe\": \"{}\", \"kind\": \"{}\", \"count\": {}}}",
                    class.name(),
                    stripe_label(stripe),
                    kind.name(),
                    count
                )
            })
            .collect();
        out.push_str(&rows.join(",\n"));
        if !rows.is_empty() {
            out.push('\n');
        }
        out.push_str("  ],\n  \"histograms\": [\n");
        let hrows: Vec<String> = ALL_HISTS
            .iter()
            .map(|&kind| {
                let h = self.histogram(kind);
                let buckets: Vec<String> = h
                    .buckets
                    .iter()
                    .enumerate()
                    .filter(|&(_, &n)| n > 0)
                    .map(|(b, &n)| format!("{{\"le\": {}, \"n\": {}}}", bucket_upper(b), n))
                    .collect();
                format!(
                    "    {{\"kind\": \"{}\", \"count\": {}, \"sum\": {}, \"max\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"buckets\": [{}]}}",
                    kind.name(),
                    h.count(),
                    h.sum,
                    h.max,
                    h.p50(),
                    h.p90(),
                    h.p99(),
                    buckets.join(", ")
                )
            })
            .collect();
        out.push_str(&hrows.join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    }
}

// ----------------------------------------------------------------------
// Flight recorder
// ----------------------------------------------------------------------

/// Filename sequence for flight-recorder dumps (process-wide, so repeated
/// triggers in one process never collide).
static DUMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Configuration for [`FlightRecorder::arm`].
#[derive(Debug, Clone)]
pub struct FlightRecorderConfig {
    /// Directory dumps are written into (created if absent).
    pub dir: std::path::PathBuf,
    /// Trigger: a poll window in which any `(class, stripe)` accumulates at
    /// least this many landed dooms fires a dump.
    pub doom_threshold: u64,
    /// Trace ring capacity while armed (the recorder keeps a
    /// [`crate::trace::TraceGuard`] live for its whole lifetime).
    pub ring_slots: usize,
}

impl Default for FlightRecorderConfig {
    fn default() -> Self {
        FlightRecorderConfig {
            dir: std::env::temp_dir().join("stm-flightrec"),
            doom_threshold: 64,
            ring_slots: 1 << 14,
        }
    }
}

/// The armed flight recorder: trace rings and metrics run continuously at
/// their low always-on cost; each [`FlightRecorder::poll`] closes a metrics
/// window, and a window in which some `(class, stripe)` crossed the doom
/// threshold dumps the trace-ring snapshot (which still holds the doom
/// edges that crossed it — drop-oldest permitting) plus the offending
/// window to disk as one JSON document.
pub struct FlightRecorder {
    cfg: FlightRecorderConfig,
    last: MetricsWindow,
    _trace: trace::TraceGuard,
    _metrics: MetricsGuard,
}

impl FlightRecorder {
    /// Enable tracing and metrics and take the baseline window. Fails only
    /// on dump-directory creation.
    pub fn arm(cfg: FlightRecorderConfig) -> std::io::Result<FlightRecorder> {
        std::fs::create_dir_all(&cfg.dir)?;
        let tguard = trace::TraceConfig {
            ring_slots: cfg.ring_slots,
        }
        .enable();
        let mguard = MetricsConfig::default().enable();
        let last = window();
        Ok(FlightRecorder {
            cfg,
            last,
            _trace: tguard,
            _metrics: mguard,
        })
    }

    /// Close the window since the previous poll (or arm). If any `(class,
    /// stripe)` accumulated `doom_threshold`+ landed dooms, dump and return
    /// the dump path; otherwise `None`. Call this off the hot path (a
    /// monitoring thread, the end of a soak round) — the dump itself does
    /// file I/O and allocation, by design.
    pub fn poll(&mut self) -> std::io::Result<Option<std::path::PathBuf>> {
        let now = window();
        let w = now.diff(&self.last);
        self.last = now;
        let triggers: Vec<(Sym, u16, u64)> = w
            .by_class_stripe(MetricKind::Doom)
            .into_iter()
            .filter(|&(_, _, n)| n >= self.cfg.doom_threshold)
            .collect();
        if triggers.is_empty() {
            return Ok(None);
        }
        let seq = DUMP_SEQ.fetch_add(1, Ordering::Relaxed);
        let path = self.cfg.dir.join(format!("flightrec-{seq:04}.json"));
        let trows: Vec<String> = triggers
            .iter()
            .map(|&(class, stripe, dooms)| {
                format!(
                    "    {{\"class\": \"{}\", \"stripe\": \"{}\", \"dooms\": {}, \"threshold\": {}}}",
                    class.name(),
                    stripe_label(stripe),
                    dooms,
                    self.cfg.doom_threshold
                )
            })
            .collect();
        let mut file = std::fs::File::create(&path)?;
        writeln!(file, "{{")?;
        writeln!(file, "  \"triggers\": [")?;
        writeln!(file, "{}", trows.join(",\n"))?;
        writeln!(file, "  ],")?;
        writeln!(file, "  \"window\": {},", indent_block(&w.to_json(), 2))?;
        writeln!(
            file,
            "  \"trace\": {}",
            indent_block(&trace::snapshot().to_json(), 2)
        )?;
        writeln!(file, "}}")?;
        file.sync_all()?;
        Ok(Some(path))
    }
}

/// Re-indent a JSON block for embedding (cosmetic only — the exporters emit
/// their own newlines).
fn indent_block(json: &str, by: usize) -> String {
    let pad = " ".repeat(by);
    json.trim_end()
        .lines()
        .enumerate()
        .map(|(i, l)| {
            if i == 0 {
                l.to_string()
            } else {
                format!("{pad}{l}")
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes the enable/reset cycle across this file's tests (shards
    /// are process-global; integration tests serialize with their own
    /// lock).
    pub(crate) static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_emission_is_inert() {
        let _g = TEST_LOCK.lock();
        assert!(!enabled());
        doom_landed(Sym::UNKNOWN, 3);
        hist_record_ns(HistKind::CommitLatency, 100);
        assert!(timer().is_none());
        // Nothing above should have registered or counted anything new for
        // this thread beyond what previous enables left behind: a fresh
        // enable resets, so the window right after is empty.
        let _guard = MetricsConfig::default().enable();
        let w = window();
        assert_eq!(w.kind_total(MetricKind::Doom), 0);
        assert_eq!(w.histogram(HistKind::CommitLatency).count(), 0);
    }

    #[test]
    fn key_packing_roundtrips() {
        let _g = TEST_LOCK.lock();
        for &stripe in &[0u16, 5, STRIPE_MAX, STRIPE_NONE, STRIPE_GLOBAL] {
            for kind in ALL_KINDS {
                let key = pack_key(Sym(7), stripe, kind);
                assert_ne!(key, 0);
                assert_eq!(unpack_key(key), Some((Sym(7), stripe, kind)));
            }
        }
        assert_eq!(stripe_dim(u64::MAX), STRIPE_GLOBAL);
        assert_eq!(stripe_dim(3), 3);
        assert_eq!(stripe_dim(1 << 40), STRIPE_MAX);
    }

    #[test]
    fn slab_overflow_is_counted_not_silent() {
        let _g = TEST_LOCK.lock();
        let _guard = MetricsConfig { slab_slots: 64 }.enable();
        // 64 slots cannot hold 65 distinct stripes of doom keys plus the
        // existing thread residue; drive well past capacity.
        for stripe in 0..200u64 {
            doom_landed(Sym(9), stripe);
        }
        let w = window();
        let seen: u64 = w.kind_total(MetricKind::Doom);
        assert!(seen <= 200);
        assert_eq!(seen + w.dropped(), 200, "overflow must be counted");
        assert!(w.dropped() > 0, "200 keys cannot fit 64 slots");
    }

    #[test]
    fn histogram_percentiles_are_bucket_upper_bounds() {
        let mut h = Histogram::default();
        // 1..=1000 ns, one sample each: p50 ranks at value 500 (bucket
        // [256,511]), p99 at 990 (bucket [512,1023]).
        for v in 1..=1000u64 {
            let b = 63 - v.leading_zeros() as usize;
            h.buckets[b] += 1;
            h.sum += v;
            h.max = h.max.max(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.p50(), 511);
        assert_eq!(h.p90(), 1023);
        assert_eq!(h.p99(), 1023);
        assert_eq!(h.percentile(1.0), 1023);
        assert_eq!(h.max, 1000);
        assert_eq!(Histogram::default().p50(), 0);
    }

    #[test]
    fn window_diff_saturates_and_carries_wall() {
        let _g = TEST_LOCK.lock();
        let _guard = MetricsConfig::default().enable();
        let before = window();
        doom_landed(Sym(3), 1);
        doom_landed(Sym(3), 1);
        hist_record_ns(HistKind::SemLockWait, 700);
        let after = window();
        let w = after.diff(&before);
        assert_eq!(w.counter(Sym(3), 1, MetricKind::Doom), 2);
        assert_eq!(w.histogram(HistKind::SemLockWait).count(), 1);
        assert_eq!(w.histogram(HistKind::SemLockWait).sum, 700);
        // Backwards diff saturates to empty rather than fabricating.
        let back = before.diff(&after);
        assert_eq!(back.counter(Sym(3), 1, MetricKind::Doom), 0);
        assert_eq!(back.histogram(HistKind::SemLockWait).count(), 0);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let _g = TEST_LOCK.lock();
        let _guard = MetricsConfig::default().enable();
        doom_landed(Sym::UNKNOWN, u64::MAX);
        hist_record_ns(HistKind::CommitLatency, 300);
        let text = window().to_prometheus();
        assert!(text.contains("# TYPE stm_events_total counter"));
        assert!(text.contains("stm_events_total{class=\"?\",stripe=\"global\",kind=\"doom\"} 1"));
        assert!(text.contains("# TYPE stm_commit_latency_ns histogram"));
        assert!(text.contains("stm_commit_latency_ns_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("stm_commit_latency_ns_sum 300"));
        assert!(text.contains("stm_commit_latency_ns_count 1"));
        let json = window().to_json();
        assert!(json.contains("\"kind\": \"doom\""));
        assert!(json.contains("\"p99\""));
    }
}
