//! # stm — an optimistic software transactional memory with rich nesting semantics
//!
//! This crate is the transactional-memory substrate for the reproduction of
//! *Transactional Collection Classes* (Carlstrom et al., PPoPP 2007). The
//! paper's collection classes require a specific set of transactional
//! semantics (paper §4), all of which are provided here:
//!
//! * **Closed-nested transactions with partial rollback** — [`Txn::closed`]
//!   pushes a nesting frame whose read/write sets can be discarded and
//!   re-executed without aborting the parent.
//! * **Open-nested transactions** — [`Txn::open`] runs a sub-transaction that
//!   commits its memory effects immediately, *before* the parent commits, and
//!   leaves no read or write dependencies in the parent. This is the enabling
//!   mechanism for semantic concurrency control.
//! * **Commit and abort handlers** — [`Txn::on_commit_top`] /
//!   [`Txn::on_abort_top`] register callbacks that run when the *top-level*
//!   transaction commits or aborts; handlers registered inside a nested frame
//!   via [`Txn::on_commit`] / [`Txn::on_abort`] are promoted to the parent on
//!   nested commit and discarded on nested abort, exactly as the paper
//!   specifies.
//! * **Program-directed (remote) abort** — every top-level transaction owns a
//!   [`TxHandle`]; another transaction's commit handler may call
//!   [`TxHandle::doom`] to abort it, which is how semantic lock conflicts are
//!   enforced.
//! * **Two-phase commit** — validation happens before the point of no return;
//!   commit handlers run in the commit phase, serialized under a dedicated
//!   **handler lane** so that their direct updates can never conflict with
//!   another transaction's handlers ("the commit handler ... can be replayed
//!   without rolling back the parent" degenerates to conflict-freedom under
//!   the lane).
//!
//! The concurrency-control algorithm is TL2-flavored: a global fetch-and-add
//! version clock, a per-[`TVar`] versioned commit lock, a read-set validated
//! at commit time, and a redo-log write-set published under the write set's
//! own per-var locks (acquired in `VarId` order) — transactions with disjoint
//! write sets commit fully in parallel; there is no global commit mutex.
//! Reads perform incremental timestamp extension so long-running transactions
//! do not abort spuriously. See `docs/PROTOCOL.md` for the commit protocol
//! and the lock-order proof.
//!
//! Two execution drivers share this machinery:
//!
//! * the **threaded runtime** ([`atomic`]) — real threads, retry loops,
//!   contention management; used by the examples and integration tests;
//! * the **prepared API** ([`speculate`], [`PreparedTxn`]) — used by the
//!   `sim` crate's deterministic chip-multiprocessor simulator, which drives
//!   speculation, commit ordering, and TCC-style violation itself.
//!
//! ```
//! use stm::{atomic, TVar};
//!
//! let balance = TVar::new(100i64);
//! let audit = TVar::new(0i64);
//! atomic(|tx| {
//!     let b = balance.read(tx);
//!     balance.write(tx, b - 30);
//!     let a = audit.read(tx);
//!     audit.write(tx, a + 30);
//! });
//! assert_eq!(atomic(|tx| balance.read(tx)), 70);
//! ```

#![warn(missing_docs)]

mod clock;
mod contention;
mod cost;
mod epoch;
mod handle;
mod handlers;
mod interrupt;
pub mod metrics;
mod runtime;
mod stats;
pub mod trace;
mod tvar;
mod txn;

pub use contention::{BackoffPolicy, ContentionManager};
pub use cost::{add_cost, current_cost, reset_cost, take_cost, MEM_ACCESS_COST};
pub use handle::{TxHandle, TxState};
pub use handlers::HandlerCtx;
pub use interrupt::{abort_and_retry, user_abort, AbortCause};
pub use runtime::{atomic, atomic_read, atomic_with, speculate, PreparedTxn, RunOpts};
pub use stats::{
    global_stats, record_global_stripe_entry, record_lock_cache_hit, record_open_flattened,
    record_stripe_lock_spin, reset_global_stats, StatsSnapshot, TornWindow,
};
pub use tvar::{label_var, var_label, TVar, VarId};
pub use txn::{Txn, TxnMode};
