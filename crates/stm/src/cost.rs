//! Virtual-cycle cost accounting.
//!
//! The `sim` crate models execution time in virtual cycles. Rather than
//! threading a cost accumulator through every data-structure call, the STM
//! keeps a thread-local cycle counter that every `TVar` read/write bumps by
//! [`MEM_ACCESS_COST`], and that workloads bump explicitly via [`add_cost`]
//! to model "surrounding computation" (the paper's long-transaction filler).
//!
//! The counter is purely observational: the threaded runtime ignores it, and
//! the simulator resets it before running a transaction body and harvests it
//! afterwards with [`take_cost`].

use std::cell::Cell;

/// Virtual cycles charged for one `TVar` read or write.
///
/// The paper's simulator charges CPI 1.0 for non-memory instructions and
/// models cache/bus timing for loads and stores; a flat per-access cost is
/// the transaction-level analog. The exact constant only scales the ratio of
/// data-structure work to "surrounding computation", which the benchmark
/// harnesses control explicitly.
pub const MEM_ACCESS_COST: u64 = 8;

thread_local! {
    static CYCLES: Cell<u64> = const { Cell::new(0) };
}

/// Add `n` virtual cycles to the current thread's cost accumulator.
#[inline]
pub fn add_cost(n: u64) {
    CYCLES.with(|c| c.set(c.get().wrapping_add(n)));
}

/// Reset the accumulator to zero.
#[inline]
pub fn reset_cost() {
    CYCLES.with(|c| c.set(0));
}

/// Read and reset the accumulator.
#[inline]
pub fn take_cost() -> u64 {
    CYCLES.with(|c| c.replace(0))
}

/// Read the accumulator without resetting (used to timestamp reads within a
/// simulated transaction body).
#[inline]
pub fn current_cost() -> u64 {
    CYCLES.with(|c| c.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_takes() {
        reset_cost();
        add_cost(5);
        add_cost(7);
        assert_eq!(take_cost(), 12);
        assert_eq!(take_cost(), 0);
    }
}
