//! Epoch-based reclamation for the multi-version `TVar` chains.
//!
//! txlint: metrics — metrics-emitter argument spans here must not allocate
//! or format (TX014).
//!
//! Snapshot transactions ([`crate::atomic_read`]) read old committed values
//! out of a per-var history chain (see `tvar.rs`). Those chain entries must
//! stay alive for as long as some snapshot might still read them, and be
//! reclaimed afterwards — the classic epoch problem. The scheme here is the
//! smallest one that is correct:
//!
//! - Every thread that starts a snapshot transaction **pins** the global
//!   clock value it will read at (`pin()`), publishing it in a per-thread
//!   slot registered in a global slot list. Pins nest (an inner
//!   `atomic_read` on the same thread keeps the *older* pin published, since
//!   the older snapshot needs the deeper history).
//! - Committers consult [`min_pinned`] — the oldest clock value any live
//!   snapshot still needs — and truncate each var's chain down to the newest
//!   entry at or below that horizon; everything older is unreachable by any
//!   current *or future* pin (future pins sample a clock that is already
//!   past every committed version).
//! - [`readers_active`] is the publishers' fast gate: a single relaxed-ish
//!   counter load. When no snapshot is pinned anywhere, the commit path
//!   skips history maintenance entirely, so workloads that never call
//!   `atomic_read` pay one atomic load per published var and nothing else.
//!
//! The pin/publish boundary is closed by [`pin`]'s stabilization loop: a
//! first pin publishes its slot and gate, then re-samples the clock until
//! stable, so any committer that could have missed the pin provably drew a
//! write version at or below the pinned epoch — the new head itself serves
//! the snapshot and no reclaimed entry is needed. The remaining *counted
//! fallback* cases (`stats::snapshot_fallbacks`) are the chain depth bound
//! (a pin outrun by more than `MAX_CHAIN_DEPTH` publishes to one var) and
//! snapshot-incapable backends; neither is ever an inconsistent read.

use parking_lot::{Mutex, RwLock};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Slot value meaning "this thread has no live pin".
const UNPINNED: u64 = u64::MAX;

/// Count of live pins across all threads — the publishers' fast gate.
static ACTIVE_PINS: AtomicUsize = AtomicUsize::new(0);

/// Registered per-thread pin slots, the list [`min_pinned`] scans. A slot is
/// created on a thread's first pin and **recycled** through [`FREE_SLOTS`]
/// when the thread exits, so the list grows with the *peak* number of
/// concurrently snapshot-running threads, not with the total number of
/// threads ever spawned — a thread-per-request server does not grow the
/// scan without bound.
static SLOTS: RwLock<Vec<Arc<AtomicU64>>> = RwLock::new(Vec::new());

/// Parked slots of exited threads (each at `UNPINNED`), ready for reuse by
/// the next thread that pins for the first time.
static FREE_SLOTS: Mutex<Vec<Arc<AtomicU64>>> = Mutex::new(Vec::new());

/// Per-thread pin state: the published slot (lazily registered) plus the
/// stack of nested pin epochs. The slot always holds the *oldest* live epoch
/// on the stack — epochs are sampled from a monotonic clock, so that is
/// simply the bottom entry.
struct PinState {
    slot: Option<Arc<AtomicU64>>,
    stack: Vec<u64>,
}

impl Drop for PinState {
    /// Thread exit: park the slot on the free list for the next thread. The
    /// slot stays registered in [`SLOTS`] (at `UNPINNED`, which every scan
    /// ignores) until reused — it is never removed, only recycled.
    fn drop(&mut self) {
        if let Some(slot) = self.slot.take() {
            debug_assert!(self.stack.is_empty(), "thread exited holding a pin");
            slot.store(UNPINNED, Ordering::SeqCst);
            FREE_SLOTS.lock().push(slot);
        }
    }
}

thread_local! {
    static PIN_STATE: RefCell<PinState> =
        const { RefCell::new(PinState { slot: None, stack: Vec::new() }) };
}

/// RAII pin over a clock epoch. While alive, chain entries at or after the
/// pinned epoch are protected from reclamation (modulo the counted
/// pin/publish races described in the module docs). Dropping unpins.
pub(crate) struct PinGuard {
    epoch: u64,
}

impl PinGuard {
    /// The clock value this pin protects — the snapshot version a snapshot
    /// transaction reads at.
    pub(crate) fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl Drop for PinGuard {
    fn drop(&mut self) {
        PIN_STATE.with(|st| {
            let mut st = st.borrow_mut();
            let popped = st.stack.pop();
            debug_assert_eq!(popped, Some(self.epoch), "pins must unwind LIFO");
            let slot = st.slot.as_ref().expect("unpin without a registered slot");
            match st.stack.first() {
                Some(&oldest) => slot.store(oldest, Ordering::SeqCst),
                None => slot.store(UNPINNED, Ordering::SeqCst),
            }
        });
        ACTIVE_PINS.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Pin the current global-clock value and return the guard. The returned
/// epoch is the snapshot version: every committed version `<= epoch` is
/// readable for as long as the guard lives (up to the chain depth bound).
///
/// The first pin on a thread publishes its slot and the gate, then
/// **re-samples the clock until it is stable** (hazard-pointer style): a
/// committer whose horizon sample could have missed this pin must have
/// drawn its write version before the final stable re-read, so that
/// version is `<= epoch` — the head itself serves the snapshot and no
/// reclaimed chain entry is ever needed. This closes the sample/store
/// boundary race; what remains counted-fallback territory is only the
/// depth bound (a pin outrun by more than `MAX_CHAIN_DEPTH` publishes to
/// one var) and snapshot-incapable backends.
pub(crate) fn pin() -> PinGuard {
    crate::metrics::pin_entered();
    let mut epoch = crate::clock::now();
    let first = PIN_STATE.with(|st| {
        let mut st = st.borrow_mut();
        let PinState { slot, stack } = &mut *st;
        let slot = slot.get_or_insert_with(|| {
            // Reuse a parked slot of an exited thread before growing the
            // registered list — this is what bounds min_pinned()'s scan by
            // peak concurrency under thread churn.
            FREE_SLOTS.lock().pop().unwrap_or_else(|| {
                let s = Arc::new(AtomicU64::new(UNPINNED));
                SLOTS.write().push(Arc::clone(&s));
                s
            })
        });
        let first = stack.is_empty();
        if first {
            // Publish the slot *before* bumping the gate, so any publisher
            // that observes the gate up also observes the pinned epoch.
            slot.store(epoch, Ordering::SeqCst);
        }
        first
    });
    ACTIVE_PINS.fetch_add(1, Ordering::SeqCst);
    if first {
        // Stabilize: if the clock moved between our sample and the slot
        // store, a committer may have drawn a newer version *and* sampled
        // its horizon before seeing this pin. Advancing the pin to the
        // fresh clock value and re-checking restores the invariant: once a
        // re-read returns the stored value unchanged, every later commit
        // draws a version above it and is invisible to this snapshot. The
        // stored value only ever advances, so the published horizon stays
        // conservative throughout. (Nested pins skip this: the enclosing
        // pin's older published epoch already protects a superset.)
        loop {
            let now = crate::clock::now();
            if now == epoch {
                break;
            }
            epoch = now;
            PIN_STATE.with(|st| {
                let st = st.borrow_mut();
                st.slot
                    .as_ref()
                    .expect("pin slot vanished mid-pin")
                    .store(epoch, Ordering::SeqCst);
            });
        }
        PIN_STATE.with(|st| {
            let mut st = st.borrow_mut();
            st.stack.push(epoch);
        });
    } else {
        PIN_STATE.with(|st| st.borrow_mut().stack.push(epoch));
    }
    PinGuard { epoch }
}

/// Are any snapshot pins live anywhere? Publishers check this before doing
/// any history-chain work; false means "overwrite in place, as ever".
pub(crate) fn readers_active() -> bool {
    ACTIVE_PINS.load(Ordering::SeqCst) != 0
}

/// The oldest clock value any live pin still needs, or `u64::MAX` when no
/// pin is live. Chain entries strictly older than the newest entry at or
/// below this horizon are unreachable and may be reclaimed.
pub(crate) fn min_pinned() -> u64 {
    SLOTS
        .read()
        .iter()
        .map(|s| s.load(Ordering::SeqCst))
        .min()
        .unwrap_or(UNPINNED)
}

/// The chain-reclamation horizon for one publishing commit: [`min_pinned`]
/// behind the [`readers_active`] fast gate, so workloads that never snapshot
/// still pay one atomic load and nothing else. Sampled **once per commit**
/// (by `CommitGuard::publish` / `publish_direct`) and threaded into every
/// `apply` — while readers are pinned, the slot scan is O(threads), and
/// resampling it per published var would cost every writer
/// `O(write_set × threads)`. `u64::MAX` means "no reader pinned: skip
/// history maintenance"; a pin that lands after the sample surfaces as that
/// reader's counted fallback, the same benign boundary race as a pin that
/// lands after a `readers_active` check.
pub(crate) fn publish_horizon() -> u64 {
    if readers_active() {
        min_pinned()
    } else {
        UNPINNED
    }
}

/// Number of registered pin slots (diagnostic: the recycling tests assert
/// this tracks peak thread concurrency, not total threads ever spawned).
#[cfg(test)]
fn registered_slots() -> usize {
    SLOTS.read().len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_pins_keep_oldest_published() {
        // Pins on this thread only; other tests' threads may hold their own
        // pins, so assert about our slot via min over *our* epochs.
        let outer = pin();
        let e0 = outer.epoch();
        assert!(readers_active());
        assert!(min_pinned() <= e0);
        {
            let inner = pin();
            assert!(inner.epoch() >= e0, "clock is monotonic");
            assert!(min_pinned() <= e0, "oldest pin stays published");
        }
        assert!(min_pinned() <= e0);
        drop(outer);
    }

    #[test]
    fn exited_threads_recycle_their_slots() {
        // Sequential short-lived threads, each pinning once: without the
        // free-list each would register a fresh slot forever (the
        // thread-churn leak); with recycling the registered list grows by
        // at most the one slot the first spawned thread allocates. The
        // slack below absorbs other tests in this binary racing their own
        // first pins while we measure.
        let before = registered_slots();
        for _ in 0..16 {
            std::thread::spawn(|| {
                let g = pin();
                assert!(g.epoch() != UNPINNED);
            })
            .join()
            .unwrap();
        }
        let grown = registered_slots() - before;
        assert!(grown <= 4, "thread churn leaked {grown} pin slots");
    }

    #[test]
    fn publish_horizon_tracks_pins() {
        // Not UNPINNED while we hold a pin; UNPINNED (skip maintenance)
        // requires no pins anywhere, which concurrent tests may violate —
        // so only the pinned direction is asserted unconditionally.
        let g = pin();
        assert!(publish_horizon() <= g.epoch());
    }
}
