//! Epoch-based reclamation for the multi-version `TVar` chains.
//!
//! Snapshot transactions ([`crate::atomic_read`]) read old committed values
//! out of a per-var history chain (see `tvar.rs`). Those chain entries must
//! stay alive for as long as some snapshot might still read them, and be
//! reclaimed afterwards — the classic epoch problem. The scheme here is the
//! smallest one that is correct:
//!
//! - Every thread that starts a snapshot transaction **pins** the global
//!   clock value it will read at (`pin()`), publishing it in a per-thread
//!   slot registered in a global slot list. Pins nest (an inner
//!   `atomic_read` on the same thread keeps the *older* pin published, since
//!   the older snapshot needs the deeper history).
//! - Committers consult [`min_pinned`] — the oldest clock value any live
//!   snapshot still needs — and truncate each var's chain down to the newest
//!   entry at or below that horizon; everything older is unreachable by any
//!   current *or future* pin (future pins sample a clock that is already
//!   past every committed version).
//! - [`readers_active`] is the publishers' fast gate: a single relaxed-ish
//!   counter load. When no snapshot is pinned anywhere, the commit path
//!   skips history maintenance entirely, so workloads that never call
//!   `atomic_read` pay one atomic load per published var and nothing else.
//!
//! The races at the pin/publish boundary are benign by construction: a
//! publisher that misses a just-created pin may skip the history push, and a
//! truncator that reads the slot list mid-pin may reclaim an entry the new
//! snapshot wanted. Both cases surface as a *counted fallback* in the reader
//! (`stats::snapshot_fallbacks`) — the snapshot attempt abandons and re-runs
//! on the validated path — never as an inconsistent read.

use parking_lot::RwLock;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Slot value meaning "this thread has no live pin".
const UNPINNED: u64 = u64::MAX;

/// Count of live pins across all threads — the publishers' fast gate.
static ACTIVE_PINS: AtomicUsize = AtomicUsize::new(0);

/// Registered per-thread pin slots. Slots are created once per thread on its
/// first pin and never removed (a dead thread's slot parks at `UNPINNED`,
/// which [`min_pinned`] ignores); the list only grows, and only as far as
/// the number of threads that ever ran a snapshot.
static SLOTS: RwLock<Vec<Arc<AtomicU64>>> = RwLock::new(Vec::new());

thread_local! {
    /// This thread's published pin slot (lazily registered) plus the stack
    /// of nested pin epochs. The slot always holds the *oldest* live epoch
    /// on the stack — epochs are sampled from a monotonic clock, so that is
    /// simply the bottom entry.
    static PIN_STATE: RefCell<(Option<Arc<AtomicU64>>, Vec<u64>)> =
        const { RefCell::new((None, Vec::new())) };
}

/// RAII pin over a clock epoch. While alive, chain entries at or after the
/// pinned epoch are protected from reclamation (modulo the counted
/// pin/publish races described in the module docs). Dropping unpins.
pub(crate) struct PinGuard {
    epoch: u64,
}

impl PinGuard {
    /// The clock value this pin protects — the snapshot version a snapshot
    /// transaction reads at.
    pub(crate) fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl Drop for PinGuard {
    fn drop(&mut self) {
        PIN_STATE.with(|st| {
            let mut st = st.borrow_mut();
            let (slot, stack) = &mut *st;
            let popped = stack.pop();
            debug_assert_eq!(popped, Some(self.epoch), "pins must unwind LIFO");
            let slot = slot.as_ref().expect("unpin without a registered slot");
            match stack.first() {
                Some(&oldest) => slot.store(oldest, Ordering::SeqCst),
                None => slot.store(UNPINNED, Ordering::SeqCst),
            }
        });
        ACTIVE_PINS.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Pin the current global-clock value and return the guard. The returned
/// epoch is the snapshot version: every committed version `<= epoch` is
/// readable for as long as the guard lives (up to the chain depth bound).
pub(crate) fn pin() -> PinGuard {
    let epoch = crate::clock::now();
    PIN_STATE.with(|st| {
        let mut st = st.borrow_mut();
        let (slot, stack) = &mut *st;
        let slot = slot.get_or_insert_with(|| {
            let s = Arc::new(AtomicU64::new(UNPINNED));
            SLOTS.write().push(Arc::clone(&s));
            s
        });
        if stack.is_empty() {
            // Publish the slot *before* bumping the gate, so any publisher
            // that observes the gate up also observes the pinned epoch.
            slot.store(epoch, Ordering::SeqCst);
        }
        stack.push(epoch);
    });
    ACTIVE_PINS.fetch_add(1, Ordering::SeqCst);
    PinGuard { epoch }
}

/// Are any snapshot pins live anywhere? Publishers check this before doing
/// any history-chain work; false means "overwrite in place, as ever".
pub(crate) fn readers_active() -> bool {
    ACTIVE_PINS.load(Ordering::SeqCst) != 0
}

/// The oldest clock value any live pin still needs, or `u64::MAX` when no
/// pin is live. Chain entries strictly older than the newest entry at or
/// below this horizon are unreachable and may be reclaimed.
pub(crate) fn min_pinned() -> u64 {
    SLOTS
        .read()
        .iter()
        .map(|s| s.load(Ordering::SeqCst))
        .min()
        .unwrap_or(UNPINNED)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_pins_keep_oldest_published() {
        // Pins on this thread only; other tests' threads may hold their own
        // pins, so assert about our slot via min over *our* epochs.
        let outer = pin();
        let e0 = outer.epoch();
        assert!(readers_active());
        assert!(min_pinned() <= e0);
        {
            let inner = pin();
            assert!(inner.epoch() >= e0, "clock is monotonic");
            assert!(min_pinned() <= e0, "oldest pin stays published");
        }
        assert!(min_pinned() <= e0);
        drop(outer);
    }
}
