//! Global transaction statistics.
//!
//! The benchmark harnesses and the conformance tests both reason about *why*
//! transactions abort — memory-level read invalidation versus semantic dooms
//! — so the runtime keeps cheap global counters. They are process-wide; the
//! harnesses snapshot-and-diff around measured regions.

use crate::interrupt::AbortCause;
use std::sync::atomic::{AtomicU64, Ordering};

#[derive(Default)]
struct Counters {
    commits: AtomicU64,
    aborts_read_invalid: AtomicU64,
    aborts_doomed: AtomicU64,
    aborts_explicit: AtomicU64,
    open_commits: AtomicU64,
    open_retries: AtomicU64,
    open_flattened: AtomicU64,
    lock_cache_hits: AtomicU64,
    frame_retries: AtomicU64,
    handler_runs: AtomicU64,
    var_lock_spins: AtomicU64,
    lane_entries: AtomicU64,
    lane_free_commits: AtomicU64,
    stripe_lock_spins: AtomicU64,
    global_stripe_entries: AtomicU64,
    dooms_issued: AtomicU64,
    trace_events_dropped: AtomicU64,
    snapshot_reads: AtomicU64,
    snapshot_fallbacks: AtomicU64,
    chain_entries_reclaimed: AtomicU64,
}

/// Bumped by every [`reset_global_stats`], sampled into
/// [`StatsSnapshot::generation`]: two snapshots straddling a reset carry
/// different generations, which is how [`StatsSnapshot::diff_checked`]
/// detects a torn window instead of fabricating a saturated-to-zero delta.
static RESET_GENERATION: AtomicU64 = AtomicU64::new(0);

static COUNTERS: Counters = Counters {
    commits: AtomicU64::new(0),
    aborts_read_invalid: AtomicU64::new(0),
    aborts_doomed: AtomicU64::new(0),
    aborts_explicit: AtomicU64::new(0),
    open_commits: AtomicU64::new(0),
    open_retries: AtomicU64::new(0),
    open_flattened: AtomicU64::new(0),
    lock_cache_hits: AtomicU64::new(0),
    frame_retries: AtomicU64::new(0),
    handler_runs: AtomicU64::new(0),
    var_lock_spins: AtomicU64::new(0),
    lane_entries: AtomicU64::new(0),
    lane_free_commits: AtomicU64::new(0),
    stripe_lock_spins: AtomicU64::new(0),
    global_stripe_entries: AtomicU64::new(0),
    dooms_issued: AtomicU64::new(0),
    trace_events_dropped: AtomicU64::new(0),
    snapshot_reads: AtomicU64::new(0),
    snapshot_fallbacks: AtomicU64::new(0),
    chain_entries_reclaimed: AtomicU64::new(0),
};

pub(crate) fn record_commit() {
    COUNTERS.commits.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_abort(cause: AbortCause) {
    let c = match cause {
        AbortCause::ReadInvalid => &COUNTERS.aborts_read_invalid,
        AbortCause::Doomed => &COUNTERS.aborts_doomed,
        AbortCause::Explicit => &COUNTERS.aborts_explicit,
    };
    c.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_open_commit() {
    COUNTERS.open_commits.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_open_retry() {
    COUNTERS.open_retries.fetch_add(1, Ordering::Relaxed);
}

/// Record a flattened read-only open: a `tx.open(..)`-shaped read served
/// without a child transaction — either `Txn::open_read` validating its
/// scratch log, or a boosted backend reading its sharded map directly under
/// an already-held semantic lock. Public: the second form lives in the
/// collection layer, above this crate.
pub fn record_open_flattened() {
    COUNTERS.open_flattened.fetch_add(1, Ordering::Relaxed);
}

/// Record a txn-local semantic-lock cache hit (the kernel found `(kind,
/// key)` already acquired by this transaction and skipped the stripe
/// round trip). Public for the collection layer's kernel.
pub fn record_lock_cache_hit() {
    COUNTERS.lock_cache_hits.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_frame_retry() {
    COUNTERS.frame_retries.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_handler_run() {
    COUNTERS.handler_runs.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_var_lock_spin() {
    COUNTERS.var_lock_spins.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_lane_entry() {
    COUNTERS.lane_entries.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_lane_free_commit() {
    COUNTERS.lane_free_commits.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_doom_issued() {
    COUNTERS.dooms_issued.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_trace_dropped() {
    COUNTERS
        .trace_events_dropped
        .fetch_add(1, Ordering::Relaxed);
}

/// Record `n` variable reads served from a snapshot transaction's version
/// chain (batched per transaction at completion).
pub(crate) fn record_snapshot_reads(n: u64) {
    COUNTERS.snapshot_reads.fetch_add(n, Ordering::Relaxed);
}

/// Record a snapshot transaction abandoning to the validated path because a
/// chain was truncated past its snapshot version (or the body aborted, which
/// by construction it should not).
pub(crate) fn record_snapshot_fallback() {
    COUNTERS.snapshot_fallbacks.fetch_add(1, Ordering::Relaxed);
}

/// Record `n` version-chain entries reclaimed by the epoch horizon, the
/// depth bound, or the no-readers clearing path.
pub(crate) fn record_chain_reclaimed(n: u64) {
    COUNTERS
        .chain_entries_reclaimed
        .fetch_add(n, Ordering::Relaxed);
}

/// Record a contended semantic-stripe acquisition (a key stripe or the
/// global stripe found held). Public: the striped lock tables live in the
/// collection layer, above this crate.
pub fn record_stripe_lock_spin() {
    COUNTERS.stripe_lock_spins.fetch_add(1, Ordering::Relaxed);
}

/// Record an acquisition of a collection's global stripe (point locks:
/// size/empty/endpoint/range). Public for the collection layer.
pub fn record_global_stripe_entry() {
    COUNTERS
        .global_stripe_entries
        .fetch_add(1, Ordering::Relaxed);
}

/// A point-in-time snapshot of the global counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Top-level commits.
    pub commits: u64,
    /// Aborts from read-set invalidation (memory-level conflicts).
    pub aborts_read_invalid: u64,
    /// Aborts from program-directed abort (semantic conflicts).
    pub aborts_doomed: u64,
    /// Aborts requested by the program itself.
    pub aborts_explicit: u64,
    /// Open-nested child commits.
    pub open_commits: u64,
    /// Open-nested child re-executions.
    pub open_retries: u64,
    /// Flattened read-only opens: protocol-equivalent `open` calls served
    /// with no child transaction (direct validated reads) — each one is an
    /// open commit that did not have to happen.
    pub open_flattened: u64,
    /// Txn-local semantic-lock cache hits: `(kind, key)` acquisitions the
    /// kernel satisfied from the transaction's own cache with zero
    /// shared-memory traffic.
    pub lock_cache_hits: u64,
    /// Closed-nested partial rollbacks (frame re-executions).
    pub frame_retries: u64,
    /// Commit/abort handler invocations.
    pub handler_runs: u64,
    /// Commit-path contention: per-var commit-lock acquisitions that found
    /// the lock held and had to spin.
    pub var_lock_spins: u64,
    /// Handler-lane acquisitions (handler execution and writing open-nested
    /// commits).
    pub lane_entries: u64,
    /// Top-level commits that never touched the handler lane — the fully
    /// parallel fast path.
    pub lane_free_commits: u64,
    /// Semantic-table contention: stripe acquisitions (key stripe or global
    /// stripe) that found the mutex held and had to block.
    pub stripe_lock_spins: u64,
    /// Acquisitions of a collection's global stripe (size/empty/endpoint/
    /// range point locks) — the serialized residue of semantic locking.
    pub global_stripe_entries: u64,
    /// Program-directed dooms *issued*: successful [`crate::TxHandle::doom`]
    /// calls that transitioned a victim to the doomed state. Cross-checks
    /// against `aborts_doomed` (dooms *absorbed*) and the trace layer's
    /// `DoomEdge` events — issued ≥ absorbed, because a doomed attempt
    /// observes its doom exactly once but may be doomed by several commits.
    pub dooms_issued: u64,
    /// Trace events lost to ring-buffer overflow (drop-oldest) in
    /// [`crate::trace`]. Zero whenever tracing is off.
    pub trace_events_dropped: u64,
    /// Variable reads served by snapshot ([`crate::atomic_read`])
    /// transactions out of the multi-version chain — reads with no read-set
    /// entry, no validation, and no semantic locks.
    pub snapshot_reads: u64,
    /// Snapshot transactions that abandoned to the validated path because a
    /// version chain had been truncated past their snapshot (the counted,
    /// never-silent escape hatch of the wait-free read design).
    pub snapshot_fallbacks: u64,
    /// Version-chain entries reclaimed: dropped past the epoch horizon or
    /// the depth bound, or cleared when no snapshot reader was pinned.
    pub chain_entries_reclaimed: u64,
    /// The [`reset_global_stats`] generation this snapshot was taken at.
    /// Two snapshots with different generations straddle a reset: their
    /// windowed difference is meaningless (every counter "went backwards"
    /// and would silently saturate to zero). [`StatsSnapshot::diff_checked`]
    /// reports that as [`TornWindow`]; the unchecked [`StatsSnapshot::diff`]
    /// keeps its legacy saturating behavior for harnesses that own their
    /// reset discipline.
    pub generation: u64,
}

/// Error from [`StatsSnapshot::diff_checked`]: the two snapshots straddle a
/// [`reset_global_stats`] call, so their difference is not a window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TornWindow {
    /// Generation of the earlier snapshot.
    pub earlier: u64,
    /// Generation of the later snapshot.
    pub later: u64,
}

impl std::fmt::Display for TornWindow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "torn stats window: reset_global_stats ran between the snapshots \
             (generation {} -> {})",
            self.earlier, self.later
        )
    }
}

impl std::error::Error for TornWindow {}

impl StatsSnapshot {
    /// Total aborts of top-level attempts.
    pub fn aborts(&self) -> u64 {
        self.aborts_read_invalid + self.aborts_doomed + self.aborts_explicit
    }

    /// Program-directed dooms *absorbed*: top-level aborts whose cause was a
    /// doom. Alias of `aborts_doomed`, named to pair with
    /// [`StatsSnapshot::dooms_issued`] for counter/trace cross-checks.
    pub fn dooms_absorbed(&self) -> u64 {
        self.aborts_doomed
    }

    /// Counter-wise difference (`self - earlier`), saturating. The harness
    /// idiom is snapshot-before, run, snapshot-after, `after.diff(&before)`.
    #[must_use]
    pub fn diff(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            commits: self.commits.saturating_sub(earlier.commits),
            aborts_read_invalid: self
                .aborts_read_invalid
                .saturating_sub(earlier.aborts_read_invalid),
            aborts_doomed: self.aborts_doomed.saturating_sub(earlier.aborts_doomed),
            aborts_explicit: self.aborts_explicit.saturating_sub(earlier.aborts_explicit),
            open_commits: self.open_commits.saturating_sub(earlier.open_commits),
            open_retries: self.open_retries.saturating_sub(earlier.open_retries),
            open_flattened: self.open_flattened.saturating_sub(earlier.open_flattened),
            lock_cache_hits: self.lock_cache_hits.saturating_sub(earlier.lock_cache_hits),
            frame_retries: self.frame_retries.saturating_sub(earlier.frame_retries),
            handler_runs: self.handler_runs.saturating_sub(earlier.handler_runs),
            var_lock_spins: self.var_lock_spins.saturating_sub(earlier.var_lock_spins),
            lane_entries: self.lane_entries.saturating_sub(earlier.lane_entries),
            lane_free_commits: self
                .lane_free_commits
                .saturating_sub(earlier.lane_free_commits),
            stripe_lock_spins: self
                .stripe_lock_spins
                .saturating_sub(earlier.stripe_lock_spins),
            global_stripe_entries: self
                .global_stripe_entries
                .saturating_sub(earlier.global_stripe_entries),
            dooms_issued: self.dooms_issued.saturating_sub(earlier.dooms_issued),
            trace_events_dropped: self
                .trace_events_dropped
                .saturating_sub(earlier.trace_events_dropped),
            snapshot_reads: self.snapshot_reads.saturating_sub(earlier.snapshot_reads),
            snapshot_fallbacks: self
                .snapshot_fallbacks
                .saturating_sub(earlier.snapshot_fallbacks),
            chain_entries_reclaimed: self
                .chain_entries_reclaimed
                .saturating_sub(earlier.chain_entries_reclaimed),
            generation: self.generation,
        }
    }

    /// Counter-wise difference (`self - earlier`), saturating. Alias of
    /// [`StatsSnapshot::diff`], kept for existing call sites.
    #[must_use]
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        self.diff(earlier)
    }

    /// Did a [`reset_global_stats`] run between `earlier` and `self`? When
    /// true, any field-wise difference is a torn window, not a measurement.
    pub fn torn_since(&self, earlier: &StatsSnapshot) -> bool {
        self.generation != earlier.generation
    }

    /// [`StatsSnapshot::diff`] that refuses to fabricate: if the snapshots
    /// straddle a reset (different [`StatsSnapshot::generation`]s), returns
    /// [`TornWindow`] instead of a silently saturated-to-zero delta.
    pub fn diff_checked(&self, earlier: &StatsSnapshot) -> Result<StatsSnapshot, TornWindow> {
        if self.torn_since(earlier) {
            return Err(TornWindow {
                earlier: earlier.generation,
                later: self.generation,
            });
        }
        Ok(self.diff(earlier))
    }
}

/// Snapshot the global statistics counters.
#[must_use]
pub fn global_stats() -> StatsSnapshot {
    StatsSnapshot {
        commits: COUNTERS.commits.load(Ordering::Relaxed),
        aborts_read_invalid: COUNTERS.aborts_read_invalid.load(Ordering::Relaxed),
        aborts_doomed: COUNTERS.aborts_doomed.load(Ordering::Relaxed),
        aborts_explicit: COUNTERS.aborts_explicit.load(Ordering::Relaxed),
        open_commits: COUNTERS.open_commits.load(Ordering::Relaxed),
        open_retries: COUNTERS.open_retries.load(Ordering::Relaxed),
        open_flattened: COUNTERS.open_flattened.load(Ordering::Relaxed),
        lock_cache_hits: COUNTERS.lock_cache_hits.load(Ordering::Relaxed),
        frame_retries: COUNTERS.frame_retries.load(Ordering::Relaxed),
        handler_runs: COUNTERS.handler_runs.load(Ordering::Relaxed),
        var_lock_spins: COUNTERS.var_lock_spins.load(Ordering::Relaxed),
        lane_entries: COUNTERS.lane_entries.load(Ordering::Relaxed),
        lane_free_commits: COUNTERS.lane_free_commits.load(Ordering::Relaxed),
        stripe_lock_spins: COUNTERS.stripe_lock_spins.load(Ordering::Relaxed),
        global_stripe_entries: COUNTERS.global_stripe_entries.load(Ordering::Relaxed),
        dooms_issued: COUNTERS.dooms_issued.load(Ordering::Relaxed),
        trace_events_dropped: COUNTERS.trace_events_dropped.load(Ordering::Relaxed),
        snapshot_reads: COUNTERS.snapshot_reads.load(Ordering::Relaxed),
        snapshot_fallbacks: COUNTERS.snapshot_fallbacks.load(Ordering::Relaxed),
        chain_entries_reclaimed: COUNTERS.chain_entries_reclaimed.load(Ordering::Relaxed),
        generation: RESET_GENERATION.load(Ordering::Relaxed),
    }
}

/// Zero the global counters and bump the reset generation (so in-flight
/// snapshot pairs can detect the torn window via
/// [`StatsSnapshot::diff_checked`]). Tests in the same process race on
/// this; prefer snapshot-and-[`StatsSnapshot::since`] in concurrent tests.
pub fn reset_global_stats() {
    // Bump first: a snapshot taken mid-reset (some counters zeroed, some
    // not) must already carry the new generation so a pre-reset partner
    // flags it torn.
    RESET_GENERATION.fetch_add(1, Ordering::Relaxed);
    COUNTERS.commits.store(0, Ordering::Relaxed);
    COUNTERS.aborts_read_invalid.store(0, Ordering::Relaxed);
    COUNTERS.aborts_doomed.store(0, Ordering::Relaxed);
    COUNTERS.aborts_explicit.store(0, Ordering::Relaxed);
    COUNTERS.open_commits.store(0, Ordering::Relaxed);
    COUNTERS.open_retries.store(0, Ordering::Relaxed);
    COUNTERS.open_flattened.store(0, Ordering::Relaxed);
    COUNTERS.lock_cache_hits.store(0, Ordering::Relaxed);
    COUNTERS.frame_retries.store(0, Ordering::Relaxed);
    COUNTERS.handler_runs.store(0, Ordering::Relaxed);
    COUNTERS.var_lock_spins.store(0, Ordering::Relaxed);
    COUNTERS.lane_entries.store(0, Ordering::Relaxed);
    COUNTERS.lane_free_commits.store(0, Ordering::Relaxed);
    COUNTERS.stripe_lock_spins.store(0, Ordering::Relaxed);
    COUNTERS.global_stripe_entries.store(0, Ordering::Relaxed);
    COUNTERS.dooms_issued.store(0, Ordering::Relaxed);
    COUNTERS.trace_events_dropped.store(0, Ordering::Relaxed);
    COUNTERS.snapshot_reads.store(0, Ordering::Relaxed);
    COUNTERS.snapshot_fallbacks.store(0, Ordering::Relaxed);
    COUNTERS.chain_entries_reclaimed.store(0, Ordering::Relaxed);
}

/// Zero the global counters for a deterministic unit test. Test-only on
/// purpose: production code must use snapshot-and-[`StatsSnapshot::diff`],
/// which tolerates concurrent activity.
#[cfg(test)]
pub(crate) fn reset_for_test() {
    reset_global_stats();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diff_is_fieldwise_and_saturating() {
        let earlier = StatsSnapshot {
            commits: 10,
            aborts_doomed: 2,
            dooms_issued: 3,
            ..StatsSnapshot::default()
        };
        let later = StatsSnapshot {
            commits: 15,
            aborts_doomed: 6,
            dooms_issued: 1, // went backwards (reset raced): saturates to 0
            ..StatsSnapshot::default()
        };
        let d = later.diff(&earlier);
        assert_eq!(d.commits, 5);
        assert_eq!(d.aborts_doomed, 4);
        assert_eq!(d.dooms_absorbed(), 4);
        assert_eq!(d.dooms_issued, 0);
        // `since` is an exact alias.
        assert_eq!(later.since(&earlier), d);
    }

    #[test]
    fn diff_checked_reports_torn_window_across_reset() {
        // The race diff_is_fieldwise_and_saturating documents ("went
        // backwards (reset raced): saturates to 0") is now detectable: the
        // generations differ, so the checked diff refuses.
        let earlier = StatsSnapshot {
            commits: 10,
            generation: 4,
            ..StatsSnapshot::default()
        };
        let later = StatsSnapshot {
            commits: 2, // lower than earlier: a reset happened in between
            generation: 5,
            ..StatsSnapshot::default()
        };
        assert!(later.torn_since(&earlier));
        let err = later.diff_checked(&earlier).unwrap_err();
        assert_eq!(
            err,
            TornWindow {
                earlier: 4,
                later: 5
            }
        );
        assert!(err.to_string().contains("torn stats window"));
        // Same generation: checked diff agrees with the unchecked one.
        let later_ok = StatsSnapshot {
            commits: 12,
            generation: 4,
            ..earlier
        };
        assert!(!later_ok.torn_since(&earlier));
        assert_eq!(
            later_ok.diff_checked(&earlier).unwrap(),
            later_ok.diff(&earlier)
        );
    }

    #[test]
    fn reset_bumps_generation() {
        let _g = crate::trace::TEST_LOCK.lock();
        let before = global_stats();
        reset_global_stats();
        let after = global_stats();
        assert!(after.generation > before.generation);
        assert!(after.torn_since(&before));
        assert!(after.diff_checked(&before).is_err());
    }

    #[test]
    fn reset_for_test_zeroes_counters() {
        // Other tests in this binary bump counters concurrently, so hold the
        // trace test lock (the only other trace-drop source) and check only
        // the counter this test owns.
        let _g = crate::trace::TEST_LOCK.lock();
        record_trace_dropped();
        assert!(global_stats().trace_events_dropped >= 1);
        reset_for_test();
        assert_eq!(global_stats().trace_events_dropped, 0);
    }
}
