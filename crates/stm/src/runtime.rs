//! Execution drivers: the threaded retry loop and the simulator-facing
//! prepared-transaction API.
//!
//! txlint: metrics — metrics-emitter argument spans here must not allocate
//! or format (TX014).

use crate::contention::{BackoffPolicy, ContentionManager};
use crate::handle::TxHandle;
use crate::interrupt::{self, AbortCause, TxInterrupt};
use crate::tvar::VarId;
use crate::txn::Txn;
use crate::{epoch, metrics, stats, trace};
use std::sync::Arc;

/// Options for [`atomic_with`].
#[derive(Debug, Clone, Copy, Default)]
pub struct RunOpts {
    /// Contention-management policy between attempts.
    pub backoff: BackoffPolicy,
    /// Abort the process-visible retry loop after this many attempts
    /// (`None` = retry forever). Mostly for tests.
    pub max_attempts: Option<u32>,
}

/// Run `f` as a top-level atomic transaction, retrying on conflict until it
/// commits, and return its result.
///
/// `f` must be re-executable: it may run several times, and all its effects
/// on transactional state are isolated until commit. Effects on
/// *non*-transactional state should be compensated via
/// [`Txn::on_local_undo`] / [`Txn::on_abort_top`] (this is what the
/// transactional collection classes do internally).
///
/// Calling `atomic` from inside another `atomic` creates an *independent*
/// transaction, not a nested one — use [`Txn::closed`] or [`Txn::open`] for
/// nesting.
pub fn atomic<T>(f: impl FnMut(&mut Txn) -> T) -> T {
    atomic_with(RunOpts::default(), f)
}

/// [`atomic`] with explicit [`RunOpts`].
pub fn atomic_with<T>(opts: RunOpts, mut f: impl FnMut(&mut Txn) -> T) -> T {
    let cm = ContentionManager::new(opts.backoff);
    // Wall time spans every retry attempt: the latency the *caller* sees.
    let wall_t0 = metrics::timer();
    let mut attempts: u32 = 0;
    loop {
        let handle = TxHandle::new(attempts);
        let mut tx = Txn::new_top(handle);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut tx)));
        match outcome {
            Ok(v) => match tx.try_commit_top() {
                Ok(()) => {
                    metrics::hist_elapsed(metrics::HistKind::TxnWall, wall_t0);
                    return v;
                }
                Err(cause) => {
                    tx.run_abort_path(cause);
                }
            },
            Err(payload) => match interrupt::classify(payload) {
                Ok(TxInterrupt::Retry(cause)) => {
                    tx.run_abort_path(cause);
                }
                // A frame retry for the root frame degenerates to a full
                // retry (the root is not closed-nested).
                Ok(TxInterrupt::RetryFrame(_)) => {
                    tx.run_abort_path(AbortCause::ReadInvalid);
                }
                Ok(TxInterrupt::UserAbort) => {
                    tx.run_abort_path(AbortCause::Explicit);
                    panic!("transaction aborted by user request");
                }
                // Only snapshot attempts throw this; a validated transaction
                // reaching it means a bug upstream — retry defensively.
                Ok(TxInterrupt::SnapshotFallback) => {
                    tx.run_abort_path(AbortCause::Explicit);
                }
                Ok(TxInterrupt::Misuse(diag)) => {
                    // Clean abort first (compensation runs, locks release),
                    // then report the misuse outside the re-executable body.
                    tx.run_abort_path(AbortCause::Explicit);
                    panic!("{diag}");
                }
                Err(user_panic) => {
                    // A genuine bug in user code: clean up transactional
                    // state, then let the panic continue.
                    tx.run_abort_path(AbortCause::Explicit);
                    std::panic::resume_unwind(user_panic);
                }
            },
        }
        attempts += 1;
        if let Some(max) = opts.max_attempts {
            assert!(
                attempts < max,
                "transaction failed to commit within {max} attempts"
            );
        }
        cm.pause(attempts);
    }
}

/// Run `f` as a **snapshot (read-only) transaction**: sample the clock once,
/// pin that epoch, and serve every read from the newest version-chain entry
/// at or below the snapshot — no read-set, no commit-time validation, no
/// semantic locks, and no aborts by construction. Collection reads made
/// through a snapshot transaction skip lock acquisition entirely (the
/// kernel's snapshot skip); writes, handler registration, and lock-acquiring
/// operations abort with a diagnostic.
///
/// The one escape hatch: if a chain was truncated past the snapshot (the
/// reader was pinned for longer than the chain depth bound sustains, or it
/// raced its own pin against a publish), or the body touched a structure
/// with no per-version history (boosted or eager backends), the attempt is
/// abandoned and `f` re-runs as an ordinary validated [`atomic`]
/// transaction. This is counted (`snapshot_fallbacks`), never silent.
///
/// ```
/// use stm::{atomic, atomic_read, TVar};
/// let a = TVar::new(1);
/// let b = TVar::new(2);
/// atomic(|tx| { let x = a.read(tx); b.write(tx, x + 10); });
/// let sum = atomic_read(|tx| a.read(tx) + b.read(tx));
/// assert_eq!(sum, 12);
/// ```
pub fn atomic_read<T>(mut f: impl FnMut(&mut Txn) -> T) -> T {
    let read_t0 = metrics::timer();
    let pin = epoch::pin();
    let handle = TxHandle::new(0);
    let mut tx = Txn::new_snapshot(handle, pin.epoch());
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut tx)));
    match outcome {
        Ok(v) => {
            tx.finish_snapshot();
            metrics::hist_elapsed(metrics::HistKind::SnapshotRead, read_t0);
            v
        }
        Err(payload) => {
            let id = tx.handle().id();
            match interrupt::classify(payload) {
                // Chain truncated past the snapshot — or, defensively, a
                // body that asked to retry (unreachable by construction:
                // snapshot reads are consistent, so consistency bail-outs
                // like the iterators' completeness check never fire).
                Ok(TxInterrupt::SnapshotFallback)
                | Ok(TxInterrupt::Retry(_))
                | Ok(TxInterrupt::RetryFrame(_)) => {
                    trace::snapshot_fallback(id);
                    tx.abandon_snapshot();
                    // Unpin *before* the validated re-run: holding the pin
                    // through an arbitrarily long transaction would stall
                    // chain reclamation for everyone.
                    drop(pin);
                    stats::record_snapshot_fallback();
                    metrics::fallback_taken();
                    atomic(f)
                }
                Ok(TxInterrupt::Misuse(diag)) => {
                    tx.abandon_snapshot();
                    panic!("{diag}");
                }
                Ok(TxInterrupt::UserAbort) => {
                    tx.abandon_snapshot();
                    panic!("transaction aborted by user request");
                }
                Err(user_panic) => {
                    tx.abandon_snapshot();
                    std::panic::resume_unwind(user_panic);
                }
            }
        }
    }
}

/// A speculated-but-uncommitted transaction, produced by [`speculate`].
///
/// This is the simulator's unit of work: the body has already executed (its
/// open-nested effects are visible, its top-level effects are buffered), and
/// the simulator decides later — in virtual-time order — whether to
/// [`commit`](PreparedTxn::commit) or [`abort`](PreparedTxn::abort) it.
#[must_use = "a speculated transaction holds buffered writes and semantic locks until committed or aborted"]
pub struct PreparedTxn {
    tx: Txn,
}

impl PreparedTxn {
    /// Handle of the speculated attempt (the simulator uses it to observe
    /// dooms posted by other transactions' commit handlers).
    pub fn handle(&self) -> Arc<TxHandle> {
        self.tx.handle().clone()
    }

    /// Memory-level read footprint of the top-level transaction (open-nested
    /// reads excluded — they already committed).
    pub fn read_set(&self) -> Vec<VarId> {
        self.tx.read_ids()
    }

    /// Memory-level write footprint of the top-level transaction.
    pub fn write_set(&self) -> Vec<VarId> {
        self.tx.write_ids()
    }

    /// Read footprint with body-cycle offsets (see [`Txn::read_offsets`]).
    pub fn read_offsets(&self) -> Vec<(VarId, u64)> {
        self.tx.read_offsets()
    }

    /// Publish the buffered writes (through the same per-var `CommitGuard`
    /// locking as the threaded runtime) and run commit handlers under the
    /// handler lane.
    ///
    /// The caller (the simulator) is responsible for the TCC invariant that
    /// makes validation and the doom-vs-commit CAS unnecessary: every
    /// earlier-committing conflicting transaction must already have aborted
    /// this one, and the simulator never interleaves a doom with a commit
    /// event. Debug builds assert both (valid read set, no pending doom).
    pub fn commit(mut self) {
        self.tx.commit_top_unchecked();
    }

    /// Discard the buffered writes, run local undos and abort handlers
    /// (compensating any open-nested effects).
    pub fn abort(mut self, cause: AbortCause) {
        self.tx.run_abort_path(cause);
    }
}

/// Execute `f` speculatively as a top-level transaction body, without
/// committing. Returns the body's value and the [`PreparedTxn`].
///
/// `Err` is returned when the body aborts itself ([`crate::abort_and_retry`])
/// or observes a doom; compensation has already run. The simulator decides
/// when and whether to re-execute.
#[must_use = "dropping the PreparedTxn leaks its semantic locks; commit or abort it"]
pub fn speculate<T>(
    f: impl FnOnce(&mut Txn) -> T,
    prior_attempts: u32,
) -> Result<(T, PreparedTxn), AbortCause> {
    let handle = TxHandle::new(prior_attempts);
    let mut tx = Txn::new_top(handle);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut tx)));
    match outcome {
        Ok(v) => Ok((v, PreparedTxn { tx })),
        Err(payload) => match interrupt::classify(payload) {
            Ok(TxInterrupt::Retry(cause)) => {
                tx.run_abort_path(cause);
                Err(cause)
            }
            Ok(TxInterrupt::RetryFrame(_)) => {
                tx.run_abort_path(AbortCause::ReadInvalid);
                Err(AbortCause::ReadInvalid)
            }
            Ok(TxInterrupt::UserAbort) => {
                tx.run_abort_path(AbortCause::Explicit);
                Err(AbortCause::Explicit)
            }
            Ok(TxInterrupt::SnapshotFallback) => {
                // Never thrown by speculated bodies (the simulator does not
                // run snapshot transactions); treat as an explicit abort.
                tx.run_abort_path(AbortCause::Explicit);
                Err(AbortCause::Explicit)
            }
            Ok(TxInterrupt::Misuse(diag)) => {
                tx.run_abort_path(AbortCause::Explicit);
                panic!("{diag}");
            }
            Err(user_panic) => {
                tx.run_abort_path(AbortCause::Explicit);
                std::panic::resume_unwind(user_panic);
            }
        },
    }
}
