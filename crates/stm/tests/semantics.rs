//! Behavioral tests for the transactional semantics the paper's collection
//! classes depend on (paper §4): isolation, nesting, handlers, and
//! program-directed abort.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use stm::{atomic, atomic_with, AbortCause, BackoffPolicy, RunOpts, TVar, TxHandle, TxState};

#[test]
fn read_your_own_writes() {
    let v = TVar::new(1);
    let seen = atomic(|tx| {
        v.write(tx, 5);
        v.read(tx)
    });
    assert_eq!(seen, 5);
    assert_eq!(v.read_committed(), 5);
}

#[test]
fn writes_are_buffered_until_commit() {
    let v = TVar::new(0);
    let observed = Arc::new(AtomicU32::new(u32::MAX));
    let obs = observed.clone();
    let v2 = v.clone();
    atomic(|tx| {
        v.write(tx, 42);
        // Committed state is unchanged while the transaction is live.
        // txlint: allow(TX002) — the test asserts write buffering by peeking
        obs.store(v2.read_committed(), Ordering::SeqCst);
    });
    assert_eq!(observed.load(Ordering::SeqCst), 0);
    assert_eq!(v.read_committed(), 42);
}

#[test]
fn multi_var_consistency_under_concurrency() {
    // Classic invariant test: two vars always sum to 100.
    let a = Arc::new(TVar::new(50i64));
    let b = Arc::new(TVar::new(50i64));
    let iters = 2000;
    std::thread::scope(|s| {
        for t in 0..4 {
            let a = a.clone();
            let b = b.clone();
            s.spawn(move || {
                for i in 0..iters {
                    let delta = ((t * iters + i) % 7) as i64 - 3;
                    atomic(|tx| {
                        let x = a.read(tx);
                        let y = b.read(tx);
                        assert_eq!(x + y, 100, "isolation broken inside txn");
                        a.write(tx, x - delta);
                        b.write(tx, y + delta);
                    });
                }
            });
        }
    });
    assert_eq!(a.read_committed() + b.read_committed(), 100);
}

#[test]
fn increments_are_not_lost() {
    let c = Arc::new(TVar::new(0u64));
    let threads = 8;
    let per = 500;
    std::thread::scope(|s| {
        for _ in 0..threads {
            let c = c.clone();
            s.spawn(move || {
                for _ in 0..per {
                    atomic(|tx| {
                        let v = c.read(tx);
                        c.write(tx, v + 1);
                    });
                }
            });
        }
    });
    assert_eq!(c.read_committed(), threads * per);
}

#[test]
fn closed_nested_commit_merges_into_parent() {
    let v = TVar::new(0);
    let w = TVar::new(0);
    atomic(|tx| {
        v.write(tx, 1);
        tx.closed(|tx| {
            assert_eq!(v.read(tx), 1, "child sees parent's buffered write");
            w.write(tx, 2);
        });
        assert_eq!(w.read(tx), 2, "parent sees committed child's write");
    });
    assert_eq!(v.read_committed(), 1);
    assert_eq!(w.read_committed(), 2);
}

#[test]
fn open_nested_commits_immediately() {
    let shared = Arc::new(TVar::new(0u32));
    let mid_view = Arc::new(AtomicU32::new(u32::MAX));
    let s2 = shared.clone();
    let mv = mid_view.clone();
    atomic(|tx| {
        tx.open(|otx| {
            let v = s2.read(otx);
            s2.write(otx, v + 1);
        });
        // The open child has committed: other threads (here: a committed
        // read) can see it although the parent is still running.
        // txlint: allow(TX002) — asserting open-nested early publication
        mv.store(s2.read_committed(), Ordering::SeqCst);
    });
    assert_eq!(mid_view.load(Ordering::SeqCst), 1);
}

#[test]
fn open_nested_leaves_no_parent_dependencies() {
    let noise = Arc::new(TVar::new(0u64));
    let target = Arc::new(TVar::new(0u64));
    let attempts = Arc::new(AtomicU32::new(0));

    // Writer thread hammers `noise` which the victim reads ONLY inside an
    // open-nested child. The victim must not abort because of it.
    let stop = Arc::new(AtomicU32::new(0));
    let n2 = noise.clone();
    let stop2 = stop.clone();
    let writer = std::thread::spawn(move || {
        while stop2.load(Ordering::SeqCst) == 0 {
            atomic(|tx| {
                let v = n2.read(tx);
                n2.write(tx, v + 1);
            });
        }
    });

    let at = attempts.clone();
    atomic(|tx| {
        at.fetch_add(1, Ordering::SeqCst);
        let _ = tx.open(|otx| noise.read(otx));
        // Long "computation" during which noise changes many times.
        std::thread::sleep(std::time::Duration::from_millis(30)); // txlint: allow(TX001)
        let t = target.read(tx);
        target.write(tx, t + 1);
    });
    stop.store(1, Ordering::SeqCst);
    writer.join().unwrap();
    assert_eq!(
        attempts.load(Ordering::SeqCst),
        1,
        "open-nested read must not create a parent dependency"
    );
}

#[test]
fn open_read_leaves_no_parent_dependencies() {
    // Same experiment as above with the flattened read: the per-var stamp
    // validation happens inside `open_read` and is then forgotten — the
    // noise var never enters the parent's read set.
    let noise = Arc::new(TVar::new(0u64));
    let target = Arc::new(TVar::new(0u64));
    let attempts = Arc::new(AtomicU32::new(0));

    let stop = Arc::new(AtomicU32::new(0));
    let n2 = noise.clone();
    let stop2 = stop.clone();
    let writer = std::thread::spawn(move || {
        while stop2.load(Ordering::SeqCst) == 0 {
            atomic(|tx| {
                let v = n2.read(tx);
                n2.write(tx, v + 1);
            });
        }
    });

    let before = stm::global_stats();
    let at = attempts.clone();
    atomic(|tx| {
        at.fetch_add(1, Ordering::SeqCst);
        let _ = tx.open_read(|otx| noise.read(otx));
        std::thread::sleep(std::time::Duration::from_millis(30)); // txlint: allow(TX001)
        let t = target.read(tx);
        target.write(tx, t + 1);
    });
    stop.store(1, Ordering::SeqCst);
    writer.join().unwrap();
    assert_eq!(
        attempts.load(Ordering::SeqCst),
        1,
        "flattened read must not create a parent dependency"
    );
    let d = stm::global_stats().since(&before);
    assert_eq!(d.open_commits, 0, "no child transaction may be spawned");
    assert!(d.open_flattened >= 1, "the flattened read must be counted");
}

#[test]
#[should_panic(expected = "write inside an open_read body")]
fn open_read_rejects_writes() {
    let v = Arc::new(TVar::new(0u32));
    atomic(|tx| {
        tx.open_read(|otx| v.write(otx, 1));
    });
}

#[test]
fn plain_read_of_contended_var_does_abort() {
    // Control experiment for the previous test: the same long transaction
    // reading `noise` directly IS expected to abort at commit.
    let noise = Arc::new(TVar::new(0u64));
    let attempts = Arc::new(AtomicU32::new(0));
    let stop = Arc::new(AtomicU32::new(0));
    let n2 = noise.clone();
    let stop2 = stop.clone();
    let at_w = attempts.clone();
    let writer = std::thread::spawn(move || {
        // Stop once the victim has aborted at least once: a writer that
        // commits forever livelocks the victim on a single-CPU host (it can
        // never find a quiet 10ms window to commit in).
        while stop2.load(Ordering::SeqCst) == 0 && at_w.load(Ordering::SeqCst) < 2 {
            atomic(|tx| {
                let v = n2.read(tx);
                n2.write(tx, v + 1);
            });
            std::thread::yield_now();
        }
    });

    let at = attempts.clone();
    atomic(|tx| {
        at.fetch_add(1, Ordering::SeqCst);
        let _ = noise.read(tx);
        std::thread::sleep(std::time::Duration::from_millis(10)); // txlint: allow(TX001)
                                                                  // Force a validation by reading after the sleep: any noise commit in
                                                                  // between invalidates us.
        let _ = noise.read(tx);
    });
    stop.store(1, Ordering::SeqCst);
    writer.join().unwrap();
    assert!(
        attempts.load(Ordering::SeqCst) > 1,
        "direct read of a contended var should have aborted at least once"
    );
}

#[test]
fn commit_handlers_run_on_commit_only() {
    let ran = Arc::new(AtomicU32::new(0));
    let r2 = ran.clone();
    atomic(move |tx| {
        let r = r2.clone();
        // txlint: allow(TX004) — this test isolates the commit-side handler
        tx.on_commit_top(move |_| {
            r.fetch_add(1, Ordering::SeqCst);
        });
    });
    assert_eq!(ran.load(Ordering::SeqCst), 1);
}

#[test]
fn abort_handlers_run_per_aborted_attempt() {
    let aborts = Arc::new(AtomicU32::new(0));
    let commits = Arc::new(AtomicU32::new(0));
    let first = Arc::new(AtomicU32::new(1));
    let (a2, c2, f2) = (aborts.clone(), commits.clone(), first.clone());
    atomic(move |tx| {
        let a = a2.clone();
        let c = c2.clone();
        tx.on_abort_top(move |_| {
            a.fetch_add(1, Ordering::SeqCst);
        });
        tx.on_commit_top(move |_| {
            c.fetch_add(1, Ordering::SeqCst);
        });
        if f2.swap(0, Ordering::SeqCst) == 1 {
            stm::abort_and_retry();
        }
    });
    assert_eq!(aborts.load(Ordering::SeqCst), 1);
    assert_eq!(commits.load(Ordering::SeqCst), 1);
}

#[test]
fn handlers_registered_in_aborted_closed_frame_are_discarded() {
    let commit_runs = Arc::new(AtomicU32::new(0));
    let undo_runs = Arc::new(AtomicU32::new(0));
    let v = Arc::new(TVar::new(0u32));

    // Drive a closed-frame abort deterministically: the frame reads `v`,
    // then a helper thread commits a write to `v`, then the frame reads `v`
    // again -> repeated-read conflict confined to the frame -> frame retry.
    let (c2, u2, v2) = (commit_runs.clone(), undo_runs.clone(), v.clone());
    let round = Arc::new(AtomicU32::new(0));
    let r2 = round.clone();
    atomic(move |tx| {
        let c3 = c2.clone();
        let u3 = u2.clone();
        let v3 = v2.clone();
        let r3 = r2.clone();
        tx.closed(move |tx| {
            let attempt = r3.fetch_add(1, Ordering::SeqCst);
            let c4 = c3.clone();
            tx.on_commit(move |_| {
                c4.fetch_add(1, Ordering::SeqCst);
            });
            let u4 = u3.clone();
            tx.on_local_undo(move || {
                u4.fetch_add(1, Ordering::SeqCst);
            });
            let _ = v3.read(tx);
            if attempt == 0 {
                // Invalidate our own read from another thread.
                let vv = v3.clone();
                std::thread::spawn(move || {
                    atomic(|tx| {
                        let x = vv.read(tx);
                        vv.write(tx, x + 1);
                    });
                })
                .join()
                .unwrap();
                // Re-read: version changed -> frame retry.
                let _ = v3.read(tx);
            }
        });
    });
    assert_eq!(round.load(Ordering::SeqCst), 2, "frame must have retried");
    assert_eq!(
        undo_runs.load(Ordering::SeqCst),
        1,
        "local undo of the aborted frame attempt must run"
    );
    assert_eq!(
        commit_runs.load(Ordering::SeqCst),
        1,
        "only the committed frame attempt's handler survives"
    );
}

#[test]
fn doomed_transaction_aborts_and_retries() {
    let v = Arc::new(TVar::new(0u32));
    let handle_slot: Arc<Mutex<Option<Arc<TxHandle>>>> = Arc::new(Mutex::new(None));
    let attempts = Arc::new(AtomicU32::new(0));

    let (hs, at, v2) = (handle_slot.clone(), attempts.clone(), v.clone());
    atomic(move |tx| {
        let n = at.fetch_add(1, Ordering::SeqCst);
        // txlint: allow(TX001) — exporting the handle to the adversary is the test
        *hs.lock().unwrap() = Some(tx.handle().clone());
        if n == 0 {
            // Doom ourselves "remotely" (as a committing adversary would).
            let landed = tx.handle().doom();
            assert!(landed, "self-doom of an active transaction must land");
        }
        let x = v2.read(tx); // doom is noticed at the next read or commit
        v2.write(tx, x + 1);
    });
    assert_eq!(attempts.load(Ordering::SeqCst), 2);
    assert_eq!(v.read_committed(), 1);
    let h = handle_slot.lock().unwrap().clone().unwrap();
    assert_eq!(h.state(), TxState::Committed);
}

#[test]
fn dooming_committed_transaction_is_noop() {
    let h = TxHandle::new(0);
    let v = TVar::new(0u8);
    atomic(|tx| v.write(tx, 1));
    // Simulate: handle committed elsewhere.
    let committed = { h.clone() };
    // Fresh handle is Active; force to committed via a real transaction is
    // not exposed, so just check the Active->doom path and the API contract.
    assert!(committed.doom());
    assert!(committed.is_doomed());
}

#[test]
fn user_abort_panics_after_cleanup() {
    let undone = Arc::new(AtomicU32::new(0));
    let u2 = undone.clone();
    let result = std::panic::catch_unwind(move || {
        atomic(move |tx| {
            let u3 = u2.clone();
            tx.on_abort_top(move |_| {
                u3.fetch_add(1, Ordering::SeqCst);
            });
            stm::user_abort();
        })
    });
    assert!(result.is_err());
    assert_eq!(undone.load(Ordering::SeqCst), 1);
}

#[test]
fn user_panic_runs_abort_handlers_then_propagates() {
    let undone = Arc::new(AtomicU32::new(0));
    let u2 = undone.clone();
    let result = std::panic::catch_unwind(move || {
        atomic(move |tx| {
            let u3 = u2.clone();
            tx.on_abort_top(move |_| {
                u3.fetch_add(1, Ordering::SeqCst);
            });
            panic!("application bug");
        })
    });
    assert!(result.is_err());
    assert_eq!(undone.load(Ordering::SeqCst), 1);
}

#[test]
fn explicit_retry_reexecutes_body() {
    let tries = Arc::new(AtomicU32::new(0));
    let t2 = tries.clone();
    let out = atomic_with(
        RunOpts {
            backoff: BackoffPolicy::None,
            max_attempts: Some(10),
        },
        move |_tx| {
            if t2.fetch_add(1, Ordering::SeqCst) < 3 {
                stm::abort_and_retry();
            }
            "done"
        },
    );
    assert_eq!(out, "done");
    assert_eq!(tries.load(Ordering::SeqCst), 4);
}

#[test]
fn open_nested_effects_survive_parent_abort_unless_compensated() {
    // UID-generator semantics: the open increment persists even though the
    // first parent attempt aborts (gaps are allowed, paper §6.3).
    let uid = Arc::new(TVar::new(0u64));
    let first = Arc::new(AtomicU32::new(1));
    let (u2, f2) = (uid.clone(), first.clone());
    atomic(move |tx| {
        let u3 = u2.clone();
        tx.open(move |otx| {
            let v = u3.read(otx);
            u3.write(otx, v + 1);
        });
        if f2.swap(0, Ordering::SeqCst) == 1 {
            stm::abort_and_retry();
        }
    });
    assert_eq!(
        uid.read_committed(),
        2,
        "both attempts' open increments persist"
    );
}

#[test]
fn open_nested_with_compensation_rolls_back_on_abort() {
    // The compensating pattern the collection classes use: the abort handler
    // undoes the open child's published effect.
    let counter = Arc::new(TVar::new(0i64));
    let first = Arc::new(AtomicU32::new(1));
    let (c2, f2) = (counter.clone(), first.clone());
    atomic(move |tx| {
        let c3 = c2.clone();
        tx.open(move |otx| {
            let v = c3.read(otx);
            c3.write(otx, v + 1);
        });
        let c4 = c2.clone();
        tx.on_abort(move |htx| {
            let v = c4.read(htx);
            c4.write(htx, v - 1);
        });
        if f2.swap(0, Ordering::SeqCst) == 1 {
            stm::abort_and_retry();
        }
    });
    assert_eq!(
        counter.read_committed(),
        1,
        "aborted attempt compensated; committed attempt persists"
    );
}

#[test]
fn commit_handler_direct_writes_are_visible() {
    let v = Arc::new(TVar::new(0u32));
    let v2 = v.clone();
    atomic(move |tx| {
        let v3 = v2.clone();
        // txlint: allow(TX004) — commit-side handler writes are the subject
        tx.on_commit_top(move |htx| {
            let x = v3.read(htx);
            v3.write(htx, x + 10);
        });
        v2.write(tx, 5);
    });
    // Memory commit (5) happens before the handler (+10).
    assert_eq!(v.read_committed(), 15);
}

#[test]
fn stats_count_commits_and_aborts() {
    let before = stm::global_stats();
    let v = TVar::new(0);
    let first = AtomicU32::new(1);
    atomic(|tx| {
        v.write(tx, 1);
        if first.swap(0, Ordering::SeqCst) == 1 {
            stm::abort_and_retry();
        }
    });
    let diff = stm::global_stats().since(&before);
    assert!(diff.commits >= 1);
    assert!(diff.aborts_explicit >= 1);
}

#[test]
fn closed_nesting_depth() {
    let v = TVar::new(0);
    atomic(|tx| {
        tx.closed(|tx| {
            tx.closed(|tx| {
                tx.closed(|tx| {
                    v.write(tx, 3);
                });
            });
        });
        assert_eq!(v.read(tx), 3);
    });
    assert_eq!(v.read_committed(), 3);
}

#[test]
fn open_within_closed_promotes_handlers_to_closed_frame() {
    // A handler registered via an open child inside a closed frame is
    // discarded when the closed frame aborts (the paper's discard rule).
    let handler_runs = Arc::new(AtomicU64::new(0));
    let v = Arc::new(TVar::new(0u32));
    let round = Arc::new(AtomicU32::new(0));
    let (h2, v2, r2) = (handler_runs.clone(), v.clone(), round.clone());
    atomic(move |tx| {
        let h3 = h2.clone();
        let v3 = v2.clone();
        let r3 = r2.clone();
        tx.closed(move |tx| {
            let attempt = r3.fetch_add(1, Ordering::SeqCst);
            let h4 = h3.clone();
            tx.open(move |_otx| {
                // No memory effects; just registration via parent below.
            });
            let h5 = h4.clone();
            // txlint: allow(TX004) — the handler-discard rule is the subject
            tx.on_commit(move |_| {
                h5.fetch_add(1, Ordering::SeqCst);
            });
            let _ = v3.read(tx);
            if attempt == 0 {
                let vv = v3.clone();
                std::thread::spawn(move || {
                    atomic(|tx| {
                        let x = vv.read(tx);
                        vv.write(tx, x + 1);
                    });
                })
                .join()
                .unwrap();
                let _ = v3.read(tx); // trigger frame retry
            }
        });
    });
    assert_eq!(round.load(Ordering::SeqCst), 2);
    assert_eq!(
        handler_runs.load(Ordering::SeqCst),
        1,
        "only the surviving frame attempt's handler runs"
    );
}

#[test]
fn speculate_then_commit_applies_writes() {
    let v = Arc::new(TVar::new(0u32));
    let v2 = v.clone();
    let (out, prepared) = stm::speculate(
        move |tx| {
            let x = v2.read(tx);
            v2.write(tx, x + 7);
            x
        },
        0,
    )
    .unwrap();
    assert_eq!(out, 0);
    assert_eq!(v.read_committed(), 0, "still buffered");
    assert!(!prepared.read_set().is_empty());
    assert!(!prepared.write_set().is_empty());
    prepared.commit();
    assert_eq!(v.read_committed(), 7);
}

#[test]
fn speculate_then_abort_discards_and_compensates() {
    let v = Arc::new(TVar::new(0u32));
    let compensated = Arc::new(AtomicU32::new(0));
    let (v2, c2) = (v.clone(), compensated.clone());
    let (_, prepared) = stm::speculate(
        move |tx| {
            v2.write(tx, 99);
            let c3 = c2.clone();
            tx.on_abort_top(move |_| {
                c3.fetch_add(1, Ordering::SeqCst);
            });
        },
        0,
    )
    .unwrap();
    prepared.abort(AbortCause::ReadInvalid);
    assert_eq!(v.read_committed(), 0);
    assert_eq!(compensated.load(Ordering::SeqCst), 1);
}
