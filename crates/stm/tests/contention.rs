//! Contention-management behaviour (paper §5.1): optimistic control can
//! starve long transactions; back-off policies restore progress. These
//! tests pin the *liveness* properties the policies must provide.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use stm::{atomic_with, BackoffPolicy, RunOpts, TVar};

/// A long reader against throttled short writers must eventually commit
/// under every policy.
fn long_reader_commits(policy: BackoffPolicy) {
    let vars: Arc<Vec<TVar<u64>>> = Arc::new((0..8).map(|_| TVar::new(0)).collect());
    let stop = Arc::new(AtomicU32::new(0));
    let attempts = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        // Writer: touches one var at a time, with pauses.
        {
            let vars = vars.clone();
            let stop = stop.clone();
            s.spawn(move || {
                let mut i = 0usize;
                while stop.load(Ordering::SeqCst) == 0 {
                    let v = &vars[i % 8];
                    stm::atomic(|tx| {
                        let x = v.read(tx);
                        v.write(tx, x + 1);
                    });
                    i += 1;
                    std::thread::sleep(std::time::Duration::from_micros(300));
                }
            });
        }
        // Long reader: reads all vars with work in between.
        {
            let vars = vars.clone();
            let stop = stop.clone();
            let attempts = attempts.clone();
            s.spawn(move || {
                let sum = atomic_with(
                    RunOpts {
                        backoff: policy,
                        max_attempts: Some(10_000),
                    },
                    |tx| {
                        attempts.fetch_add(1, Ordering::SeqCst);
                        let mut sum = 0u64;
                        for v in vars.iter() {
                            sum += v.read(tx);
                            // Lengthen the transaction.
                            std::hint::black_box((0..2_000).sum::<u64>());
                        }
                        sum
                    },
                );
                std::hint::black_box(sum);
                stop.store(1, Ordering::SeqCst);
            });
        }
    });
    assert!(
        attempts.load(Ordering::SeqCst) >= 1,
        "reader never even started"
    );
}

#[test]
fn long_reader_commits_with_exponential_backoff() {
    long_reader_commits(BackoffPolicy::default());
}

#[test]
fn long_reader_commits_with_karma_backoff() {
    long_reader_commits(BackoffPolicy::Karma {
        base_us: 2,
        max_us: 2_000,
    });
}

#[test]
fn long_reader_commits_with_no_backoff() {
    // Even without back-off, throttled writers leave commit windows.
    long_reader_commits(BackoffPolicy::None);
}

#[test]
fn max_attempts_panics_when_exhausted() {
    let result = std::panic::catch_unwind(|| {
        atomic_with(
            RunOpts {
                backoff: BackoffPolicy::None,
                max_attempts: Some(3),
            },
            |_tx| -> () { stm::abort_and_retry() },
        )
    });
    assert!(result.is_err(), "retry budget must be enforced");
}
