//! Property tests for the STM core: transactional programs must behave
//! exactly like a sequential model (including through closed nesting),
//! aborts must be traceless, and concurrency must never break
//! multi-variable invariants (opacity).

use proptest::prelude::*;
use std::sync::Arc;
use stm::{atomic, TVar};

/// One step in a generated transactional program.
#[derive(Debug, Clone)]
enum Step {
    Read(usize),
    Write(usize, i64),
    /// Run the inner steps in a closed-nested frame.
    Closed(Vec<Step>),
}

fn leaf() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..6usize).prop_map(Step::Read),
        (0..6usize, -100i64..100).prop_map(|(i, v)| Step::Write(i, v)),
    ]
}

fn program() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        prop_oneof![
            leaf(),
            prop::collection::vec(leaf(), 1..5).prop_map(Step::Closed),
            // Two levels of nesting.
            prop::collection::vec(
                prop_oneof![
                    leaf(),
                    prop::collection::vec(leaf(), 1..4).prop_map(Step::Closed)
                ],
                1..4
            )
            .prop_map(Step::Closed),
        ],
        1..24,
    )
}

fn run_steps(tx: &mut stm::Txn, vars: &[TVar<i64>], model: &mut [i64], steps: &[Step]) {
    for s in steps {
        match s {
            Step::Read(i) => {
                assert_eq!(vars[*i].read(tx), model[*i], "read diverged from model");
            }
            Step::Write(i, v) => {
                vars[*i].write(tx, *v);
                model[*i] = *v;
            }
            Step::Closed(inner) => {
                // Single-threaded: the closed frame always commits, so its
                // effects merge into the parent unconditionally.
                tx.closed(|tx| run_steps(tx, vars, model, inner));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// Flat and closed-nested programs match a sequential model exactly,
    /// both mid-transaction (read checks) and after commit.
    #[test]
    fn nested_programs_match_model(steps in program()) {
        let vars: Vec<TVar<i64>> = (0..6).map(|_| TVar::new(0)).collect();
        let mut model = vec![0i64; 6];
        atomic(|tx| {
            let mut m = vec![0i64; 6];
            run_steps(tx, &vars, &mut m, &steps);
            model = m;
        });
        for (v, m) in vars.iter().zip(&model) {
            prop_assert_eq!(v.read_committed(), *m, "committed state diverged");
        }
    }

    /// Commit is all-or-nothing: a failing transaction leaves no trace.
    #[test]
    fn aborted_writes_leave_no_trace(
        writes in prop::collection::vec((0..6usize, any::<i64>()), 1..10)
    ) {
        let vars: Vec<TVar<i64>> = (0..6).map(|i| TVar::new(i as i64)).collect();
        let snapshot: Vec<i64> = vars.iter().map(|v| v.read_committed()).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            atomic(|tx| {
                for (i, v) in &writes {
                    vars[*i].write(tx, *v);
                }
                stm::user_abort();
            })
        }));
        prop_assert!(result.is_err());
        let after: Vec<i64> = vars.iter().map(|v| v.read_committed()).collect();
        prop_assert_eq!(snapshot, after, "aborted writes leaked");
    }

    /// Open-nested children always see fully committed state and publish
    /// atomically: a child reading two invariant-linked vars sees them
    /// consistent regardless of the parent's buffered writes.
    #[test]
    fn open_children_see_consistent_committed_state(
        parent_writes in prop::collection::vec((0..2usize, -50i64..50), 0..4)
    ) {
        let a = TVar::new(25i64);
        let b = TVar::new(75i64); // invariant: a + b == 100
        atomic(|tx| {
            for (i, v) in &parent_writes {
                // Parent scribbles over the vars (buffered, invisible).
                if *i == 0 { a.write(tx, *v); } else { b.write(tx, *v); }
            }
            let (ca, cb) = tx.open(|otx| (a.read(otx), b.read(otx)));
            assert_eq!(ca + cb, 100, "open child saw parent's buffer or torn state");
            // Restore the invariant in the parent so the commit keeps it.
            a.write(tx, ca);
            b.write(tx, cb);
        });
        assert_eq!(a.read_committed() + b.read_committed(), 100);
    }

    /// The flattened read (`open_read`) is observably equivalent to a
    /// read-only open child: committed state only (never the parent's
    /// buffer), and the two-var invariant holds — the per-var stamp
    /// validation after the body rejects torn interleavings just as a
    /// child commit's read validation would.
    #[test]
    fn open_read_matches_open_child_observations(
        parent_writes in prop::collection::vec((0..2usize, -50i64..50), 0..4)
    ) {
        let a = TVar::new(25i64);
        let b = TVar::new(75i64); // invariant: a + b == 100
        atomic(|tx| {
            for (i, v) in &parent_writes {
                if *i == 0 { a.write(tx, *v); } else { b.write(tx, *v); }
            }
            let (fa, fb) = tx.open_read(|otx| (a.read(otx), b.read(otx)));
            let (ca, cb) = tx.open(|otx| (a.read(otx), b.read(otx)));
            assert_eq!((fa, fb), (ca, cb), "flattened read diverged from open child");
            assert_eq!(fa + fb, 100, "flattened read saw parent buffer or torn state");
            a.write(tx, fa);
            b.write(tx, fb);
        });
        assert_eq!(a.read_committed() + b.read_committed(), 100);
    }
}

/// Opacity stress: an 8-var zero-sum invariant hammered by writers while
/// readers assert the invariant *mid-transaction* (not just at commit).
/// Before the publish-after-apply fix in `stm::clock` this failed within
/// milliseconds.
#[test]
fn opacity_invariant_holds_mid_transaction() {
    const VARS: usize = 8;
    let vars: Arc<Vec<TVar<i64>>> = Arc::new((0..VARS).map(|_| TVar::new(0)).collect());
    let iters = 3_000;
    std::thread::scope(|s| {
        // Writers: move value between two random vars (sum stays 0).
        for t in 0..2u64 {
            let vars = vars.clone();
            s.spawn(move || {
                let mut x = 0xABCD_EF01u64 ^ t;
                for _ in 0..iters {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let a = (x % VARS as u64) as usize;
                    let b = ((x >> 8) % VARS as u64) as usize;
                    if a == b {
                        continue;
                    }
                    let d = (x % 17) as i64 - 8;
                    atomic(|tx| {
                        let va = vars[a].read(tx);
                        let vb = vars[b].read(tx);
                        vars[a].write(tx, va - d);
                        vars[b].write(tx, vb + d);
                    });
                }
            });
        }
        // Readers: assert the invariant inside the transaction body.
        for _ in 0..2 {
            let vars = vars.clone();
            s.spawn(move || {
                for _ in 0..iters {
                    atomic(|tx| {
                        let sum: i64 = vars.iter().map(|v| v.read(tx)).sum();
                        assert_eq!(sum, 0, "opacity violated: torn read mid-transaction");
                    });
                }
            });
        }
    });
    let final_sum: i64 = vars.iter().map(|v| v.read_committed()).sum();
    assert_eq!(final_sum, 0);
}
