//! Multi-thread soak tests for the sharded commit path: per-TVar versioned
//! locks + the handler lane (no global commit mutex).
//!
//! What must hold after the refactor:
//!
//! * disjoint-write transactions commit without ever touching the handler
//!   lane, and no update is lost;
//! * per-var versions are strictly monotonic and globally unique (each
//!   commit draws a fresh version from the fetch-add clock);
//! * a transaction blocked inside its commit handler — holding the lane —
//!   does not block handler-free commits;
//! * the doom-vs-commit decision is atomic: a doom that lands before the
//!   victim's point of no return aborts it exactly once, and the retry
//!   commits.

use std::collections::HashSet;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;
use stm::{atomic, global_stats, TVar};

const WAIT: Duration = Duration::from_secs(10);

#[test]
fn disjoint_commits_lose_no_updates_and_skip_the_lane() {
    const THREADS: usize = 8;
    const PER: u64 = 300;
    let vars: Vec<TVar<u64>> = (0..THREADS).map(|_| TVar::new(0)).collect();
    let before = global_stats();

    thread::scope(|s| {
        for v in &vars {
            s.spawn(move || {
                let mut last = v.version();
                for _ in 0..PER {
                    atomic(|tx| {
                        let x = v.read(tx);
                        v.write(tx, x + 1);
                    });
                    let now = v.version();
                    assert!(now > last, "per-var version must be strictly monotonic");
                    last = now;
                }
            });
        }
    });

    for v in &vars {
        assert_eq!(v.read_committed(), PER, "no update may be lost");
    }
    // Every commit drew a distinct version from the global clock, so the
    // final versions of the (disjointly written) vars are pairwise distinct.
    let finals: HashSet<u64> = vars.iter().map(TVar::version).collect();
    assert_eq!(finals.len(), THREADS, "commit versions must be unique");

    let d = global_stats().since(&before);
    assert!(
        d.lane_free_commits >= (THREADS as u64) * PER,
        "handler-free commits must take the lane-free fast path, got {}",
        d.lane_free_commits
    );
}

#[test]
fn lane_holder_does_not_block_handler_free_commits() {
    let flagged = TVar::new(false);
    let counter = TVar::new(0u64);
    let (entered_tx, entered_rx) = mpsc::channel::<()>();
    let (release_tx, release_rx) = mpsc::channel::<()>();
    let release_rx = Arc::new(Mutex::new(release_rx));

    thread::scope(|s| {
        let flagged = &flagged;
        let entered_tx = entered_tx.clone();
        let release_rx = Arc::clone(&release_rx);
        let blocker = s.spawn(move || {
            atomic(|tx| {
                let x = flagged.read(tx);
                flagged.write(tx, !x);
                let e = entered_tx.clone();
                let r = Arc::clone(&release_rx);
                // The handler blocks while holding the handler lane.
                tx.on_commit_top(move |_| {
                    e.send(()).unwrap();
                    r.lock().unwrap().recv_timeout(WAIT).unwrap();
                });
                tx.on_abort_top(|_| {});
            });
        });

        // The blocker is now past its point of no return, inside its commit
        // handler, holding the lane.
        entered_rx
            .recv_timeout(WAIT)
            .expect("handler never entered");

        // A handler-free commit needs no lane: it must complete while the
        // lane is held.
        atomic(|tx| {
            let x = counter.read(tx);
            counter.write(tx, x + 1);
        });
        assert_eq!(counter.read_committed(), 1);

        release_tx.send(()).unwrap();
        blocker.join().unwrap();
    });
    assert!(atomic(|tx| flagged.read(tx)));
}

#[test]
fn contended_counter_soak_conserves_increments() {
    const THREADS: u64 = 8;
    const PER: u64 = 500;
    let c = TVar::new(0u64);

    thread::scope(|s| {
        for _ in 0..THREADS {
            s.spawn(|| {
                for _ in 0..PER {
                    atomic(|tx| {
                        let x = c.read(tx);
                        c.write(tx, x + 1);
                    });
                }
            });
        }
    });

    assert_eq!(c.read_committed(), THREADS * PER);
}

#[test]
fn doom_vs_commit_decides_exactly_once() {
    let v = TVar::new(0u64);
    let before = global_stats();
    let (handle_tx, handle_rx) = mpsc::channel();
    let (resume_tx, resume_rx) = mpsc::channel::<()>();

    thread::scope(|s| {
        let v = &v;
        let victim = s.spawn(move || {
            let mut first = true;
            atomic(|tx| {
                let x = v.read(tx);
                v.write(tx, x + 1);
                if first {
                    first = false;
                    // Exporting the handle is test scaffolding, not a leaked
                    // effect: the attempt is meant to be doomed. // txlint: allow(TX001)
                    handle_tx.send(tx.handle().clone()).unwrap();
                    // Hold the attempt open until the doom has landed. The
                    // doom is a flag CAS on our handle; we only notice it at
                    // the commit-time decision point.
                    resume_rx.recv_timeout(WAIT).unwrap();
                }
            });
        });

        let h = handle_rx.recv_timeout(WAIT).unwrap();
        // The victim is still Active (it is parked in its body), so the doom
        // must win the state-word CAS.
        assert!(h.doom(), "doom must land on an Active transaction");
        resume_tx.send(()).unwrap();
        victim.join().unwrap();
    });

    // The first attempt lost the doom-vs-commit race; the retry committed.
    assert_eq!(v.read_committed(), 1);
    let d = global_stats().since(&before);
    assert!(
        d.aborts_doomed >= 1,
        "the doomed attempt must be recorded, got {d:?}"
    );
}
