//! Integration tests for the dimensional metrics layer: shard merging,
//! window differencing under concurrent recording, percentile goldens, and
//! the flight recorder.
//!
//! Metrics state is process-global (per-thread slab shards plus a shared
//! registry), so the tests serialize on a file-local mutex. Each
//! integration-test file is its own process, so this suffices.

use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use stm::metrics::{
    self, bucket_upper, HistKind, Histogram, MetricKind, MetricsConfig, STRIPE_GLOBAL,
};
use stm::trace::{intern, LockKind, Sym};
use stm::{atomic, TVar};

static SERIAL: Mutex<()> = Mutex::new(());

fn serialize() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// Build a [`Histogram`] the same way a shard does, without going through
/// the global registry — the reference model for the proptests.
fn model_histogram(values: &[u64]) -> Histogram {
    let mut h = Histogram::default();
    for &v in values {
        let b = 63 - v.max(1).leading_zeros() as usize;
        h.buckets[b] += 1;
        h.sum += v;
        h.max = h.max.max(v);
    }
    h
}

proptest! {
    // Each case spawns real threads and registers their shards in the
    // process-global registry (shards of exited threads stay registered,
    // so later cases merge ever more of them) — keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Values recorded from several threads (one real shard each) merge
    /// into a window histogram that preserves the total count and sum,
    /// matches the single-shard reference model bucket-for-bucket, and
    /// keeps every value within its bucket's bounds.
    #[test]
    fn merged_shards_preserve_count_and_bucket_placement(
        chunks in prop::collection::vec(
            prop::collection::vec(0u64..1 << 48, 0..40), 1..5)
    ) {
        let _g = serialize();
        let guard = MetricsConfig::default().enable();

        std::thread::scope(|s| {
            for chunk in &chunks {
                s.spawn(move || {
                    for &v in chunk {
                        metrics::hist_record_ns(HistKind::SnapshotRead, v);
                    }
                });
            }
        });

        let all: Vec<u64> = chunks.iter().flatten().copied().collect();
        let expect = model_histogram(&all);
        let w = metrics::window();
        let got = w.histogram(HistKind::SnapshotRead);

        prop_assert_eq!(got.count(), all.len() as u64);
        prop_assert_eq!(got.sum, expect.sum);
        prop_assert_eq!(got.max, expect.max);
        prop_assert_eq!(&got.buckets, &expect.buckets);

        // Bucket bounds: every value lands in a bucket whose upper bound
        // covers it and whose predecessor's does not.
        for &v in &all {
            let b = 63 - v.max(1).leading_zeros() as usize;
            prop_assert!(bucket_upper(b) >= v.max(1));
            if b > 0 {
                prop_assert!(bucket_upper(b - 1) < v.max(1));
            }
        }
        drop(guard);
    }

    /// `Histogram::merge` is count/sum-additive and its cumulative bucket
    /// counts are monotone (the property the Prometheus `le` exposition
    /// depends on).
    #[test]
    fn histogram_merge_is_additive_and_cumulative_monotone(
        a in prop::collection::vec(0u64..1 << 50, 0..60),
        b in prop::collection::vec(0u64..1 << 50, 0..60),
    ) {
        let ha = model_histogram(&a);
        let hb = model_histogram(&b);
        let mut merged = ha;
        merged.merge(&hb);

        prop_assert_eq!(merged.count(), ha.count() + hb.count());
        prop_assert_eq!(merged.sum, ha.sum + hb.sum);
        prop_assert_eq!(merged.max, ha.max.max(hb.max));

        let mut cumulative = 0u64;
        for (i, &n) in merged.buckets.iter().enumerate() {
            let next = cumulative + n;
            prop_assert!(next >= cumulative, "cumulative count shrank at bucket {}", i);
            cumulative = next;
        }
        prop_assert_eq!(cumulative, merged.count());
    }

    /// A window diff across concurrent per-thread recording equals the sum
    /// of what each thread recorded — no lost or double-counted deltas.
    #[test]
    fn window_diff_equals_sum_of_per_thread_deltas(
        per_thread in prop::collection::vec(1u64..200, 1..5)
    ) {
        let _g = serialize();
        let guard = MetricsConfig::default().enable();
        let class = intern("metrics-test-class");

        let before = metrics::window();
        std::thread::scope(|s| {
            for (t, &n) in per_thread.iter().enumerate() {
                s.spawn(move || {
                    for _ in 0..n {
                        metrics::doom_landed(class, t as u64);
                    }
                });
            }
        });
        let diff = metrics::window().diff(&before);

        for (t, &n) in per_thread.iter().enumerate() {
            prop_assert_eq!(diff.counter(class, t as u16, MetricKind::Doom), n);
        }
        prop_assert_eq!(
            diff.kind_total(MetricKind::Doom),
            per_thread.iter().sum::<u64>()
        );
        drop(guard);
    }
}

/// Deterministic percentile golden: 1..=1000 recorded through real shards
/// on several threads. Percentiles are bucket upper bounds, so the golden
/// values are exact powers-of-two bounds, independent of thread interleave.
#[test]
fn percentile_golden_through_real_shards() {
    let _g = serialize();
    let guard = MetricsConfig::default().enable();

    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.store(1, Ordering::Relaxed);
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| loop {
                let v = NEXT.fetch_add(1, Ordering::Relaxed);
                if v > 1000 {
                    break;
                }
                metrics::hist_record_ns(HistKind::CommitLatency, v);
            });
        }
    });

    let w = metrics::window();
    let h = w.histogram(HistKind::CommitLatency);
    assert_eq!(h.count(), 1000);
    assert_eq!(h.sum, 500_500);
    assert_eq!(h.max, 1000);
    // Rank 500 falls in bucket [256, 511] (cumulative through it: 511);
    // ranks 900 and 990 fall in [512, 1023].
    assert_eq!(h.p50(), 511);
    assert_eq!(h.p90(), 1023);
    assert_eq!(h.p99(), 1023);
    drop(guard);
}

/// Real transactions feed the commit counter and the commit-latency and
/// txn-wall histograms; the diff across a quiet baseline sees exactly the
/// transactions this test ran.
#[test]
fn transactions_feed_commit_counters_and_latency() {
    let _g = serialize();
    let guard = MetricsConfig::default().enable();

    let v = TVar::new(0u64);
    let before = metrics::window();
    const TXNS: u64 = 50;
    for _ in 0..TXNS {
        atomic(|tx| {
            let cur = v.read(tx);
            v.write(tx, cur + 1);
        });
    }
    let diff = metrics::window().diff(&before);

    assert_eq!(diff.kind_total(MetricKind::Commit), TXNS);
    assert_eq!(diff.kind_total(MetricKind::AbortReadInvalid), 0);
    let lat = diff.histogram(HistKind::CommitLatency);
    assert_eq!(lat.count(), TXNS, "one commit-latency sample per commit");
    let wall = diff.histogram(HistKind::TxnWall);
    assert_eq!(wall.count(), TXNS, "one wall sample per top-level txn");
    assert!(wall.sum >= lat.sum, "wall time includes commit time");
    drop(guard);
}

/// The armed flight recorder dumps when a `(class, stripe)` crosses the
/// doom threshold in one poll window, and the dump carries the trigger
/// rows, the window, and the trace-ring doom edges that crossed it.
#[test]
fn flight_recorder_dumps_doom_spike_with_trace_edges() {
    let _g = serialize();
    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "stm-flightrec-test-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let cfg = metrics::FlightRecorderConfig {
        dir: dir.clone(),
        doom_threshold: 8,
        ring_slots: 1 << 10,
    };
    let mut rec = metrics::FlightRecorder::arm(cfg).expect("arm creates the dump dir");

    // Quiet window: no dump.
    assert_eq!(rec.poll().expect("poll"), None);

    // Doom spike on one class/stripe, with matching trace provenance.
    let class = intern("flightrec-map");
    for i in 0..16u64 {
        metrics::doom_landed(class, 3);
        stm::trace::doom_edge(
            1000 + i,
            2000 + i,
            class,
            LockKind::Key,
            0xBEEF,
            0,
            1,
            false,
        );
    }
    let path = rec
        .poll()
        .expect("poll")
        .expect("threshold crossed, dump expected");
    let dump = std::fs::read_to_string(&path).expect("dump readable");
    assert!(dump.contains("\"triggers\""), "dump carries trigger rows");
    assert!(
        dump.contains("flightrec-map"),
        "trigger names the offending class"
    );
    assert!(
        dump.contains("doom_edge"),
        "trace snapshot in the dump holds the doom edges that crossed the threshold"
    );
    assert!(dump.contains("\"window\""));

    // The spike was consumed by that window; the next poll is quiet again.
    assert_eq!(rec.poll().expect("poll"), None);

    drop(rec);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Two cumulative Prometheus scrapes with activity between are monotone
/// per-series and structurally well-formed — the property `txtop --metrics
/// --validate` checks end to end.
#[test]
fn prometheus_scrapes_are_monotone_and_parseable() {
    let _g = serialize();
    let guard = MetricsConfig::default().enable();
    let class = intern("prom-test-class");

    metrics::doom_landed(class, 1);
    metrics::hist_record_ns(HistKind::SemLockWait, 640);
    let scrape1 = metrics::window();
    metrics::doom_landed(class, 1);
    metrics::doom_landed(class, 1);
    let scrape2 = metrics::window();

    let c1 = scrape1.counter(class, 1, MetricKind::Doom);
    let c2 = scrape2.counter(class, 1, MetricKind::Doom);
    assert!(c2 >= c1, "cumulative windows are monotone");
    assert_eq!(c2 - c1, 2);

    let text = scrape2.to_prometheus();
    for line in text.lines() {
        assert!(
            line.starts_with('#') || line.contains(' '),
            "sample lines are `name value`: {line:?}"
        );
    }
    assert!(text.contains("# TYPE stm_events_total counter"));
    assert!(text.contains("kind=\"doom\""));
    assert!(text.contains("stm_sem_lock_wait_ns_bucket"));
    assert!(text.contains("le=\"+Inf\""));
    drop(guard);
}

/// `stripe_dim` folds the raw u64 stripe into the label dimension: the
/// global-stripe sentinel and in-range stripes round-trip, oversize clamps.
#[test]
fn stripe_dimension_folding() {
    assert_eq!(metrics::stripe_dim(u64::MAX), STRIPE_GLOBAL);
    assert_eq!(metrics::stripe_dim(0), 0);
    assert_eq!(metrics::stripe_dim(15), 15);
    assert_eq!(metrics::stripe_dim(1 << 20), metrics::STRIPE_MAX);
    assert_eq!(metrics::stripe_label(STRIPE_GLOBAL), "global");
    assert_eq!(metrics::stripe_label(7), "7");
}

/// Sym values survive the packed-key round trip through a real window.
#[test]
fn window_counters_key_on_class_and_stripe() {
    let _g = serialize();
    let guard = MetricsConfig::default().enable();
    let a = intern("wc-class-a");
    let b = intern("wc-class-b");

    let before = metrics::window();
    metrics::doom_landed(a, 0);
    metrics::doom_landed(b, 0);
    metrics::doom_landed(b, u64::MAX);
    metrics::stripe_blocked(b, 5);
    let diff = metrics::window().diff(&before);

    assert_eq!(diff.counter(a, 0, MetricKind::Doom), 1);
    assert_eq!(diff.counter(b, 0, MetricKind::Doom), 1);
    assert_eq!(diff.counter(b, STRIPE_GLOBAL, MetricKind::Doom), 1);
    assert_eq!(diff.counter(b, 5, MetricKind::StripeBlocked), 1);
    assert_eq!(diff.counter(a, 5, MetricKind::StripeBlocked), 0);

    let mut classes: Vec<Sym> = diff
        .by_class_stripe(MetricKind::Doom)
        .into_iter()
        .map(|(c, _, _)| c)
        .collect();
    classes.sort_by_key(|c| c.0);
    classes.dedup();
    assert_eq!(classes, vec![a, b]);
    drop(guard);
}
