//! Never-aborting snapshot reads (PR 9): `stm::atomic_read` must serve a
//! consistent committed state with no aborts, version chains must stay
//! bounded and be reclaimed once no pin can reach them, and the one escape
//! hatch — a chain truncated past the snapshot — must be a *counted*
//! fallback to the validated path, never a wrong answer.

use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use stm::{atomic, atomic_read, global_stats, TVar};

/// Serializes the tests that assert exact deltas on process-global
/// counters; tests in this binary run concurrently otherwise.
static STATS_GATE: Mutex<()> = Mutex::new(());

fn spin_until(flag: &AtomicBool) {
    while !flag.load(Ordering::Acquire) {
        std::hint::spin_loop();
    }
}

/// A pinned snapshot is *stable*: re-reading a var after concurrent
/// commits returns the value at the snapshot version, the chain those
/// commits grew stays within the depth bound, and a later no-reader
/// commit reclaims the whole chain.
#[test]
fn pinned_snapshot_is_stable_and_chain_is_reclaimed() {
    let _g = STATS_GATE.lock().unwrap();
    let before = global_stats();
    let v = Arc::new(TVar::new(0u64));
    let go = Arc::new(AtomicBool::new(false));
    let done = Arc::new(AtomicBool::new(false));
    let first_run = AtomicBool::new(true);

    std::thread::scope(|s| {
        {
            let (v, go, done) = (v.clone(), go.clone(), done.clone());
            s.spawn(move || {
                spin_until(&go);
                // Six commits: enough to grow a chain, few enough to stay
                // under the depth bound so the pinned reader never loses
                // its entry (no fallback in this test).
                for _ in 0..6 {
                    atomic(|tx| {
                        let x = v.read(tx);
                        v.write(tx, x + 1);
                    });
                }
                done.store(true, Ordering::Release);
            });
        }
        let (x0, x1, pinned_chain) = atomic_read(|tx| {
            let x0 = v.read(tx);
            if first_run.swap(false, Ordering::AcqRel) {
                go.store(true, Ordering::Release);
                spin_until(&done);
            }
            (x0, v.read(tx), v.chain_len())
        });
        assert_eq!(x0, 0, "snapshot saw a post-snapshot commit");
        assert_eq!(
            x1, 0,
            "snapshot read was not stable under concurrent commits"
        );
        assert!(
            (1..=8).contains(&pinned_chain),
            "chain under a pin should be non-empty and bounded, got {pinned_chain}"
        );
    });

    // Pin dropped: the next commit finds no pinned reader and clears the
    // retained history outright.
    atomic(|tx| {
        let x = v.read(tx);
        v.write(tx, x + 1);
    });
    assert!(
        v.chain_len() <= 1,
        "chain not reclaimed after the last pin dropped: {}",
        v.chain_len()
    );

    let d = global_stats().diff(&before);
    assert_eq!(
        d.snapshot_fallbacks, 0,
        "stable snapshot must not fall back"
    );
    assert_eq!(d.aborts(), 0, "nothing in this test may abort");
    assert!(d.snapshot_reads >= 2, "snapshot reads not counted");
    assert!(
        d.chain_entries_reclaimed > 0,
        "reclamation not counted: {:?}",
        d
    );
}

/// Truncation regression: a snapshot that outlives the bounded per-var
/// history does NOT read a wrong value — it abandons to the validated
/// path (re-running the body as an ordinary transaction) and the event is
/// counted in `snapshot_fallbacks`, not silent and not an abort.
#[test]
fn chain_truncation_falls_back_to_validated_path() {
    let _g = STATS_GATE.lock().unwrap();
    let before = global_stats();
    let b = Arc::new(TVar::new(0u64));
    let go = Arc::new(AtomicBool::new(false));
    let done = Arc::new(AtomicBool::new(false));
    let runs = AtomicUsize::new(0);
    const COMMITS: u64 = 32;

    let got = std::thread::scope(|s| {
        {
            let (b, go, done) = (b.clone(), go.clone(), done.clone());
            s.spawn(move || {
                spin_until(&go);
                // Far past MAX_CHAIN_DEPTH: the entry at the reader's
                // snapshot version is guaranteed to have been dropped.
                for _ in 0..COMMITS {
                    atomic(|tx| {
                        let x = b.read(tx);
                        b.write(tx, x + 1);
                    });
                }
                done.store(true, Ordering::Release);
            });
        }
        atomic_read(|tx| {
            if runs.fetch_add(1, Ordering::AcqRel) == 0 {
                go.store(true, Ordering::Release);
                spin_until(&done);
                assert!(
                    b.chain_len() <= 8,
                    "chain depth bound violated: {}",
                    b.chain_len()
                );
            }
            b.read(tx)
        })
    });

    assert_eq!(
        runs.load(Ordering::Relaxed),
        2,
        "truncated snapshot must re-run exactly once on the validated path"
    );
    assert_eq!(got, COMMITS, "validated re-run returned a stale value");
    let d = global_stats().diff(&before);
    assert_eq!(
        d.snapshot_fallbacks, 1,
        "fallback must be counted exactly once"
    );
    assert_eq!(d.aborts(), 0, "a fallback is not an abort");
}

/// Snapshot transactions never abort and never doom the writers they run
/// against: a write-heavy storm with concurrent snapshot sums completes
/// with zero aborts on either side.
#[test]
fn snapshot_readers_never_abort_and_never_doom_writers() {
    let _g = STATS_GATE.lock().unwrap();
    let before = global_stats();
    const VARS: usize = 4;
    let vars: Arc<Vec<TVar<i64>>> = Arc::new((0..VARS).map(|_| TVar::new(0)).collect());
    std::thread::scope(|s| {
        // Single writer: no writer/writer conflicts, so *any* abort in the
        // stats delta would have to come from a snapshot reader.
        {
            let vars = vars.clone();
            s.spawn(move || {
                for i in 0..500i64 {
                    atomic(|tx| {
                        // Zero-sum transfer keeps the invariant checkable.
                        let a = vars[(i as usize) % VARS].read(tx);
                        let b = vars[(i as usize + 1) % VARS].read(tx);
                        vars[(i as usize) % VARS].write(tx, a - i);
                        vars[(i as usize + 1) % VARS].write(tx, b + i);
                    });
                }
            });
        }
        for _ in 0..2 {
            let vars = vars.clone();
            s.spawn(move || {
                for _ in 0..300 {
                    let sum: i64 = atomic_read(|tx| vars.iter().map(|v| v.read(tx)).sum());
                    assert_eq!(sum, 0, "snapshot observed a torn (non-atomic) state");
                }
            });
        }
    });
    let d = global_stats().diff(&before);
    // Served snapshots are abort-free by construction. The one designed
    // escape hatch — a reader preempted long enough for the writer to push
    // a var's chain past the depth bound — re-runs the body on the
    // *validated* path, and that ordinary read-only transaction can be
    // retried on conflict like any other. So an abort in the delta is
    // legitimate only when a counted fallback explains it; with zero
    // fallbacks (the overwhelmingly common schedule) zero aborts is exact.
    assert!(
        d.snapshot_fallbacks <= 8,
        "fallbacks must be rare depth-bound events: {d:?}"
    );
    if d.snapshot_fallbacks == 0 {
        assert_eq!(
            d.aborts(),
            0,
            "snapshot read mode must be abort-free: {:?}",
            d
        );
    }
    assert!(d.snapshot_reads >= 600 * VARS as u64);
}

/// Nesting operations on a snapshot transaction flatten: `closed`, `open`,
/// and `open_read` all run inline against the same snapshot instead of
/// opening a child frame, so collection internals built on them work
/// unchanged under `atomic_read`.
#[test]
fn snapshot_nesting_flattens() {
    let _g = STATS_GATE.lock().unwrap();
    let v = TVar::new(7u32);
    let reads = atomic_read(|tx| {
        [
            v.read(tx),
            tx.closed(|tx2| v.read(tx2)),
            tx.open(|otx| v.read(otx)),
            tx.open_read(|otx| v.read(otx)),
        ]
    });
    assert_eq!(reads, [7; 4]);
}

/// Writing inside `atomic_read` is a programming error: the transaction
/// is torn down cleanly (no buffered state leaks) and the call panics
/// with a diagnostic rather than silently dropping the write.
#[test]
fn write_inside_snapshot_panics_cleanly() {
    // The misuse teardown records an explicit abort; keep it out of the
    // gated tests' abort deltas.
    let _g = STATS_GATE.lock().unwrap();
    let v = Arc::new(TVar::new(1u32));
    let v2 = v.clone();
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        atomic_read(|tx| v2.write(tx, 99));
    }));
    assert!(r.is_err(), "snapshot write must not be accepted");
    assert_eq!(v.read_committed(), 1, "rejected write leaked");
}

/// Precompute the committed state after each writer generation, then let
/// snapshot readers race the writer: every observation must equal the
/// *exact* precomputed state for the generation it saw — mixes of two
/// generations (torn snapshots) match no row.
fn run_generation_race(batches: &[Vec<(usize, i64)>]) -> Result<(), TestCaseError> {
    // Observers may legitimately fall back (depth-bound outrun) and retry
    // validated; hold the stats gate so those events never leak into a
    // concurrently running test's exact-delta assertions.
    let _g = STATS_GATE.lock().unwrap();
    const VARS: usize = 4;
    // expected[g] = full state after generation g (generation 0 = initial).
    let mut expected: Vec<[i64; VARS]> = vec![[0; VARS]];
    for batch in batches {
        let mut next = *expected.last().unwrap();
        for (i, v) in batch {
            next[*i] = *v;
        }
        expected.push(next);
    }
    let gen: Arc<TVar<usize>> = Arc::new(TVar::new(0));
    let vars: Arc<Vec<TVar<i64>>> = Arc::new((0..VARS).map(|_| TVar::new(0)).collect());
    let failed = Arc::new(AtomicBool::new(false));
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        {
            let (gen, vars, batches) = (gen.clone(), vars.clone(), batches.to_vec());
            let stop = stop.clone();
            s.spawn(move || {
                for (g, batch) in batches.iter().enumerate() {
                    atomic(|tx| {
                        for (i, v) in batch {
                            vars[*i].write(tx, *v);
                        }
                        gen.write(tx, g + 1);
                    });
                }
                stop.store(true, Ordering::Release);
            });
        }
        for _ in 0..2 {
            let (gen, vars, expected) = (gen.clone(), vars.clone(), expected.clone());
            let (stop, failed) = (stop.clone(), failed.clone());
            s.spawn(move || loop {
                let done = stop.load(Ordering::Acquire);
                let (g, state) = atomic_read(|tx| {
                    let g = gen.read(tx);
                    let mut state = [0i64; VARS];
                    for (slot, var) in state.iter_mut().zip(vars.iter()) {
                        *slot = var.read(tx);
                    }
                    (g, state)
                });
                if state != expected[g] {
                    failed.store(true, Ordering::Release);
                    return;
                }
                if done {
                    return;
                }
            });
        }
    });
    prop_assert!(
        !failed.load(Ordering::Acquire),
        "a snapshot observed a state matching no committed generation"
    );
    let g = atomic_read(|tx| gen.read(tx));
    prop_assert_eq!(g, batches.len());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Writers interleaved with pinned snapshot readers: every reader
    /// observes exactly the committed state at its snapshot version.
    #[test]
    fn snapshot_readers_observe_exact_generation_states(
        batches in prop::collection::vec(
            prop::collection::vec((0..4usize, -50i64..50), 1..4),
            1..16,
        )
    ) {
        run_generation_race(&batches)?;
    }
}
