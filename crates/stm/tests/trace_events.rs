//! Integration tests for the conflict-provenance trace layer: lifecycle
//! pairing, doom attribution, overflow accounting, and off-by-default.
//!
//! Trace state is process-global (per-thread rings plus a shared registry),
//! so the tests serialize on a file-local mutex. Each integration-test file
//! is its own process, so this suffices.

use std::collections::HashMap;
use std::sync::Mutex;
use stm::trace::{snapshot, TraceConfig, TraceEvent};
use stm::{atomic, global_stats, speculate, AbortCause, TVar};

static SERIAL: Mutex<()> = Mutex::new(());

fn serialize() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// A doomed attempt's abort event carries the cause and the dooming
/// attempt's id, and the stats counters agree (one doom issued, one
/// absorbed).
#[test]
fn doomed_abort_attributes_culprit() {
    let _g = serialize();
    let before = global_stats();
    let guard = TraceConfig::default().enable();

    let a = TVar::new(0u64);
    let b = TVar::new(0u64);

    // Speculate the victim: body has run, writes are buffered, commit is
    // pending — the window in which a committing conflictor dooms it.
    let (_, victim) = speculate(|tx| b.write(tx, 1), 0).expect("victim body cannot abort");
    let victim_id = victim.handle().id();

    // The doomer commits first, then issues the doom with its own id as
    // provenance (in the full system the collection layer's commit handler
    // does this through `DoomCtx`).
    let (_, doomer) = speculate(|tx| a.write(tx, 7), 0).expect("doomer body cannot abort");
    let doomer_id = doomer.handle().id();
    doomer.commit();
    assert!(victim.handle().doom_from(doomer_id), "doom must land");
    victim.abort(AbortCause::Doomed);

    let snap = snapshot();
    drop(guard);

    assert!(snap
        .events
        .iter()
        .any(|e| matches!(e, TraceEvent::TxnBegin { txn, .. } if *txn == victim_id)));
    assert!(snap
        .events
        .iter()
        .any(|e| matches!(e, TraceEvent::TxnCommit { txn, .. } if *txn == doomer_id)));
    assert!(
        snap.events.iter().any(|e| matches!(
            e,
            TraceEvent::TxnAbort { txn, cause: AbortCause::Doomed, culprit, .. }
                if *txn == victim_id && *culprit == doomer_id
        )),
        "expected an abort event attributing the doom to {doomer_id}: {:?}",
        snap.events
    );

    let diff = global_stats().diff(&before);
    assert!(diff.dooms_issued >= 1);
    assert!(diff.dooms_absorbed() >= 1);
}

/// Under a contended retry-heavy workload, every begun attempt reaches
/// exactly one terminal event: no dangling begins, no double terminals.
#[test]
fn no_dangling_begin_events_under_contention() {
    let _g = serialize();
    let guard = TraceConfig::default().enable();

    let counter = TVar::new(0u64);
    const THREADS: u64 = 3;
    const TXNS: u64 = 100;
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            s.spawn(|| {
                for _ in 0..TXNS {
                    atomic(|tx| {
                        let v = counter.read(tx);
                        counter.write(tx, v + 1);
                    });
                }
            });
        }
    });
    assert_eq!(atomic(|tx| counter.read(tx)), THREADS * TXNS);

    let snap = snapshot();
    drop(guard);

    // The pairing check is only meaningful if nothing was dropped.
    assert_eq!(snap.dropped, 0, "rings overflowed; enlarge or shrink load");

    let mut begins: HashMap<u64, u32> = HashMap::new();
    let mut terminals: HashMap<u64, u32> = HashMap::new();
    for e in &snap.events {
        match e {
            TraceEvent::TxnBegin { txn, .. } => *begins.entry(*txn).or_default() += 1,
            TraceEvent::TxnCommit { txn, .. } | TraceEvent::TxnAbort { txn, .. } => {
                *terminals.entry(*txn).or_default() += 1
            }
            _ => {}
        }
    }
    // The snapshot covers this test's attempts plus the read-back above;
    // restrict nothing — the invariant is global.
    for (txn, n) in &begins {
        assert_eq!(*n, 1, "attempt {txn} began {n} times");
        assert_eq!(
            terminals.get(txn),
            Some(&1),
            "attempt {txn} began but never committed or aborted (dangling begin)"
        );
    }
    for (txn, n) in &terminals {
        assert_eq!(*n, 1, "attempt {txn} has {n} terminal events");
        assert!(
            begins.contains_key(txn),
            "attempt {txn} terminated without a begin event"
        );
    }
    // Sanity: the workload actually produced the expected commit volume.
    let commits = snap
        .events
        .iter()
        .filter(|e| matches!(e, TraceEvent::TxnCommit { .. }))
        .count() as u64;
    assert!(commits >= THREADS * TXNS);
}

/// A small ring drops the oldest events, keeps the newest, and accounts for
/// every drop both in the snapshot and in the global stats counter.
#[test]
fn ring_overflow_drops_oldest_and_counts() {
    let _g = serialize();
    let before = global_stats();
    let guard = TraceConfig { ring_slots: 16 }.enable();

    // A fresh thread gets a fresh ring at the configured (tiny) size. Each
    // transaction emits exactly two events here (begin + commit): 48 txns =
    // 96 events through 16 slots.
    let var = TVar::new(0u64);
    let ids: Vec<u64> = std::thread::spawn(move || {
        (0..48)
            .map(|i| {
                atomic(|tx| {
                    var.write(tx, i);
                    tx.handle().id()
                })
            })
            .collect()
    })
    .join()
    .unwrap();

    let snap = snapshot();
    drop(guard);

    // Drop-oldest: the surviving begin events are a suffix of the ids the
    // thread generated, in emission order.
    let surviving: Vec<u64> = snap
        .events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::TxnBegin { txn, .. } if ids.contains(txn) => Some(*txn),
            _ => None,
        })
        .collect();
    assert!(!surviving.is_empty(), "ring lost everything");
    assert!(surviving.len() <= 16);
    assert_eq!(
        surviving,
        ids[ids.len() - surviving.len()..],
        "survivors must be the newest events, oldest dropped first"
    );

    // 96 events into 16 slots: exactly 80 dropped from that ring, all
    // visible both in the snapshot and in the stats counter.
    assert!(snap.dropped >= 80);
    let diff = global_stats().diff(&before);
    assert_eq!(diff.trace_events_dropped, snap.dropped);
}

/// With no guard live, the commit hot loop emits nothing — events from this
/// test's transactions must not appear in any ring.
#[test]
fn disabled_tracing_emits_nothing() {
    let _g = serialize();
    let before = global_stats();
    assert!(!stm::trace::enabled());

    let var = TVar::new(0u64);
    let id = atomic(|tx| {
        var.write(tx, 9);
        tx.handle().id()
    });

    let snap = snapshot();
    assert!(
        !snap.events.iter().any(|e| matches!(
            e,
            TraceEvent::TxnBegin { txn, .. } | TraceEvent::TxnCommit { txn, .. } if *txn == id
        )),
        "disabled tracing must not record the transaction"
    );
    assert_eq!(global_stats().diff(&before).trace_events_dropped, 0);
}
