//! Tests of the paper's headline claim: long-running transactions can share
//! collections **without unnecessary conflicts** — memory-level artifacts
//! (size fields, tree rebalancing) no longer abort logically independent
//! transactions, while real semantic conflicts are still caught.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Sets the flag on drop so writer loops terminate even if the asserting
/// thread panics (otherwise the thread scope hangs forever).
struct StopOnDrop(Arc<AtomicU64>);
impl Drop for StopOnDrop {
    fn drop(&mut self) {
        self.0.store(1, Ordering::SeqCst);
    }
}
use stm::atomic;
use txcollections::{Channel, TransactionalMap, TransactionalQueue, TransactionalSortedMap};
use txstruct::TxHashMap;

/// The Figure-1 contrast, as a correctness assertion: disjoint-key inserts
/// through a plain transactional hash map conflict (size field); through a
/// TransactionalMap they do not.
#[test]
fn disjoint_inserts_do_not_conflict_through_wrapper() {
    let wrapped: Arc<TransactionalMap<u64, u64>> = Arc::new(TransactionalMap::new());
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let m = wrapped.clone();
            s.spawn(move || {
                for i in 0..100u64 {
                    let k = t * 1_000 + i; // disjoint key ranges
                    atomic(|tx| {
                        m.put_discard(tx, k, i);
                        // long transaction: more independent ops
                        m.put_discard(tx, k + 500, i);
                        let _ = m.get(tx, &k);
                    });
                }
            });
        }
    });
    // Per-instance counters are precise (global stats would be polluted by
    // tests running in parallel in this binary).
    assert_eq!(
        wrapped.semantic_stats().total(),
        0,
        "no semantic conflicts should be detected for disjoint keys"
    );
    // And the wrapper leaves no shared memory footprint in the parent: two
    // disjoint-key transactions have non-intersecting read/write sets.
    let m1 = wrapped.clone();
    let (_, t1) = stm::speculate(
        move |tx| {
            m1.put_discard(tx, 777_001, 1);
            let _ = m1.get(tx, &777_002);
        },
        0,
    )
    .unwrap();
    let m2 = wrapped.clone();
    let (_, t2) = stm::speculate(
        move |tx| {
            m2.put_discard(tx, 888_001, 1);
            let _ = m2.get(tx, &888_002);
        },
        0,
    )
    .unwrap();
    let r1: std::collections::HashSet<_> = t1.read_set().into_iter().collect();
    let w2: std::collections::HashSet<_> = t2.write_set().into_iter().collect();
    assert!(
        r1.intersection(&w2).count() == 0,
        "wrapper leaked memory-level dependencies between disjoint transactions"
    );
    t1.abort(stm::AbortCause::Explicit);
    t2.abort(stm::AbortCause::Explicit);
    // Sanity: all data arrived.
    let n = atomic(|tx| wrapped.size(tx));
    assert_eq!(n, 4 * 100 * 2);
}

/// Control experiment: the same workload through the bare TxHashMap aborts
/// due to the size field (the conflict the wrapper exists to remove).
#[test]
fn disjoint_inserts_conflict_through_bare_map() {
    use std::sync::atomic::AtomicU64;
    use std::sync::Barrier;
    // A conflict is a *probabilistic* event — it needs two commits to
    // actually overlap. One round can legitimately see none if the
    // scheduler serializes the threads, so run bounded rounds (barrier-
    // released to maximize overlap) until at least one retry is observed.
    let mut commits = 0u64;
    let mut total = 0u64;
    for _round in 0..8 {
        let bare: Arc<TxHashMap<u64, u64>> = Arc::new(TxHashMap::with_capacity(8192));
        let attempts = Arc::new(AtomicU64::new(0));
        let start = Arc::new(Barrier::new(4));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let m = bare.clone();
                let attempts = attempts.clone();
                let start = start.clone();
                s.spawn(move || {
                    start.wait();
                    for i in 0..150u64 {
                        let k = t * 1_000 + i;
                        atomic(|tx| {
                            attempts.fetch_add(1, Ordering::Relaxed);
                            m.insert(tx, k, i);
                            // Widen the conflict window so threads overlap.
                            std::hint::black_box(fib(12));
                            m.insert(tx, k + 500, i);
                        });
                    }
                });
            }
        });
        commits += 4 * 150;
        total += attempts.load(Ordering::Relaxed);
        if total > commits {
            break;
        }
    }
    assert!(
        total > commits,
        "bare TxHashMap should conflict on its header under concurrency \
         ({total} attempts for {commits} commits)"
    );
}

fn fib(n: u64) -> u64 {
    if n < 2 {
        n
    } else {
        fib(n - 1) + fib(n - 2)
    }
}

/// Figure-3's point as a correctness property: compound operations compose
/// atomically. Concurrent check-then-act transfers over a shared map never
/// lose or create money.
#[test]
fn compound_operations_are_atomic() {
    let accounts: Arc<TransactionalMap<u32, i64>> = Arc::new(TransactionalMap::new());
    let n_accounts = 16u32;
    atomic(|tx| {
        for a in 0..n_accounts {
            accounts.put_discard(tx, a, 1_000);
        }
    });
    std::thread::scope(|s| {
        for t in 0..4u32 {
            let m = accounts.clone();
            s.spawn(move || {
                let mut x = 0x9E3779B9u64.wrapping_add(t as u64);
                let mut rng = move || {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x
                };
                for _ in 0..300 {
                    let from = (rng() % n_accounts as u64) as u32;
                    let to = (rng() % n_accounts as u64) as u32;
                    if from == to {
                        continue;
                    }
                    let amt = (rng() % 100) as i64;
                    atomic(|tx| {
                        let f = m.get(tx, &from).unwrap();
                        if f >= amt {
                            let t_ = m.get(tx, &to).unwrap();
                            m.put(tx, from, f - amt);
                            m.put(tx, to, t_ + amt);
                        }
                    });
                }
            });
        }
    });
    let total: i64 = atomic(|tx| accounts.entries(tx).iter().map(|(_, v)| *v).sum());
    assert_eq!(total, 1_000 * n_accounts as i64, "money not conserved");
    let negative = atomic(|tx| accounts.entries(tx).iter().any(|(_, v)| *v < 0));
    assert!(
        !negative,
        "balance went negative: check-then-act not atomic"
    );
}

/// A long audit transaction (full iteration) runs concurrently with
/// transfers; whenever it commits, the sum it observed must be the invariant
/// total — iteration is serializable.
#[test]
fn full_iteration_is_serializable_against_writers() {
    let accounts: Arc<TransactionalMap<u32, i64>> = Arc::new(TransactionalMap::new());
    let n_accounts = 8u32;
    atomic(|tx| {
        for a in 0..n_accounts {
            accounts.put_discard(tx, a, 100);
        }
    });
    let stop = Arc::new(AtomicU64::new(0));
    let audits_done = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        // Writers: value-preserving transfers.
        for t in 0..2u32 {
            let m = accounts.clone();
            let stop = stop.clone();
            s.spawn(move || {
                let mut i = 0u32;
                while stop.load(Ordering::SeqCst) == 0 {
                    let from = (i + t) % n_accounts;
                    let to = (i + t + 3) % n_accounts;
                    if from != to {
                        atomic(|tx| {
                            let f = m.get(tx, &from).unwrap();
                            let v = m.get(tx, &to).unwrap();
                            m.put(tx, from, f - 1);
                            m.put(tx, to, v + 1);
                        });
                    }
                    i = i.wrapping_add(1);
                    // Throttle so the long audit transaction gets commit
                    // windows — unthrottled short writers livelock the long
                    // reader, exactly the optimistic-CC hazard of §5.1.
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
            });
        }
        // Auditor: long full-iteration transactions.
        let m = accounts.clone();
        let stop2 = stop.clone();
        let audits = audits_done.clone();
        s.spawn(move || {
            let _stop_guard = StopOnDrop(stop2);
            for _ in 0..30 {
                let sum: i64 = atomic(|tx| m.entries(tx).iter().map(|(_, v)| *v).sum());
                assert_eq!(sum, 100 * n_accounts as i64, "audit saw torn state");
                audits.fetch_add(1, Ordering::SeqCst);
            }
        });
    });
    assert_eq!(audits_done.load(Ordering::SeqCst), 30);
}

/// Same property for ordered iteration over the sorted map, concurrent with
/// endpoint-moving writers.
#[test]
fn sorted_iteration_is_serializable_against_writers() {
    let m: Arc<TransactionalSortedMap<i64, i64>> = Arc::new(TransactionalSortedMap::new());
    atomic(|tx| {
        for k in 0..20 {
            m.put_discard(tx, k, 1);
        }
    });
    let stop = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        // Writer: moves a matched pair in/out (total count invariant 20).
        {
            let m = m.clone();
            let stop = stop.clone();
            s.spawn(move || {
                // Slide a window of exactly 20 keys: insert `i`, remove
                // `i - 20` (which always exists), so the count is invariant.
                let mut i = 20i64;
                while stop.load(Ordering::SeqCst) == 0 {
                    atomic(|tx| {
                        m.put(tx, i, 1);
                        m.remove(tx, &(i - 20));
                    });
                    i += 1;
                    // Give the long ordered audit commit windows (see above).
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
            });
        }
        {
            let m = m.clone();
            let stop = stop.clone();
            s.spawn(move || {
                let _stop_guard = StopOnDrop(stop);
                for _ in 0..25 {
                    let entries = atomic(|tx| m.entries(tx));
                    assert_eq!(entries.len(), 20, "ordered audit saw torn state");
                    let keys: Vec<i64> = entries.iter().map(|(k, _)| *k).collect();
                    let mut sorted = keys.clone();
                    sorted.sort_unstable();
                    assert_eq!(keys, sorted, "iteration out of order");
                }
            });
        }
    });
}

/// The Delaunay pattern end to end: a work queue refined by concurrent
/// workers that both consume and produce, with injected aborts; every unit
/// of work is processed exactly once.
#[test]
fn work_queue_refinement_processes_each_item_once() {
    let q: Arc<TransactionalQueue<u64>> = Arc::new(TransactionalQueue::new());
    // Seed items 1..=50; items divisible by 10 spawn two children (i*100+1,
    // i*100+2) when processed.
    atomic(|tx| {
        for i in 1..=50u64 {
            q.put(tx, i);
        }
    });
    let processed = Arc::new(parking_lot::Mutex::new(Vec::<u64>::new()));
    std::thread::scope(|s| {
        for _ in 0..4 {
            let q = q.clone();
            let processed = processed.clone();
            s.spawn(move || {
                let mut idle = 0;
                while idle < 100 {
                    let item = atomic(|tx| {
                        let item = q.poll(tx);
                        if let Some(i) = item {
                            if i % 10 == 0 && i <= 50 {
                                q.put(tx, i * 100 + 1);
                                q.put(tx, i * 100 + 2);
                            }
                        }
                        item
                    });
                    match item {
                        Some(i) => {
                            processed.lock().push(i);
                            idle = 0;
                        }
                        None => {
                            idle += 1;
                            std::thread::yield_now();
                        }
                    }
                }
            });
        }
    });
    let mut got = processed.lock().clone();
    got.sort_unstable();
    let mut expect: Vec<u64> = (1..=50).collect();
    for i in (10..=50).step_by(10) {
        expect.push(i * 100 + 1);
        expect.push(i * 100 + 2);
    }
    expect.sort_unstable();
    assert_eq!(got, expect, "work lost, duplicated, or phantom");
}

/// UID generation in long transactions: open-nested draws never conflict,
/// and ids stay unique even across aborts (with gaps).
#[test]
fn uid_generator_scales_and_stays_unique() {
    use txcollections::UidGenerator;
    let gen = Arc::new(UidGenerator::starting_at(0));
    let before = stm::global_stats();
    let ids = Arc::new(parking_lot::Mutex::new(Vec::<i64>::new()));
    std::thread::scope(|s| {
        for _ in 0..4 {
            let g = gen.clone();
            let ids = ids.clone();
            s.spawn(move || {
                for _ in 0..250 {
                    let id = atomic(|tx| g.next(tx));
                    ids.lock().push(id);
                }
            });
        }
    });
    let diff = stm::global_stats().since(&before);
    let mut v = ids.lock().clone();
    v.sort_unstable();
    v.dedup();
    assert_eq!(v.len(), 1000, "duplicate ids");
    // The parent transactions carry no dependency on the counter; aborts can
    // only come from the open-nested child retry, never the parents.
    assert_eq!(
        diff.aborts_read_invalid, 0,
        "UID parents conflicted: {diff:?}"
    );
}
