//! Kernel-level invariance: the protocol obligations [`SemanticCore`]
//! discharges for every collection class, exercised through the public
//! kernel API directly (no collection in the loop).
//!
//! The companion suites pin the *observable* protocol: `oracle_matrix`
//! checks the 84-cell conflict matrix and `stripe_invariance` checks that
//! behavior is identical at 1, 2 and 16 stripes. Those must pass unchanged
//! before and after the kernel extraction. This file pins the kernel's own
//! contract: first-touch registration is idempotent and race-free, each
//! attempt's handlers fire exactly once, and locals always drain.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use stm::{atomic, Txn};
use txcollections::{SemanticClass, SemanticCore, SemanticStats};

/// Probe class: counts handler invocations and the ops they drained.
struct ProbeClass {
    applies: AtomicU64,
    releases: AtomicU64,
    drained_ops: AtomicU64,
}

impl SemanticClass for ProbeClass {
    type Local = Vec<u64>;
    type Undo = ();

    fn apply(&self, local: Vec<u64>, _htx: &mut Txn, _id: u64, _stats: &SemanticStats) {
        self.applies.fetch_add(1, Ordering::SeqCst);
        self.drained_ops
            .fetch_add(local.len() as u64, Ordering::SeqCst);
    }

    fn release(&self, local: Vec<u64>, _htx: &mut Txn, _id: u64, _stats: &SemanticStats) {
        self.releases.fetch_add(1, Ordering::SeqCst);
        self.drained_ops
            .fetch_add(local.len() as u64, Ordering::SeqCst);
    }
}

fn probe_core(nshards: usize) -> SemanticCore<ProbeClass> {
    SemanticCore::new(
        ProbeClass {
            applies: AtomicU64::new(0),
            releases: AtomicU64::new(0),
            drained_ops: AtomicU64::new(0),
        },
        nshards,
    )
}

/// First-touch registration raced from many threads: every transaction
/// calls `ensure_registered` repeatedly (first touch plus re-touches) and
/// buffers a few ops; each transaction must get exactly one commit-handler
/// invocation, every buffered op must be drained exactly once, and the
/// sharded local table must end empty.
#[test]
fn first_touch_registration_race_registers_exactly_once() {
    const THREADS: u64 = 8;
    const TXNS: u64 = 200;
    const OPS: u64 = 3;
    let core = Arc::new(probe_core(4));
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let core = core.clone();
            s.spawn(move || {
                for i in 0..TXNS {
                    atomic(|tx| {
                        for j in 0..OPS {
                            // Re-registration on every op, as collection
                            // operations do: must stay idempotent.
                            core.ensure_registered(tx);
                            core.with_local(tx, |l| l.push(t * 1_000_000 + i * OPS + j));
                        }
                    });
                }
            });
        }
    });
    let class = core.class();
    assert_eq!(
        class.applies.load(Ordering::SeqCst),
        THREADS * TXNS,
        "each committed transaction must run its commit handler exactly once"
    );
    assert_eq!(class.releases.load(Ordering::SeqCst), 0);
    assert_eq!(
        class.drained_ops.load(Ordering::SeqCst),
        THREADS * TXNS * OPS,
        "every buffered op must be drained exactly once"
    );
    assert_eq!(
        core.resident_locals(),
        0,
        "handlers must drain the local table"
    );
}

/// Aborted attempts run the abort handler exactly once, and never the
/// commit handler; locals drain either way.
#[test]
fn aborts_run_release_exactly_once() {
    let core = probe_core(2);
    const N: usize = 50;
    for _ in 0..N {
        let c = core.clone();
        let (_, t) = stm::speculate(
            move |tx| {
                c.ensure_registered(tx);
                c.with_local(tx, |l| l.push(1));
            },
            0,
        )
        .unwrap();
        t.abort(stm::AbortCause::Explicit);
    }
    let class = core.class();
    assert_eq!(class.applies.load(Ordering::SeqCst), 0);
    assert_eq!(class.releases.load(Ordering::SeqCst), N as u64);
    assert_eq!(class.drained_ops.load(Ordering::SeqCst), N as u64);
    assert_eq!(core.resident_locals(), 0);
}

/// A stale local-undo compensation racing a completed handler must not
/// resurrect the drained entry (the kernel's non-creating `update_local`).
#[test]
fn stale_undo_cannot_resurrect_drained_locals() {
    let core = probe_core(2);
    let c = core.clone();
    let (id, t) = stm::speculate(
        move |tx| {
            c.ensure_registered(tx);
            c.with_local(tx, |l| l.push(42));
            tx.handle().id()
        },
        0,
    )
    .unwrap();
    t.commit();
    assert_eq!(core.update_local(id, |l| l.push(7)), None);
    assert_eq!(core.resident_locals(), 0);
}
