//! Three-layer validation of the conflict-matrix oracle (paper Tables 1–8).
//!
//! Layer 1 (static): txlint's machine-readable table rows agree with
//! `mode_compatible`, the function the production doom protocol dispatches
//! through.
//!
//! Layer 2 (exhaustive + property): every `(ObsMode, UpdateEffect, overlap)`
//! triple — all 7 × 6 × 2 = 84 cells — matches an independently coded
//! reference predicate, checked both by exhaustive enumeration and by a
//! proptest sweep over random cells.
//!
//! Layer 3 (dynamic): for each oracle row that maps onto a collection
//! operation pair, drive a real two-transaction execution and assert the
//! doom protocol delivers the row's verdict.

mod conflict_harness;

use conflict_harness::writer_dooms_reader;
use proptest::prelude::*;
use std::ops::Bound;
use std::sync::Arc;
use txcollections::{
    mode_compatible, Channel, ObsMode, TransactionalMap, TransactionalQueue,
    TransactionalSortedMap, UpdateEffect,
};

/// Independent re-statement of the paper's compatibility matrix: the only
/// conflicting cells are each observation mode against the one effect class
/// that invalidates it — key/range observations only under overlap.
fn reference(obs: ObsMode, effect: UpdateEffect, overlap: bool) -> bool {
    let conflicting = match (obs, effect) {
        (ObsMode::Key, UpdateEffect::KeyWrite) | (ObsMode::Range, UpdateEffect::KeyWrite) => {
            overlap
        }
        (ObsMode::Size, UpdateEffect::SizeChange)
        | (ObsMode::Empty, UpdateEffect::ZeroCross)
        | (ObsMode::First, UpdateEffect::FirstChange)
        | (ObsMode::Last, UpdateEffect::LastChange)
        | (ObsMode::Full, UpdateEffect::Consume) => true,
        _ => false,
    };
    !conflicting
}

// ---------------------------------------------------------------------
// Layer 1: static agreement with txlint's table rows
// ---------------------------------------------------------------------

#[test]
fn txlint_oracle_rows_agree_with_mode_compatible() {
    let errors = txlint::oracle::check();
    assert!(
        errors.is_empty(),
        "paper tables diverge from mode_compatible:\n{}",
        errors.join("\n")
    );
}

#[test]
fn txlint_oracle_rows_agree_with_reference() {
    for r in txlint::oracle::ROWS {
        assert_eq!(
            !r.conflicts,
            reference(r.obs, r.effect, r.overlap),
            "{}: `{}` vs `{}`",
            r.table,
            r.observer,
            r.update
        );
    }
}

// ---------------------------------------------------------------------
// Layer 2: exhaustive + property-based pairwise sweep
// ---------------------------------------------------------------------

#[test]
fn exhaustive_mode_by_effect_matrix() {
    for obs in ObsMode::ALL {
        for effect in UpdateEffect::ALL {
            for overlap in [false, true] {
                assert_eq!(
                    mode_compatible(obs, effect, overlap),
                    reference(obs, effect, overlap),
                    "cell ({obs:?}, {effect:?}, overlap={overlap})"
                );
            }
        }
    }
}

proptest! {
    #[test]
    fn pairwise_cells_match_reference(oi in 0usize..7, ei in 0usize..6, overlap in any::<bool>()) {
        let obs = ObsMode::ALL[oi];
        let effect = UpdateEffect::ALL[ei];
        prop_assert_eq!(
            mode_compatible(obs, effect, overlap),
            reference(obs, effect, overlap)
        );
    }

    #[test]
    fn overlap_only_matters_for_keyed_modes(oi in 0usize..7, ei in 0usize..6) {
        let obs = ObsMode::ALL[oi];
        let effect = UpdateEffect::ALL[ei];
        let differs = mode_compatible(obs, effect, true) != mode_compatible(obs, effect, false);
        if differs {
            prop_assert!(
                matches!(obs, ObsMode::Key | ObsMode::Range),
                "only key/range observations are overlap-sensitive, got {:?}",
                obs
            );
            prop_assert_eq!(effect, UpdateEffect::KeyWrite);
        }
    }
}

// ---------------------------------------------------------------------
// Layer 3: the live collections deliver each row's verdict
// ---------------------------------------------------------------------

fn seeded_map(pairs: &[(u32, &str)]) -> Arc<TransactionalMap<u32, String>> {
    let m = Arc::new(TransactionalMap::new());
    let m2 = m.clone();
    let pairs: Vec<(u32, String)> = pairs.iter().map(|(k, v)| (*k, v.to_string())).collect();
    stm::atomic(move |tx| {
        for (k, v) in &pairs {
            m2.put_discard(tx, *k, v.clone());
        }
    });
    m
}

fn seeded_sorted(keys: &[u32]) -> Arc<TransactionalSortedMap<u32, u32>> {
    let m = Arc::new(TransactionalSortedMap::new());
    let (m2, keys) = (m.clone(), keys.to_vec());
    stm::atomic(move |tx| {
        for k in &keys {
            m2.put_discard(tx, *k, *k);
        }
    });
    m
}

/// Drive one `(ObsMode, UpdateEffect, overlap)` cell through a real
/// two-transaction execution and return whether the reader was doomed.
/// Each arm performs a reader op that takes exactly the row's observation
/// lock and a writer op that publishes (at least) the row's effect.
fn drive_cell(obs: ObsMode, effect: UpdateEffect, overlap: bool) -> Option<bool> {
    match (obs, effect) {
        (ObsMode::Key, UpdateEffect::KeyWrite) => {
            let m = seeded_map(&[(1, "a"), (2, "b")]);
            let (r, w) = (m.clone(), m);
            let wkey = if overlap { 1 } else { 2 };
            Some(writer_dooms_reader(
                move |tx| {
                    let _ = r.get(tx, &1);
                },
                move |tx| w.put_discard(tx, wkey, "new".into()),
            ))
        }
        (ObsMode::Size, UpdateEffect::SizeChange) => {
            let m = seeded_map(&[(1, "a")]);
            let (r, w) = (m.clone(), m);
            Some(writer_dooms_reader(
                move |tx| {
                    let _ = r.size(tx);
                },
                move |tx| w.put_discard(tx, 9, "new".into()),
            ))
        }
        (ObsMode::Size, UpdateEffect::KeyWrite) => {
            // Value-replacing put: KeyWrite without SizeChange.
            let m = seeded_map(&[(1, "a")]);
            let (r, w) = (m.clone(), m);
            Some(writer_dooms_reader(
                move |tx| {
                    let _ = r.size(tx);
                },
                move |tx| w.put_discard(tx, 1, "replaced".into()),
            ))
        }
        (ObsMode::Empty, UpdateEffect::ZeroCross) => {
            let m = seeded_map(&[]);
            let (r, w) = (m.clone(), m);
            Some(writer_dooms_reader(
                move |tx| {
                    let _ = r.is_empty_primitive(tx);
                },
                move |tx| w.put_discard(tx, 1, "first".into()),
            ))
        }
        (ObsMode::Empty, UpdateEffect::SizeChange) => {
            // Size changes without crossing zero leave §5.1 observers alone.
            let m = seeded_map(&[(1, "a")]);
            let (r, w) = (m.clone(), m);
            Some(writer_dooms_reader(
                move |tx| {
                    let _ = r.is_empty_primitive(tx);
                },
                move |tx| w.put_discard(tx, 2, "second".into()),
            ))
        }
        (ObsMode::First, UpdateEffect::FirstChange) => {
            let m = seeded_sorted(&[10, 20, 30]);
            let (r, w) = (m.clone(), m);
            Some(writer_dooms_reader(
                move |tx| {
                    let _ = r.first_key(tx);
                },
                move |tx| w.put_discard(tx, 5, 5),
            ))
        }
        (ObsMode::First, UpdateEffect::KeyWrite) => {
            let m = seeded_sorted(&[10, 20, 30]);
            let (r, w) = (m.clone(), m);
            Some(writer_dooms_reader(
                move |tx| {
                    let _ = r.first_key(tx);
                },
                move |tx| w.put_discard(tx, 20, 99),
            ))
        }
        (ObsMode::Last, UpdateEffect::LastChange) => {
            let m = seeded_sorted(&[10, 20, 30]);
            let (r, w) = (m.clone(), m);
            Some(writer_dooms_reader(
                move |tx| {
                    let _ = r.last_key(tx);
                },
                move |tx| w.put_discard(tx, 40, 40),
            ))
        }
        (ObsMode::Last, UpdateEffect::KeyWrite) => {
            let m = seeded_sorted(&[10, 20, 30]);
            let (r, w) = (m.clone(), m);
            Some(writer_dooms_reader(
                move |tx| {
                    let _ = r.last_key(tx);
                },
                move |tx| w.put_discard(tx, 20, 99),
            ))
        }
        (ObsMode::Range, UpdateEffect::KeyWrite) => {
            let m = seeded_sorted(&[10, 20, 30, 40]);
            let (r, w) = (m.clone(), m);
            let wkey = if overlap { 15 } else { 35 };
            Some(writer_dooms_reader(
                move |tx| {
                    let _ = r.range_entries(tx, Bound::Included(10), Bound::Included(20));
                },
                move |tx| w.put_discard(tx, wkey, wkey),
            ))
        }
        (ObsMode::Full, UpdateEffect::Consume) => {
            let q = Arc::new(TransactionalQueue::bounded(1));
            let q2 = q.clone();
            stm::atomic(move |tx| q2.put(tx, 7u32));
            let (r, w) = (q.clone(), q);
            Some(writer_dooms_reader(
                move |tx| {
                    assert!(!r.offer(tx, 8), "bounded queue at capacity");
                },
                move |tx| {
                    let _ = w.poll(tx);
                },
            ))
        }
        (ObsMode::Full, UpdateEffect::ZeroCross) => {
            // A put onto a queue that is not at capacity leaves fullness
            // observers of *another* full queue alone; fullness on the
            // observed queue is only freed by consumption, so an unrelated
            // producing commit must not doom the observer.
            let q = Arc::new(TransactionalQueue::bounded(1));
            let q2 = q.clone();
            stm::atomic(move |tx| q2.put(tx, 7u32));
            let other: Arc<TransactionalQueue<u32>> = Arc::new(TransactionalQueue::new());
            let r = q;
            Some(writer_dooms_reader(
                move |tx| {
                    assert!(!r.offer(tx, 8));
                },
                move |tx| other.put(tx, 1),
            ))
        }
        _ => None,
    }
}

#[test]
fn live_collections_deliver_each_cell_verdict() {
    let mut driven = 0;
    for obs in ObsMode::ALL {
        for effect in UpdateEffect::ALL {
            for overlap in [false, true] {
                if let Some(doomed) = drive_cell(obs, effect, overlap) {
                    driven += 1;
                    assert_eq!(
                        doomed,
                        !mode_compatible(obs, effect, overlap),
                        "live execution disagrees with oracle at \
                         ({obs:?}, {effect:?}, overlap={overlap})"
                    );
                }
            }
        }
    }
    // Every observation mode must be exercised by at least one live cell.
    assert!(driven >= 12, "only {driven} live cells driven");
}
