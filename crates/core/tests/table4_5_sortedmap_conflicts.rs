//! Conformance suite for paper **Table 4** (semantic operational analysis of
//! the `SortedMap` interface) and **Table 5** (semantic locks for
//! `SortedMap`): range, endpoint and iterator conflicts, plus the stated
//! non-conflicts.

mod conflict_harness;
use conflict_harness::assert_cell;
use std::ops::Bound;
use txcollections::TransactionalSortedMap;

fn seeded(keys: &[i64]) -> TransactionalSortedMap<i64, i64> {
    let m = TransactionalSortedMap::new();
    stm::atomic(|tx| {
        for &k in keys {
            m.put_discard(tx, k, k * 10);
        }
    });
    m
}

// ---------------------------------------------------------------------
// Range iteration (entrySet/subMap/headMap/tailMap iterator.next rows)
// ---------------------------------------------------------------------

#[test]
fn submap_iteration_vs_put_inside_range_conflicts() {
    // "inserting a new key ... within a range of keys iterated by another
    // transaction would violate serializability" (§3.2) — even though the
    // inserted key was never returned.
    let m = seeded(&[10, 20, 30, 40]);
    let (r, w) = (m.clone(), m.clone());
    assert_cell(
        true,
        "subMap [10,30] iterated vs put(25) in range",
        move |tx| {
            let got = r.range_entries(tx, Bound::Included(10), Bound::Included(30));
            assert_eq!(got.len(), 3);
        },
        move |tx| {
            w.put(tx, 25, 250);
        },
    );
}

#[test]
fn submap_iteration_vs_put_outside_range_commutes() {
    let m = seeded(&[10, 20, 30, 40]);
    let (r, w) = (m.clone(), m.clone());
    assert_cell(
        false,
        "subMap [10,30] iterated vs put(35) outside range",
        move |tx| {
            r.range_entries(tx, Bound::Included(10), Bound::Included(30));
        },
        move |tx| {
            w.put(tx, 35, 350);
        },
    );
}

#[test]
fn submap_iteration_vs_remove_inside_range_conflicts() {
    let m = seeded(&[10, 20, 30, 40]);
    let (r, w) = (m.clone(), m.clone());
    assert_cell(
        true,
        "subMap [10,30] iterated vs remove(20) in range",
        move |tx| {
            r.range_entries(tx, Bound::Included(10), Bound::Included(30));
        },
        move |tx| {
            w.remove(tx, &20);
        },
    );
}

#[test]
fn submap_iteration_vs_remove_outside_range_commutes() {
    let m = seeded(&[10, 20, 30, 40]);
    let (r, w) = (m.clone(), m.clone());
    assert_cell(
        false,
        "subMap [10,30] iterated vs remove(40) outside range",
        move |tx| {
            r.range_entries(tx, Bound::Included(10), Bound::Included(30));
        },
        move |tx| {
            w.remove(tx, &40);
        },
    );
}

#[test]
fn partial_iteration_growing_range_lock() {
    // The range lock grows with the cursor: a put beyond the iterated
    // prefix must not conflict; a put inside the prefix must.
    let m = seeded(&[10, 20, 30, 40, 50]);

    // Case A: put beyond the visited prefix.
    let (r, w) = (m.clone(), m.clone());
    assert_cell(
        false,
        "iterated prefix [10,20] vs put(45) past the cursor",
        move |tx| {
            let mut it = r.iter(tx);
            assert_eq!(it.next(tx).map(|e| e.0), Some(10));
            assert_eq!(it.next(tx).map(|e| e.0), Some(20));
        },
        move |tx| {
            w.put(tx, 45, 450);
        },
    );

    // Case B: put inside the visited prefix.
    let (r, w) = (m.clone(), m.clone());
    assert_cell(
        true,
        "iterated prefix [10,20] vs put(15) inside the prefix",
        move |tx| {
            let mut it = r.iter(tx);
            assert_eq!(it.next(tx).map(|e| e.0), Some(10));
            assert_eq!(it.next(tx).map(|e| e.0), Some(20));
        },
        move |tx| {
            w.put(tx, 15, 150);
        },
    );
}

#[test]
fn exhausted_full_iteration_vs_put_new_last_key_conflicts() {
    // Table 4 row `entrySet.iterator.hasNext`: hasNext=false and put adds a
    // new last key.
    let m = seeded(&[10, 20]);
    let (r, w) = (m.clone(), m.clone());
    assert_cell(
        true,
        "full iteration exhausted vs put(99) — new lastKey",
        move |tx| {
            assert_eq!(r.entries(tx).len(), 2);
        },
        move |tx| {
            w.put(tx, 99, 990);
        },
    );
}

#[test]
fn exhausted_full_iteration_vs_remove_last_key_conflicts() {
    let m = seeded(&[10, 20]);
    let (r, w) = (m.clone(), m.clone());
    assert_cell(
        true,
        "full iteration exhausted vs remove(20) — lastKey removed",
        move |tx| {
            assert_eq!(r.entries(tx).len(), 2);
        },
        move |tx| {
            w.remove(tx, &20);
        },
    );
}

// ---------------------------------------------------------------------
// Endpoints: firstKey / lastKey rows
// ---------------------------------------------------------------------

#[test]
fn lastkey_vs_put_new_lastkey_conflicts() {
    let m = seeded(&[10, 20]);
    let (r, w) = (m.clone(), m.clone());
    assert_cell(
        true,
        "lastKey=20 vs put(30) — new lastKey",
        move |tx| {
            assert_eq!(r.last_key(tx), Some(20));
        },
        move |tx| {
            w.put(tx, 30, 300);
        },
    );
}

#[test]
fn lastkey_vs_put_interior_key_commutes() {
    let m = seeded(&[10, 20]);
    let (r, w) = (m.clone(), m.clone());
    assert_cell(
        false,
        "lastKey=20 vs put(15) — endpoint unchanged",
        move |tx| {
            assert_eq!(r.last_key(tx), Some(20));
        },
        move |tx| {
            w.put(tx, 15, 150);
        },
    );
}

#[test]
fn lastkey_vs_remove_lastkey_conflicts() {
    let m = seeded(&[10, 20]);
    let (r, w) = (m.clone(), m.clone());
    assert_cell(
        true,
        "lastKey=20 vs remove(20) — takes away the lastKey",
        move |tx| {
            assert_eq!(r.last_key(tx), Some(20));
        },
        move |tx| {
            w.remove(tx, &20);
        },
    );
}

#[test]
fn firstkey_vs_put_new_firstkey_conflicts() {
    let m = seeded(&[10, 20]);
    let (r, w) = (m.clone(), m.clone());
    assert_cell(
        true,
        "firstKey=10 vs put(5) — new firstKey",
        move |tx| {
            assert_eq!(r.first_key(tx), Some(10));
        },
        move |tx| {
            w.put(tx, 5, 50);
        },
    );
}

#[test]
fn firstkey_vs_remove_interior_key_commutes() {
    let m = seeded(&[10, 20, 30]);
    let (r, w) = (m.clone(), m.clone());
    assert_cell(
        false,
        "firstKey=10 vs remove(20) — endpoint unchanged",
        move |tx| {
            assert_eq!(r.first_key(tx), Some(10));
        },
        move |tx| {
            w.remove(tx, &20);
        },
    );
}

// ---------------------------------------------------------------------
// Table 4's submap read via median (the TestSortedMap access pattern)
// ---------------------------------------------------------------------

#[test]
fn median_of_submap_is_protected_by_range_lock() {
    let m = seeded(&[10, 20, 30, 40, 50]);
    let (r, w) = (m.clone(), m.clone());
    assert_cell(
        true,
        "median of subMap [20,40] vs remove(30)",
        move |tx| {
            let range = r.range_entries(tx, Bound::Included(20), Bound::Included(40));
            let median = range[range.len() / 2].0;
            assert_eq!(median, 30);
        },
        move |tx| {
            w.remove(tx, &30);
        },
    );
}

// ---------------------------------------------------------------------
// Table 6: state inventory — sorted buffer merge and isolation
// ---------------------------------------------------------------------

#[test]
fn table6_sorted_store_buffer_merges_in_key_order() {
    let m = seeded(&[20, 40]);
    stm::atomic(|tx| {
        m.put(tx, 30, 300);
        m.put(tx, 10, 100);
        m.remove(tx, &40);
        let keys: Vec<i64> = m.entries(tx).into_iter().map(|(k, _)| k).collect();
        assert_eq!(
            keys,
            vec![10, 20, 30],
            "iteration must interleave buffer and committed state in order"
        );
        assert_eq!(m.first_key(tx), Some(10), "buffered put becomes first");
        assert_eq!(m.last_key(tx), Some(30), "buffered remove hides last");
    });
}

#[test]
fn table6_view_iterators_respect_bounds_with_buffer() {
    let m = seeded(&[10, 20, 30, 40]);
    stm::atomic(|tx| {
        m.put(tx, 25, 250);
        let view = m.sub_map(Bound::Included(20), Bound::Excluded(40));
        let keys: Vec<i64> = view.entries(tx).into_iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![20, 25, 30]);
        assert_eq!(view.first_entry(tx).map(|e| e.0), Some(20));
        assert_eq!(view.last_entry(tx).map(|e| e.0), Some(30));
    });
}

#[test]
fn table6_buffered_changes_invisible_to_others() {
    let m = seeded(&[10]);
    let m2 = m.clone();
    let (_, t1) = stm::speculate(
        move |tx| {
            m2.put(tx, 5, 50);
            m2.remove(tx, &10);
        },
        0,
    )
    .unwrap();
    let m3 = m.clone();
    let outside: Vec<i64> =
        stm::atomic(move |tx| m3.entries(tx).into_iter().map(|(k, _)| k).collect());
    assert_eq!(outside, vec![10], "buffer leaked before commit");
    t1.commit();
    let m4 = m.clone();
    let after: Vec<i64> =
        stm::atomic(move |tx| m4.entries(tx).into_iter().map(|(k, _)| k).collect());
    assert_eq!(after, vec![5]);
}
