//! End-to-end provenance: real collection executions must produce trace
//! events carrying the full conflict story — which class, which lock table,
//! which key, which `(observation, effect)` mode pair, and who doomed whom.
//!
//! Trace state is process-global, so the tests serialize on a file-local
//! mutex (each integration-test file is its own process).

use std::sync::mpsc;
use std::sync::Mutex;
use std::thread;
use std::time::Duration;
use stm::trace::{snapshot, LockKind, TraceConfig, TraceEvent};
use stm::{atomic, AbortCause};
use txcollections::{
    key_hash64, mode_compatible, ObsMode, TransactionalMap, TransactionalSortedMap, UpdateEffect,
};

static SERIAL: Mutex<()> = Mutex::new(());

fn serialize() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// Two-transaction conflict with the prepared API: `reader` runs and stays
/// live, `writer` commits (dooming it), reader aborts. Returns their ids
/// `(victim, doomer)`.
fn doomed_pair(
    reader: impl FnOnce(&mut stm::Txn),
    writer: impl FnOnce(&mut stm::Txn),
) -> (u64, u64) {
    let (_, t1) = stm::speculate(reader, 0).expect("reader speculation must succeed");
    let (_, t2) = stm::speculate(writer, 0).expect("writer speculation must succeed");
    let (victim, doomer) = (t1.handle().id(), t2.handle().id());
    t2.commit();
    assert!(t1.handle().is_doomed(), "writer's commit must doom reader");
    t1.abort(AbortCause::Doomed);
    (victim, doomer)
}

/// A key-level map conflict yields a doom edge carrying the class name, the
/// key lock table, the key's hash, and the incompatible `(Key, KeyWrite)`
/// mode pair — plus the acquisition event that planted the lock.
#[test]
fn map_key_conflict_edge_carries_full_provenance() {
    let _g = serialize();
    let guard = TraceConfig::default().enable();

    let m: TransactionalMap<u32, String> = TransactionalMap::new();
    atomic(|tx| m.put_discard(tx, 1, "a".into()));

    let (r, w) = (m.clone(), m.clone());
    let (victim, doomer) = doomed_pair(
        move |tx| {
            assert_eq!(r.get(tx, &1).as_deref(), Some("a"));
        },
        move |tx| w.put_discard(tx, 1, "b".into()),
    );

    let snap = snapshot();
    drop(guard);

    let hash = key_hash64(&1u32);
    assert!(
        snap.events.iter().any(|e| matches!(
            e,
            TraceEvent::SemLockAcquired { txn, class, kind: LockKind::Key, key_hash, .. }
                if *txn == victim && class.name() == "map" && *key_hash == hash
        )),
        "reader's key-lock acquisition must be traced: {:?}",
        snap.events
    );
    let edge = snap
        .events
        .iter()
        .find_map(|e| match e {
            TraceEvent::DoomEdge {
                doomer: d,
                victim: v,
                class,
                kind,
                key_hash,
                obs,
                effect,
                compatible,
                ..
            } if *d == doomer && *v == victim => {
                Some((class.name(), *kind, *key_hash, *obs, *effect, *compatible))
            }
            _ => None,
        })
        .expect("the doom must be traced as a doomer -> victim edge");
    assert_eq!(edge.0, "map");
    assert_eq!(edge.1, LockKind::Key);
    assert_eq!(edge.2, hash);
    assert_eq!(edge.3, ObsMode::Key.code());
    assert_eq!(edge.4, UpdateEffect::KeyWrite.code());
    assert!(!edge.5, "a landed edge records an incompatible pair");
    // The recorded pair really is incompatible under the oracle (same key,
    // so overlap holds).
    assert!(!mode_compatible(ObsMode::Key, UpdateEffect::KeyWrite, true));
}

/// A size-level map conflict yields an edge in the size lock table with the
/// `(Size, SizeChange)` pair and no key hash (point lock).
#[test]
fn map_size_conflict_edge_has_point_lock_pair() {
    let _g = serialize();
    let guard = TraceConfig::default().enable();

    let m: TransactionalMap<u32, u64> = TransactionalMap::new();
    let (r, w) = (m.clone(), m.clone());
    let (victim, doomer) = doomed_pair(
        move |tx| {
            assert_eq!(r.size(tx), 0);
        },
        move |tx| w.put_discard(tx, 9, 9),
    );

    let snap = snapshot();
    drop(guard);
    assert!(
        snap.events.iter().any(|e| matches!(
            e,
            TraceEvent::DoomEdge { doomer: d, victim: v, class, kind: LockKind::Size, key_hash: 0, obs, effect, compatible: false, .. }
                if *d == doomer && *v == victim && class.name() == "map"
                    && *obs == ObsMode::Size.code() && *effect == UpdateEffect::SizeChange.code()
        )),
        "size doom must carry the (Size, SizeChange) pair: {:?}",
        snap.events
    );
}

/// A sorted-map endpoint conflict is attributed to the `sorted_map` class
/// and the endpoint lock table with the `(First, FirstChange)` pair.
#[test]
fn sorted_map_endpoint_conflict_names_its_class() {
    let _g = serialize();
    let guard = TraceConfig::default().enable();

    let m: TransactionalSortedMap<u32, u64> = TransactionalSortedMap::new();
    atomic(|tx| {
        m.put(tx, 5, 50);
    });

    let (r, w) = (m.clone(), m.clone());
    let (victim, doomer) = doomed_pair(
        move |tx| {
            assert_eq!(r.first_key(tx), Some(5));
        },
        move |tx| {
            // New least key: publishes FirstChange.
            w.put(tx, 0, 1);
        },
    );

    let snap = snapshot();
    drop(guard);
    assert!(
        snap.events.iter().any(|e| matches!(
            e,
            TraceEvent::DoomEdge { doomer: d, victim: v, class, kind: LockKind::Endpoint, obs, effect, compatible: false, .. }
                if *d == doomer && *v == victim && class.name() == "sorted_map"
                    && *obs == ObsMode::First.code() && *effect == UpdateEffect::FirstChange.code()
        )),
        "endpoint doom must name sorted_map and the (First, FirstChange) pair: {:?}",
        snap.events
    );
}

/// Under the real threaded runtime, the doom edge and the victim's abort
/// event tell one consistent story: the abort's culprit is the edge's
/// doomer, and the edge's victim is the aborted attempt.
#[test]
fn threaded_doom_edge_agrees_with_abort_attribution() {
    let _g = serialize();
    let guard = TraceConfig::default().enable();
    const WAIT: Duration = Duration::from_secs(10);

    let m: TransactionalMap<u32, u64> = TransactionalMap::new();
    atomic(|tx| m.put_discard(tx, 1, 10));

    let (locked_tx, locked_rx) = mpsc::channel::<u64>();
    let (resume_tx, resume_rx) = mpsc::channel::<()>();
    let mut victim = 0u64;
    thread::scope(|s| {
        let m = &m;
        let reader = s.spawn(move || {
            let mut first = true;
            atomic(|tx| {
                let v = m.get(tx, &1);
                if first {
                    first = false;
                    // Test scaffolding: park the attempt so the writer's
                    // doom provably races a live key-lock holder.
                    locked_tx.send(tx.handle().id()).unwrap(); // txlint: allow(TX001) scaffolding, attempt is meant to die
                    resume_rx.recv_timeout(WAIT).unwrap();
                }
                v
            })
        });

        victim = locked_rx
            .recv_timeout(WAIT)
            .expect("reader never took its key lock");
        atomic(|tx| m.put_discard(tx, 1, 20));
        resume_tx.send(()).unwrap();
        let observed = reader.join().unwrap();
        assert_eq!(observed, Some(20), "retry must see the applied put");
    });

    let snap = snapshot();
    drop(guard);

    let (edge_doomer, edge_victim) = snap
        .events
        .iter()
        .find_map(|e| match e {
            TraceEvent::DoomEdge {
                doomer,
                victim: v,
                class,
                kind: LockKind::Key,
                ..
            } if *v == victim && class.name() == "map" => Some((*doomer, *v)),
            _ => None,
        })
        .expect("the threaded doom must appear as a key-lock edge");
    assert!(
        snap.events.iter().any(|e| matches!(
            e,
            TraceEvent::TxnAbort { txn, cause: AbortCause::Doomed, culprit, .. }
                if *txn == edge_victim && *culprit == edge_doomer
        )),
        "the victim's abort must attribute the same culprit: {:?}",
        snap.events
    );
}
