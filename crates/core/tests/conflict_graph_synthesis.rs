//! The declarative conflict-graph pipeline, checked end to end (PR 6):
//!
//! * every in-tree declaration validates and synthesizes;
//! * each synthesized matrix agrees with the hand-written oracle
//!   [`mode_compatible_spec`] on every cell the graph reaches;
//! * the generated production [`mode_compatible`] is *identical* to the
//!   oracle on all 84 `(mode, effect, overlap)` cells;
//! * property tests over random well-formed graphs: synthesis marks exactly
//!   the declared cells, and `synthesize -> derive_edges -> synthesize`
//!   round-trips to the same matrix.

use proptest::prelude::*;
use txcollections::{
    declared_graphs, derive_edges, edge, keyed_mode, mode_compatible, mode_compatible_spec, op,
    reachable_cells, synthesize, validate, ConflictGraph, EdgeDecl, ObsMode, OpDecl, Overlap,
    UpdateEffect,
};

#[test]
fn all_84_cells_of_the_generated_matrix_match_the_spec() {
    for o in ObsMode::ALL {
        for e in UpdateEffect::ALL {
            for overlap in [false, true] {
                assert_eq!(
                    mode_compatible(o, e, overlap),
                    mode_compatible_spec(o, e, overlap),
                    "generated mode_compatible diverges from the hand-written \
                     spec at ({o:?}, {e:?}, overlap={overlap})"
                );
            }
        }
    }
}

#[test]
fn every_declared_graph_validates_and_matches_the_spec_on_reachable_cells() {
    for graph in declared_graphs() {
        let errs = validate(graph);
        assert!(
            errs.is_empty(),
            "{}: declaration rejected:\n{}",
            graph.class,
            errs.join("\n")
        );
        let synth = synthesize(graph).expect("validated graph must synthesize");
        assert!(
            !synth.lock_kinds.is_empty(),
            "{}: synthesis derived no lock kinds",
            graph.class
        );
        for (obs, effect, overlap) in reachable_cells(graph) {
            assert_eq!(
                synth.matrix.compatible(obs, effect, overlap),
                mode_compatible_spec(obs, effect, overlap),
                "{}: synthesized matrix disagrees with the spec at \
                 ({obs:?}, {effect:?}, overlap={overlap})",
                graph.class
            );
        }
    }
}

#[test]
fn synthesized_matrices_never_admit_a_declared_conflict() {
    for graph in declared_graphs() {
        let synth = synthesize(graph).expect("in-tree graph must synthesize");
        for e in graph.edges {
            assert!(
                !synth.matrix.compatible(e.obs, e.effect, true),
                "{}: declared edge ({}, {}) on ({:?}, {:?}) still compatible under overlap",
                graph.class,
                e.observer,
                e.updater,
                e.obs,
                e.effect
            );
            if e.when == Overlap::Always {
                assert!(
                    !synth.matrix.compatible(e.obs, e.effect, false),
                    "{}: Always edge ({}, {}) on ({:?}, {:?}) compatible without overlap",
                    graph.class,
                    e.observer,
                    e.updater,
                    e.obs,
                    e.effect
                );
            }
        }
    }
}

#[test]
fn in_tree_graphs_round_trip_through_derive_edges() {
    for graph in declared_graphs() {
        let synth = synthesize(graph).expect("in-tree graph must synthesize");
        let derived = derive_edges(&synth.matrix, graph.ops);
        let g2 = ConflictGraph {
            class: graph.class,
            ops: graph.ops,
            edges: &derived,
        };
        let errs = validate(&g2);
        assert!(
            errs.is_empty(),
            "{}: re-derived graph rejected:\n{}",
            graph.class,
            errs.join("\n")
        );
        let s2 = synthesize(&g2).expect("re-derived graph must synthesize");
        assert_eq!(
            s2.matrix, synth.matrix,
            "{}: derive_edges lost or invented cells",
            graph.class
        );
    }
}

// ---------------------------------------------------------------------
// Random well-formed graphs.
//
// A graph is generated as (a) per-op subsets of observation modes and
// update effects over a fixed name pool, and (b) a subset of *declarable*
// conflicting cells — keyed modes only pair with KeyWrite (gated on
// overlap), whole-collection modes conflict unconditionally. Declaring an
// edge for EVERY (observer, updater) pair that realizes a chosen cell
// makes symmetry and reflexivity hold by construction, so `validate` must
// accept the result.
// ---------------------------------------------------------------------

const NAME_POOL: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

/// The `(mode, effect)` cells a well-formed graph may declare conflicting.
fn declarable_cells() -> Vec<(ObsMode, UpdateEffect)> {
    let mut out = Vec::new();
    for m in ObsMode::ALL {
        for e in UpdateEffect::ALL {
            if keyed_mode(m) {
                if e == UpdateEffect::KeyWrite {
                    out.push((m, e));
                }
            } else {
                out.push((m, e));
            }
        }
    }
    out
}

/// Owned backing storage for a generated graph (the declaration types
/// borrow slices, mirroring their `static` production form). Decoded from
/// per-op bitmasks over `ObsMode::ALL` / `UpdateEffect::ALL`.
struct GraphArena {
    observes: Vec<Vec<ObsMode>>,
    effects: Vec<Vec<UpdateEffect>>,
}

impl GraphArena {
    fn decode(obs_masks: &[u32], eff_masks: &[u32]) -> GraphArena {
        let pick_modes = |mask: u32| {
            ObsMode::ALL
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, m)| *m)
                .collect::<Vec<_>>()
        };
        let pick_effects = |mask: u32| {
            UpdateEffect::ALL
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, e)| *e)
                .collect::<Vec<_>>()
        };
        GraphArena {
            observes: obs_masks.iter().map(|&m| pick_modes(m)).collect(),
            effects: eff_masks.iter().map(|&m| pick_effects(m)).collect(),
        }
    }
}

fn build_ops(arena: &GraphArena) -> Vec<OpDecl<'_>> {
    (0..arena.observes.len())
        .map(|i| op(NAME_POOL[i], &arena.observes[i], &arena.effects[i]))
        .collect()
}

/// Decode a conflicting-cell subset from a bitmask over the declarable
/// cells.
fn decode_cells(mask: u64) -> Vec<(ObsMode, UpdateEffect)> {
    declarable_cells()
        .into_iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, c)| c)
        .collect()
}

/// Declare every edge realizing one of the chosen conflicting cells: all
/// (observer, updater) pairs where the observer holds the mode and the
/// updater publishes the effect.
fn closure_edges<'a>(ops: &[OpDecl<'a>], cells: &[(ObsMode, UpdateEffect)]) -> Vec<EdgeDecl<'a>> {
    let mut out = Vec::new();
    for &(m, e) in cells {
        let when = if keyed_mode(m) {
            Overlap::OnOverlap
        } else {
            Overlap::Always
        };
        for obs_op in ops {
            if !obs_op.observes.contains(&m) {
                continue;
            }
            for upd_op in ops {
                if upd_op.effects.contains(&e) {
                    out.push(edge(obs_op.name, upd_op.name, m, e, when));
                }
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Closure-constructed graphs are well-formed, and synthesis marks a
    /// cell conflicting iff some declared edge realizes it.
    #[test]
    fn random_well_formed_graphs_synthesize_exactly_their_declarations(
        obs_masks in proptest::collection::vec(0u32..128, 4..5),
        eff_masks in proptest::collection::vec(0u32..64, 4..5),
        cells_mask in 0u64..(1u64 << 32),
    ) {
        let arena = GraphArena::decode(&obs_masks, &eff_masks);
        let cells = decode_cells(cells_mask);
        let ops = build_ops(&arena);
        let edges = closure_edges(&ops, &cells);
        let g = ConflictGraph { class: "prop", ops: &ops, edges: &edges };
        let errs = validate(&g);
        prop_assert!(errs.is_empty(), "closure construction rejected:\n{}", errs.join("\n"));
        let synth = synthesize(&g).expect("validated graph must synthesize");

        for m in ObsMode::ALL {
            for e in UpdateEffect::ALL {
                let declared = edges.iter().any(|d| d.obs == m && d.effect == e);
                let declared_always = edges
                    .iter()
                    .any(|d| d.obs == m && d.effect == e && d.when == Overlap::Always);
                // Overlap=true: conflicting iff declared at all.
                prop_assert_eq!(
                    !synth.matrix.compatible(m, e, true),
                    declared,
                    "cell ({:?}, {:?}, overlap) vs declarations", m, e
                );
                // Overlap=false: conflicting iff declared unconditionally.
                prop_assert_eq!(
                    !synth.matrix.compatible(m, e, false),
                    declared_always,
                    "cell ({:?}, {:?}, no-overlap) vs declarations", m, e
                );
            }
        }
    }

    /// `synthesize -> derive_edges -> synthesize` is a fixed point: the
    /// re-derived graph validates and reproduces the same matrix.
    #[test]
    fn random_graphs_round_trip_through_derive_edges(
        obs_masks in proptest::collection::vec(0u32..128, 4..5),
        eff_masks in proptest::collection::vec(0u32..64, 4..5),
        cells_mask in 0u64..(1u64 << 32),
    ) {
        let arena = GraphArena::decode(&obs_masks, &eff_masks);
        let cells = decode_cells(cells_mask);
        let ops = build_ops(&arena);
        let edges = closure_edges(&ops, &cells);
        let g = ConflictGraph { class: "prop", ops: &ops, edges: &edges };
        let synth = synthesize(&g).expect("closure-constructed graph must synthesize");

        let derived = derive_edges(&synth.matrix, &ops);
        let g2 = ConflictGraph { class: "prop2", ops: &ops, edges: &derived };
        let errs = validate(&g2);
        prop_assert!(errs.is_empty(), "derived graph rejected:\n{}", errs.join("\n"));
        let s2 = synthesize(&g2).expect("derived graph must synthesize");
        prop_assert_eq!(s2.matrix, synth.matrix, "round trip changed the matrix");
    }
}
