//! The boosted backend under the full conflict protocol (PR 7).
//!
//! `BoostedHashMap` has no TVars: isolation for collections built over it
//! comes entirely from the semantic locks, the handler lane, and (for the
//! eager wrapper) the kernel undo log. These tests rerun the oracle-matrix
//! map cells and the stripe-invariance discipline as live two-transaction
//! executions over `TransactionalMap::boosted*`, and check the undo path
//! with an abort-compensation proptest over
//! `EagerTransactionalMap::boosted`: any random operation sequence followed
//! by a forced abort must leave the map exactly at its pre-transaction
//! snapshot.

mod conflict_harness;

use conflict_harness::writer_dooms_reader;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use txcollections::{
    mode_compatible, EagerPolicy, EagerTransactionalMap, ObsMode, TransactionalMap,
    TransactionalMultiset, TransactionalSet, UpdateEffect,
};
use txstruct::BoostedHashMap;

const STRIPE_COUNTS: [usize; 3] = [1, 2, 16];

type BoostedMap = TransactionalMap<u32, String, BoostedHashMap<u32, String>>;

fn seeded_boosted(nstripes: usize, pairs: &[(u32, &str)]) -> Arc<BoostedMap> {
    let m = Arc::new(BoostedMap::boosted_with_stripes(nstripes));
    let m2 = m.clone();
    let pairs: Vec<(u32, String)> = pairs.iter().map(|(k, v)| (*k, v.to_string())).collect();
    stm::atomic(move |tx| {
        for (k, v) in &pairs {
            m2.put_discard(tx, *k, v.clone());
        }
    });
    m
}

/// One get-vs-put cell over the boosted map at a given stripe count.
fn key_cell(nstripes: usize, rkey: u32, wkey: u32) -> bool {
    let m = seeded_boosted(nstripes, &[(rkey, "r"), (wkey, "w")]);
    let (r, w) = (m.clone(), m);
    writer_dooms_reader(
        move |tx| {
            let _ = r.get(tx, &rkey);
        },
        move |tx| w.put_discard(tx, wkey, "new".into()),
    )
}

/// Every reachable map cell of the oracle matrix, driven live over the
/// boosted backend at 1/2/16 stripes — same verdicts as the TVar backends
/// (the backend is a performance knob, never a semantics knob).
#[test]
fn boosted_map_delivers_every_oracle_cell_at_every_stripe_count() {
    for n in STRIPE_COUNTS {
        // Key vs KeyWrite: conflicts iff same key.
        assert_eq!(
            key_cell(n, 1, 1),
            !mode_compatible(ObsMode::Key, UpdateEffect::KeyWrite, true),
            "boosted key/overlap at {n} stripes"
        );
        assert_eq!(
            key_cell(n, 1, 2),
            !mode_compatible(ObsMode::Key, UpdateEffect::KeyWrite, false),
            "boosted key/no-overlap at {n} stripes"
        );

        // Size vs SizeChange conflicts; vs value-replacing KeyWrite does not.
        let m = seeded_boosted(n, &[(1, "a")]);
        let (r, w) = (m.clone(), m);
        assert!(
            writer_dooms_reader(
                move |tx| {
                    let _ = r.size(tx);
                },
                move |tx| w.put_discard(tx, 9, "new".into()),
            ),
            "boosted size observer must be doomed by an inserting commit at {n} stripes"
        );
        let m = seeded_boosted(n, &[(1, "a")]);
        let (r, w) = (m.clone(), m);
        assert!(
            !writer_dooms_reader(
                move |tx| {
                    let _ = r.size(tx);
                },
                move |tx| w.put_discard(tx, 1, "replaced".into()),
            ),
            "boosted size observer must survive a value-replacing commit at {n} stripes"
        );

        // Empty vs ZeroCross conflicts; vs non-crossing SizeChange does not.
        let m = seeded_boosted(n, &[]);
        let (r, w) = (m.clone(), m);
        assert!(
            writer_dooms_reader(
                move |tx| {
                    let _ = r.is_empty_primitive(tx);
                },
                move |tx| w.put_discard(tx, 1, "first".into()),
            ),
            "boosted emptiness observer must be doomed by a zero-crossing commit at {n} stripes"
        );
        let m = seeded_boosted(n, &[(1, "a")]);
        let (r, w) = (m.clone(), m);
        assert!(
            !writer_dooms_reader(
                move |tx| {
                    let _ = r.is_empty_primitive(tx);
                },
                move |tx| w.put_discard(tx, 2, "second".into()),
            ),
            "boosted emptiness observer must survive a non-crossing commit at {n} stripes"
        );
    }
}

/// Stripe collisions in the semantic tables and shard collisions in the
/// backend are both invisible to the conflict matrix.
#[test]
fn boosted_stripe_collision_never_creates_or_hides_a_conflict() {
    let colliding = (1u32..64)
        .find(|k| txcollections::stripe_index(k, 16) == txcollections::stripe_index(&0u32, 16))
        .expect("some key collides with 0 in 16 stripes");
    let distinct = (1u32..64)
        .find(|k| txcollections::stripe_index(k, 16) != txcollections::stripe_index(&0u32, 16))
        .expect("some key misses 0's stripe");
    for n in STRIPE_COUNTS {
        assert!(
            !key_cell(n, 0, colliding),
            "boosted stripe-colliding distinct keys must not conflict ({n} stripes)"
        );
        assert!(
            !key_cell(n, 0, distinct),
            "boosted distinct-stripe keys must not conflict ({n} stripes)"
        );
        assert!(
            key_cell(n, 0, 0),
            "boosted same-key conflict must survive striping ({n} stripes)"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random reader/writer key pairs over the boosted map: verdict is
    /// `rk == wk` at every stripe count.
    #[test]
    fn boosted_key_verdicts_are_stripe_invariant(rk in 0u32..32, wk in 0u32..32) {
        for n in STRIPE_COUNTS {
            prop_assert_eq!(key_cell(n, rk, wk), rk == wk, "stripes={}", n);
        }
    }
}

/// Distinct-key soak over the boosted map: disjoint key ranges must commit
/// first-try with zero semantic-conflict traffic and no leaked locks or
/// locals — the same zero-doom guarantee the TVar map gives.
#[test]
fn boosted_distinct_key_soak_produces_zero_dooms() {
    let map: Arc<TransactionalMap<u64, u64, BoostedHashMap<u64, u64>>> =
        Arc::new(TransactionalMap::boosted_with_stripes(16));
    let attempts = Arc::new(AtomicU64::new(0));
    const THREADS: u64 = 4;
    const OPS: u64 = 200;
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let map = map.clone();
            let attempts = attempts.clone();
            s.spawn(move || {
                for i in 0..OPS {
                    let k = t * 10_000 + (i % 50);
                    stm::atomic(|tx| {
                        attempts.fetch_add(1, Ordering::Relaxed);
                        let cur = map.get(tx, &k).unwrap_or(0);
                        map.put_discard(tx, k, cur + 1);
                    });
                }
            });
        }
    });
    assert_eq!(
        attempts.load(Ordering::Relaxed),
        THREADS * OPS,
        "distinct-key transactions over the boosted map retried"
    );
    assert_eq!(map.semantic_stats().total(), 0);
    assert_eq!(map.locked_key_count(), 0);
    assert_eq!(map.resident_local_count(), 0);
    // Every committed increment landed in the concurrent structure.
    let total: u64 = stm::atomic(|tx| {
        let mut sum = 0;
        for t in 0..THREADS {
            for j in 0..50u64 {
                sum += map.get(tx, &(t * 10_000 + j)).unwrap_or(0);
            }
        }
        sum
    });
    assert_eq!(
        total,
        THREADS * OPS,
        "lost updates over the boosted backend"
    );
}

/// A doomed-then-aborted transaction over the boosted map leaves no stale
/// locals, no leaked locks, and no leaked buffered writes.
#[test]
fn boosted_doomed_abort_leaves_no_stale_state() {
    let map = seeded_boosted(16, &[(1, "seed")]);
    for round in 0..10 {
        let v = map.clone();
        let (_, victim) = stm::speculate(
            move |tx| {
                let _ = v.get(tx, &1);
                v.put_discard(tx, 2, "victim".into());
            },
            0,
        )
        .expect("victim speculation");
        let w = map.clone();
        let (_, writer) = stm::speculate(move |tx| w.put_discard(tx, 1, "clobber".into()), 0)
            .expect("writer speculation");
        writer.commit();
        assert!(victim.handle().is_doomed(), "round {round}: doom missed");
        victim.abort(stm::AbortCause::Doomed);
        assert_eq!(map.resident_local_count(), 0, "round {round}");
        assert_eq!(map.locked_key_count(), 0, "round {round}");
        let r = map.clone();
        let leaked = stm::atomic(move |tx| r.get(tx, &2).is_some());
        assert!(!leaked, "round {round}: aborted buffer leaked");
    }
}

/// The sibling wrappers run over the boosted backend too.
#[test]
fn boosted_set_and_multiset_roundtrip() {
    let set: TransactionalSet<u32, BoostedHashMap<u32, ()>> = TransactionalSet::boosted();
    stm::atomic(|tx| {
        assert!(set.add(tx, 7));
        assert!(!set.add(tx, 7));
        assert!(set.contains(tx, &7));
        assert!(set.remove(tx, &7));
    });
    let ms: TransactionalMultiset<u32, BoostedHashMap<u32, u64>> = TransactionalMultiset::boosted();
    stm::atomic(|tx| {
        ms.add(tx, 1);
        ms.add(tx, 1);
        assert_eq!(ms.count(tx, &1), 2);
        assert_eq!(ms.len(tx), 2);
    });
}

// ----------------------------------------------------------------------
// Abort compensation: eager (undo-logging) wrapper over the boosted map
// ----------------------------------------------------------------------

const KEY_DOMAIN: u32 = 8;

#[derive(Debug, Clone)]
enum Op {
    Put(u32, u32),
    Remove(u32),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..KEY_DOMAIN, any::<u32>()).prop_map(|(k, v)| Op::Put(k, v)),
        (0..KEY_DOMAIN).prop_map(Op::Remove),
    ]
}

/// Full observable state of the eager boosted map: every key in the domain
/// plus the reported size.
fn snapshot(
    m: &EagerTransactionalMap<u32, u32, BoostedHashMap<u32, u32>>,
) -> (BTreeMap<u32, u32>, usize) {
    let m = m.clone();
    stm::atomic(move |tx| {
        let mut s = BTreeMap::new();
        for k in 0..KEY_DOMAIN {
            if let Some(v) = m.get(tx, &k) {
                s.insert(k, v);
            }
        }
        (s, m.size(tx))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Eager mutations hit the concurrent map in place; a forced abort must
    /// drain the kernel undo log (newest first, before any lock release)
    /// and leave the map exactly at its pre-transaction snapshot, with no
    /// residual locks or locals.
    #[test]
    fn eager_boosted_abort_restores_pre_txn_snapshot(
        seed in proptest::collection::vec(op_strategy(), 0..6),
        ops in proptest::collection::vec(op_strategy(), 1..12),
    ) {
        let m: EagerTransactionalMap<u32, u32, BoostedHashMap<u32, u32>> =
            EagerTransactionalMap::boosted(EagerPolicy::WriterWaits);
        let m2 = m.clone();
        let seed2 = seed.clone();
        stm::atomic(move |tx| {
            for op in &seed2 {
                match op {
                    Op::Put(k, v) => {
                        let _ = m2.put(tx, *k, *v);
                    }
                    Op::Remove(k) => {
                        let _ = m2.remove(tx, k);
                    }
                }
            }
        });
        let before = snapshot(&m);

        // Apply the random sequence in place, then force an abort.
        let m3 = m.clone();
        let ops2 = ops.clone();
        let (_, t) = stm::speculate(
            move |tx| {
                for op in &ops2 {
                    match op {
                        Op::Put(k, v) => {
                            let _ = m3.put(tx, *k, *v);
                        }
                        Op::Remove(k) => {
                            let _ = m3.remove(tx, k);
                        }
                    }
                }
            },
            0,
        )
        .expect("speculation");
        t.abort(stm::AbortCause::Explicit);

        let after = snapshot(&m);
        prop_assert_eq!(&before, &after, "ops={:?}", ops);
    }

    /// Control: the same sequences *committed* must equal a plain
    /// sequential application of the ops to a reference BTreeMap.
    #[test]
    fn eager_boosted_commit_matches_reference(
        ops in proptest::collection::vec(op_strategy(), 1..12),
    ) {
        let m: EagerTransactionalMap<u32, u32, BoostedHashMap<u32, u32>> =
            EagerTransactionalMap::boosted(EagerPolicy::WriterWaits);
        let m2 = m.clone();
        let ops2 = ops.clone();
        stm::atomic(move |tx| {
            for op in &ops2 {
                match op {
                    Op::Put(k, v) => {
                        let _ = m2.put(tx, *k, *v);
                    }
                    Op::Remove(k) => {
                        let _ = m2.remove(tx, k);
                    }
                }
            }
        });
        let mut reference = BTreeMap::new();
        for op in &ops {
            match op {
                Op::Put(k, v) => {
                    reference.insert(*k, *v);
                }
                Op::Remove(k) => {
                    reference.remove(k);
                }
            }
        }
        let (got, size) = snapshot(&m);
        prop_assert_eq!(&got, &reference, "ops={:?}", ops);
        prop_assert_eq!(size, reference.len());
    }
}

/// Deterministic spot check of the compensation order: put-then-remove of
/// the same key across an abort restores the original value (one undo
/// entry, logged at first write, replayed last-first).
#[test]
fn eager_boosted_rollback_spot_check() {
    let m: EagerTransactionalMap<u32, u32, BoostedHashMap<u32, u32>> =
        EagerTransactionalMap::boosted(EagerPolicy::WriterWaits);
    stm::atomic(|tx| {
        let _ = m.put(tx, 1, 10);
    });
    let m2 = m.clone();
    let (_, t) = stm::speculate(
        move |tx| {
            let _ = m2.put(tx, 1, 99);
            let _ = m2.put(tx, 2, 20);
            let _ = m2.remove(tx, &1);
            let _ = m2.put(tx, 1, 77);
        },
        0,
    )
    .unwrap();
    t.abort(stm::AbortCause::Explicit);
    stm::atomic(|tx| {
        assert_eq!(m.get(tx, &1), Some(10), "restore missed");
        assert_eq!(m.get(tx, &2), None, "delete missed");
        assert_eq!(m.size(tx), 1);
    });
}
