//! Stripe-count invariance of the semantic conflict protocol (PR 3).
//!
//! Striping the semantic lock tables is a pure performance transform: the
//! doom verdict for any pair of operations must depend only on the abstract
//! conflict matrix (paper Tables 1–8), never on how keys happen to hash
//! across stripes. These tests drive real two-transaction executions at
//! stripe counts 1 (the old single-table behavior), 2, and 16 and assert
//! identical verdicts, including for key pairs chosen specifically to
//! collide / not collide in the stripe hash.

mod conflict_harness;

use conflict_harness::writer_dooms_reader;
use proptest::prelude::*;
use std::ops::Bound;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use txcollections::{
    mode_compatible, stripe_index, ObsMode, TransactionalIntervalMap, TransactionalMap,
    TransactionalMultiset, TransactionalPriorityQueue, TransactionalSortedMap, UpdateEffect,
};

const STRIPE_COUNTS: [usize; 3] = [1, 2, 16];

/// The stripe index the striped tables assign to `key` — the production
/// key→stripe map, re-exported by the crate precisely so tests can pick
/// colliding / non-colliding key pairs.
fn stripe_of(key: &u32, nstripes: usize) -> usize {
    stripe_index(key, nstripes)
}

fn seeded_map(nstripes: usize, pairs: &[(u32, &str)]) -> Arc<TransactionalMap<u32, String>> {
    let m = Arc::new(TransactionalMap::with_stripes(nstripes));
    let m2 = m.clone();
    let pairs: Vec<(u32, String)> = pairs.iter().map(|(k, v)| (*k, v.to_string())).collect();
    stm::atomic(move |tx| {
        for (k, v) in &pairs {
            m2.put_discard(tx, *k, v.clone());
        }
    });
    m
}

fn seeded_sorted(nstripes: usize, keys: &[u32]) -> Arc<TransactionalSortedMap<u32, u32>> {
    let m = Arc::new(TransactionalSortedMap::with_stripes(nstripes));
    let (m2, keys) = (m.clone(), keys.to_vec());
    stm::atomic(move |tx| {
        for k in &keys {
            m2.put_discard(tx, *k, *k);
        }
    });
    m
}

/// Drive one get-vs-put cell at a given stripe count: reader observes
/// `rkey`, writer commits a write of `wkey`.
fn key_cell(nstripes: usize, rkey: u32, wkey: u32) -> bool {
    let m = seeded_map(nstripes, &[(rkey, "r"), (wkey, "w")]);
    let (r, w) = (m.clone(), m);
    writer_dooms_reader(
        move |tx| {
            let _ = r.get(tx, &rkey);
        },
        move |tx| w.put_discard(tx, wkey, "new".into()),
    )
}

#[test]
fn oracle_cells_hold_at_every_stripe_count() {
    for n in STRIPE_COUNTS {
        // Key vs KeyWrite: conflicts iff same key.
        assert_eq!(
            key_cell(n, 1, 1),
            !mode_compatible(ObsMode::Key, UpdateEffect::KeyWrite, true),
            "key/overlap at {n} stripes"
        );
        assert_eq!(
            key_cell(n, 1, 2),
            !mode_compatible(ObsMode::Key, UpdateEffect::KeyWrite, false),
            "key/no-overlap at {n} stripes"
        );

        // Size vs SizeChange conflicts; vs value-replacing KeyWrite does not.
        let m = seeded_map(n, &[(1, "a")]);
        let (r, w) = (m.clone(), m);
        assert!(
            writer_dooms_reader(
                move |tx| {
                    let _ = r.size(tx);
                },
                move |tx| w.put_discard(tx, 9, "new".into()),
            ),
            "size observer must be doomed by an inserting commit at {n} stripes"
        );
        let m = seeded_map(n, &[(1, "a")]);
        let (r, w) = (m.clone(), m);
        assert!(
            !writer_dooms_reader(
                move |tx| {
                    let _ = r.size(tx);
                },
                move |tx| w.put_discard(tx, 1, "replaced".into()),
            ),
            "size observer must survive a value-replacing commit at {n} stripes"
        );

        // Empty vs ZeroCross conflicts; vs non-crossing SizeChange does not.
        let m = seeded_map(n, &[]);
        let (r, w) = (m.clone(), m);
        assert!(
            writer_dooms_reader(
                move |tx| {
                    let _ = r.is_empty_primitive(tx);
                },
                move |tx| w.put_discard(tx, 1, "first".into()),
            ),
            "emptiness observer must be doomed by a zero-crossing commit at {n} stripes"
        );
        let m = seeded_map(n, &[(1, "a")]);
        let (r, w) = (m.clone(), m);
        assert!(
            !writer_dooms_reader(
                move |tx| {
                    let _ = r.is_empty_primitive(tx);
                },
                move |tx| w.put_discard(tx, 2, "second".into()),
            ),
            "emptiness observer must survive a non-crossing commit at {n} stripes"
        );

        // Sorted map: endpoint and range semantics live in the global
        // stripe and must be unaffected by the key-stripe count.
        let m = seeded_sorted(n, &[10, 20, 30]);
        let (r, w) = (m.clone(), m);
        assert!(
            writer_dooms_reader(
                move |tx| {
                    let _ = r.first_key(tx);
                },
                move |tx| w.put_discard(tx, 5, 5),
            ),
            "first-key observer must be doomed by a new minimum at {n} stripes"
        );
        let m = seeded_sorted(n, &[10, 20, 30, 40]);
        let (r, w) = (m.clone(), m);
        assert!(
            writer_dooms_reader(
                move |tx| {
                    let _ = r.range_entries(tx, Bound::Included(10), Bound::Included(20));
                },
                move |tx| w.put_discard(tx, 15, 15),
            ),
            "range observer must be doomed by an in-range insert at {n} stripes"
        );
        let m = seeded_sorted(n, &[10, 20, 30, 40]);
        let (r, w) = (m.clone(), m);
        assert!(
            !writer_dooms_reader(
                move |tx| {
                    let _ = r.range_entries(tx, Bound::Included(10), Bound::Included(20));
                },
                move |tx| w.put_discard(tx, 35, 35),
            ),
            "range observer must survive an out-of-range insert at {n} stripes"
        );
    }
}

/// The three synthesized-lock classes (PR 6) must give identical verdicts
/// at every stripe count, exactly like the hand-tabled classes: stripe
/// count is a parallelism knob, never a semantics knob.
#[test]
fn synthesized_class_verdicts_are_stripe_invariant() {
    for n in STRIPE_COUNTS {
        // Multiset: same-element conflict, distinct-element commute.
        let ms = Arc::new(TransactionalMultiset::with_stripes(n));
        let m2 = ms.clone();
        stm::atomic(move |tx| {
            m2.add(tx, 1u32);
            m2.add(tx, 2u32);
        });
        let (r, w) = (ms.clone(), ms.clone());
        assert!(
            writer_dooms_reader(
                move |tx| {
                    let _ = r.count(tx, &1);
                },
                move |tx| w.add(tx, 1),
            ),
            "multiset same-element conflict lost at {n} stripes"
        );
        let (r, w) = (ms.clone(), ms);
        assert!(
            !writer_dooms_reader(
                move |tx| {
                    let _ = r.count(tx, &1);
                },
                move |tx| w.add(tx, 2),
            ),
            "multiset distinct elements conflicted at {n} stripes"
        );

        // Priority queue: endpoint movement conflicts, interior insert
        // commutes with the min observer.
        let pq = Arc::new(TransactionalPriorityQueue::with_stripes(n));
        let q2 = pq.clone();
        stm::atomic(move |tx| q2.insert(tx, 50u64));
        let (r, w) = (pq.clone(), pq.clone());
        assert!(
            writer_dooms_reader(
                move |tx| {
                    let _ = r.peek_min(tx);
                },
                move |tx| w.insert(tx, 10),
            ),
            "priority-queue min movement missed at {n} stripes"
        );
        let (r, w) = (pq.clone(), pq);
        assert!(
            !writer_dooms_reader(
                move |tx| {
                    let _ = r.peek_min(tx);
                },
                move |tx| w.insert(tx, 90),
            ),
            "priority-queue interior insert conflicted at {n} stripes"
        );

        // Interval map: span overlap conflicts, disjoint spans commute.
        let im = Arc::new(TransactionalIntervalMap::with_stripes(n));
        let i2 = im.clone();
        stm::atomic(move |tx| {
            i2.insert(tx, 10u32, 20u32, "seed");
        });
        let (r, w) = (im.clone(), im.clone());
        assert!(
            writer_dooms_reader(
                move |tx| {
                    let _ = r.stab(tx, &15);
                },
                move |tx| {
                    w.insert(tx, 12, 18, "overlap");
                },
            ),
            "interval-map span overlap missed at {n} stripes"
        );
        let (r, w) = (im.clone(), im);
        assert!(
            !writer_dooms_reader(
                move |tx| {
                    let _ = r.stab(tx, &15);
                },
                move |tx| {
                    w.insert(tx, 40, 50, "disjoint");
                },
            ),
            "interval-map disjoint spans conflicted at {n} stripes"
        );
    }
}

#[test]
fn stripe_collision_never_creates_or_hides_a_conflict() {
    // Find two distinct keys sharing a stripe at 16, and two in different
    // stripes (both exist in any 64-key prefix with overwhelming margin).
    let colliding = (1u32..64)
        .find(|k| *k != 0 && stripe_of(k, 16) == stripe_of(&0, 16))
        .expect("some key collides with 0 in 16 stripes");
    let distinct = (1u32..64)
        .find(|k| stripe_of(k, 16) != stripe_of(&0, 16))
        .expect("some key misses 0's stripe");

    for n in STRIPE_COUNTS {
        // Distinct keys commute whether or not they share a stripe.
        assert!(
            !key_cell(n, 0, colliding),
            "stripe-colliding distinct keys must not conflict ({n} stripes)"
        );
        assert!(
            !key_cell(n, 0, distinct),
            "distinct-stripe keys must not conflict ({n} stripes)"
        );
        // The same key conflicts regardless of striping.
        assert!(
            key_cell(n, 0, 0),
            "same-key conflict must survive striping ({n} stripes)"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random reader/writer key pairs: the verdict is `rk == wk` at every
    /// stripe count — stripe hashing is invisible to the conflict matrix.
    #[test]
    fn key_conflict_verdicts_are_stripe_invariant(rk in 0u32..48, wk in 0u32..48) {
        let mut verdicts = Vec::new();
        for n in STRIPE_COUNTS {
            let doomed = key_cell(n, rk, wk);
            prop_assert_eq!(
                doomed,
                rk == wk,
                "stripes={} rk={} wk={} (stripe_of rk={} wk={})",
                n, rk, wk, stripe_of(&rk, n.max(2)), stripe_of(&wk, n.max(2))
            );
            verdicts.push(doomed);
        }
        prop_assert!(verdicts.windows(2).all(|w| w[0] == w[1]));
    }
}

/// Multi-thread distinct-key soak: threads hammer disjoint key ranges of one
/// shared striped map. Distinct keys never semantically conflict, so the run
/// must complete with zero dooms (every attempt commits first try) and zero
/// conflict-counter traffic.
#[test]
fn distinct_key_soak_produces_zero_dooms() {
    let map: Arc<TransactionalMap<u64, u64>> = Arc::new(TransactionalMap::with_stripes(16));
    let attempts = Arc::new(AtomicU64::new(0));
    const THREADS: u64 = 4;
    const OPS: u64 = 200;
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let map = map.clone();
            let attempts = attempts.clone();
            s.spawn(move || {
                for i in 0..OPS {
                    let k = t * 10_000 + (i % 50);
                    stm::atomic(|tx| {
                        attempts.fetch_add(1, Ordering::Relaxed);
                        let cur = map.get(tx, &k).unwrap_or(0);
                        map.put(tx, k, cur + 1);
                    });
                }
            });
        }
    });
    assert_eq!(
        attempts.load(Ordering::Relaxed),
        THREADS * OPS,
        "distinct-key transactions retried: a spurious cross-stripe doom occurred"
    );
    assert_eq!(
        map.semantic_stats().total(),
        0,
        "distinct-key soak bumped a semantic conflict counter"
    );
    // All locks released, all per-transaction state reclaimed.
    assert_eq!(map.locked_key_count(), 0);
    assert_eq!(map.resident_local_count(), 0);
}

/// Regression (PR 3 bugfix audit): an abort racing a doom must not leave a
/// stale `MapLocal` entry in the sharded locals table — the handler's
/// `remove` and the undo closures' non-creating `update` keep the table
/// empty after every outcome.
#[test]
fn doomed_then_aborted_transaction_leaves_no_stale_locals() {
    let map: Arc<TransactionalMap<u32, String>> = Arc::new(TransactionalMap::with_stripes(16));
    let m2 = map.clone();
    stm::atomic(move |tx| m2.put_discard(tx, 1, "seed".into()));

    for round in 0..10 {
        // Victim reads key 1 (takes its key lock) and buffers writes.
        let v = map.clone();
        let (_, victim) = stm::speculate(
            move |tx| {
                let _ = v.get(tx, &1);
                v.put(tx, 2, "victim".into());
                v.put_discard(tx, 3, "victim-blind".into());
            },
            0,
        )
        .expect("victim speculation");
        // Writer dooms it by committing a write to key 1.
        let w = map.clone();
        let (_, writer) = stm::speculate(move |tx| w.put_discard(tx, 1, "clobber".into()), 0)
            .expect("writer speculation");
        writer.commit();
        assert!(victim.handle().is_doomed(), "round {round}: doom missed");
        // The doomed victim aborts: its abort handler must release its key
        // lock and remove its locals entry even though the doom landed
        // while the entry was live.
        victim.abort(stm::AbortCause::Doomed);
        assert_eq!(
            map.resident_local_count(),
            0,
            "round {round}: stale MapLocal entry survived a doomed abort"
        );
        assert_eq!(
            map.locked_key_count(),
            0,
            "round {round}: semantic key locks leaked by a doomed abort"
        );
        // The victim's buffered writes must not have leaked.
        let r = map.clone();
        let leaked = stm::atomic(move |tx| r.get(tx, &2).is_some() || r.get(tx, &3).is_some());
        assert!(!leaked, "round {round}: aborted buffer leaked into the map");
    }
}
