//! Two-transaction conflict harness for the table-conformance suites.
//!
//! Encodes a paper-table cell directly: transaction T1 performs a *read*
//! operation and stays live; transaction T2 performs a *write* operation and
//! commits. The cell's condition holds iff T1 ends up doomed (program-
//! directed abort through the semantic locks).

// Shared by several test binaries; each uses a subset of the helpers.
#![allow(dead_code)]

use stm::{AbortCause, Txn};

/// Run `reader` in a live transaction, then commit `writer` in another.
/// Returns whether the reader was doomed by the writer's commit.
pub(crate) fn writer_dooms_reader(
    reader: impl FnOnce(&mut Txn),
    writer: impl FnOnce(&mut Txn),
) -> bool {
    let (_, t1) = stm::speculate(reader, 0).expect("reader speculation must succeed");
    let (_, t2) = stm::speculate(writer, 0).expect("writer speculation must succeed");
    t2.commit();
    let doomed = t1.handle().is_doomed();
    // Clean up the reader either way (releases its semantic locks).
    t1.abort(AbortCause::Explicit);
    doomed
}

/// Assert a table cell: `expected == true` means the operations must
/// conflict (reader doomed), `false` means they must commute (no doom).
#[track_caller]
pub(crate) fn assert_cell(
    expected: bool,
    what: &str,
    reader: impl FnOnce(&mut Txn),
    writer: impl FnOnce(&mut Txn),
) {
    let doomed = writer_dooms_reader(reader, writer);
    assert_eq!(
        doomed, expected,
        "table cell violated: {what} (expected conflict={expected}, got doomed={doomed})"
    );
}
