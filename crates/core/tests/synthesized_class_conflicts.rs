//! Conformance suite for the three classes whose lock tables exist *only*
//! by synthesis from their declared conflict graphs (PR 6):
//! [`TransactionalMultiset`], [`TransactionalPriorityQueue`],
//! [`TransactionalIntervalMap`].
//!
//! Two layers, mirroring the paper-table suites:
//!
//! * a cell-driven sweep: for every `(mode, effect, overlap)` cell the
//!   class's declared graph reaches, run a live two-transaction execution
//!   realizing that cell and assert the doom verdict matches
//!   [`mode_compatible_spec`]. Cells a class cannot realize in isolation
//!   (its commits bundle the effect with another) must be compatible per
//!   the spec — a conflicting cell with no live scenario is a test bug.
//! * named table-style rows for the interesting pairs, matching the
//!   `table1_2_map_conflicts` idiom.

mod conflict_harness;

use conflict_harness::{assert_cell, writer_dooms_reader};
use std::sync::Arc;
use txcollections::{
    mode_compatible_spec, reachable_cells, ConflictGraph, ObsMode, TransactionalIntervalMap,
    TransactionalMultiset, TransactionalPriorityQueue, UpdateEffect, INTERVAL_MAP_CONFLICT_GRAPH,
    MULTISET_CONFLICT_GRAPH, PRIORITY_QUEUE_CONFLICT_GRAPH,
};

// ---------------------------------------------------------------------
// Cell-driven sweeps.
// ---------------------------------------------------------------------

/// Assert every reachable cell of `graph`: live verdict where a scenario
/// exists, and no conflicting cell left without one.
fn check_cells(
    graph: &ConflictGraph<'_>,
    live: impl Fn(ObsMode, UpdateEffect, bool) -> Option<bool>,
) {
    let class = graph.class;
    for (obs, effect, overlap) in reachable_cells(graph) {
        let expect_conflict = !mode_compatible_spec(obs, effect, overlap);
        match live(obs, effect, overlap) {
            Some(doomed) => assert_eq!(
                doomed, expect_conflict,
                "{class}: live verdict for cell ({obs:?}, {effect:?}, overlap={overlap})"
            ),
            None => assert!(
                !expect_conflict,
                "{class}: conflicting cell ({obs:?}, {effect:?}, overlap={overlap}) \
                 has no live scenario"
            ),
        }
    }
}

fn seeded_multiset(values: &[u32]) -> Arc<TransactionalMultiset<u32>> {
    let m = Arc::new(TransactionalMultiset::new());
    let (m2, values) = (m.clone(), values.to_vec());
    stm::atomic(move |tx| {
        for v in &values {
            m2.add(tx, *v);
        }
    });
    m
}

#[test]
fn multiset_every_reachable_cell_has_the_spec_verdict() {
    use ObsMode::*;
    use UpdateEffect::*;
    check_cells(&MULTISET_CONFLICT_GRAPH, |obs, effect, overlap| {
        match (obs, effect, overlap) {
            // count(v) vs add(v): same element.
            (Key, KeyWrite, true) => {
                let m = seeded_multiset(&[1]);
                let (r, w) = (m.clone(), m);
                Some(writer_dooms_reader(
                    move |tx| {
                        let _ = r.count(tx, &1);
                    },
                    move |tx| w.add(tx, 1),
                ))
            }
            // count(v) vs add(v'): distinct elements (SizeChange rides
            // along; the Key holder must ignore it).
            (Key, KeyWrite, false) | (Key, SizeChange, _) => {
                let m = seeded_multiset(&[1, 2]);
                let (r, w) = (m.clone(), m);
                Some(writer_dooms_reader(
                    move |tx| {
                        let _ = r.count(tx, &1);
                    },
                    move |tx| w.add(tx, 2),
                ))
            }
            // count(v) on an empty multiset vs the zero-crossing first add
            // of a different element.
            (Key, ZeroCross, _) => {
                let m = seeded_multiset(&[]);
                let (r, w) = (m.clone(), m);
                Some(writer_dooms_reader(
                    move |tx| {
                        let _ = r.count(tx, &1);
                    },
                    move |tx| w.add(tx, 2),
                ))
            }
            // len() vs any count change.
            (Size, SizeChange, _) => {
                let m = seeded_multiset(&[1]);
                let (r, w) = (m.clone(), m);
                Some(writer_dooms_reader(
                    move |tx| {
                        let _ = r.len(tx);
                    },
                    move |tx| w.add(tx, 2),
                ))
            }
            // Every multiset commit that writes an element also changes the
            // total count, so KeyWrite/ZeroCross cannot reach a Size holder
            // in isolation — compatible per spec, checked by the matrix.
            (Size, KeyWrite, _) | (Size, ZeroCross, _) => None,
            // isEmpty() vs the zero-crossing first add.
            (Empty, ZeroCross, _) => {
                let m = seeded_multiset(&[]);
                let (r, w) = (m.clone(), m);
                Some(writer_dooms_reader(
                    move |tx| {
                        let _ = r.is_empty_primitive(tx);
                    },
                    move |tx| w.add(tx, 1),
                ))
            }
            // isEmpty() vs a non-crossing add (KeyWrite + SizeChange ride
            // along and must not doom the Empty holder).
            (Empty, SizeChange, _) | (Empty, KeyWrite, _) => {
                let m = seeded_multiset(&[1]);
                let (r, w) = (m.clone(), m);
                Some(writer_dooms_reader(
                    move |tx| {
                        let _ = r.is_empty_primitive(tx);
                    },
                    move |tx| w.add(tx, 2),
                ))
            }
            _ => None,
        }
    });
}

fn seeded_pq(values: &[u64]) -> Arc<TransactionalPriorityQueue<u64>> {
    let q = Arc::new(TransactionalPriorityQueue::new());
    let (q2, values) = (q.clone(), values.to_vec());
    stm::atomic(move |tx| {
        for v in &values {
            q2.insert(tx, *v);
        }
    });
    q
}

#[test]
fn priority_queue_every_reachable_cell_has_the_spec_verdict() {
    use ObsMode::*;
    use UpdateEffect::*;
    check_cells(&PRIORITY_QUEUE_CONFLICT_GRAPH, |obs, effect, overlap| {
        match (obs, effect, overlap) {
            // peek_min()=5 vs insert(5): duplicate of the observed minimum
            // — a key overlap with no endpoint movement.
            (Key, KeyWrite, true) => {
                let q = seeded_pq(&[5]);
                let (r, w) = (q.clone(), q);
                Some(writer_dooms_reader(
                    move |tx| {
                        let _ = r.peek_min(tx);
                    },
                    move |tx| w.insert(tx, 5),
                ))
            }
            // peek_min()=5 vs insert(7): different key, minimum unmoved
            // (SizeChange rides along; First and Key holders ignore it).
            (Key, KeyWrite, false)
            | (Key, SizeChange, _)
            | (First, KeyWrite, _)
            | (First, SizeChange, _) => {
                let q = seeded_pq(&[5]);
                let (r, w) = (q.clone(), q);
                Some(writer_dooms_reader(
                    move |tx| {
                        let _ = r.peek_min(tx);
                    },
                    move |tx| w.insert(tx, 7),
                ))
            }
            // peek_min()=5 vs insert(3): the minimum moves.
            (First, FirstChange, _) => {
                let q = seeded_pq(&[5]);
                let (r, w) = (q.clone(), q);
                Some(writer_dooms_reader(
                    move |tx| {
                        let _ = r.peek_min(tx);
                    },
                    move |tx| w.insert(tx, 3),
                ))
            }
            // No queue operation observes Key without also holding First,
            // and every commit changes the size — these bundles cannot be
            // isolated live; all compatible per spec.
            (Key, FirstChange, _)
            | (Key, ZeroCross, _)
            | (First, ZeroCross, _)
            | (Size, KeyWrite, _)
            | (Size, ZeroCross, _)
            | (Size, FirstChange, _)
            | (Empty, FirstChange, _) => None,
            // len() vs any size change.
            (Size, SizeChange, _) => {
                let q = seeded_pq(&[5]);
                let (r, w) = (q.clone(), q);
                Some(writer_dooms_reader(
                    move |tx| {
                        let _ = r.len(tx);
                    },
                    move |tx| w.insert(tx, 9),
                ))
            }
            // isEmpty() vs the zero-crossing first insert.
            (Empty, ZeroCross, _) => {
                let q = seeded_pq(&[]);
                let (r, w) = (q.clone(), q);
                Some(writer_dooms_reader(
                    move |tx| {
                        let _ = r.is_empty_primitive(tx);
                    },
                    move |tx| w.insert(tx, 1),
                ))
            }
            // isEmpty() vs a non-crossing insert (even one that moves the
            // minimum: FirstChange must not doom an Empty holder).
            (Empty, SizeChange, _) | (Empty, KeyWrite, _) => {
                let q = seeded_pq(&[5]);
                let (r, w) = (q.clone(), q);
                Some(writer_dooms_reader(
                    move |tx| {
                        let _ = r.is_empty_primitive(tx);
                    },
                    move |tx| w.insert(tx, 3),
                ))
            }
            _ => None,
        }
    });
}

fn seeded_intervals(spans: &[(u32, u32)]) -> Arc<TransactionalIntervalMap<u32, &'static str>> {
    let m = Arc::new(TransactionalIntervalMap::new());
    let (m2, spans) = (m.clone(), spans.to_vec());
    stm::atomic(move |tx| {
        for (lo, hi) in &spans {
            m2.insert(tx, *lo, *hi, "seed");
        }
    });
    m
}

#[test]
fn interval_map_every_reachable_cell_has_the_spec_verdict() {
    use ObsMode::*;
    use UpdateEffect::*;
    check_cells(&INTERVAL_MAP_CONFLICT_GRAPH, |obs, effect, overlap| {
        match (obs, effect, overlap) {
            // stab(5) vs an insert whose span covers 5.
            (Range, KeyWrite, true) => {
                let m = seeded_intervals(&[(1, 10)]);
                let (r, w) = (m.clone(), m);
                Some(writer_dooms_reader(
                    move |tx| {
                        let _ = r.stab(tx, &5);
                    },
                    move |tx| {
                        w.insert(tx, 4, 6, "overlapping");
                    },
                ))
            }
            // stab(5) vs a disjoint insert (SizeChange rides along).
            (Range, KeyWrite, false) | (Range, SizeChange, _) => {
                let m = seeded_intervals(&[(1, 10)]);
                let (r, w) = (m.clone(), m);
                Some(writer_dooms_reader(
                    move |tx| {
                        let _ = r.stab(tx, &5);
                    },
                    move |tx| {
                        w.insert(tx, 20, 30, "disjoint");
                    },
                ))
            }
            // stab(5) on an empty map vs the zero-crossing first insert of
            // a disjoint span.
            (Range, ZeroCross, _) => {
                let m = seeded_intervals(&[]);
                let (r, w) = (m.clone(), m);
                Some(writer_dooms_reader(
                    move |tx| {
                        let _ = r.stab(tx, &5);
                    },
                    move |tx| {
                        w.insert(tx, 20, 30, "first");
                    },
                ))
            }
            // len() vs any interval-count change.
            (Size, SizeChange, _) => {
                let m = seeded_intervals(&[(1, 10)]);
                let (r, w) = (m.clone(), m);
                Some(writer_dooms_reader(
                    move |tx| {
                        let _ = r.len(tx);
                    },
                    move |tx| {
                        w.insert(tx, 20, 30, "new");
                    },
                ))
            }
            // Inserts and removals always change the interval count, so
            // KeyWrite/ZeroCross never reach a Size holder alone.
            (Size, KeyWrite, _) | (Size, ZeroCross, _) => None,
            // isEmpty() vs the zero-crossing first insert.
            (Empty, ZeroCross, _) => {
                let m = seeded_intervals(&[]);
                let (r, w) = (m.clone(), m);
                Some(writer_dooms_reader(
                    move |tx| {
                        let _ = r.is_empty_primitive(tx);
                    },
                    move |tx| {
                        w.insert(tx, 1, 10, "first");
                    },
                ))
            }
            // isEmpty() vs a non-crossing insert.
            (Empty, SizeChange, _) | (Empty, KeyWrite, _) => {
                let m = seeded_intervals(&[(1, 10)]);
                let (r, w) = (m.clone(), m);
                Some(writer_dooms_reader(
                    move |tx| {
                        let _ = r.is_empty_primitive(tx);
                    },
                    move |tx| {
                        w.insert(tx, 20, 30, "second");
                    },
                ))
            }
            _ => None,
        }
    });
}

// ---------------------------------------------------------------------
// Named table-style rows: the pairs worth calling out by name.
// ---------------------------------------------------------------------

#[test]
fn multiset_remove_one_conflicts_with_concurrent_remove_of_same_element() {
    let m = seeded_multiset(&[1, 1]);
    let (r, w) = (m.clone(), m);
    assert_cell(
        true,
        "remove_one(v) reads the count it decrements: the declared reflexive \
         self-edge must doom it under a racing remove_one(v)",
        move |tx| {
            assert!(r.remove_one(tx, &1));
        },
        move |tx| {
            assert!(w.remove_one(tx, &1));
        },
    );
}

#[test]
fn multiset_remove_one_of_distinct_elements_commutes() {
    let m = seeded_multiset(&[1, 2]);
    let (r, w) = (m.clone(), m);
    assert_cell(
        false,
        "remove_one(v1) vs remove_one(v2) — distinct elements commute",
        move |tx| {
            assert!(r.remove_one(tx, &1));
        },
        move |tx| {
            assert!(w.remove_one(tx, &2));
        },
    );
}

#[test]
fn multiset_count_survives_add_of_other_element_but_not_own() {
    let m = seeded_multiset(&[7]);
    let (r, w) = (m.clone(), m);
    assert_cell(
        true,
        "count(v) vs remove_one(v) — the observed count changes",
        move |tx| {
            assert_eq!(r.count(tx, &7), 1);
        },
        move |tx| {
            assert!(w.remove_one(tx, &7));
        },
    );
}

#[test]
fn priority_queue_peek_min_doomed_by_concurrent_pop_of_the_min() {
    let q = seeded_pq(&[5, 8]);
    let (r, w) = (q.clone(), q);
    assert_cell(
        true,
        "peek_min()=5 vs pop_min() removing 5 — key overlap plus endpoint move",
        move |tx| {
            assert_eq!(r.peek_min(tx), Some(5));
        },
        move |tx| {
            assert_eq!(w.pop_min(tx), Some(5));
        },
    );
}

#[test]
fn priority_queue_pop_min_self_conflicts() {
    let q = seeded_pq(&[5, 8]);
    let (r, w) = (q.clone(), q);
    assert_cell(
        true,
        "pop_min() vs pop_min() — both target the same minimum (reflexive edge)",
        move |tx| {
            assert_eq!(r.pop_min(tx), Some(5));
        },
        move |tx| {
            assert_eq!(w.pop_min(tx), Some(5));
        },
    );
}

#[test]
fn priority_queue_empty_peek_doomed_by_first_insert() {
    let q = seeded_pq(&[]);
    let (r, w) = (q.clone(), q);
    assert_cell(
        true,
        "peek_min()=None holds the empty lock; the first insert crosses zero",
        move |tx| {
            assert_eq!(r.peek_min(tx), None);
        },
        move |tx| {
            w.insert(tx, 1);
        },
    );
}

#[test]
fn interval_map_stab_doomed_by_removal_of_covering_interval() {
    let m = seeded_intervals(&[(1, 10), (20, 30)]);
    let covering = stm::atomic({
        let m = m.clone();
        move |tx| m.stab(tx, &5)
    });
    let id = covering[0].0;
    let (r, w) = (m.clone(), m);
    assert_cell(
        true,
        "stab(5) vs remove of the covering [1,10) interval",
        move |tx| {
            assert_eq!(r.stab(tx, &5).len(), 1);
        },
        move |tx| {
            assert!(w.remove(tx, id));
        },
    );
}

#[test]
fn interval_map_stab_survives_removal_of_disjoint_interval() {
    let m = seeded_intervals(&[(1, 10), (20, 30)]);
    let disjoint = stm::atomic({
        let m = m.clone();
        move |tx| m.stab(tx, &25)
    });
    let id = disjoint[0].0;
    let (r, w) = (m.clone(), m);
    assert_cell(
        false,
        "stab(5) vs remove of the disjoint [20,30) interval",
        move |tx| {
            assert_eq!(r.stab(tx, &5).len(), 1);
        },
        move |tx| {
            assert!(w.remove(tx, id));
        },
    );
}

#[test]
fn interval_map_overlapping_query_doomed_by_intersecting_insert() {
    let m = seeded_intervals(&[(1, 10)]);
    let (r, w) = (m.clone(), m);
    assert_cell(
        true,
        "overlapping(0,15) vs insert(12,14) inside the queried window",
        move |tx| {
            assert_eq!(r.overlapping(tx, 0, 15).len(), 1);
        },
        move |tx| {
            w.insert(tx, 12, 14, "inside");
        },
    );
}

#[test]
fn interval_map_overlapping_query_survives_disjoint_insert() {
    let m = seeded_intervals(&[(1, 10)]);
    let (r, w) = (m.clone(), m);
    assert_cell(
        false,
        "overlapping(0,15) vs insert(40,50) outside the queried window",
        move |tx| {
            assert_eq!(r.overlapping(tx, 0, 15).len(), 1);
        },
        move |tx| {
            w.insert(tx, 40, 50, "outside");
        },
    );
}

#[test]
fn interval_map_len_doomed_by_removal() {
    let m = seeded_intervals(&[(1, 10), (20, 30)]);
    let covering = stm::atomic({
        let m = m.clone();
        move |tx| m.stab(tx, &5)
    });
    let id = covering[0].0;
    let (r, w) = (m.clone(), m);
    assert_cell(
        true,
        "len() vs remove — the interval count changes",
        move |tx| {
            assert_eq!(r.len(tx), 2);
        },
        move |tx| {
            assert!(w.remove(tx, id));
        },
    );
}
