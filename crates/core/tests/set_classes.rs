//! Tests for `TransactionalSet` / `TransactionalSortedSet` — the §5.1
//! wrappers over the transactional maps.

mod conflict_harness;
use conflict_harness::assert_cell;
use std::ops::Bound;
use std::sync::Arc;
use stm::atomic;
use txcollections::{TransactionalSet, TransactionalSortedSet};

#[test]
fn set_add_remove_contains() {
    let s: TransactionalSet<u32> = TransactionalSet::new();
    atomic(|tx| {
        assert!(s.add(tx, 1));
        assert!(!s.add(tx, 1), "second add of same element");
        assert!(s.contains(tx, &1));
        assert_eq!(s.size(tx), 1);
        assert!(s.remove(tx, &1));
        assert!(!s.remove(tx, &1));
        assert!(s.is_empty(tx));
    });
}

#[test]
fn set_membership_conflicts_follow_map_rules() {
    // contains(false) vs add of that element conflicts (key lock).
    let s: TransactionalSet<u32> = TransactionalSet::new();
    let (r, w) = (s.clone(), s.clone());
    assert_cell(
        true,
        "contains(x)=false vs add(x)",
        move |tx| {
            assert!(!r.contains(tx, &5));
        },
        move |tx| {
            w.add(tx, 5);
        },
    );
    // Blind adds of different elements commute.
    let s: TransactionalSet<u32> = TransactionalSet::new();
    let (a, b) = (s.clone(), s.clone());
    assert_cell(
        false,
        "add_discard(1) vs add_discard(2)",
        move |tx| {
            a.add_discard(tx, 1);
        },
        move |tx| {
            b.add_discard(tx, 2);
        },
    );
    // Blind adds of the SAME element commute too (information hiding).
    let s: TransactionalSet<u32> = TransactionalSet::new();
    let (a, b) = (s.clone(), s.clone());
    assert_cell(
        false,
        "add_discard(1) vs add_discard(1)",
        move |tx| {
            a.add_discard(tx, 1);
        },
        move |tx| {
            b.add_discard(tx, 1);
        },
    );
}

#[test]
fn sorted_set_orders_and_ranges() {
    let s: TransactionalSortedSet<i32> = TransactionalSortedSet::new();
    atomic(|tx| {
        for x in [5, 1, 9, 3, 7] {
            s.add(tx, x);
        }
        assert_eq!(s.elements(tx), vec![1, 3, 5, 7, 9]);
        assert_eq!(s.first(tx), Some(1));
        assert_eq!(s.last(tx), Some(9));
        assert_eq!(
            s.range(tx, Bound::Included(3), Bound::Excluded(8)),
            vec![3, 5, 7]
        );
        assert_eq!(s.size(tx), 5);
    });
}

#[test]
fn sorted_set_range_conflicts() {
    let s: TransactionalSortedSet<i32> = TransactionalSortedSet::new();
    atomic(|tx| {
        for x in [10, 20, 30] {
            s.add(tx, x);
        }
    });
    let (r, w) = (s.clone(), s.clone());
    assert_cell(
        true,
        "range [10,30] vs add(15) inside",
        move |tx| {
            r.range(tx, Bound::Included(10), Bound::Included(30));
        },
        move |tx| {
            w.add(tx, 15);
        },
    );
    let (r, w) = (s.clone(), s.clone());
    assert_cell(
        false,
        "range [10,20] vs add(25) outside",
        move |tx| {
            r.range(tx, Bound::Included(10), Bound::Included(20));
        },
        move |tx| {
            w.add(tx, 25);
        },
    );
}

#[test]
fn concurrent_set_membership_is_exact() {
    let s: Arc<TransactionalSet<u64>> = Arc::new(TransactionalSet::new());
    std::thread::scope(|sc| {
        for t in 0..4u64 {
            let s = s.clone();
            sc.spawn(move || {
                for i in 0..200u64 {
                    let x = t * 1000 + i;
                    atomic(|tx| {
                        s.add_discard(tx, x);
                        if i % 3 == 0 {
                            s.remove(tx, &x);
                        }
                    });
                }
            });
        }
    });
    let n = atomic(|tx| s.size(tx));
    // Each thread: 200 adds, 67 of which are immediately removed (i%3==0
    // for i in 0..200 -> 67 values).
    assert_eq!(n, 4 * (200 - 67));
}
