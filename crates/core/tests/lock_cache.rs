//! Conformance and safety of the txn-local semantic lock cache (PR 8).
//!
//! The cache is a pure performance transform: repeating an observation
//! inside one transaction must change nothing about the doom verdict, the
//! release sweep, or the post-transaction lock-table state — it may only
//! skip redundant stripe visits. Three layers check that:
//!
//! 1. Replayed oracle cells: every reachable conflict-matrix cell is driven
//!    with the observer op repeated (second and later repeats are cache
//!    hits) and must deliver the same verdict as the single-op run.
//! 2. Stripe invariance: repeated-op cells at stripe counts 1, 2, and 16
//!    agree with the abstract matrix, so caching composes with striping.
//! 3. Accounting + release: interleaved cached/uncached ops acquire exactly
//!    one stripe lock per distinct (kind, key) footprint entry, and the
//!    release sweep leaves zero locked keys after commit AND after abort —
//!    including a doomed-then-retried transaction, whose fresh attempt must
//!    re-acquire from an empty cache (the stale-cache regression).

mod conflict_harness;

use conflict_harness::writer_dooms_reader;
use proptest::prelude::*;
use std::ops::Bound;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use txcollections::{
    mode_compatible, Channel, ObsMode, TransactionalMap, TransactionalQueue,
    TransactionalSortedMap, UpdateEffect,
};

const REPEATS: usize = 3;

fn seeded_map(nstripes: usize, pairs: &[(u32, &str)]) -> Arc<TransactionalMap<u32, String>> {
    let m = Arc::new(TransactionalMap::with_stripes(nstripes));
    let m2 = m.clone();
    let pairs: Vec<(u32, String)> = pairs.iter().map(|(k, v)| (*k, v.to_string())).collect();
    stm::atomic(move |tx| {
        for (k, v) in &pairs {
            m2.put_discard(tx, *k, v.clone());
        }
    });
    m
}

fn seeded_sorted(keys: &[u32]) -> Arc<TransactionalSortedMap<u32, u32>> {
    let m = Arc::new(TransactionalSortedMap::new());
    let (m2, keys) = (m.clone(), keys.to_vec());
    stm::atomic(move |tx| {
        for k in &keys {
            m2.put_discard(tx, *k, *k);
        }
    });
    m
}

/// Drive one reachable oracle cell with the observer op repeated `REPEATS`
/// times (all repeats after the first are answered by the lock cache) and
/// return whether the observer was doomed by the writer's commit.
fn drive_cell_repeated(obs: ObsMode, effect: UpdateEffect, overlap: bool) -> Option<bool> {
    match (obs, effect) {
        (ObsMode::Key, UpdateEffect::KeyWrite) => {
            let m = seeded_map(8, &[(1, "a"), (2, "b")]);
            let (r, w) = (m.clone(), m);
            let wkey = if overlap { 1 } else { 2 };
            Some(writer_dooms_reader(
                move |tx| {
                    for _ in 0..REPEATS {
                        let _ = r.get(tx, &1);
                    }
                },
                move |tx| w.put_discard(tx, wkey, "new".into()),
            ))
        }
        (ObsMode::Size, UpdateEffect::SizeChange) => {
            let m = seeded_map(8, &[(1, "a")]);
            let (r, w) = (m.clone(), m);
            Some(writer_dooms_reader(
                move |tx| {
                    for _ in 0..REPEATS {
                        let _ = r.size(tx);
                    }
                },
                move |tx| w.put_discard(tx, 9, "new".into()),
            ))
        }
        (ObsMode::Empty, UpdateEffect::ZeroCross) => {
            let m = seeded_map(8, &[]);
            let (r, w) = (m.clone(), m);
            Some(writer_dooms_reader(
                move |tx| {
                    for _ in 0..REPEATS {
                        let _ = r.is_empty_primitive(tx);
                    }
                },
                move |tx| w.put_discard(tx, 1, "first".into()),
            ))
        }
        (ObsMode::First, UpdateEffect::FirstChange) => {
            let m = seeded_sorted(&[10, 20, 30]);
            let (r, w) = (m.clone(), m);
            Some(writer_dooms_reader(
                move |tx| {
                    for _ in 0..REPEATS {
                        let _ = r.first_key(tx);
                    }
                },
                move |tx| w.put_discard(tx, 5, 5),
            ))
        }
        (ObsMode::Last, UpdateEffect::LastChange) => {
            let m = seeded_sorted(&[10, 20, 30]);
            let (r, w) = (m.clone(), m);
            Some(writer_dooms_reader(
                move |tx| {
                    for _ in 0..REPEATS {
                        let _ = r.last_key(tx);
                    }
                },
                move |tx| w.put_discard(tx, 40, 40),
            ))
        }
        (ObsMode::Range, UpdateEffect::KeyWrite) => {
            let m = seeded_sorted(&[10, 20, 30, 40]);
            let (r, w) = (m.clone(), m);
            let wkey = if overlap { 15 } else { 35 };
            Some(writer_dooms_reader(
                move |tx| {
                    for _ in 0..REPEATS {
                        let _ = r.range_entries(tx, Bound::Included(10), Bound::Included(20));
                    }
                },
                move |tx| w.put_discard(tx, wkey, wkey),
            ))
        }
        (ObsMode::Full, UpdateEffect::Consume) => {
            let q = Arc::new(TransactionalQueue::bounded(1));
            let q2 = q.clone();
            stm::atomic(move |tx| q2.put(tx, 7u32));
            let (r, w) = (q.clone(), q);
            Some(writer_dooms_reader(
                move |tx| {
                    for _ in 0..REPEATS {
                        assert!(!r.offer(tx, 8), "bounded queue at capacity");
                    }
                },
                move |tx| {
                    let _ = w.poll(tx);
                },
            ))
        }
        _ => None,
    }
}

#[test]
fn repeated_observers_deliver_each_cell_verdict() {
    let mut driven = 0;
    for obs in ObsMode::ALL {
        for effect in UpdateEffect::ALL {
            for overlap in [false, true] {
                if let Some(doomed) = drive_cell_repeated(obs, effect, overlap) {
                    driven += 1;
                    assert_eq!(
                        doomed,
                        !mode_compatible(obs, effect, overlap),
                        "cached replay disagrees with oracle at \
                         ({obs:?}, {effect:?}, overlap={overlap})"
                    );
                }
            }
        }
    }
    assert!(driven >= 8, "only {driven} repeated cells driven");
}

#[test]
fn repeated_key_cells_are_stripe_invariant() {
    for nstripes in [1, 2, 16] {
        for (rkey, wkey, overlap) in [(1u32, 1u32, true), (1, 2, false)] {
            let m = seeded_map(nstripes, &[(rkey, "r"), (wkey, "w")]);
            let (r, w) = (m.clone(), m);
            let doomed = writer_dooms_reader(
                move |tx| {
                    for _ in 0..REPEATS {
                        let _ = r.get(tx, &rkey);
                    }
                },
                move |tx| w.put_discard(tx, wkey, "new".into()),
            );
            assert_eq!(
                doomed,
                !mode_compatible(ObsMode::Key, UpdateEffect::KeyWrite, overlap),
                "cached key cell diverges at {nstripes} stripes \
                 (rkey={rkey}, wkey={wkey})"
            );
        }
    }
}

/// One stripe acquisition per distinct footprint entry, cache hits for the
/// rest, and a clean table after commit.
#[test]
fn repeat_ops_acquire_once_and_release_cleanly() {
    let m = Arc::new(TransactionalMap::new());
    let m2 = m.clone();
    stm::atomic(move |tx| {
        m2.put_discard(tx, 1u32, "a".to_string());
        m2.put_discard(tx, 2, "b".to_string());
    });
    let stats = m.semantic_stats();
    let acq0 = stats.lock_acquisitions.load(Ordering::Relaxed);
    let hits0 = stats.lock_cache_hits.load(Ordering::Relaxed);

    let m2 = m.clone();
    stm::atomic(move |tx| {
        for _ in 0..4 {
            let _ = m2.get(tx, &1); // Key(1): one take, three hits
        }
        let _ = m2.get(tx, &2); // Key(2): one take
        for _ in 0..3 {
            let _ = m2.size(tx); // Size: one take, two hits
        }
    });

    let acq = stats.lock_acquisitions.load(Ordering::Relaxed) - acq0;
    let hits = stats.lock_cache_hits.load(Ordering::Relaxed) - hits0;
    assert_eq!(acq, 3, "distinct footprint is {{Key(1), Key(2), Size}}");
    assert_eq!(hits, 5, "repeats beyond the first are cache hits");
    assert_eq!(m.locked_key_count(), 0, "commit sweep must release all");
}

/// A doomed transaction's retry starts from an empty cache: the fresh
/// attempt re-acquires its locks (no stale hit against a lock the abort
/// sweep already released) and observes the writer's committed value.
#[test]
fn doomed_retry_starts_with_cold_cache() {
    let m = seeded_map(8, &[(1, "old")]);
    let stats = m.semantic_stats();

    let (_, t1) = stm::speculate(
        {
            let r = m.clone();
            move |tx| {
                for _ in 0..REPEATS {
                    let _ = r.get(tx, &1);
                }
            }
        },
        0,
    )
    .expect("reader speculation");
    let (_, t2) = stm::speculate(
        {
            let w = m.clone();
            move |tx| w.put_discard(tx, 1, "new".into())
        },
        0,
    )
    .expect("writer speculation");
    t2.commit();
    assert!(
        t1.handle().is_doomed(),
        "same-key write must doom the reader"
    );
    t1.abort(stm::AbortCause::Doomed);
    assert_eq!(m.locked_key_count(), 0, "abort sweep must release all");

    // The retry is a fresh Txn: its first get must take the stripe lock
    // again (one new acquisition), not answer from a dead cache.
    let acq0 = stats.lock_acquisitions.load(Ordering::Relaxed);
    let m2 = m.clone();
    let seen = stm::atomic(move |tx| m2.get(tx, &1));
    assert_eq!(seen.as_deref(), Some("new"));
    assert_eq!(
        stats.lock_acquisitions.load(Ordering::Relaxed) - acq0,
        1,
        "fresh attempt re-acquires the key lock"
    );
    assert_eq!(m.locked_key_count(), 0);
}

/// Read-only ops on a fresh transaction must not force-create a locals
/// entry beyond what lock recording needs, and flattened reads must not
/// count as open-nested commits.
#[test]
fn flattened_reads_skip_open_commits() {
    let m = seeded_map(8, &[(1, "a")]);
    let before = stm::global_stats();
    let m2 = m.clone();
    stm::atomic(move |tx| {
        let _ = m2.get(tx, &1);
        let _ = m2.size(tx);
    });
    let d = stm::global_stats().diff(&before);
    assert_eq!(d.open_commits, 0, "read-only ops flatten; no child commits");
    assert!(d.open_flattened >= 2, "each read validates in place");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random interleavings of cached and uncached observations: the
    /// acquisition count equals the distinct (kind, key) footprint, the
    /// hit count is the remainder, and the sweep releases everything.
    #[test]
    fn interleaved_ops_acquire_exactly_the_footprint(
        ops in prop::collection::vec((0u8..3, 0u32..4), 1..24)
    ) {
        let m = Arc::new(TransactionalMap::new());
        let m2 = m.clone();
        stm::atomic(move |tx| {
            for k in 0u32..4 {
                m2.put_discard(tx, k, format!("v{k}"));
            }
        });
        let stats = m.semantic_stats();
        let acq0 = stats.lock_acquisitions.load(Ordering::Relaxed);
        let hits0 = stats.lock_cache_hits.load(Ordering::Relaxed);

        let m2 = m.clone();
        let ops2 = ops.clone();
        stm::atomic(move |tx| {
            for &(kind, key) in &ops2 {
                match kind {
                    0 => { let _ = m2.get(tx, &key); }
                    1 => { let _ = m2.size(tx); }
                    _ => { let _ = m2.is_empty_primitive(tx); }
                }
            }
        });

        let mut footprint = std::collections::HashSet::new();
        for &(kind, key) in &ops {
            footprint.insert(match kind {
                0 => (0u8, key),
                1 => (1, u32::MAX),
                _ => (2, u32::MAX),
            });
        }
        let acq = stats.lock_acquisitions.load(Ordering::Relaxed) - acq0;
        let hits = stats.lock_cache_hits.load(Ordering::Relaxed) - hits0;
        prop_assert_eq!(acq, footprint.len() as u64);
        prop_assert_eq!(acq + hits, ops.len() as u64);
        prop_assert_eq!(m.locked_key_count(), 0);
    }
}
