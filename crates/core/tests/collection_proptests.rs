//! Property tests for the collection classes: single-transaction behaviour
//! must match the plain `std` model exactly (buffer merging, iteration
//! order, views), and the queue must conserve elements under arbitrary
//! operation/abort interleavings.

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::atomic::{AtomicU32, Ordering};
use stm::atomic;
use txcollections::{Channel, TransactionalMap, TransactionalQueue, TransactionalSortedMap};

#[derive(Debug, Clone)]
enum MapOp {
    Get(u16),
    Put(u16, u32),
    PutDiscard(u16, u32),
    Remove(u16),
    RemoveDiscard(u16),
    Size,
    Contains(u16),
}

fn map_op() -> impl Strategy<Value = MapOp> {
    prop_oneof![
        any::<u16>().prop_map(|k| MapOp::Get(k % 48)),
        (any::<u16>(), any::<u32>()).prop_map(|(k, v)| MapOp::Put(k % 48, v)),
        (any::<u16>(), any::<u32>()).prop_map(|(k, v)| MapOp::PutDiscard(k % 48, v)),
        any::<u16>().prop_map(|k| MapOp::Remove(k % 48)),
        any::<u16>().prop_map(|k| MapOp::RemoveDiscard(k % 48)),
        Just(MapOp::Size),
        any::<u16>().prop_map(|k| MapOp::Contains(k % 48)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A whole random program inside ONE transaction must behave like a
    /// plain map — the store buffer, delta, and blind-write machinery are
    /// invisible to the user.
    #[test]
    fn transactional_map_matches_model_in_one_txn(
        preload in prop::collection::btree_map(any::<u16>().prop_map(|k| k % 48), any::<u32>(), 0..20),
        ops in prop::collection::vec(map_op(), 1..40),
    ) {
        let map: TransactionalMap<u16, u32> = TransactionalMap::new();
        atomic(|tx| {
            for (k, v) in &preload {
                map.put_discard(tx, *k, *v);
            }
        });
        let mut model: BTreeMap<u16, u32> = preload.clone();
        atomic(|tx| {
            let mut m = preload.clone();
            for op in &ops {
                match op {
                    MapOp::Get(k) => assert_eq!(map.get(tx, k), m.get(k).copied()),
                    MapOp::Put(k, v) => {
                        assert_eq!(map.put(tx, *k, *v), m.insert(*k, *v));
                    }
                    MapOp::PutDiscard(k, v) => {
                        map.put_discard(tx, *k, *v);
                        m.insert(*k, *v);
                    }
                    MapOp::Remove(k) => {
                        assert_eq!(map.remove(tx, k), m.remove(k));
                    }
                    MapOp::RemoveDiscard(k) => {
                        map.remove_discard(tx, k);
                        m.remove(k);
                    }
                    MapOp::Size => assert_eq!(map.size(tx), m.len()),
                    MapOp::Contains(k) => {
                        assert_eq!(map.contains_key(tx, k), m.contains_key(k))
                    }
                }
            }
            model = m;
        });
        // Committed state equals the model after commit.
        let mut got = atomic(|tx| map.entries(tx));
        got.sort_unstable();
        let want: Vec<(u16, u32)> = model.into_iter().collect();
        prop_assert_eq!(got, want);
    }

    /// Same for the sorted map, which must additionally iterate in key
    /// order and answer range/navigation queries like `BTreeMap`.
    #[test]
    fn sorted_map_matches_model_in_one_txn(
        preload in prop::collection::btree_map(any::<u16>().prop_map(|k| k % 48), any::<u32>(), 0..20),
        ops in prop::collection::vec(map_op(), 1..30),
        probe in any::<u16>(),
        lo in any::<u16>(),
        hi in any::<u16>(),
    ) {
        let probe = probe % 48;
        let (lo, hi) = ((lo % 48).min(hi % 48), (lo % 48).max(hi % 48));
        let map: TransactionalSortedMap<u16, u32> = TransactionalSortedMap::new();
        atomic(|tx| {
            for (k, v) in &preload {
                map.put_discard(tx, *k, *v);
            }
        });
        atomic(|tx| {
            let mut m = preload.clone();
            for op in &ops {
                match op {
                    MapOp::Get(k) => assert_eq!(map.get(tx, k), m.get(k).copied()),
                    MapOp::Put(k, v) => {
                        assert_eq!(map.put(tx, *k, *v), m.insert(*k, *v));
                    }
                    MapOp::PutDiscard(k, v) => {
                        map.put_discard(tx, *k, *v);
                        m.insert(*k, *v);
                    }
                    MapOp::Remove(k) => {
                        assert_eq!(map.remove(tx, k), m.remove(k));
                    }
                    MapOp::RemoveDiscard(k) => {
                        map.remove_discard(tx, k);
                        m.remove(k);
                    }
                    MapOp::Size => assert_eq!(map.size(tx), m.len()),
                    MapOp::Contains(k) => {
                        assert_eq!(map.contains_key(tx, k), m.contains_key(k))
                    }
                }
            }
            // Merged iteration in key order.
            let got = map.entries(tx);
            let want: Vec<(u16, u32)> = m.iter().map(|(k, v)| (*k, *v)).collect();
            assert_eq!(got, want, "merged iteration diverged");
            // Range query.
            let got = map.range_entries(tx, Bound::Included(lo), Bound::Excluded(hi));
            let want: Vec<(u16, u32)> = m
                .range((Bound::Included(lo), Bound::Excluded(hi)))
                .map(|(k, v)| (*k, *v))
                .collect();
            assert_eq!(got, want, "range query diverged");
            // Endpoints and navigation.
            assert_eq!(map.first_key(tx), m.keys().next().copied());
            assert_eq!(map.last_key(tx), m.keys().next_back().copied());
            assert_eq!(
                map.ceiling_key(tx, &probe),
                m.range(probe..).next().map(|(k, _)| *k)
            );
            assert_eq!(
                map.floor_key(tx, &probe),
                m.range(..=probe).next_back().map(|(k, _)| *k)
            );
            assert_eq!(
                map.higher_key(tx, &probe),
                m.range((Bound::Excluded(probe), Bound::Unbounded)).next().map(|(k, _)| *k)
            );
            assert_eq!(
                map.lower_key(tx, &probe),
                m.range(..probe).next_back().map(|(k, _)| *k)
            );
        });
    }

    /// Queue conservation under random ops with injected aborts: whatever
    /// was put and not polled by a committed transaction is still there.
    #[test]
    fn queue_conserves_elements(
        script in prop::collection::vec((0u8..3, any::<bool>()), 1..40)
    ) {
        let q: TransactionalQueue<u32> = TransactionalQueue::new();
        let mut next_item = 0u32;
        let mut committed_in: Vec<u32> = Vec::new();
        let mut committed_out: Vec<u32> = Vec::new();
        for (op, inject_abort) in script {
            let fail = AtomicU32::new(u32::from(inject_abort));
            match op {
                0 => {
                    let item = next_item;
                    next_item += 1;
                    let q2 = q.clone();
                    let ok = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        atomic(|tx| {
                            q2.put(tx, item);
                            if fail.swap(0, Ordering::SeqCst) == 1 {
                                stm::user_abort(); // abort WITHOUT retry
                            }
                        })
                    }))
                    .is_ok();
                    if ok {
                        committed_in.push(item);
                    }
                }
                1 => {
                    let q2 = q.clone();
                    let got = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        atomic(|tx| {
                            let it = q2.poll(tx);
                            if fail.swap(0, Ordering::SeqCst) == 1 {
                                stm::user_abort();
                            }
                            it
                        })
                    }));
                    if let Ok(Some(item)) = got {
                        committed_out.push(item);
                    }
                }
                _ => {
                    let q2 = q.clone();
                    let _ = atomic(|tx| q2.peek(tx));
                }
            }
        }
        let mut rest = atomic(|tx| {
            let mut v = Vec::new();
            while let Some(x) = q.poll(tx) {
                v.push(x);
            }
            v
        });
        let mut have: Vec<u32> = committed_out.clone();
        have.append(&mut rest);
        have.sort_unstable();
        committed_in.sort_unstable();
        prop_assert_eq!(have, committed_in, "queue lost or duplicated items");
    }
}
