//! Collection-layer snapshot reads (PR 9): every `snapshot_*` entry point
//! must return the committed answer while acquiring **zero semantic locks**
//! and executing **zero aborts** — the acceptance criterion of the
//! never-aborting read design — with the two non-capable cases (boosted
//! backends, the eager map) taking the *counted* validated fallback.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use stm::{atomic, global_stats};
use txcollections::{
    Channel, EagerPolicy, EagerTransactionalMap, TransactionalIntervalMap, TransactionalMap,
    TransactionalMultiset, TransactionalPriorityQueue, TransactionalQueue, TransactionalSet,
    TransactionalSortedMap, TransactionalSortedSet,
};

/// Serializes the tests asserting exact deltas on process-global counters.
static STATS_GATE: Mutex<()> = Mutex::new(());

fn lock_acqs(stats: &txcollections::SemanticStats) -> u64 {
    stats.lock_acquisitions.load(Ordering::Relaxed)
}

/// Every TVar-backed collection: one pass of snapshot reads returns the
/// committed answers with zero aborts, zero fallbacks, zero semantic-lock
/// acquisitions, and zero global-stripe visits.
#[test]
fn snapshot_reads_take_zero_locks_across_all_collections() {
    let _g = STATS_GATE.lock().unwrap();

    let map: TransactionalMap<u32, String> = TransactionalMap::new();
    let sorted: TransactionalSortedMap<u32, u32> = TransactionalSortedMap::new();
    let queue: TransactionalQueue<u32> = TransactionalQueue::new();
    let set: TransactionalSet<u32> = TransactionalSet::new();
    let sset: TransactionalSortedSet<u32> = TransactionalSortedSet::new();
    let mset: TransactionalMultiset<u32> = TransactionalMultiset::new();
    let pq: TransactionalPriorityQueue<u32> = TransactionalPriorityQueue::new();
    let ivl: TransactionalIntervalMap<u32, &'static str> = TransactionalIntervalMap::new();

    atomic(|tx| {
        for k in 1..=5u32 {
            map.put_discard(tx, k, format!("v{k}"));
            sorted.put_discard(tx, k, k * 10);
            queue.put(tx, k);
            set.add_discard(tx, k);
            sset.add(tx, k);
            mset.add_n(tx, k, u64::from(k));
            pq.insert(tx, k);
        }
        ivl.insert(tx, 10, 20, "a");
        ivl.insert(tx, 15, 30, "b");
    });

    let before = global_stats();
    let acq0: u64 = [
        lock_acqs(map.semantic_stats()),
        lock_acqs(sorted.semantic_stats()),
        lock_acqs(queue.semantic_stats()),
        lock_acqs(set.semantic_stats()),
        lock_acqs(sset.semantic_stats()),
        lock_acqs(mset.semantic_stats()),
        lock_acqs(pq.semantic_stats()),
        lock_acqs(ivl.semantic_stats()),
    ]
    .iter()
    .sum();

    assert_eq!(map.snapshot_get(&3), Some("v3".to_string()));
    assert!(map.snapshot_contains_key(&5));
    assert_eq!(map.snapshot_size(), 5);
    assert!(!map.snapshot_is_empty());
    assert_eq!(sorted.snapshot_get(&2), Some(20));
    assert_eq!(sorted.snapshot_size(), 5);
    assert_eq!(sorted.snapshot_first_key(), Some(1));
    assert_eq!(sorted.snapshot_last_key(), Some(5));
    assert_eq!(
        sorted.snapshot_entries(),
        (1..=5).map(|k| (k, k * 10)).collect::<Vec<_>>()
    );
    assert_eq!(queue.snapshot_peek(), Some(1));
    assert_eq!(queue.snapshot_len(), 5);
    assert!(!queue.snapshot_is_empty());
    assert!(set.snapshot_contains(&4));
    assert_eq!(set.snapshot_size(), 5);
    assert!(sset.snapshot_contains(&1));
    assert_eq!(sset.snapshot_size(), 5);
    assert_eq!(sset.snapshot_first(), Some(1));
    assert_eq!(sset.snapshot_last(), Some(5));
    assert_eq!(mset.snapshot_count(&4), 4);
    assert!(mset.snapshot_contains(&2));
    assert_eq!(mset.snapshot_len(), 15);
    assert_eq!(pq.snapshot_peek_min(), Some(1));
    assert_eq!(pq.snapshot_len(), 5);
    let stabbed = ivl.snapshot_stab(&18);
    assert_eq!(stabbed.len(), 2, "both [10,20] and [15,30] cover 18");
    assert_eq!(ivl.snapshot_overlapping(25, 40).len(), 1);
    assert_eq!(ivl.snapshot_len(), 2);

    let acq1: u64 = [
        lock_acqs(map.semantic_stats()),
        lock_acqs(sorted.semantic_stats()),
        lock_acqs(queue.semantic_stats()),
        lock_acqs(set.semantic_stats()),
        lock_acqs(sset.semantic_stats()),
        lock_acqs(mset.semantic_stats()),
        lock_acqs(pq.semantic_stats()),
        lock_acqs(ivl.semantic_stats()),
    ]
    .iter()
    .sum();
    let d = global_stats().diff(&before);

    assert_eq!(acq1 - acq0, 0, "a snapshot read reached a lock table");
    assert_eq!(d.aborts(), 0, "a snapshot read aborted: {d:?}");
    assert_eq!(d.snapshot_fallbacks, 0, "a TVar-backed snapshot fell back");
    assert_eq!(
        d.global_stripe_entries, 0,
        "a snapshot visited the global stripe"
    );
    assert_eq!(
        d.lock_cache_hits, 0,
        "snapshot skips must not count as cache hits"
    );
    assert!(d.snapshot_reads > 0, "snapshot reads not counted");
}

/// Boosted backends have no per-version history (reads bypass the TVar
/// layer), so their snapshot entry points take the validated fallback —
/// counted, correct, and not an abort.
#[test]
fn boosted_backend_snapshot_falls_back_counted() {
    let _g = STATS_GATE.lock().unwrap();
    let m: TransactionalMap<u32, u32, _> = TransactionalMap::boosted();
    atomic(|tx| m.put_discard(tx, 7, 70));

    let before = global_stats();
    assert_eq!(m.snapshot_get(&7), Some(70));
    let d = global_stats().diff(&before);
    assert_eq!(d.snapshot_fallbacks, 1, "boosted fallback must be counted");
    assert_eq!(d.aborts(), 0, "a fallback is not an abort");
}

/// The eager map is never snapshot-capable regardless of backend: its
/// in-place writes land as committed TVar versions before commit, so a
/// snapshot could observe uncommitted state. Always falls back, counted.
#[test]
fn eager_map_snapshot_always_falls_back() {
    let _g = STATS_GATE.lock().unwrap();
    let m: EagerTransactionalMap<u32, u32> = EagerTransactionalMap::new(EagerPolicy::WriterWaits);
    atomic(|tx| {
        m.put(tx, 1, 10);
    });

    let before = global_stats();
    assert_eq!(m.snapshot_get(&1), Some(10));
    let d = global_stats().diff(&before);
    assert_eq!(d.snapshot_fallbacks, 1, "eager fallback must be counted");
    assert_eq!(d.aborts(), 0);
}

/// The paper's size pain point, inverted: `snapshot_size` racing a writer
/// dooms nobody. A validated size observation holds the size lock in
/// observe mode and a size-changing put dooms it (or is doomed); the
/// snapshot path touches no lock at all, so a single uncontended writer
/// plus hammering snapshot observers commit with zero aborts total.
#[test]
fn snapshot_size_never_dooms_concurrent_writers() {
    let _g = STATS_GATE.lock().unwrap();
    let before = global_stats();
    let m: Arc<TransactionalMap<u64, u64>> = Arc::new(TransactionalMap::new());
    let observed_max = AtomicU64::new(0);
    std::thread::scope(|s| {
        {
            let m = m.clone();
            s.spawn(move || {
                for k in 0..400u64 {
                    atomic(|tx| m.put_discard(tx, k, k));
                }
            });
        }
        for _ in 0..2 {
            let m = m.clone();
            let observed_max = &observed_max;
            s.spawn(move || {
                let mut last = 0;
                for _ in 0..200 {
                    let n = m.snapshot_size() as u64;
                    assert!(
                        n >= last,
                        "snapshot sizes of a grow-only map went backwards"
                    );
                    last = n;
                }
                observed_max.fetch_max(last, Ordering::Relaxed);
            });
        }
    });
    assert_eq!(m.snapshot_size(), 400);
    let d = global_stats().diff(&before);
    // The depth bound is the one designed escape hatch left: an observer
    // preempted across more than MAX_CHAIN_DEPTH size-var publishes falls
    // back (counted) and its validated re-run holds the size lock in
    // observe mode — which the writer's next size-changing commit may doom
    // and retry. Served snapshots doom nobody and never abort, so with
    // zero fallbacks (the overwhelmingly common schedule) zero aborts is
    // exact; the writer completing all 400 puts (asserted above) shows the
    // observers never doomed it either way.
    assert!(
        d.snapshot_fallbacks <= 8,
        "fallbacks must be rare depth-bound events: {d:?}"
    );
    if d.snapshot_fallbacks == 0 {
        assert_eq!(
            d.aborts(),
            0,
            "snapshot size observers doomed the writer (or aborted): {d:?}"
        );
    }
}

/// Snapshot consistency across *different* collections in one
/// `atomic_read` is **semantic-commit granular**: a collection commit
/// publishes its shared state through a short sequence of TVar-level
/// commits (the handler-lane direct writes; the queue's `poll` publishes
/// its removal mid-body via an open-nested commit, the §3.3 reduced
/// isolation), each with its own write version. Validated observers are
/// shielded from the in-between states by semantic locks; a snapshot
/// trades that shield for never aborting, so it may serialize between the
/// removal's version and the insertion's and see the one moved item in
/// flight — but never anything weaker (`docs/PROTOCOL.md`, "What a
/// snapshot cut is"). A mover transaction relocating one item therefore
/// bounds every snapshot total to {63, 64}; a torn TVar read (the state a
/// half-applied write set) would show up as any other value.
#[test]
fn snapshot_across_collections_sees_at_most_the_in_flight_item() {
    let _g = STATS_GATE.lock().unwrap();
    let q: Arc<TransactionalQueue<u32>> = Arc::new(TransactionalQueue::new());
    let m: Arc<TransactionalMap<u32, ()>> = Arc::new(TransactionalMap::new());
    atomic(|tx| {
        for k in 0..64u32 {
            q.put(tx, k);
        }
    });
    std::thread::scope(|s| {
        {
            let (q, m) = (q.clone(), m.clone());
            s.spawn(move || {
                for _ in 0..64 {
                    atomic(|tx| {
                        if let Some(k) = q.poll(tx) {
                            m.put_discard(tx, k, ());
                        }
                    });
                }
            });
        }
        for _ in 0..2 {
            let (q, m) = (q.clone(), m.clone());
            s.spawn(move || {
                for _ in 0..100 {
                    let total = stm::atomic_read(|tx| q.committed_len(tx) + m.size(tx));
                    assert!(
                        total == 64 || total == 63,
                        "snapshot saw {total}: more than the single in-flight \
                         item was missing or duplicated"
                    );
                }
            });
        }
    });
    assert_eq!(q.snapshot_len(), 0);
    assert_eq!(m.snapshot_size(), 64);
}
