//! Conformance suite for paper **Table 7** (semantic operational analysis of
//! the `Channel` interface), **Table 8** (its semantic locks) and **Table 9**
//! (the `TransactionalQueue` state inventory), including the
//! reduced-isolation behaviour that distinguishes the queue from the fully
//! serializable maps.

mod conflict_harness;
use conflict_harness::assert_cell;
use txcollections::{Channel, TransactionalQueue};

fn seeded(items: &[i32]) -> TransactionalQueue<i32> {
    let q = TransactionalQueue::new();
    stm::atomic(|tx| {
        for &i in items {
            q.put(tx, i);
        }
    });
    q
}

// ---------------------------------------------------------------------
// Table 7: the only conflicts are null-peek/null-poll vs put
// ---------------------------------------------------------------------

#[test]
fn peek_null_vs_put_conflicts() {
    let q = seeded(&[]);
    let (r, w) = (q.clone(), q.clone());
    assert_cell(
        true,
        "peek()=null vs put — emptiness observation invalidated",
        move |tx| {
            assert_eq!(r.peek(tx), None);
        },
        move |tx| {
            w.put(tx, 1);
        },
    );
}

#[test]
fn poll_null_vs_put_conflicts() {
    let q = seeded(&[]);
    let (r, w) = (q.clone(), q.clone());
    assert_cell(
        true,
        "poll()=null vs put",
        move |tx| {
            assert_eq!(r.poll(tx), None);
        },
        move |tx| {
            w.put(tx, 1);
        },
    );
}

#[test]
fn peek_nonnull_vs_put_commutes() {
    let q = seeded(&[7]);
    let (r, w) = (q.clone(), q.clone());
    assert_cell(
        false,
        "peek()=7 vs put — unordered queue, no conflict",
        move |tx| {
            assert_eq!(r.peek(tx), Some(7));
        },
        move |tx| {
            w.put(tx, 8);
        },
    );
}

#[test]
fn poll_nonnull_vs_put_commutes() {
    let q = seeded(&[7]);
    let (r, w) = (q.clone(), q.clone());
    assert_cell(
        false,
        "poll()=7 vs put",
        move |tx| {
            assert_eq!(r.poll(tx), Some(7));
        },
        move |tx| {
            w.put(tx, 8);
        },
    );
}

#[test]
fn put_vs_put_commutes() {
    let q = seeded(&[]);
    let (r, w) = (q.clone(), q.clone());
    assert_cell(
        false,
        "put vs put — never a conflict",
        move |tx| {
            r.put(tx, 1);
        },
        move |tx| {
            w.put(tx, 2);
        },
    );
}

#[test]
fn take_vs_take_commutes() {
    let q = seeded(&[1, 2]);
    let (r, w) = (q.clone(), q.clone());
    assert_cell(
        false,
        "take vs take — each gets a distinct element",
        move |tx| {
            assert!(r.poll(tx).is_some());
        },
        move |tx| {
            assert!(w.poll(tx).is_some());
        },
    );
}

// ---------------------------------------------------------------------
// Table 8 corollary: compensation (abort) also invalidates emptiness
// ---------------------------------------------------------------------

#[test]
fn abort_compensation_dooms_emptiness_observers() {
    let q = seeded(&[42]);
    // T1 drains the queue (reduced isolation: immediately visible).
    let q1 = q.clone();
    let (_, t1) = stm::speculate(
        move |tx| {
            assert_eq!(q1.poll(tx), Some(42));
        },
        0,
    )
    .unwrap();
    // T2 now observes the queue empty.
    let q2 = q.clone();
    let (_, t2) = stm::speculate(
        move |tx| {
            assert_eq!(q2.poll(tx), None);
        },
        0,
    )
    .unwrap();
    // T1 aborts: the compensating abort handler returns 42 to the queue,
    // invalidating T2's emptiness observation.
    t1.abort(stm::AbortCause::Explicit);
    assert!(
        t2.handle().is_doomed(),
        "compensation made the queue non-empty; emptiness observer must be doomed"
    );
    t2.abort(stm::AbortCause::Explicit);
    assert_eq!(stm::atomic(|tx| q.committed_len(tx)), 1);
}

// ---------------------------------------------------------------------
// Table 9: state inventory — addBuffer / removeBuffer behaviour
// ---------------------------------------------------------------------

#[test]
fn table9_adds_are_buffered_until_commit() {
    let q: TransactionalQueue<i32> = TransactionalQueue::new();
    let q1 = q.clone();
    let (_, t1) = stm::speculate(
        move |tx| {
            q1.put(tx, 1);
            q1.put(tx, 2);
        },
        0,
    )
    .unwrap();
    // Not yet visible.
    assert_eq!(stm::atomic(|tx| q.committed_len(tx)), 0);
    t1.commit();
    assert_eq!(stm::atomic(|tx| q.committed_len(tx)), 2);
}

#[test]
fn table9_aborted_adds_are_never_published() {
    // The Delaunay problem: "if transactions abort, the new work added to
    // the queue is invalid" — buffering fixes it.
    let q: TransactionalQueue<i32> = TransactionalQueue::new();
    let q1 = q.clone();
    let (_, t1) = stm::speculate(
        move |tx| {
            q1.put(tx, 99);
        },
        0,
    )
    .unwrap();
    t1.abort(stm::AbortCause::Explicit);
    assert_eq!(
        stm::atomic(|tx| q.committed_len(tx)),
        0,
        "aborted transaction's work items leaked into the queue"
    );
}

#[test]
fn table9_removes_are_immediate_but_compensated() {
    let q = seeded(&[5]);
    let q1 = q.clone();
    let (_, t1) = stm::speculate(
        move |tx| {
            assert_eq!(q1.poll(tx), Some(5));
        },
        0,
    )
    .unwrap();
    // Reduced isolation: the removal is immediately visible to others.
    assert_eq!(
        stm::atomic(|tx| q.committed_len(tx)),
        0,
        "poll must remove from the shared queue before commit"
    );
    // Abort returns the item: no work is ever lost.
    t1.abort(stm::AbortCause::Explicit);
    assert_eq!(stm::atomic(|tx| q.committed_len(tx)), 1);
    assert_eq!(stm::atomic(|tx| q.poll(tx)), Some(5));
}

#[test]
fn table9_own_buffered_adds_are_pollable() {
    let q: TransactionalQueue<i32> = TransactionalQueue::new();
    stm::atomic(|tx| {
        q.put(tx, 1);
        q.put(tx, 2);
        assert_eq!(q.poll(tx), Some(1), "own pending adds are consumable");
        assert_eq!(q.peek(tx), Some(2));
    });
    assert_eq!(stm::atomic(|tx| q.committed_len(tx)), 1);
}

#[test]
fn no_element_lost_or_duplicated_under_abort_storm() {
    // Conservation property: producers put 1..=N, consumers poll with random
    // aborts; after the storm every element must exist exactly once
    // (consumed exactly once or still queued).
    use std::sync::atomic::{AtomicU32, Ordering};
    let q: TransactionalQueue<u32> = TransactionalQueue::new();
    let consumed = std::sync::Arc::new(parking_lot::Mutex::new(Vec::<u32>::new()));
    let n_items = 400u32;

    std::thread::scope(|s| {
        // Two producers.
        for p in 0..2u32 {
            let q = q.clone();
            s.spawn(move || {
                for i in 0..n_items / 2 {
                    let item = p * (n_items / 2) + i;
                    let fail_once = AtomicU32::new(1);
                    stm::atomic(|tx| {
                        q.put(tx, item);
                        // Every producer transaction aborts once before
                        // committing: buffered adds must not leak.
                        if item.is_multiple_of(3) && fail_once.swap(0, Ordering::SeqCst) == 1 {
                            stm::abort_and_retry();
                        }
                    });
                }
            });
        }
        // Two consumers with occasional aborts after polling.
        for _ in 0..2 {
            let q = q.clone();
            let consumed = consumed.clone();
            s.spawn(move || {
                let mut idle = 0;
                while idle < 200 {
                    let fail_once = AtomicU32::new(1);
                    let got = stm::atomic(|tx| {
                        let item = q.poll(tx);
                        if let Some(i) = item {
                            if i % 5 == 0 && fail_once.swap(0, Ordering::SeqCst) == 1 {
                                // Abort after taking: the item must return.
                                stm::abort_and_retry();
                            }
                        }
                        item
                    });
                    match got {
                        Some(i) => {
                            consumed.lock().push(i);
                            idle = 0;
                        }
                        None => {
                            idle += 1;
                            std::thread::yield_now();
                        }
                    }
                }
            });
        }
    });

    let mut seen = consumed.lock().clone();
    let leftovers = stm::atomic(|tx| {
        let mut v = Vec::new();
        while let Some(i) = q.poll(tx) {
            v.push(i);
        }
        v
    });
    seen.extend(leftovers);
    seen.sort_unstable();
    let expect: Vec<u32> = (0..n_items).collect();
    assert_eq!(seen, expect, "queue lost or duplicated elements");
}
