//! Conformance suite for paper **Table 1** (semantic operational analysis of
//! the `Map` interface) and **Table 2** (semantic locks for `Map`): one test
//! per table cell, asserting that exactly the stated conflicts are detected
//! — and, just as importantly, that the stated *non*-conflicts commute.

mod conflict_harness;
use conflict_harness::assert_cell;
use txcollections::TransactionalMap;

fn seeded(pairs: &[(u32, &str)]) -> TransactionalMap<u32, String> {
    let m = TransactionalMap::new();
    stm::atomic(|tx| {
        for (k, v) in pairs {
            m.put_discard(tx, *k, v.to_string());
        }
    });
    m
}

// ---------------------------------------------------------------------
// Row: containsKey
// ---------------------------------------------------------------------

#[test]
fn containskey_vs_put_new_entry_same_key_conflicts() {
    let m = seeded(&[]);
    let (r, w) = (m.clone(), m.clone());
    assert_cell(
        true,
        "containsKey(k)=false vs put adds new entry with same key",
        move |tx| {
            assert!(!r.contains_key(tx, &1));
        },
        move |tx| {
            w.put(tx, 1, "x".into());
        },
    );
}

#[test]
fn containskey_vs_put_different_key_commutes() {
    let m = seeded(&[(1, "a")]);
    let (r, w) = (m.clone(), m.clone());
    assert_cell(
        false,
        "containsKey(k1) vs put(k2) — semantically independent",
        move |tx| {
            assert!(r.contains_key(tx, &1));
        },
        move |tx| {
            w.put(tx, 2, "y".into());
        },
    );
}

#[test]
fn containskey_vs_remove_matching_key_conflicts() {
    let m = seeded(&[(1, "a")]);
    let (r, w) = (m.clone(), m.clone());
    assert_cell(
        true,
        "containsKey(k)=true vs remove takes away entry with matching key",
        move |tx| {
            assert!(r.contains_key(tx, &1));
        },
        move |tx| {
            w.remove(tx, &1);
        },
    );
}

#[test]
fn containskey_vs_remove_of_absent_key_commutes() {
    let m = seeded(&[(1, "a")]);
    let (r, w) = (m.clone(), m.clone());
    assert_cell(
        false,
        "containsKey(k1) vs remove(k2) where k2 absent — removes nothing",
        move |tx| {
            assert!(r.contains_key(tx, &1));
        },
        move |tx| {
            assert_eq!(w.remove(tx, &9), None);
        },
    );
}

// ---------------------------------------------------------------------
// Row: get
// ---------------------------------------------------------------------

#[test]
fn get_vs_put_same_key_conflicts() {
    let m = seeded(&[(1, "a")]);
    let (r, w) = (m.clone(), m.clone());
    assert_cell(
        true,
        "get(k) vs put(k)",
        move |tx| {
            assert_eq!(r.get(tx, &1).as_deref(), Some("a"));
        },
        move |tx| {
            w.put(tx, 1, "b".into());
        },
    );
}

#[test]
fn get_vs_put_different_key_commutes() {
    let m = seeded(&[(1, "a")]);
    let (r, w) = (m.clone(), m.clone());
    assert_cell(
        false,
        "get(k1) vs put(k2)",
        move |tx| {
            r.get(tx, &1);
        },
        move |tx| {
            w.put(tx, 2, "b".into());
        },
    );
}

#[test]
fn get_of_absent_key_vs_put_of_that_key_conflicts() {
    // Even the non-existence of a key is an observation (Table 1 note).
    let m = seeded(&[]);
    let (r, w) = (m.clone(), m.clone());
    assert_cell(
        true,
        "get(k)=None vs put(k)",
        move |tx| {
            assert_eq!(r.get(tx, &5), None);
        },
        move |tx| {
            w.put(tx, 5, "v".into());
        },
    );
}

#[test]
fn get_vs_remove_same_key_conflicts() {
    let m = seeded(&[(1, "a")]);
    let (r, w) = (m.clone(), m.clone());
    assert_cell(
        true,
        "get(k) vs remove(k)",
        move |tx| {
            r.get(tx, &1);
        },
        move |tx| {
            w.remove(tx, &1);
        },
    );
}

#[test]
fn get_vs_remove_different_key_commutes() {
    let m = seeded(&[(1, "a"), (2, "b")]);
    let (r, w) = (m.clone(), m.clone());
    assert_cell(
        false,
        "get(k1) vs remove(k2)",
        move |tx| {
            r.get(tx, &1);
        },
        move |tx| {
            w.remove(tx, &2);
        },
    );
}

// ---------------------------------------------------------------------
// Row: size
// ---------------------------------------------------------------------

#[test]
fn size_vs_put_new_entry_conflicts() {
    let m = seeded(&[(1, "a")]);
    let (r, w) = (m.clone(), m.clone());
    assert_cell(
        true,
        "size vs put adds a new entry",
        move |tx| {
            assert_eq!(r.size(tx), 1);
        },
        move |tx| {
            w.put(tx, 2, "b".into());
        },
    );
}

#[test]
fn size_vs_put_replacing_value_commutes() {
    // Replacing a value does not change the size: no size conflict.
    let m = seeded(&[(1, "a")]);
    let (r, w) = (m.clone(), m.clone());
    assert_cell(
        false,
        "size vs put replaces existing value (size unchanged)",
        move |tx| {
            assert_eq!(r.size(tx), 1);
        },
        move |tx| {
            w.put(tx, 1, "b".into());
        },
    );
}

#[test]
fn size_vs_remove_existing_conflicts() {
    let m = seeded(&[(1, "a"), (2, "b")]);
    let (r, w) = (m.clone(), m.clone());
    assert_cell(
        true,
        "size vs remove takes away an entry",
        move |tx| {
            assert_eq!(r.size(tx), 2);
        },
        move |tx| {
            w.remove(tx, &1);
        },
    );
}

#[test]
fn size_vs_remove_absent_commutes() {
    let m = seeded(&[(1, "a")]);
    let (r, w) = (m.clone(), m.clone());
    assert_cell(
        false,
        "size vs remove of absent key (size unchanged)",
        move |tx| {
            assert_eq!(r.size(tx), 1);
        },
        move |tx| {
            assert_eq!(w.remove(tx, &9), None);
        },
    );
}

// ---------------------------------------------------------------------
// Row: entrySet.iterator (hasNext / next)
// ---------------------------------------------------------------------

#[test]
fn exhausted_iteration_vs_put_new_entry_conflicts() {
    // hasNext=false reveals the size: adding an entry afterwards conflicts.
    let m = seeded(&[(1, "a")]);
    let (r, w) = (m.clone(), m.clone());
    assert_cell(
        true,
        "iterator exhausted (hasNext=false) vs put adds a new entry",
        move |tx| {
            let n = r.entries(tx).len();
            assert_eq!(n, 1);
        },
        move |tx| {
            w.put(tx, 2, "b".into());
        },
    );
}

#[test]
fn iterator_next_vs_remove_of_returned_key_conflicts() {
    let m = seeded(&[(1, "a"), (2, "b"), (3, "c")]);
    let (r, w) = (m.clone(), m.clone());
    assert_cell(
        true,
        "iterator.next returned k vs remove(k) — key in iterated range",
        move |tx| {
            let mut it = r.iter(tx);
            // Consume everything so every key is locked.
            while it.next(tx).is_some() {}
        },
        move |tx| {
            w.remove(tx, &2);
        },
    );
}

#[test]
fn partial_iteration_vs_remove_of_unvisited_key_can_commute() {
    // A prefix of the iteration only locks the returned keys: a remove of a
    // never-returned key does not doom the reader. (With an unordered hash
    // backend the visited prefix is arbitrary, so pick the key to remove
    // from the unvisited remainder at runtime.)
    let m = seeded(&[(1, "a"), (2, "b"), (3, "c"), (4, "d")]);
    let (r, w) = (m.clone(), m.clone());
    let (visited, t1) = stm::speculate(
        move |tx| {
            let mut it = r.iter(tx);
            // Visit exactly two of the four entries.
            let mut seen = Vec::new();
            for _ in 0..2 {
                if let Some((k, _)) = it.next(tx) {
                    seen.push(k);
                }
            }
            seen
        },
        0,
    )
    .unwrap();
    let unvisited = (1..=4u32).find(|k| !visited.contains(k)).unwrap();
    let (_, t2) = stm::speculate(
        move |tx| {
            w.remove(tx, &unvisited);
        },
        0,
    )
    .unwrap();
    t2.commit();
    let doomed = t1.handle().is_doomed();
    t1.abort(stm::AbortCause::Explicit);
    assert!(
        !doomed,
        "remove of an unvisited key must not doom a partial iteration"
    );
}

// ---------------------------------------------------------------------
// Row: put/remove as writes (write-write cells)
// ---------------------------------------------------------------------

#[test]
fn put_vs_put_same_key_conflicts() {
    // Default put returns the old value, so it reads the key.
    let m = seeded(&[(1, "a")]);
    let (r, w) = (m.clone(), m.clone());
    assert_cell(
        true,
        "put(k) vs put(k) — both write the same key",
        move |tx| {
            r.put(tx, 1, "mine".into());
        },
        move |tx| {
            w.put(tx, 1, "theirs".into());
        },
    );
}

#[test]
fn put_vs_put_different_keys_commutes() {
    let m = seeded(&[]);
    let (r, w) = (m.clone(), m.clone());
    assert_cell(
        false,
        "put(k1) vs put(k2)",
        move |tx| {
            r.put(tx, 1, "mine".into());
        },
        move |tx| {
            w.put(tx, 2, "theirs".into());
        },
    );
}

#[test]
fn remove_vs_remove_same_key_conflicts() {
    let m = seeded(&[(1, "a")]);
    let (r, w) = (m.clone(), m.clone());
    assert_cell(
        true,
        "remove(k) vs remove(k) — both remove the same key",
        move |tx| {
            assert!(r.remove(tx, &1).is_some());
        },
        move |tx| {
            w.remove(tx, &1);
        },
    );
}

// ---------------------------------------------------------------------
// §5.1 extensions: information-hiding writes and isEmpty-as-primitive
// ---------------------------------------------------------------------

#[test]
fn blind_puts_to_same_key_commute() {
    // The "LastModified" idiom: two transactions blind-writing the same key
    // can commit in any order.
    let m = seeded(&[(7, "old")]);
    let (r, w) = (m.clone(), m.clone());
    assert_cell(
        false,
        "put_discard(k) vs put_discard(k) — no read, no ordering needed",
        move |tx| {
            r.put_discard(tx, 7, "mine".into());
        },
        move |tx| {
            w.put_discard(tx, 7, "theirs".into());
        },
    );
}

#[test]
fn blind_put_still_dooms_readers_of_that_key() {
    let m = seeded(&[(7, "old")]);
    let (r, w) = (m.clone(), m.clone());
    assert_cell(
        true,
        "get(k) vs put_discard(k) — readers still conflict",
        move |tx| {
            r.get(tx, &7);
        },
        move |tx| {
            w.put_discard(tx, 7, "new".into());
        },
    );
}

#[test]
fn isempty_primitive_commutes_with_nonzero_size_changes() {
    // Paper §5.1: `if (!map.isEmpty()) put(unique)` transactions should
    // commute as long as the map stays non-empty.
    let m = seeded(&[(1, "a")]);
    let (r, w) = (m.clone(), m.clone());
    assert_cell(
        false,
        "is_empty_primitive()=false vs put adds entry (size 1 -> 2, no zero crossing)",
        move |tx| {
            assert!(!r.is_empty_primitive(tx));
        },
        move |tx| {
            w.put(tx, 2, "b".into());
        },
    );
}

#[test]
fn isempty_primitive_conflicts_on_zero_crossing() {
    // The other half of §5.1: `if (map.isEmpty()) put(...)` must NOT
    // commute — only one transaction may see the empty map.
    let m = seeded(&[]);
    let (r, w) = (m.clone(), m.clone());
    assert_cell(
        true,
        "is_empty_primitive()=true vs put makes map non-empty (zero crossing)",
        move |tx| {
            assert!(r.is_empty_primitive(tx));
        },
        move |tx| {
            w.put(tx, 1, "a".into());
        },
    );
}

#[test]
fn derived_isempty_conflicts_even_without_zero_crossing() {
    // Control for the previous pair: the derivative isEmpty (via size) is
    // doomed by ANY size change — the concurrency limitation §5.1 fixes.
    let m = seeded(&[(1, "a")]);
    let (r, w) = (m.clone(), m.clone());
    assert_cell(
        true,
        "is_empty() [derived from size] vs put adds entry",
        move |tx| {
            assert!(!r.is_empty(tx));
        },
        move |tx| {
            w.put(tx, 2, "b".into());
        },
    );
}

// ---------------------------------------------------------------------
// Table 3: state inventory — buffered writes are local, locks are shared
// ---------------------------------------------------------------------

#[test]
fn table3_store_buffer_isolates_writes_until_commit() {
    let m: TransactionalMap<u32, String> = TransactionalMap::new();
    let m2 = m.clone();
    let (_, t1) = stm::speculate(
        move |tx| {
            m2.put(tx, 1, "uncommitted".into());
        },
        0,
    )
    .unwrap();
    // Another transaction must not see the buffered write.
    let m3 = m.clone();
    let seen = stm::atomic(move |tx| m3.get(tx, &1));
    assert_eq!(seen, None, "store buffer leaked before commit");
    t1.commit();
    let m4 = m.clone();
    let seen = stm::atomic(move |tx| m4.get(tx, &1));
    assert_eq!(seen.as_deref(), Some("uncommitted"));
}

#[test]
fn table3_delta_tracks_local_size_changes() {
    let m = seeded(&[(1, "a")]);
    stm::atomic(|tx| {
        assert_eq!(m.size(tx), 1);
        m.put(tx, 2, "b".into());
        m.put(tx, 3, "c".into());
        assert_eq!(m.size(tx), 3, "size must include own buffered puts");
        m.remove(tx, &1);
        assert_eq!(m.size(tx), 2, "size must include own buffered removes");
    });
    stm::atomic(|tx| assert_eq!(m.size(tx), 2));
}

#[test]
fn table3_key_locks_are_released_after_commit_and_abort() {
    let m = seeded(&[(1, "a")]);
    let m2 = m.clone();
    stm::atomic(move |tx| {
        m2.get(tx, &1);
    });
    assert_eq!(m.locked_key_count(), 0, "commit must release key locks");

    let m3 = m.clone();
    let (_, t) = stm::speculate(
        move |tx| {
            m3.get(tx, &1);
        },
        0,
    )
    .unwrap();
    assert_eq!(m.locked_key_count(), 1);
    t.abort(stm::AbortCause::Explicit);
    assert_eq!(m.locked_key_count(), 0, "abort must release key locks");
}
