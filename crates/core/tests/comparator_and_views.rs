//! Remaining Table 4/5 rows: the `comparator` row (read-only, conflicts
//! with nothing — our comparator is the key's `Ord`, established at
//! construction) and the view-iterator rows (`subMap`/`headMap`/`tailMap`
//! iterators with their first/last/range lock behaviour).

mod conflict_harness;
use conflict_harness::assert_cell;
use std::ops::Bound;
use txcollections::TransactionalSortedMap;

fn seeded(keys: &[i64]) -> TransactionalSortedMap<i64, i64> {
    let m = TransactionalSortedMap::new();
    stm::atomic(|tx| {
        for &k in keys {
            m.put_discard(tx, k, k * 10);
        }
    });
    m
}

// ---------------------------------------------------------------------
// Table 4 row: comparator — read-only, conflicts with nothing
// ---------------------------------------------------------------------

#[test]
fn comparator_conflicts_with_nothing() {
    // "the comparator is established during construction and thereafter is
    // read only so no locks are required" (§3.2). Ordering-only observations
    // that touch no entries (comparing two candidate keys) must commute with
    // every write.
    let m = seeded(&[10, 20]);
    let (r, w) = (m.clone(), m.clone());
    assert_cell(
        false,
        "pure key comparison vs put",
        move |_tx| {
            // The "comparator" of this reproduction is K::Ord: usable
            // without any transactional read at all.
            assert!(5i64.cmp(&7) == std::cmp::Ordering::Less);
            let _ = r; // the map itself is untouched
        },
        move |tx| {
            w.put(tx, 15, 150);
        },
    );
}

// ---------------------------------------------------------------------
// Table 4/5 rows: headMap / tailMap iterators
// ---------------------------------------------------------------------

#[test]
fn headmap_iterator_vs_put_in_view_conflicts() {
    let m = seeded(&[10, 20, 30, 40]);
    let (r, w) = (m.clone(), m.clone());
    assert_cell(
        true,
        "headMap(<30) iterated vs put(15)",
        move |tx| {
            let view = r.head_map(Bound::Excluded(30));
            assert_eq!(view.entries(tx).len(), 2);
        },
        move |tx| {
            w.put(tx, 15, 150);
        },
    );
}

#[test]
fn headmap_iterator_vs_put_beyond_view_commutes() {
    let m = seeded(&[10, 20, 30, 40]);
    let (r, w) = (m.clone(), m.clone());
    assert_cell(
        false,
        "headMap(<30) iterated vs put(35)",
        move |tx| {
            let view = r.head_map(Bound::Excluded(30));
            view.entries(tx);
        },
        move |tx| {
            w.put(tx, 35, 350);
        },
    );
}

#[test]
fn tailmap_exhaustion_takes_last_lock() {
    // Table 5: tailMap.iterator.hasNext takes the "last lock on false
    // return value" — adding a new maximum key conflicts.
    let m = seeded(&[10, 20, 30]);
    let (r, w) = (m.clone(), m.clone());
    assert_cell(
        true,
        "tailMap(>=20) exhausted vs put(99) — new lastKey",
        move |tx| {
            let view = r.tail_map(Bound::Included(20));
            assert_eq!(view.entries(tx).len(), 2);
        },
        move |tx| {
            w.put(tx, 99, 990);
        },
    );
}

#[test]
fn tailmap_iterator_vs_remove_before_view_commutes() {
    let m = seeded(&[10, 20, 30]);
    let (r, w) = (m.clone(), m.clone());
    assert_cell(
        false,
        "tailMap(>=20) iterated vs remove(10) below the view",
        move |tx| {
            let view = r.tail_map(Bound::Included(20));
            view.entries(tx);
        },
        move |tx| {
            w.remove(tx, &10);
        },
    );
}

#[test]
fn view_first_and_last_entries_take_gap_locks() {
    let m = seeded(&[10, 20, 30, 40]);
    // first_entry of subMap [15, 35]: observes the gap [15, 20).
    let (r, w) = (m.clone(), m.clone());
    assert_cell(
        true,
        "subMap[15,35].first=20 vs put(17) in the observed gap",
        move |tx| {
            let view = r.sub_map(Bound::Included(15), Bound::Included(35));
            assert_eq!(view.first_entry(tx).map(|e| e.0), Some(20));
        },
        move |tx| {
            w.put(tx, 17, 170);
        },
    );
    // last_entry of subMap [15, 35]: observes the gap (30, 35].
    let (r, w) = (m.clone(), m.clone());
    assert_cell(
        true,
        "subMap[15,35].last=30 vs put(33) in the observed gap",
        move |tx| {
            let view = r.sub_map(Bound::Included(15), Bound::Included(35));
            assert_eq!(view.last_entry(tx).map(|e| e.0), Some(30));
        },
        move |tx| {
            w.put(tx, 33, 330);
        },
    );
    // Writes outside both observed regions commute.
    let (r, w) = (m.clone(), m.clone());
    assert_cell(
        false,
        "subMap[15,35].first=20 vs put(25) past the observed gap",
        move |tx| {
            let view = r.sub_map(Bound::Included(15), Bound::Included(35));
            view.first_entry(tx);
        },
        move |tx| {
            w.put(tx, 25, 250);
        },
    );
}

#[test]
fn view_mutations_are_bounds_checked() {
    let m = seeded(&[10, 20]);
    let view = m.sub_map(Bound::Included(10), Bound::Excluded(20));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        stm::atomic(|tx| view.put(tx, 25, 250))
    }));
    assert!(result.is_err(), "out-of-bounds view write must panic");
}
