//! Doom-protocol regression for the sharded commit path.
//!
//! The collection classes' soundness rests on commit handlers that apply
//! buffered writes and *then* doom conflicting semantic-lock holders. With
//! the global commit mutex gone, that scan runs under the handler lane —
//! these tests pin down, with real threads, that a doom posted by a
//! committing writer's handler still lands on a lock-holding reader and
//! forces it to retry against the applied state.

use std::sync::mpsc;
use std::thread;
use std::time::Duration;
use stm::{atomic, global_stats};
use txcollections::TransactionalMap;

const WAIT: Duration = Duration::from_secs(10);

/// A reader holding the size lock is doomed by a size-changing commit and,
/// on retry, observes the fully applied new size.
#[test]
fn size_locker_is_doomed_by_committing_writer() {
    let m: TransactionalMap<u32, u64> = TransactionalMap::new();
    let before = global_stats();
    let (sized_tx, sized_rx) = mpsc::channel::<()>();
    let (resume_tx, resume_rx) = mpsc::channel::<()>();

    thread::scope(|s| {
        let m = &m;
        let reader = s.spawn(move || {
            let mut first = true;
            atomic(|tx| {
                // Takes the size lock in an open-nested transaction.
                let sz = m.size(tx);
                if first {
                    first = false;
                    assert_eq!(sz, 0, "first attempt runs against the empty map");
                    // Test scaffolding: park the attempt so the writer's
                    // doom provably races a live size-lock holder.
                    sized_tx.send(()).unwrap(); // txlint: allow(TX001) scaffolding, attempt is meant to die
                    resume_rx.recv_timeout(WAIT).unwrap();
                }
                sz
            })
        });

        sized_rx
            .recv_timeout(WAIT)
            .expect("reader never took the size lock");
        // Size change 0 -> 1: the commit handler applies the insert and
        // dooms every size-lock holder, all under the handler lane.
        atomic(|tx| m.put(tx, 7, 42));
        resume_tx.send(()).unwrap();

        let observed = reader.join().unwrap();
        assert_eq!(observed, 1, "retry must see the applied insert");
    });

    let d = global_stats().since(&before);
    assert!(
        d.aborts_doomed >= 1,
        "the size-locker must have been doomed, got {d:?}"
    );
}

/// A reader holding a key lock is doomed by a conflicting put to that key
/// and, on retry, observes the written value.
#[test]
fn key_locker_is_doomed_by_conflicting_put() {
    let m: TransactionalMap<u32, u64> = TransactionalMap::new();
    let before = global_stats();
    let (locked_tx, locked_rx) = mpsc::channel::<()>();
    let (resume_tx, resume_rx) = mpsc::channel::<()>();

    thread::scope(|s| {
        let m = &m;
        let reader = s.spawn(move || {
            let mut first = true;
            atomic(|tx| {
                let v = m.get(tx, &1);
                if first {
                    first = false;
                    assert_eq!(v, None);
                    locked_tx.send(()).unwrap(); // txlint: allow(TX001) scaffolding, as above
                    resume_rx.recv_timeout(WAIT).unwrap();
                }
                v
            })
        });

        locked_rx
            .recv_timeout(WAIT)
            .expect("reader never took the key lock");
        atomic(|tx| m.put(tx, 1, 99));
        resume_tx.send(()).unwrap();

        let observed = reader.join().unwrap();
        assert_eq!(observed, Some(99), "retry must see the conflicting put");
    });

    let d = global_stats().since(&before);
    assert!(
        d.aborts_doomed >= 1,
        "the key-locker must have been doomed, got {d:?}"
    );
}

/// Mixed-operation soak: concurrent collection transactions (all
/// handler-bearing, hence lane-serialized at commit) plus handler-free
/// plain-TVar transactions. Conservation must hold for both.
#[test]
fn collection_and_plain_commits_soak() {
    const THREADS: u64 = 4;
    const PER: u64 = 200;
    let m: TransactionalMap<u64, u64> = TransactionalMap::new();
    let free = stm::TVar::new(0u64);

    thread::scope(|s| {
        let m = &m;
        let free = &free;
        for t in 0..THREADS {
            s.spawn(move || {
                for i in 0..PER {
                    // Disjoint key space per thread: every put inserts.
                    atomic(|tx| m.put(tx, t * PER + i, i));
                    atomic(|tx| {
                        let x = free.read(tx);
                        free.write(tx, x + 1);
                    });
                }
            });
        }
    });

    assert_eq!(atomic(|tx| m.size(tx)), (THREADS * PER) as usize);
    assert_eq!(free.read_committed(), THREADS * PER);
}
