//! The sorted-map semantics must be identical under both range-lock
//! indexes (paper §3.2's flat set and the interval-tree alternative):
//! re-run the key Table 4/5 scenarios against each kind.

mod conflict_harness;
use conflict_harness::assert_cell;
use std::ops::Bound;
use txcollections::{RangeIndexKind, TransactionalSortedMap};
use txstruct::TxTreeMap;

fn seeded(kind: RangeIndexKind, keys: &[i64]) -> TransactionalSortedMap<i64, i64> {
    let m = TransactionalSortedMap::wrap_with_range_index(TxTreeMap::new(), kind);
    stm::atomic(|tx| {
        for &k in keys {
            m.put_discard(tx, k, k * 10);
        }
    });
    m
}

fn exercise(kind: RangeIndexKind) {
    // In-range insert conflicts.
    let m = seeded(kind, &[10, 20, 30, 40]);
    let (r, w) = (m.clone(), m.clone());
    assert_cell(
        true,
        "range [10,30] vs put(25)",
        move |tx| {
            r.range_entries(tx, Bound::Included(10), Bound::Included(30));
        },
        move |tx| {
            w.put(tx, 25, 250);
        },
    );
    // Out-of-range insert commutes.
    let m = seeded(kind, &[10, 20, 30, 40]);
    let (r, w) = (m.clone(), m.clone());
    assert_cell(
        false,
        "range [10,30] vs put(35)",
        move |tx| {
            r.range_entries(tx, Bound::Included(10), Bound::Included(30));
        },
        move |tx| {
            w.put(tx, 35, 350);
        },
    );
    // Growing lock: put past the cursor commutes; put inside conflicts.
    let m = seeded(kind, &[10, 20, 30, 40, 50]);
    let (r, w) = (m.clone(), m.clone());
    assert_cell(
        false,
        "prefix [10,20] vs put(45)",
        move |tx| {
            let mut it = r.iter(tx);
            it.next(tx);
            it.next(tx);
        },
        move |tx| {
            w.put(tx, 45, 450);
        },
    );
    let m = seeded(kind, &[10, 20, 30, 40, 50]);
    let (r, w) = (m.clone(), m.clone());
    assert_cell(
        true,
        "prefix [10,20] vs put(15)",
        move |tx| {
            let mut it = r.iter(tx);
            it.next(tx);
            it.next(tx);
        },
        move |tx| {
            w.put(tx, 15, 150);
        },
    );
    // Exhaustion covers the whole range.
    let m = seeded(kind, &[10, 20]);
    let (r, w) = (m.clone(), m.clone());
    assert_cell(
        true,
        "full iteration vs put(99)",
        move |tx| {
            r.entries(tx);
        },
        move |tx| {
            w.put(tx, 99, 990);
        },
    );
    // Abort releases the tree-stored locks too.
    let m = seeded(kind, &[10, 20]);
    let m2 = m.clone();
    let (_, t) = stm::speculate(
        move |tx| {
            m2.range_entries(tx, Bound::Unbounded, Bound::Unbounded);
        },
        0,
    )
    .unwrap();
    t.abort(stm::AbortCause::Explicit);
    let (r, w) = (m.clone(), m.clone());
    assert_cell(
        false,
        "released range lock must not doom anyone",
        move |tx| {
            r.get(tx, &10);
        },
        move |tx| {
            w.put(tx, 15, 150);
        },
    );
}

#[test]
fn flat_scan_semantics() {
    exercise(RangeIndexKind::FlatScan);
}

#[test]
fn interval_tree_semantics() {
    exercise(RangeIndexKind::IntervalTree);
}
