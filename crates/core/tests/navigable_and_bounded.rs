//! Tests for the NavigableMap-style queries (ceiling/floor/higher/lower with
//! gap-covering range locks) and the bounded queue's full-lock semantics.

mod conflict_harness;
use conflict_harness::assert_cell;
use txcollections::{Channel, TransactionalQueue, TransactionalSortedMap};

fn seeded(keys: &[i64]) -> TransactionalSortedMap<i64, i64> {
    let m = TransactionalSortedMap::new();
    stm::atomic(|tx| {
        for &k in keys {
            m.put_discard(tx, k, k);
        }
    });
    m
}

#[test]
fn navigable_queries_merge_buffer_and_committed() {
    let m = seeded(&[10, 20, 30]);
    stm::atomic(|tx| {
        m.put(tx, 15, 15);
        m.remove(tx, &20);
        assert_eq!(m.ceiling_key(tx, &15), Some(15), "buffered put visible");
        assert_eq!(m.ceiling_key(tx, &16), Some(30), "buffered remove hides 20");
        assert_eq!(m.higher_key(tx, &15), Some(30));
        assert_eq!(m.floor_key(tx, &25), Some(15));
        assert_eq!(m.lower_key(tx, &15), Some(10));
        assert_eq!(m.floor_key(tx, &9), None);
        assert_eq!(m.higher_key(tx, &30), None);
    });
}

#[test]
fn ceiling_gap_is_protected() {
    // ceiling(12) = 20 observed "nothing in [12, 20)": an insert into the
    // gap must conflict, an insert outside must not.
    let m = seeded(&[10, 20, 30]);
    let (r, w) = (m.clone(), m.clone());
    assert_cell(
        true,
        "ceiling(12)=20 vs put(15) in the observed gap",
        move |tx| {
            assert_eq!(r.ceiling_key(tx, &12), Some(20));
        },
        move |tx| {
            w.put(tx, 15, 15);
        },
    );
    let m = seeded(&[10, 20, 30]);
    let (r, w) = (m.clone(), m.clone());
    assert_cell(
        false,
        "ceiling(12)=20 vs put(25) outside the gap",
        move |tx| {
            assert_eq!(r.ceiling_key(tx, &12), Some(20));
        },
        move |tx| {
            w.put(tx, 25, 25);
        },
    );
    // Removing the answer itself conflicts (key lock on the result).
    let m = seeded(&[10, 20, 30]);
    let (r, w) = (m.clone(), m.clone());
    assert_cell(
        true,
        "ceiling(12)=20 vs remove(20)",
        move |tx| {
            assert_eq!(r.ceiling_key(tx, &12), Some(20));
        },
        move |tx| {
            w.remove(tx, &20);
        },
    );
}

#[test]
fn floor_gap_is_protected() {
    let m = seeded(&[10, 20, 30]);
    let (r, w) = (m.clone(), m.clone());
    assert_cell(
        true,
        "floor(28)=20 vs put(25) in the observed gap",
        move |tx| {
            assert_eq!(r.floor_key(tx, &28), Some(20));
        },
        move |tx| {
            w.put(tx, 25, 25);
        },
    );
    let m = seeded(&[10, 20, 30]);
    let (r, w) = (m.clone(), m.clone());
    assert_cell(
        false,
        "floor(28)=20 vs put(5) far below",
        move |tx| {
            assert_eq!(r.floor_key(tx, &28), Some(20));
        },
        move |tx| {
            w.put(tx, 5, 5);
        },
    );
}

// ---------------------------------------------------------------------
// Bounded queue
// ---------------------------------------------------------------------

#[test]
fn offer_fails_when_full_and_succeeds_otherwise() {
    let q: TransactionalQueue<u32> = TransactionalQueue::bounded(2);
    stm::atomic(|tx| {
        assert!(q.offer(tx, 1));
        assert!(q.offer(tx, 2));
        assert!(!q.offer(tx, 3), "visible length includes own buffer");
    });
    stm::atomic(|tx| {
        assert!(!q.offer(tx, 3), "committed queue is full");
        assert_eq!(q.poll(tx), Some(1));
        assert!(q.offer(tx, 3), "room after own take");
    });
}

#[test]
fn full_observer_doomed_by_consuming_commit() {
    let q: TransactionalQueue<u32> = TransactionalQueue::bounded(1);
    stm::atomic(|tx| {
        q.put(tx, 7);
    });
    let q1 = q.clone();
    let (_, observer) = stm::speculate(
        move |tx| {
            assert!(!q1.offer(tx, 8), "queue is full");
        },
        0,
    )
    .unwrap();
    // A consumer commits, permanently making room.
    let q2 = q.clone();
    let (_, consumer) = stm::speculate(
        move |tx| {
            assert_eq!(q2.poll(tx), Some(7));
        },
        0,
    )
    .unwrap();
    consumer.commit();
    assert!(
        observer.handle().is_doomed(),
        "fullness observation must be invalidated by a consuming commit"
    );
    observer.abort(stm::AbortCause::Doomed);
}

#[test]
fn full_observer_not_doomed_by_producer_commit() {
    let q: TransactionalQueue<u32> = TransactionalQueue::bounded(1);
    stm::atomic(|tx| {
        q.put(tx, 7);
    });
    let q1 = q.clone();
    let (_, observer) = stm::speculate(
        move |tx| {
            assert!(!q1.offer(tx, 8));
        },
        0,
    )
    .unwrap();
    // Another transaction that only peeks commits: no change to fullness.
    let q2 = q.clone();
    let (_, peeker) = stm::speculate(
        move |tx| {
            assert_eq!(q2.peek(tx), Some(7));
        },
        0,
    )
    .unwrap();
    peeker.commit();
    assert!(!observer.handle().is_doomed());
    observer.abort(stm::AbortCause::Explicit);
}

#[test]
fn blocking_put_wakes_after_consumption() {
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;
    let q: Arc<TransactionalQueue<u32>> = Arc::new(TransactionalQueue::bounded(1));
    stm::atomic(|tx| q.put(tx, 1));
    let started = Arc::new(AtomicU32::new(0));
    let q2 = q.clone();
    let s2 = started.clone();
    let producer = std::thread::spawn(move || {
        s2.store(1, Ordering::SeqCst);
        // Blocks (retries) until the consumer makes room.
        stm::atomic(|tx| q2.put(tx, 2));
    });
    while started.load(Ordering::SeqCst) == 0 {
        std::thread::yield_now();
    }
    std::thread::sleep(std::time::Duration::from_millis(20));
    assert_eq!(stm::atomic(|tx| q.poll(tx)), Some(1));
    producer.join().unwrap();
    assert_eq!(stm::atomic(|tx| q.poll(tx)), Some(2));
}
