//! `TransactionalMap` — semantic concurrency control for the `Map` abstract
//! data type (paper §3.1).
//!
//! This file carries the semantic-tables marker (txlint TX007): stripe
//! mutexes are acquired exclusively through the ordered-acquisition surface
//! of `locks::StripedTables`, never by indexing a stripe array directly.
//!
//! # Protocol
//!
//! Following the paper's three-step recipe (§2.4):
//!
//! 1. **Take semantic locks on read operations.** `get`/`contains_key` take a
//!    key lock on their argument; `size` takes the size lock; the iterator
//!    takes key locks on returned keys and the size lock once exhausted
//!    (Table 2). Lock acquisition is a short critical section on one stripe
//!    of the instance's striped lock table (point locks live in the global
//!    stripe) — and repeat acquisitions by the same transaction are
//!    short-circuited by the kernel's txn-local lock cache — after which the
//!    committed value is read as a **flattened open** (`Txn::open_read`:
//!    validated exactly like an open-nested child, with no child
//!    transaction), so the parent carries *no memory dependency* on the
//!    underlying structure.
//! 2. **Check for semantic conflicts while writing during commit.** Writes
//!    (`put`/`remove`) are buffered in transaction-local state (`storeBuffer`,
//!    `delta` — Table 3). The commit handler applies the buffer to the
//!    underlying map and **dooms** every other transaction holding a
//!    conflicting key/size lock (program-directed abort).
//! 3. **Clear semantic locks on abort and commit.** Both handlers release the
//!    transaction's locks and discard its local state; the abort handler is
//!    the compensating transaction for the open-nested lock acquisitions.
//!
//! # Why lock-then-read is sound under striping
//!
//! A reader takes its key lock *before* reading the committed value; a
//! committing writer applies its changes and *then* scans lockers, with the
//! per-key apply and the doom-scan for that key under one hold of the
//! stripe the key hashes to (and all handler execution serialized by the
//! stm crate's handler lane). If the reader saw the old value, its lock was
//! in the stripe before the writer's scan, so the writer dooms it — and the
//! doom lands, because a handler-bearing reader's point of no return sits
//! inside its own lane hold, which cannot overlap the writer's. If the
//! reader's lock arrived after the scan, the stripe-mutex ordering means
//! the apply already happened, so its open-nested read validates against
//! the fully applied new value — either way the reader is serializable.
//! Size/empty observers take their locks in the global stripe, which the
//! writer's handler enters only **after** applying every buffered write, so
//! the same two-case argument holds for them against the whole commit. See
//! `docs/PROTOCOL.md` for the full argument under the sharded commit path.

// txlint: semantic-tables
// txlint: fast-path
use crate::backend::MapBackend;
use crate::conflict_graph::{edge, op, ConflictGraph, Overlap};
use crate::kernel::{CachedPoint, ClassTables, SemanticClass, SemanticCore};
use crate::locks::{ObsMode, SemanticStats, UpdateEffect, DEFAULT_STRIPES};
use std::collections::{HashMap, HashSet};
use std::hash::Hash;
use std::marker::PhantomData;
use stm::{Txn, TxnMode};
use txstruct::{BoostedHashMap, TxHashMap};

// txlint: conflict-graph
/// Paper Tables 1–2 as a declared conflict graph: the map's operations,
/// the modes they observe, the effects they publish, and the conflicting
/// pairs. The lock modes the class dispatches with are *synthesized* from
/// this declaration ([`SemanticCore::new`] validates it against the
/// dispatch matrix; txlint TX010 checks it lexically).
pub static MAP_CONFLICT_GRAPH: ConflictGraph<'static> = ConflictGraph {
    class: "map",
    ops: &[
        op("get", &[ObsMode::Key], &[]),
        op(
            "put",
            &[ObsMode::Key],
            &[
                UpdateEffect::KeyWrite,
                UpdateEffect::SizeChange,
                UpdateEffect::ZeroCross,
            ],
        ),
        op(
            "remove",
            &[ObsMode::Key],
            &[
                UpdateEffect::KeyWrite,
                UpdateEffect::SizeChange,
                UpdateEffect::ZeroCross,
            ],
        ),
        op(
            "put_blind",
            &[],
            &[
                UpdateEffect::KeyWrite,
                UpdateEffect::SizeChange,
                UpdateEffect::ZeroCross,
            ],
        ),
        op("size", &[ObsMode::Size], &[]),
        op("is_empty_primitive", &[ObsMode::Empty], &[]),
        op("iter", &[ObsMode::Key, ObsMode::Size], &[]),
    ],
    edges: &[
        // get/put/remove/iter observe keys; any key write to the same key
        // invalidates them (Table 1: same-key cells conflict, distinct-key
        // cells commute).
        edge(
            "get",
            "put",
            ObsMode::Key,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        edge(
            "get",
            "remove",
            ObsMode::Key,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        edge(
            "get",
            "put_blind",
            ObsMode::Key,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        edge(
            "put",
            "put",
            ObsMode::Key,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        edge(
            "put",
            "remove",
            ObsMode::Key,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        edge(
            "put",
            "put_blind",
            ObsMode::Key,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        edge(
            "remove",
            "put",
            ObsMode::Key,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        edge(
            "remove",
            "remove",
            ObsMode::Key,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        edge(
            "remove",
            "put_blind",
            ObsMode::Key,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        edge(
            "iter",
            "put",
            ObsMode::Key,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        edge(
            "iter",
            "remove",
            ObsMode::Key,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        edge(
            "iter",
            "put_blind",
            ObsMode::Key,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        // size() (and exhausted iteration) is doomed by any size change —
        // but NOT by a value-replacing put (KeyWrite without SizeChange).
        edge(
            "size",
            "put",
            ObsMode::Size,
            UpdateEffect::SizeChange,
            Overlap::Always,
        ),
        edge(
            "size",
            "remove",
            ObsMode::Size,
            UpdateEffect::SizeChange,
            Overlap::Always,
        ),
        edge(
            "size",
            "put_blind",
            ObsMode::Size,
            UpdateEffect::SizeChange,
            Overlap::Always,
        ),
        edge(
            "iter",
            "put",
            ObsMode::Size,
            UpdateEffect::SizeChange,
            Overlap::Always,
        ),
        edge(
            "iter",
            "remove",
            ObsMode::Size,
            UpdateEffect::SizeChange,
            Overlap::Always,
        ),
        edge(
            "iter",
            "put_blind",
            ObsMode::Size,
            UpdateEffect::SizeChange,
            Overlap::Always,
        ),
        // isEmpty as a primitive (§5.1): only zero-crossings conflict.
        edge(
            "is_empty_primitive",
            "put",
            ObsMode::Empty,
            UpdateEffect::ZeroCross,
            Overlap::Always,
        ),
        edge(
            "is_empty_primitive",
            "remove",
            ObsMode::Empty,
            UpdateEffect::ZeroCross,
            Overlap::Always,
        ),
        edge(
            "is_empty_primitive",
            "put_blind",
            ObsMode::Empty,
            UpdateEffect::ZeroCross,
            Overlap::Always,
        ),
    ],
};

/// A buffered write in the thread-local store buffer (the paper's "special
/// value for removed keys" is the `Remove` variant).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum BufWrite<V> {
    /// Pending insert/replace.
    Put(V),
    /// Pending removal.
    Remove,
}

/// Per-transaction local state (paper Table 3: `keyLocks`, `storeBuffer`,
/// `delta`). Keyed by top-level transaction id rather than by thread — the
/// same encapsulation, robust to handler execution context.
pub(crate) struct MapLocal<K, V> {
    pub key_locks: HashSet<K>,
    pub store_buffer: HashMap<K, BufWrite<V>>,
    /// Size delta of buffered writes whose prior presence is known.
    pub delta: isize,
    /// Keys written blindly (`put_discard`/`remove_discard`): their effect on
    /// the size is unknown until resolved or until commit.
    pub blind: HashSet<K>,
}

impl<K, V> Default for MapLocal<K, V> {
    fn default() -> Self {
        MapLocal {
            key_locks: HashSet::new(),
            store_buffer: HashMap::new(),
            delta: 0,
            blind: HashSet::new(),
        }
    }
}

/// The variant half of the map class (kernel [`SemanticClass`]): the
/// wrapped backend plus the striped key/size/empty lock tables. Everything
/// invariant — registration, locals, sweep order — is [`SemanticCore`]'s.
pub(crate) struct MapClass<K, V, B> {
    pub(crate) backend: B,
    pub(crate) tables: ClassTables<K>,
    _value: PhantomData<fn() -> V>,
}

impl<K, V, B> SemanticClass for MapClass<K, V, B>
where
    K: Clone + Eq + Hash + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    B: MapBackend<K, V>,
{
    type Local = MapLocal<K, V>;
    type Undo = ();

    fn name(&self) -> &'static str {
        "map"
    }

    fn conflict_graph(&self) -> Option<&'static ConflictGraph<'static>> {
        Some(&MAP_CONFLICT_GRAPH)
    }

    /// Snapshot reads need per-version committed history, which is exactly
    /// what [`MapReadOps::TRANSACTIONAL_READS`] asserts: a TVar backend
    /// serves them, a boosted backend (reads bypass the TVar layer) falls
    /// back to the validated path.
    fn snapshot_capable(&self) -> bool {
        <B as crate::backend::MapReadOps<K, V>>::TRANSACTIONAL_READS
    }

    /// Commit handler: apply the store buffer and doom conflicting lock
    /// holders, per-key applies and dooms under one hold of the key's
    /// stripe, size/empty dooms in the global stripe last (the kernel's
    /// sweep discipline).
    fn apply(&self, local: MapLocal<K, V>, htx: &mut Txn, id: u64, stats: &SemanticStats) {
        let size_before = self.backend.len(htx) as isize;
        let mut size_after = size_before;
        let global = self.tables.commit_sweep(
            stats,
            id,
            local.store_buffer.iter(),
            local.key_locks.iter(),
            |k, w, cx| match w {
                BufWrite::Put(v) => {
                    let old = self.backend.insert(htx, k.clone(), v.clone());
                    if old.is_none() {
                        size_after += 1;
                    }
                    // put conflicts with any reader of this key (Table 2).
                    cx.doom(UpdateEffect::KeyWrite, k);
                }
                BufWrite::Remove => {
                    let old = self.backend.remove(htx, k);
                    if old.is_some() {
                        size_after -= 1;
                        // Removing nothing conflicts with nobody (Table 1).
                        cx.doom(UpdateEffect::KeyWrite, k);
                    }
                }
            },
        );
        // Global stripe last: every key apply above happens-before this
        // hold, so a size/empty observer locking after this scan reads the
        // fully applied post-commit state.
        global.finish(|g| {
            if size_after != size_before {
                g.doom(UpdateEffect::SizeChange);
                if (size_before == 0) != (size_after == 0) {
                    g.doom(UpdateEffect::ZeroCross);
                }
            }
        });
    }

    /// Abort handler (compensating transaction): discard buffered state,
    /// release locks — stripes ascending, global stripe last.
    fn release(&self, local: MapLocal<K, V>, _htx: &mut Txn, id: u64, stats: &SemanticStats) {
        self.tables.release_sweep(stats, id, local.key_locks.iter());
    }
}

/// A transactional wrapper making any [`MapBackend`] safe and scalable to use
/// from long-running transactions.
///
/// ```
/// use stm::atomic;
/// use txcollections::TransactionalMap;
///
/// let map: TransactionalMap<u32, String> = TransactionalMap::new();
/// atomic(|tx| {
///     map.put(tx, 1, "one".to_string());
///     assert_eq!(map.get(tx, &1).as_deref(), Some("one"));
/// });
/// ```
pub struct TransactionalMap<K, V, B = TxHashMap<K, V>>
where
    K: Clone + Eq + Hash + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    B: MapBackend<K, V>,
{
    pub(crate) core: SemanticCore<MapClass<K, V, B>>,
}

impl<K, V, B> Clone for TransactionalMap<K, V, B>
where
    K: Clone + Eq + Hash + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    B: MapBackend<K, V>,
{
    fn clone(&self) -> Self {
        TransactionalMap {
            core: self.core.clone(),
        }
    }
}

impl<K, V> TransactionalMap<K, V, TxHashMap<K, V>>
where
    K: Clone + Eq + Hash + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// Create a `TransactionalMap` over a fresh [`TxHashMap`].
    pub fn new() -> Self {
        Self::wrap(TxHashMap::new())
    }

    /// Create over a fresh [`TxHashMap`] with an explicit stripe count for
    /// the semantic lock table (rounded up to a power of two; `1` recovers
    /// the single-table behavior of the unstriped design).
    pub fn with_stripes(nstripes: usize) -> Self {
        Self::wrap_with_stripes(TxHashMap::new(), nstripes)
    }

    /// Create over a fresh, pre-sized [`TxHashMap`].
    pub fn with_capacity(capacity: usize) -> Self {
        Self::wrap(TxHashMap::with_capacity(capacity))
    }
}

impl<K, V> TransactionalMap<K, V, BoostedHashMap<K, V>>
where
    K: Clone + Eq + Hash + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// Create over a fresh non-transactional [`BoostedHashMap`] — the
    /// boosted configuration: reads and commit-time writes go to a real
    /// sharded concurrent map with no TVars on the hot path, and isolation
    /// comes entirely from this wrapper's semantic locks plus the handler
    /// lane (see "Backend layers" in `DESIGN.md`).
    pub fn boosted() -> Self {
        Self::wrap(BoostedHashMap::new())
    }

    /// [`Self::boosted`] with an explicit semantic-lock stripe count (the
    /// backend's shard count is its own, independent knob).
    pub fn boosted_with_stripes(nstripes: usize) -> Self {
        Self::wrap_with_stripes(BoostedHashMap::new(), nstripes)
    }
}

impl<K, V> Default for TransactionalMap<K, V, TxHashMap<K, V>>
where
    K: Clone + Eq + Hash + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V, B> TransactionalMap<K, V, B>
where
    K: Clone + Eq + Hash + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    B: MapBackend<K, V>,
{
    /// Wrap an existing map implementation (the paper's drop-in-replacement
    /// use: "they can serve as drop-in replacements in existing programs").
    /// Uses [`DEFAULT_STRIPES`] key stripes.
    pub fn wrap(backend: B) -> Self {
        Self::wrap_with_stripes(backend, DEFAULT_STRIPES)
    }

    /// Wrap an existing map implementation with an explicit stripe count.
    pub fn wrap_with_stripes(backend: B, nstripes: usize) -> Self {
        TransactionalMap {
            core: SemanticCore::new(
                MapClass {
                    backend,
                    tables: ClassTables::new(nstripes),
                    _value: PhantomData,
                },
                nstripes,
            ),
        }
    }

    /// Semantic-conflict counters for this instance.
    pub fn semantic_stats(&self) -> &SemanticStats {
        self.core.stats()
    }

    /// Number of key stripes in this instance's semantic lock table.
    pub fn stripe_count(&self) -> usize {
        self.core.class().tables.stripe_count()
    }

    fn assert_usable(tx: &Txn) {
        assert!(
            tx.mode() == TxnMode::Speculative,
            "TransactionalMap operations cannot run inside commit/abort handlers"
        );
    }

    /// First-touch registration and handler ordering are the kernel's
    /// obligation now: [`SemanticCore::ensure_registered`] is the single
    /// place the commit/abort handler pair is wired up (txlint TX008).
    fn ensure_registered(&self, tx: &mut Txn) {
        self.core.ensure_registered(tx);
    }

    fn with_local<R>(&self, tx: &Txn, f: impl FnOnce(&mut MapLocal<K, V>) -> R) -> R {
        self.core.with_local(tx, f)
    }

    /// Take a key read lock (in the key's stripe) and remember it locally
    /// for cheap release. The txn-local lock cache short-circuits repeat
    /// acquisitions: only the first touch of a key pays the stripe round
    /// trip. The cache is noted strictly after both the acquisition and the
    /// release-list insert, so it is always a subset of `key_locks` — a hit
    /// can never name a lock the release sweep will not drop.
    fn take_key_lock(&self, tx: &mut Txn, key: &K) {
        if self.core.key_lock_cached(tx, key) {
            return;
        }
        let owner = tx.handle().clone();
        self.core
            .class()
            .tables
            .take_key_lock(self.core.stats(), key.clone(), owner);
        self.with_local(tx, |l| {
            l.key_locks.insert(key.clone());
        });
        self.core.note_key_lock(tx, key.clone());
    }

    fn buffered(&self, tx: &Txn, key: &K) -> Option<BufWrite<V>> {
        self.core
            .try_local(tx, |l| l.store_buffer.get(key).cloned())
            .flatten()
    }

    /// Buffered entry plus whether it is blind (its presence relative to the
    /// committed state is unknown). Blindness must be preserved by further
    /// writes to the key, or the size delta silently loses the unresolved
    /// contribution.
    fn buffered_with_blind(&self, tx: &Txn, key: &K) -> (Option<BufWrite<V>>, bool) {
        self.core
            .try_local(tx, |l| {
                (l.store_buffer.get(key).cloned(), l.blind.contains(key))
            })
            .unwrap_or((None, false))
    }

    /// Buffer a write, maintaining `delta`/`blind`, and register a local
    /// undo so the mutation rolls back if an enclosing closed-nested frame
    /// aborts (the encapsulated alternative to Moss-style interleaved undo,
    /// paper §5.1). The undo goes through the non-creating
    /// `LocalTable::update`, so it can never resurrect local state that a
    /// handler already removed.
    fn buffer_write(
        &self,
        tx: &mut Txn,
        key: K,
        write: BufWrite<V>,
        delta_change: isize,
        blind: bool,
    ) {
        let id = tx.handle().id();
        let (prev_entry, was_blind) = self.with_local(tx, |l| {
            let prev = l.store_buffer.insert(key.clone(), write);
            let was_blind = if blind {
                !l.blind.insert(key.clone())
            } else {
                l.blind.remove(&key)
            };
            l.delta += delta_change;
            (prev, was_blind)
        });
        let core = self.core.clone();
        let key2 = key.clone();
        tx.on_local_undo(move || {
            core.update_local(id, |l| {
                match prev_entry {
                    Some(w) => {
                        l.store_buffer.insert(key2.clone(), w);
                    }
                    None => {
                        l.store_buffer.remove(&key2);
                    }
                }
                if blind && !was_blind {
                    l.blind.remove(&key2);
                }
                l.delta -= delta_change;
            });
        });
    }

    // ------------------------------------------------------------------
    // Read operations (Table 2, upper half)
    // ------------------------------------------------------------------

    /// Look up a key. Takes a key lock; reads the committed map as a
    /// flattened open (`Txn::open_read` — validated like an open-nested
    /// child, without the child); consults the store buffer for this
    /// transaction's own writes.
    pub fn get(&self, tx: &mut Txn, key: &K) -> Option<V> {
        Self::assert_usable(tx);
        self.ensure_registered(tx);
        match self.buffered(tx, key) {
            Some(BufWrite::Put(v)) => return Some(v),
            Some(BufWrite::Remove) => return None,
            None => {}
        }
        self.take_key_lock(tx, key);
        let backend = &self.core.class().backend;
        tx.open_read(|otx| backend.get(otx, key))
    }

    /// Whether a key is present (key lock on the argument — note that even
    /// observing *absence* conflicts with a later `put` of that key,
    /// Table 1).
    pub fn contains_key(&self, tx: &mut Txn, key: &K) -> bool {
        Self::assert_usable(tx);
        self.ensure_registered(tx);
        match self.buffered(tx, key) {
            Some(BufWrite::Put(_)) => return true,
            Some(BufWrite::Remove) => return false,
            None => {}
        }
        self.take_key_lock(tx, key);
        let backend = &self.core.class().backend;
        tx.open_read(|otx| backend.contains_key(otx, key))
    }

    /// Resolve blind writes: a size observation needs to know whether each
    /// blindly written key was previously present, which is itself a key
    /// read (so it takes the key lock the blind write deliberately avoided).
    fn resolve_blind(&self, tx: &mut Txn) {
        let blind: Vec<K> = self
            .core
            .try_local(tx, |l| l.blind.iter().cloned().collect())
            .unwrap_or_default();
        for k in blind {
            self.take_key_lock(tx, &k);
            let backend = &self.core.class().backend;
            let committed_present = tx.open_read(|otx| backend.contains_key(otx, &k));
            self.with_local(tx, |l| {
                if l.blind.remove(&k) {
                    let buffered_present = matches!(l.store_buffer.get(&k), Some(BufWrite::Put(_)));
                    l.delta += buffered_present as isize - committed_present as isize;
                }
            });
        }
    }

    /// Number of entries as seen by this transaction. Takes the **size
    /// lock** (global stripe): any committing transaction that changes the
    /// size dooms us.
    pub fn size(&self, tx: &mut Txn) -> usize {
        Self::assert_usable(tx);
        self.ensure_registered(tx);
        self.resolve_blind(tx);
        if !self.core.point_lock_cached(tx, CachedPoint::Size) {
            let owner = tx.handle().clone();
            self.core
                .class()
                .tables
                .take_size_lock(self.core.stats(), owner);
            self.core.note_point_lock(tx, CachedPoint::Size);
        }
        let backend = &self.core.class().backend;
        let committed = tx.open_read(|otx| backend.len(otx));
        let delta = self.core.try_local(tx, |l| l.delta).unwrap_or(0);
        (committed as isize + delta).max(0) as usize
    }

    /// `size() == 0`, implemented as a derivative of [`Self::size`]: takes
    /// the full size lock, so it conflicts with *any* size change. See
    /// [`Self::is_empty_primitive`] for the higher-concurrency variant the
    /// paper derives in §5.1.
    pub fn is_empty(&self, tx: &mut Txn) -> bool {
        self.size(tx) == 0
    }

    /// Emptiness as a primitive operation with its own **zero-crossing
    /// lock** (paper §5.1): conflicts only when the size moves to or from
    /// zero, so `if !is_empty { put(unique_key) }` transactions commute.
    pub fn is_empty_primitive(&self, tx: &mut Txn) -> bool {
        Self::assert_usable(tx);
        self.ensure_registered(tx);
        self.resolve_blind(tx);
        if !self.core.point_lock_cached(tx, CachedPoint::Empty) {
            let owner = tx.handle().clone();
            self.core
                .class()
                .tables
                .take_empty_lock(self.core.stats(), owner);
            self.core.note_point_lock(tx, CachedPoint::Empty);
        }
        let backend = &self.core.class().backend;
        let committed = tx.open_read(|otx| backend.len(otx));
        let delta = self.core.try_local(tx, |l| l.delta).unwrap_or(0);
        (committed as isize + delta) <= 0
    }

    // ------------------------------------------------------------------
    // Write operations (Table 2, lower half)
    // ------------------------------------------------------------------

    /// Insert or replace; returns the previous value.
    ///
    /// Because it returns the old value, `put` *reads* the key (paper §5.1
    /// "Extensions to java.util.Map") and therefore takes a key lock. The
    /// write itself is buffered until commit. Use [`Self::put_discard`] when
    /// the old value is not needed.
    pub fn put(&self, tx: &mut Txn, key: K, value: V) -> Option<V> {
        Self::assert_usable(tx);
        self.ensure_registered(tx);
        let (buffered, was_blind) = self.buffered_with_blind(tx, &key);
        let old = match buffered {
            Some(BufWrite::Put(v)) => Some(v),
            Some(BufWrite::Remove) => None,
            None => {
                self.take_key_lock(tx, &key);
                let backend = &self.core.class().backend;
                tx.open_read(|otx| backend.get(otx, &key))
            }
        };
        // A blind entry's contribution to the size is still unresolved:
        // keep it blind and leave the delta deferred.
        let delta_change = if was_blind {
            0
        } else {
            1 - isize::from(old.is_some())
        };
        self.buffer_write(tx, key, BufWrite::Put(value), delta_change, was_blind);
        old
    }

    /// Insert or replace **without reading the old value** — the
    /// information-hiding variant of §5.1: two transactions blind-writing the
    /// same key (the `"LastModified"` idiom) do not conflict with each other,
    /// only with readers of that key.
    pub fn put_discard(&self, tx: &mut Txn, key: K, value: V) {
        Self::assert_usable(tx);
        self.ensure_registered(tx);
        // If prior presence is already known locally, keep delta exact;
        // blind entries stay blind (deferred) across overwrites.
        match self.buffered_with_blind(tx, &key) {
            (Some(BufWrite::Put(_)), blind) => {
                self.buffer_write(tx, key, BufWrite::Put(value), 0, blind);
            }
            (Some(BufWrite::Remove), true) => {
                self.buffer_write(tx, key, BufWrite::Put(value), 0, true);
            }
            (Some(BufWrite::Remove), false) => {
                self.buffer_write(tx, key, BufWrite::Put(value), 1, false);
            }
            (None, _) => {
                let known_lock = self
                    .core
                    .try_local(tx, |l| l.key_locks.contains(&key))
                    .unwrap_or(false);
                if known_lock {
                    // We already read this key earlier: presence is known.
                    let backend = &self.core.class().backend;
                    let present = tx.open_read(|otx| backend.contains_key(otx, &key));
                    self.buffer_write(
                        tx,
                        key,
                        BufWrite::Put(value),
                        1 - isize::from(present),
                        false,
                    );
                } else {
                    self.buffer_write(tx, key, BufWrite::Put(value), 0, true);
                }
            }
        }
    }

    /// Remove a key; returns the previous value (and therefore reads the
    /// key — takes a key lock).
    pub fn remove(&self, tx: &mut Txn, key: &K) -> Option<V> {
        Self::assert_usable(tx);
        self.ensure_registered(tx);
        let (buffered, was_blind) = self.buffered_with_blind(tx, key);
        let old = match buffered {
            Some(BufWrite::Put(v)) => Some(v),
            Some(BufWrite::Remove) => None,
            None => {
                self.take_key_lock(tx, key);
                let backend = &self.core.class().backend;
                tx.open_read(|otx| backend.get(otx, key))
            }
        };
        let delta_change = if was_blind {
            0
        } else {
            -isize::from(old.is_some())
        };
        self.buffer_write(tx, key.clone(), BufWrite::Remove, delta_change, was_blind);
        old
    }

    /// Remove without reading the old value (blind; see
    /// [`Self::put_discard`]).
    pub fn remove_discard(&self, tx: &mut Txn, key: &K) {
        Self::assert_usable(tx);
        self.ensure_registered(tx);
        match self.buffered_with_blind(tx, key) {
            (Some(BufWrite::Put(_)), true) => {
                self.buffer_write(tx, key.clone(), BufWrite::Remove, 0, true);
            }
            (Some(BufWrite::Put(_)), false) => {
                self.buffer_write(tx, key.clone(), BufWrite::Remove, -1, false);
            }
            (Some(BufWrite::Remove), _) => {}
            (None, _) => {
                let known_lock = self
                    .core
                    .try_local(tx, |l| l.key_locks.contains(key))
                    .unwrap_or(false);
                if known_lock {
                    let backend = &self.core.class().backend;
                    let present = tx.open_read(|otx| backend.contains_key(otx, key));
                    self.buffer_write(
                        tx,
                        key.clone(),
                        BufWrite::Remove,
                        -isize::from(present),
                        false,
                    );
                } else {
                    self.buffer_write(tx, key.clone(), BufWrite::Remove, 0, true);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Iteration
    // ------------------------------------------------------------------

    /// Begin enumerating the map as seen by this transaction.
    ///
    /// Keys are snapshotted eagerly (one consistent open-nested read) but
    /// **values are read live and key locks are taken lazily** as entries
    /// are returned, per Table 2 (`entrySet.iterator.next` takes a key lock
    /// on the return value). When the iterator is exhausted it takes the
    /// size lock and verifies the enumeration is still complete; if entries
    /// appeared concurrently the transaction aborts and retries.
    pub fn iter(&self, tx: &mut Txn) -> TxMapIter<K, V, B> {
        Self::assert_usable(tx);
        self.ensure_registered(tx);
        let backend = &self.core.class().backend;
        let committed_keys: Vec<K> =
            tx.open_read(|otx| backend.entries(otx).into_iter().map(|(k, _)| k).collect());
        let key_set: HashSet<K> = committed_keys.iter().cloned().collect();
        let buffered_new: Vec<(K, V)> = self
            .core
            .try_local(tx, |l| {
                l.store_buffer
                    .iter()
                    .filter_map(|(k, w)| match w {
                        BufWrite::Put(v) if !key_set.contains(k) => Some((k.clone(), v.clone())),
                        _ => None,
                    })
                    .collect()
            })
            .unwrap_or_default();
        TxMapIter {
            map: self.clone(),
            keys: committed_keys,
            pos: 0,
            confirmed: HashSet::new(),
            buffered_new,
            bpos: 0,
            exhausted: false,
        }
    }

    /// Convenience: collect all entries visible to this transaction
    /// (fully enumerates, so it takes the size lock).
    pub fn entries(&self, tx: &mut Txn) -> Vec<(K, V)> {
        let mut it = self.iter(tx);
        let mut out = Vec::new();
        while let Some(e) = it.next(tx) {
            out.push(e);
        }
        out
    }

    /// Convenience: all keys visible to this transaction.
    pub fn keys(&self, tx: &mut Txn) -> Vec<K> {
        self.entries(tx).into_iter().map(|(k, _)| k).collect()
    }

    /// Number of semantic key locks currently outstanding across all
    /// stripes (diagnostics).
    pub fn locked_key_count(&self) -> usize {
        self.core.class().tables.locked_key_count(self.core.stats())
    }

    /// Number of per-transaction local-state entries currently live across
    /// all shards (diagnostics: nonzero with no transaction in flight means
    /// a handler leaked an entry).
    pub fn resident_local_count(&self) -> usize {
        self.core.resident_locals()
    }
}

/// Iterator over a [`TransactionalMap`]; see [`TransactionalMap::iter`].
///
/// Unlike a std iterator this is a *transactional cursor*: `next` needs the
/// transaction context to take locks, so it is a method taking `&mut Txn`
/// rather than an `Iterator` impl.
pub struct TxMapIter<K, V, B>
where
    K: Clone + Eq + Hash + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    B: MapBackend<K, V>,
{
    map: TransactionalMap<K, V, B>,
    keys: Vec<K>,
    pos: usize,
    /// Snapshot keys confirmed still committed when visited.
    confirmed: HashSet<K>,
    buffered_new: Vec<(K, V)>,
    bpos: usize,
    exhausted: bool,
}

impl<K, V, B> TxMapIter<K, V, B>
where
    K: Clone + Eq + Hash + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    B: MapBackend<K, V>,
{
    /// Produce the next entry, or `None` at exhaustion (at which point the
    /// size lock has been taken).
    pub fn next(&mut self, tx: &mut Txn) -> Option<(K, V)> {
        loop {
            if self.pos < self.keys.len() {
                let k = self.keys[self.pos].clone();
                self.pos += 1;
                // Lock, then read live (lock-then-read soundness).
                self.map.take_key_lock(tx, &k);
                let backend = &self.map.core.class().backend;
                let committed = tx.open_read(|otx| backend.get(otx, &k));
                if committed.is_some() {
                    self.confirmed.insert(k.clone());
                }
                let visible = match self.map.buffered(tx, &k) {
                    Some(BufWrite::Put(v)) => Some(v),
                    Some(BufWrite::Remove) => None,
                    None => committed,
                };
                match visible {
                    Some(v) => return Some((k, v)),
                    None => continue, // concurrently/by-us removed: skip
                }
            }
            if self.bpos < self.buffered_new.len() {
                let e = self.buffered_new[self.bpos].clone();
                self.bpos += 1;
                return Some(e);
            }
            if !self.exhausted {
                self.exhausted = true;
                if !self.map.core.point_lock_cached(tx, CachedPoint::Size) {
                    let owner = tx.handle().clone();
                    self.map
                        .core
                        .class()
                        .tables
                        .take_size_lock(self.map.core.stats(), owner);
                    self.map.core.note_point_lock(tx, CachedPoint::Size);
                }
                // Completeness check: keys committed after our snapshot would
                // silently be missed. Verify the set of confirmed keys equals
                // the live committed key set; otherwise abort and retry. Every
                // confirmed key is lock-protected against later change, so on
                // success the enumeration equals the committed state at this
                // instant — a valid serialization point.
                let backend = &self.map.core.class().backend;
                let live: HashSet<K> =
                    tx.open_read(|otx| backend.entries(otx).into_iter().map(|(k, _)| k).collect());
                if live != self.confirmed {
                    stm::abort_and_retry();
                }
            }
            return None;
        }
    }
}
