//! The semantic-class kernel: one protocol engine under every collection.
//!
//! txlint: metrics — metrics-emitter argument spans here must not allocate
//! or format (TX014).
//!
//! Every transactional collection in this crate follows the same recipe
//! (paper §2.4): take semantic locks in open-nested reads, buffer writes in
//! transaction-local state, apply the buffer and doom conflicting lock
//! holders in a commit handler, and compensate in an abort handler. The
//! recipe used to be restated per collection; this module is the single
//! copy. A collection — or a user-defined class, which is the paper's §5
//! punchline ("guidelines any programmer can follow to build their own
//! transactional class"; see `examples/custom_class.rs`) — supplies only
//! what genuinely varies, through [`SemanticClass`]:
//!
//! * the `Local` buffer type (the paper's Table 3 state: held locks plus
//!   buffered writes),
//! * [`SemanticClass::apply`], run inside the commit handler: write the
//!   underlying structure and doom every holder of a semantic lock the
//!   update invalidates,
//! * [`SemanticClass::release`], run inside the abort handler: the
//!   compensating transaction — undo any in-place effects and release the
//!   footprint.
//!
//! [`SemanticCore`] owns everything invariant:
//!
//! * **Idempotent first-touch registration.** On the first operation a
//!   top-level transaction performs on an instance, the core registers one
//!   commit/abort handler pair and marks the transaction — in exactly the
//!   order extension-slot probe → commit handler → abort handler → slot
//!   insert. The probe is a scan of the transaction's own extension vector
//!   (zero shared-memory traffic — the deferred-registration fast path:
//!   the sharded locals table is not touched until an operation actually
//!   buffers state); and because the handlers are registered *before* the
//!   marker exists, an unwind between the two steps cannot leave a marked
//!   transaction with no abort handler to clean up. Collections used to
//!   restate this obligation each; now it is discharged here once (and
//!   txlint TX008 rejects any direct handler registration outside this
//!   file).
//! * **The txn-local semantic-lock cache.** The extension slot doubles as
//!   a per-transaction, per-instance cache of already-acquired `(kind,
//!   key)` semantic locks ([`SemanticCore::key_lock_cached`] /
//!   [`SemanticCore::point_lock_cached`]): the first acquisition populates
//!   it, every later operation on the same key or point lock is a local
//!   hash probe that never touches a stripe mutex. Both handlers drop the
//!   slot before releasing any lock, so the cache provably never outlives
//!   the locks it witnesses (cache lifetime ⊆ lock hold).
//! * **The sharded [`LocalTable`].** Locals are keyed by top-level
//!   transaction id; handlers drain an attempt's entry exactly once via
//!   `remove`, and local-undo compensation goes through the non-creating
//!   [`SemanticCore::update_local`] so it can never resurrect state a
//!   handler already removed.
//! * **The per-transaction undo log.** Classes that apply mutations
//!   eagerly (boosted backends) record a [`SemanticClass::Undo`] entry per
//!   first write via [`SemanticCore::log_undo`]; the abort handler drains
//!   the log **in reverse** through [`SemanticClass::compensate`] strictly
//!   before `release` drops a single semantic lock, and the commit handler
//!   discards it. Buffered classes set `type Undo = ()` and never touch it.
//! * **The sweep discipline.** Commit and abort handlers visit the striped
//!   lock tables in the proved order: touched key stripes strictly
//!   ascending (grouped by a comparison-free [`bucket_order`] counting
//!   sort, one stripe held at a time, applies before releases within a
//!   stripe), then the global point-lock stripe **last**, with the owner's
//!   point locks released at the very end. [`ClassTables::commit_sweep`]
//!   returns a [`GlobalPhase`] token that the type system forces the class
//!   to `finish` — the global phase cannot be skipped or run early.
//! * **The doom-protocol case analysis.** [`KeyCtx::doom`] and
//!   [`PointCtx::doom`] route an [`UpdateEffect`] through the paper's
//!   observation-mode compatibility table (`mode_compatible`) and charge
//!   the right [`SemanticStats`] counter, so classes state *what* an update
//!   does, never *who* to doom.
//!
//! # Mapping of the paper's §5 guidelines onto this API
//!
//! 1. *Keep transaction-local state encapsulated* — define a `Local` type
//!    and reach it only through [`SemanticCore::with_local`] /
//!    [`SemanticCore::update_local`].
//! 2. *Register one handler pair on first touch* — call
//!    [`SemanticCore::ensure_registered`] at the top of every operation;
//!    the core makes it idempotent and ordering-safe.
//! 3. *Take semantic locks before reading committed state* — lock through
//!    [`ClassTables`] (or your own tables), then read inside `Txn::open`
//!    so the parent carries no memory dependency on the structure.
//! 4. *Write underlying state only at commit* — mutate the backend inside
//!    [`SemanticClass::apply`]; body-side operations only buffer.
//! 5. *Compensate on abort* — [`SemanticClass::release`] undoes in-place
//!    effects and releases every lock the footprint acquired.

// txlint: semantic-tables
// txlint: semantic-kernel

use crate::locks::{
    bucket_order, key_hash64, KeyLockShard, LocalTable, MapTables, Owner, PointLocks,
    SemanticStats, StripedTables, UpdateEffect,
};
use std::any::Any;
use std::collections::HashSet;
use std::hash::Hash;
use std::sync::Arc;
use stm::trace::LockKind;
use stm::{Txn, TxnMode};

// ----------------------------------------------------------------------
// The per-class surface
// ----------------------------------------------------------------------

/// What varies between transactional collection classes: the buffer type
/// and the two handler bodies. Everything else — registration, local-state
/// sharding, sweep order, doom dispatch — is [`SemanticCore`]'s.
///
/// `apply` and `release` run in **direct mode** under the stm handler lane
/// (serialized against all other handlers), with the attempt's drained
/// `Local` passed by value. They must uphold the sweep discipline: touched
/// key stripes ascending, global stripe last, own locks released last —
/// which [`ClassTables::commit_sweep`] / [`ClassTables::release_sweep`]
/// do structurally for keyed classes.
pub trait SemanticClass: Send + Sync + 'static {
    /// Per-transaction buffered state (paper Table 3): held semantic locks
    /// plus pending writes. Created implicitly at `Default` on first touch.
    type Local: Default + Send + 'static;

    /// One logged compensation entry for an **eagerly applied** mutation —
    /// the boosted/undo-logging form of guideline 5, where the body writes
    /// the underlying structure in place and records how to put it back.
    /// Entries go through [`SemanticCore::log_undo`] and come back, in
    /// reverse order, through [`SemanticClass::compensate`] when the
    /// transaction aborts. Buffered-update classes never log; they set
    /// `type Undo = ();`.
    type Undo: Send + 'static;

    /// Short, stable class name ("map", "queue", ...) stamped on every
    /// trace event this instance emits, so `txtop` can attribute semantic
    /// conflicts to a collection class. Interned once at core construction;
    /// override the default for any class you want to see in traces.
    fn name(&self) -> &'static str {
        "anon"
    }

    /// Commit handler body: apply `local`'s buffered writes to the
    /// underlying structure through `htx` (direct mode) and doom every
    /// transaction holding a semantic lock the update invalidates, then
    /// release transaction `id`'s own locks.
    fn apply(&self, local: Self::Local, htx: &mut Txn, id: u64, stats: &SemanticStats);

    /// Abort handler body (the compensating transaction): undo any
    /// in-place effects recorded in `local` and release transaction `id`'s
    /// locks. Buffered-update classes have nothing to undo and only
    /// release.
    fn release(&self, local: Self::Local, htx: &mut Txn, id: u64, stats: &SemanticStats);

    /// Replay one undo entry in the abort handler (direct mode, under the
    /// handler lane). The core drains the aborting transaction's undo log
    /// **in reverse logging order**, calling this once per entry, strictly
    /// **before** [`SemanticClass::release`] runs — so every compensating
    /// write lands while the transaction still holds all of its semantic
    /// locks (the undo-before-release obligation, `docs/PROTOCOL.md`).
    ///
    /// The default body is for buffered-update classes (`type Undo = ()`),
    /// which never log: reaching it means a class logged entries without
    /// implementing compensation, which is unrecoverable.
    fn compensate(&self, _undo: Self::Undo, _htx: &mut Txn) {
        unreachable!(
            "class `{}` logged undo entries but does not implement `compensate`",
            self.name()
        );
    }

    /// Whether a **snapshot transaction** ([`stm::atomic_read`]) can serve
    /// this class's read operations from TVar version chains.
    ///
    /// `true` (the default) requires every committed datum a read observes
    /// to live in transactional memory with per-version history — the TVar
    /// backends qualify. Return `false` when committed state is *not*
    /// versioned: boosted backends (reads bypass TVars entirely, so a
    /// snapshot would see current — possibly torn — state instead of the
    /// state at its version), and eager classes (in-place uncommitted
    /// writes are published as committed TVar versions before the
    /// transaction commits, so a snapshot could observe them). A `false`
    /// class makes the kernel abandon the snapshot attempt on first touch
    /// ([`Txn::snapshot_fallback`]); the runner re-executes the body on the
    /// validated path and counts the fallback — never silent, never wrong.
    fn snapshot_capable(&self) -> bool {
        true
    }

    /// The class's declared operation conflict graph, if it has one.
    ///
    /// A class that declares its graph gets its lock modes *synthesized*
    /// and validated: [`SemanticCore::new`] soundness-checks the
    /// declaration (symmetry, reflexivity, commutativity closure) and
    /// verifies that on every cell the class's operations can reach, the
    /// synthesized matrix agrees with the production dispatch matrix —
    /// panicking at construction on any mismatch, so an ill-formed class
    /// cannot run. In-tree classes all declare graphs; txlint's TX010 pass
    /// additionally checks the declarations lexically.
    fn conflict_graph(&self) -> Option<&'static crate::conflict_graph::ConflictGraph<'static>> {
        None
    }
}

/// The per-attempt state a [`SemanticCore`] parks in its transaction
/// extension slot: its presence is the registration marker, and it carries
/// the txn-local semantic-lock cache. Handlers remove the slot (dropping
/// the cache) strictly before any semantic lock is released, so a cached
/// entry can never be observed without its lock (the cache-lifetime
/// obligation, docs/PROTOCOL.md). Fresh attempts start with a fresh `Txn`
/// and therefore an empty slot — abort invalidation is structural.
#[derive(Default)]
struct KernelSlot {
    /// Bitmask of [`CachedPoint`] locks already acquired.
    points: u8,
    /// Key locks already acquired, type-erased: the key type is the
    /// class's business, not the kernel's. Each core instance uses exactly
    /// one key type, so the downcast is infallible in a correct class.
    keys: Option<Box<dyn Any + Send>>,
}

fn cached_keys<Q: Eq + Hash + Send + 'static>(b: &(dyn Any + Send)) -> &HashSet<Q> {
    b.downcast_ref::<HashSet<Q>>()
        .expect("one key type per semantic core")
}

fn cached_keys_mut<Q: Eq + Hash + Send + 'static>(b: &mut (dyn Any + Send)) -> &mut HashSet<Q> {
    b.downcast_mut::<HashSet<Q>>()
        .expect("one key type per semantic core")
}

/// Whole-collection point-lock kinds the txn-local lock cache can remember
/// (one bit each in [`KernelSlot::points`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CachedPoint {
    /// The size lock.
    Size = 0,
    /// The zero-crossing emptiness lock.
    Empty = 1,
    /// A sorted collection's first-endpoint lock.
    First = 2,
    /// A sorted collection's last-endpoint lock.
    Last = 3,
    /// A bounded queue's fullness lock.
    Full = 4,
}

impl CachedPoint {
    fn bit(self) -> u8 {
        1 << self as u8
    }

    /// The trace-layer lock kind a cache hit on this point reports.
    fn lock_kind(self) -> LockKind {
        match self {
            CachedPoint::Size => LockKind::Size,
            CachedPoint::Empty => LockKind::Empty,
            CachedPoint::First | CachedPoint::Last => LockKind::Endpoint,
            CachedPoint::Full => LockKind::Full,
        }
    }
}

struct CoreInner<C: SemanticClass> {
    class: C,
    locals: LocalTable<C::Local>,
    /// Per-transaction compensation log for eagerly applied mutations,
    /// sharded like `locals`. Appended by [`SemanticCore::log_undo`];
    /// drained in reverse by the abort handler (before `release`), and
    /// discarded wholesale by the commit handler.
    undo: LocalTable<Vec<C::Undo>>,
    stats: SemanticStats,
}

/// The invariant half of every transactional class: first-touch handler
/// registration, the sharded local-state table, and the per-instance
/// conflict counters. Cheap to clone (one `Arc`).
pub struct SemanticCore<C: SemanticClass> {
    inner: Arc<CoreInner<C>>,
}

impl<C: SemanticClass> Clone for SemanticCore<C> {
    fn clone(&self) -> Self {
        SemanticCore {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<C: SemanticClass> SemanticCore<C> {
    /// Build a core around `class`, sharding the local-state table
    /// `nshards` ways (rounded up to a power of two).
    pub fn new(class: C, nshards: usize) -> Self {
        let stats = SemanticStats::default();
        stats.set_class(class.name());
        if let Some(graph) = class.conflict_graph() {
            Self::validate_graph(graph);
        }
        SemanticCore {
            inner: Arc::new(CoreInner {
                class,
                locals: LocalTable::new(nshards),
                undo: LocalTable::new(nshards),
                stats,
            }),
        }
    }

    /// Synthesize and cross-check a declared conflict graph at core
    /// construction: the declaration must be sound, and on every
    /// `(mode, effect, overlap)` cell the class's declared operations can
    /// reach, the synthesized matrix must agree with the production
    /// dispatch matrix ([`mode_compatible`](crate::mode_compatible)).
    /// Panics on any violation — an ill-formed class never runs.
    fn validate_graph(graph: &crate::conflict_graph::ConflictGraph<'_>) {
        use crate::conflict_graph::{reachable_cells, synthesize};
        let synthesis = synthesize(graph).unwrap_or_else(|errs| {
            panic!(
                "ill-formed conflict graph for class `{}`:\n{}",
                graph.class,
                errs.join("\n")
            )
        });
        for (m, e, ov) in reachable_cells(graph) {
            let declared = synthesis.matrix.compatible(m, e, ov);
            let dispatch = crate::locks::mode_compatible(m, e, ov);
            assert_eq!(
                declared, dispatch,
                "class `{}`: declared graph says compatible({m:?}, {e:?}, overlap={ov}) = \
                 {declared}, but the dispatch matrix says {dispatch}",
                graph.class
            );
        }
    }

    /// The class half (backend + lock tables) this core drives.
    pub fn class(&self) -> &C {
        &self.inner.class
    }

    /// Semantic-conflict counters for this instance.
    pub fn stats(&self) -> &SemanticStats {
        &self.inner.stats
    }

    /// Register the single commit/abort handler pair and mark the
    /// transaction on first use by this top-level transaction (paper §5
    /// guideline 2). Call at the top of every operation; idempotent. The
    /// probe and marker live in the transaction's own extension slot, so
    /// the repeat-call case costs a local vector scan and no shared-memory
    /// traffic; the locals-table entry is created lazily by the first
    /// operation that buffers state.
    ///
    /// Handlers are registered **before** the marker is inserted: an
    /// unwind during registration cannot leave a marked transaction whose
    /// state no abort handler will clean up. This ordering obligation
    /// lives here and nowhere else — txlint TX008 rejects direct handler
    /// registration in any other semantic-tables file.
    pub fn ensure_registered(&self, tx: &mut Txn) {
        assert!(
            tx.mode() == TxnMode::Speculative,
            "semantic-class operations cannot run inside commit/abort handlers"
        );
        if tx.in_snapshot() {
            // The snapshot skip: a snapshot transaction takes no semantic
            // locks, buffers no state, and cannot abort — there is nothing
            // to register and no handler will ever run. The only obligation
            // is capability: a class whose committed state has no
            // per-version history cannot be served at a snapshot version,
            // so the attempt falls back to the validated path (counted).
            if !self.inner.class.snapshot_capable() {
                tx.snapshot_fallback();
            }
            return;
        }
        let tag = self.tag();
        if tx.ext_contains(tag) {
            return;
        }
        let id = tx.handle().id();
        let inner = Arc::clone(&self.inner);
        tx.on_commit_top(move |htx| {
            // Cache lifetime ⊆ lock hold (docs/PROTOCOL.md): the txn-local
            // lock cache dies here, before the apply sweep releases a
            // single semantic lock.
            drop(htx.ext_remove(tag));
            // Committed eager mutations stand: the undo log is dead weight,
            // dropped before the apply sweep so nothing replays it.
            drop(inner.undo.remove(id));
            let local = inner.locals.remove(id).unwrap_or_default();
            inner.class.apply(local, htx, id, &inner.stats);
        });
        let inner = Arc::clone(&self.inner);
        tx.on_abort_top(move |htx| {
            // Invalidate the lock cache first: nothing after this point may
            // trust a cached acquisition while the footprint unwinds.
            drop(htx.ext_remove(tag));
            // Undo before release: drain the compensation log in reverse
            // while transaction `id` still holds every semantic lock it
            // took, so no observer can see a partially rolled-back state
            // between a compensating write and the lock drop
            // (docs/PROTOCOL.md, "undo-before-release").
            if let Some(log) = inner.undo.remove(id) {
                for entry in log.into_iter().rev() {
                    inner.class.compensate(entry, htx);
                }
            }
            let local = inner.locals.remove(id).unwrap_or_default();
            inner.class.release(local, htx, id, &inner.stats);
        });
        // Marker last: an unwind between handler registration and this
        // insert leaves no marker (the next attempt re-registers) and the
        // already-registered handlers drain harmlessly empty state. The
        // locals entry itself is created lazily by `with_local` — a
        // single-op read-only transaction may never create one at all (the
        // deferred-registration fast path).
        tx.ext_insert(tag, Box::new(KernelSlot::default()));
    }

    /// The owner-unique extension tag of this core instance: its inner
    /// allocation's address. Stable for the life of the core, and safe
    /// against address reuse within an attempt because the registered
    /// handlers hold `Arc` clones that pin the allocation until they run.
    fn tag(&self) -> usize {
        Arc::as_ptr(&self.inner) as *const () as usize
    }

    fn slot_mut<'t>(&self, tx: &'t mut Txn) -> Option<&'t mut KernelSlot> {
        tx.ext_get_mut(self.tag())
            .map(|s| s.downcast_mut::<KernelSlot>().expect("kernel slot type"))
    }

    /// Probe the txn-local lock cache for a key lock this transaction has
    /// already acquired on this instance. `true` means the `(Key, key)`
    /// lock is held — the caller must skip the stripe round trip entirely
    /// (taking it again would be harmless but is exactly the traffic the
    /// cache exists to remove). On `false` the caller acquires the lock and
    /// then calls [`Self::note_key_lock`].
    ///
    /// Soundness of a hit: an active transaction's semantic locks are never
    /// released by anyone else (doom sweeps retain active owners; release
    /// happens only in the transaction's own handlers, which also drop this
    /// cache first), so a cached entry can never outlive the lock it
    /// witnesses.
    pub fn key_lock_cached<Q>(&self, tx: &mut Txn, key: &Q) -> bool
    where
        Q: Eq + Hash + Clone + Send + 'static,
    {
        if tx.in_snapshot() {
            // Snapshot skip: report "already held" so the caller never
            // reaches the stripe — snapshot reads are isolated by the TVar
            // version chains, not by semantic locks. Not a cache hit; no
            // counter or trace event fires.
            return true;
        }
        let Some(slot) = self.slot_mut(tx) else {
            return false;
        };
        let hit = slot
            .keys
            .as_deref()
            .is_some_and(|k| cached_keys::<Q>(k).contains(key));
        if hit {
            self.inner.stats.bump(&self.inner.stats.lock_cache_hits, 1);
            stm::record_lock_cache_hit();
            stm::metrics::cache_hit(self.inner.stats.class_sym());
            stm::trace::lock_cache_hit(
                tx.handle().id(),
                self.inner.stats.class_sym(),
                LockKind::Key,
                key_hash64(key),
            );
        }
        hit
    }

    /// Remember that this transaction acquired the key lock for `key` on
    /// this instance. Call strictly **after** the stripe acquisition
    /// succeeded, so an unwind mid-acquisition can never leave a cached
    /// entry without a lock behind it.
    pub fn note_key_lock<Q>(&self, tx: &mut Txn, key: Q)
    where
        Q: Eq + Hash + Clone + Send + 'static,
    {
        if let Some(slot) = self.slot_mut(tx) {
            cached_keys_mut::<Q>(
                slot.keys
                    .get_or_insert_with(|| Box::new(HashSet::<Q>::new()))
                    .as_mut(),
            )
            .insert(key);
        }
    }

    /// Probe the txn-local cache for a whole-collection point lock
    /// ([`CachedPoint`]). Same contract as [`Self::key_lock_cached`].
    pub fn point_lock_cached(&self, tx: &mut Txn, p: CachedPoint) -> bool {
        if tx.in_snapshot() {
            // Same snapshot skip as [`Self::key_lock_cached`].
            return true;
        }
        let Some(slot) = self.slot_mut(tx) else {
            return false;
        };
        let hit = slot.points & p.bit() != 0;
        if hit {
            self.inner.stats.bump(&self.inner.stats.lock_cache_hits, 1);
            stm::record_lock_cache_hit();
            stm::metrics::cache_hit(self.inner.stats.class_sym());
            stm::trace::lock_cache_hit(
                tx.handle().id(),
                self.inner.stats.class_sym(),
                p.lock_kind(),
                0,
            );
        }
        hit
    }

    /// Remember a point-lock acquisition (strictly after it succeeded).
    pub fn note_point_lock(&self, tx: &mut Txn, p: CachedPoint) {
        if let Some(slot) = self.slot_mut(tx) {
            slot.points |= p.bit();
        }
    }

    /// Run `f` on the calling transaction's local state (creating it at
    /// `Default` if absent — call [`Self::ensure_registered`] first so the
    /// handlers that will drain it exist).
    pub fn with_local<R>(&self, tx: &Txn, f: impl FnOnce(&mut C::Local) -> R) -> R {
        tx.reject_in_snapshot(
            "collection mutation inside a snapshot transaction (stm::atomic_read): snapshot \
             transactions are read-only — run writes under stm::atomic",
        );
        self.inner.locals.with(tx.handle().id(), f)
    }

    /// Run `f` on the calling transaction's local state **only if a
    /// buffering operation has already created it** — the non-creating read
    /// for body-side probes (store-buffer lookups, delta reads). A
    /// transaction that only ever reads must not inflate the sharded locals
    /// table with an empty entry it registered no writes into (the
    /// single-op fast path); absence simply means "nothing buffered".
    pub fn try_local<R>(&self, tx: &Txn, f: impl FnOnce(&mut C::Local) -> R) -> Option<R> {
        self.inner.locals.update(tx.handle().id(), f)
    }

    /// Run `f` on transaction `id`'s local state **only if it still
    /// exists** — the non-creating variant for local-undo closures, so a
    /// compensation racing a completed handler can never resurrect an
    /// entry the handler already drained (the stale-local hazard).
    pub fn update_local<R>(&self, id: u64, f: impl FnOnce(&mut C::Local) -> R) -> Option<R> {
        self.inner.locals.update(id, f)
    }

    /// Log a compensation entry for an **eagerly applied** mutation. The
    /// abort handler replays the calling transaction's entries in reverse
    /// logging order through [`SemanticClass::compensate`], strictly before
    /// [`SemanticClass::release`]; a commit discards the log. Call
    /// [`Self::ensure_registered`] first — an unregistered transaction has
    /// no handler to drain what it logs.
    pub fn log_undo(&self, tx: &Txn, entry: C::Undo) {
        tx.reject_in_snapshot(
            "eager collection mutation inside a snapshot transaction (stm::atomic_read): \
             snapshot transactions are read-only — run writes under stm::atomic",
        );
        self.inner
            .undo
            .with(tx.handle().id(), |log| log.push(entry));
    }

    /// Live local-state entries across all shards (diagnostics: nonzero
    /// with no transaction in flight means a handler leaked an entry).
    pub fn resident_locals(&self) -> usize {
        self.inner.locals.len()
    }

    /// Live undo logs across all shards (diagnostics: nonzero with no
    /// transaction in flight means a handler leaked a compensation log).
    pub fn resident_undo_logs(&self) -> usize {
        self.inner.undo.len()
    }
}

// ----------------------------------------------------------------------
// Keyed lock tables with the sweep discipline built in
// ----------------------------------------------------------------------

/// The striped semantic-lock tables of a keyed collection class: key-lock
/// shards for per-key read locks plus one global stripe of point locks
/// (size and emptiness). Wraps the crate's [`StripedTables`] so the
/// handler-side sweep order — touched stripes ascending, global last,
/// release last — is supplied by the kernel instead of restated per class.
pub struct ClassTables<K> {
    tables: MapTables<K>,
}

impl<K: Clone + Eq + Hash> ClassTables<K> {
    /// Create with `nstripes` key stripes (rounded up to a power of two;
    /// `1` recovers the single-table behavior of the unstriped design).
    pub fn new(nstripes: usize) -> Self {
        ClassTables {
            tables: StripedTables::new(nstripes, PointLocks::default()),
        }
    }

    /// Number of key stripes (always a power of two).
    pub fn stripe_count(&self) -> usize {
        self.tables.stripe_count()
    }

    /// Body-side: take a key read lock in the stripe `key` hashes to
    /// (guideline 3 — lock, then read the committed value open-nested).
    pub fn take_key_lock(&self, stats: &SemanticStats, key: K, owner: Owner) {
        self.tables
            .with_stripe_for(&key, stats, |s| s.take_key_lock(key.clone(), owner, stats));
    }

    /// Body-side: take the size lock (global stripe) — conflicts with any
    /// committing size change.
    pub fn take_size_lock(&self, stats: &SemanticStats, owner: Owner) {
        self.tables
            .with_global(stats, |g| g.take_size_lock(owner, stats));
    }

    /// Body-side: take the zero-crossing emptiness lock (global stripe,
    /// paper §5.1) — conflicts only when the size moves to or from zero.
    pub fn take_empty_lock(&self, stats: &SemanticStats, owner: Owner) {
        self.tables
            .with_global(stats, |g| g.take_empty_lock(owner, stats));
    }

    /// Semantic key locks currently outstanding across all stripes
    /// (diagnostics).
    pub fn locked_key_count(&self, stats: &SemanticStats) -> usize {
        let mut n = 0;
        self.tables
            .for_stripes_ascending(0..self.tables.stripe_count(), stats, |_, s| {
                n += s.locked_key_count()
            });
        n
    }

    /// Commit-handler sweep over transaction `id`'s footprint: `writes`
    /// (buffered writes to apply) and `key_locks` (held key locks to
    /// release). Touched stripes are visited strictly ascending, one held
    /// at a time, with every apply before every release within a stripe —
    /// `apply` runs under the key's stripe with a [`KeyCtx`] for dooming,
    /// and the same hold releases that stripe's own locks. The returned
    /// [`GlobalPhase`] **must** be [`finish`](GlobalPhase::finish)ed: the
    /// global stripe ranks after every key stripe in the lock order, and
    /// the token is how the kernel guarantees a class cannot run it early,
    /// skip it, or forget to release its point locks.
    pub fn commit_sweep<'t, 'a, W>(
        &'t self,
        stats: &'t SemanticStats,
        id: u64,
        writes: impl IntoIterator<Item = (&'a K, &'a W)>,
        key_locks: impl IntoIterator<Item = &'a K>,
        mut apply: impl FnMut(&'a K, &'a W, &mut KeyCtx<'_, K>),
    ) -> GlobalPhase<'t, K>
    where
        K: 'a,
        W: 'a,
    {
        sweep_commit_footprint(
            &self.tables,
            stats,
            writes,
            key_locks,
            |shard, op| match op {
                FootprintOp::Apply(k, w) => {
                    let mut cx = KeyCtx { shard, stats, id };
                    apply(k, w, &mut cx);
                }
                FootprintOp::Release(k) => shard.release_keys(id, std::iter::once(k), stats),
            },
        );
        GlobalPhase {
            tables: &self.tables,
            stats,
            id,
        }
    }

    /// Abort-handler sweep: release transaction `id`'s key locks (touched
    /// stripes ascending, one held at a time), then its point locks in the
    /// global stripe, last. The compensating half of guideline 5 for
    /// buffered-update classes, which have no in-place effects to undo.
    pub fn release_sweep<'a>(
        &self,
        stats: &SemanticStats,
        id: u64,
        key_locks: impl IntoIterator<Item = &'a K>,
    ) where
        K: 'a,
    {
        sweep_release_footprint(&self.tables, stats, key_locks, |shard, keys| {
            shard.release_keys(id, keys.iter().copied(), stats)
        });
        self.tables
            .with_global(stats, |g| g.release_owner(id, stats));
    }
}

/// Per-key doom context handed to [`ClassTables::commit_sweep`]'s apply
/// callback: the key's stripe is held, and dooms route through the paper's
/// compatibility table with stats charged automatically.
pub struct KeyCtx<'s, K> {
    shard: &'s mut KeyLockShard<K>,
    stats: &'s SemanticStats,
    id: u64,
}

impl<K: Clone + Eq + Hash> KeyCtx<'_, K> {
    /// Doom every other active holder of a `key` lock that `effect` is
    /// incompatible with (charged to `key_conflicts`). Returns how many
    /// dooms landed.
    pub fn doom(&mut self, effect: UpdateEffect, key: &K) -> u64 {
        let doomed = self.shard.doom_update(effect, key, self.id, self.stats);
        self.stats.bump(&self.stats.key_conflicts, doomed);
        doomed
    }
}

/// Proof token for the global-stripe phase of a commit sweep: returned by
/// [`ClassTables::commit_sweep`] after every key stripe has been applied
/// and released, and consumed by [`Self::finish`]. Holding it is holding
/// the obligation "global stripe last, own point locks released last" —
/// the compiler will not let a class drop it on the floor.
#[must_use = "the commit sweep's global phase must run: call .finish(..) so \
              point-lock dooms happen after every key apply and the owner's \
              point locks are released"]
pub struct GlobalPhase<'t, K> {
    tables: &'t MapTables<K>,
    stats: &'t SemanticStats,
    id: u64,
}

impl<K> GlobalPhase<'_, K> {
    /// Enter the global stripe (strictly after every key-stripe hold —
    /// a size/empty observer locking after this scan reads the fully
    /// applied post-commit state), run `point` to doom point-lock holders,
    /// then release the owner's point locks, last.
    pub fn finish(self, point: impl FnOnce(&mut PointCtx<'_>)) {
        self.tables.with_global(self.stats, |g| {
            let mut cx = PointCtx {
                points: g,
                stats: self.stats,
                id: self.id,
            };
            point(&mut cx);
            g.release_owner(self.id, self.stats);
        });
    }
}

/// Point-lock doom context for the global phase of a commit sweep: dooms
/// route through the compatibility table ([`UpdateEffect::SizeChange`]
/// reaches size lockers, [`UpdateEffect::ZeroCross`] reaches both size and
/// emptiness lockers) with stats charged automatically.
pub struct PointCtx<'g> {
    points: &'g mut PointLocks,
    stats: &'g SemanticStats,
    id: u64,
}

impl PointCtx<'_> {
    /// Doom every other active point-lock holder `effect` is incompatible
    /// with (charged to `size_conflicts`/`empty_conflicts`). Returns how
    /// many dooms landed.
    pub fn doom(&mut self, effect: UpdateEffect) -> u64 {
        let (by_size, by_empty) = self.points.doom_update(effect, self.id, self.stats);
        self.stats.bump(&self.stats.size_conflicts, by_size);
        self.stats.bump(&self.stats.empty_conflicts, by_empty);
        by_size + by_empty
    }
}

// ----------------------------------------------------------------------
// The generic stripe-sweep engine (crate-internal: classes with bespoke
// global payloads — sorted maps, eager maps — drive it directly)
// ----------------------------------------------------------------------

/// One entry of a committing transaction's footprint: a buffered write to
/// apply or a lock to release. Bucket parity (`stripe*2` for applies,
/// `stripe*2+1` for releases) makes a stripe-major counting sort put every
/// apply before every release within one stripe visit.
pub(crate) enum FootprintOp<'a, K, W> {
    /// Apply a buffered write to `K` under its stripe.
    Apply(&'a K, &'a W),
    /// Release the owner's lock on `K` under its stripe.
    Release(&'a K),
}

// Manual impls: the derive would demand `K: Copy`/`W: Copy`, but only
// references are stored.
impl<K, W> Clone for FootprintOp<'_, K, W> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<K, W> Copy for FootprintOp<'_, K, W> {}

/// Flatten `writes` + `unlocks` into one footprint grouped by stripe via a
/// comparison-free [`bucket_order`] counting sort (handlers run on every
/// commit, so this path avoids per-stripe containers and branchy sorts on
/// random stripe ids), then visit the touched stripes strictly ascending,
/// one held at a time, calling `visit` for each op under its stripe —
/// applies before releases within a stripe.
pub(crate) fn sweep_commit_footprint<'a, K, W, S, G>(
    tables: &StripedTables<S, G>,
    stats: &SemanticStats,
    writes: impl IntoIterator<Item = (&'a K, &'a W)>,
    unlocks: impl IntoIterator<Item = &'a K>,
    mut visit: impl FnMut(&mut S, FootprintOp<'a, K, W>),
) where
    K: Hash + 'a,
    W: 'a,
{
    let mut foot: Vec<(u32, FootprintOp<'a, K, W>)> = Vec::new();
    for (k, w) in writes {
        foot.push(((tables.stripe_of(k) * 2) as u32, FootprintOp::Apply(k, w)));
    }
    for k in unlocks {
        foot.push((
            (tables.stripe_of(k) * 2 + 1) as u32,
            FootprintOp::Release(k),
        ));
    }
    let order = bucket_order(foot.len(), tables.stripe_count() * 2, |i| foot[i].0);
    let mut touched: Vec<usize> = Vec::new();
    for &i in &order {
        let s = (foot[i as usize].0 >> 1) as usize;
        if touched.last() != Some(&s) {
            touched.push(s);
        }
    }
    let mut cursor = 0;
    tables.for_stripes_ascending(touched.iter().copied(), stats, |si, shard| {
        while let Some(&i) = order.get(cursor) {
            let (b, op) = foot[i as usize];
            if (b >> 1) as usize != si {
                break;
            }
            cursor += 1;
            visit(shard, op);
        }
    });
}

/// Abort-side counterpart: group `keys` by stripe and hand `visit` each
/// stripe's batch under that stripe, touched stripes strictly ascending.
/// The caller runs its own global-stripe release afterwards (last).
pub(crate) fn sweep_release_footprint<'a, K, S, G>(
    tables: &StripedTables<S, G>,
    stats: &SemanticStats,
    keys: impl IntoIterator<Item = &'a K>,
    mut visit: impl FnMut(&mut S, &[&'a K]),
) where
    K: Hash + 'a,
{
    let keyed: Vec<(u32, &'a K)> = keys
        .into_iter()
        .map(|k| (tables.stripe_of(k) as u32, k))
        .collect();
    let order = bucket_order(keyed.len(), tables.stripe_count(), |i| keyed[i].0);
    let sorted: Vec<&'a K> = order.iter().map(|&i| keyed[i as usize].1).collect();
    let mut touched: Vec<usize> = Vec::new();
    for &i in &order {
        let s = keyed[i as usize].0 as usize;
        if touched.last() != Some(&s) {
            touched.push(s);
        }
    }
    let mut cursor = 0;
    tables.for_stripes_ascending(touched.iter().copied(), stats, |si, shard| {
        let start = cursor;
        while cursor < order.len() && keyed[order[cursor] as usize].0 as usize == si {
            cursor += 1;
        }
        visit(shard, &sorted[start..cursor]);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Minimal probe class: counts handler invocations and buffered ops.
    struct ProbeClass {
        applies: Arc<AtomicU64>,
        releases: Arc<AtomicU64>,
        applied_ops: Arc<AtomicU64>,
    }

    impl SemanticClass for ProbeClass {
        type Local = Vec<u64>;
        type Undo = ();

        fn apply(&self, local: Vec<u64>, _htx: &mut Txn, _id: u64, _stats: &SemanticStats) {
            self.applies.fetch_add(1, Ordering::SeqCst);
            self.applied_ops
                .fetch_add(local.len() as u64, Ordering::SeqCst);
        }

        fn release(&self, _local: Vec<u64>, _htx: &mut Txn, _id: u64, _stats: &SemanticStats) {
            self.releases.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn probe_core() -> (
        SemanticCore<ProbeClass>,
        Arc<AtomicU64>,
        Arc<AtomicU64>,
        Arc<AtomicU64>,
    ) {
        let applies = Arc::new(AtomicU64::new(0));
        let releases = Arc::new(AtomicU64::new(0));
        let applied_ops = Arc::new(AtomicU64::new(0));
        let core = SemanticCore::new(
            ProbeClass {
                applies: applies.clone(),
                releases: releases.clone(),
                applied_ops: applied_ops.clone(),
            },
            4,
        );
        (core, applies, releases, applied_ops)
    }

    #[test]
    fn registration_is_idempotent_and_commit_drains_locals() {
        let (core, applies, releases, applied_ops) = probe_core();
        let c = core.clone();
        let (_, t) = stm::speculate(
            move |tx| {
                c.ensure_registered(tx);
                c.ensure_registered(tx);
                c.with_local(tx, |l| l.push(1));
                c.ensure_registered(tx);
                c.with_local(tx, |l| l.push(2));
            },
            0,
        )
        .unwrap();
        t.commit();
        assert_eq!(applies.load(Ordering::SeqCst), 1);
        assert_eq!(releases.load(Ordering::SeqCst), 0);
        assert_eq!(applied_ops.load(Ordering::SeqCst), 2);
        assert_eq!(core.resident_locals(), 0);
    }

    #[test]
    fn abort_runs_release_exactly_once_and_drains_locals() {
        let (core, applies, releases, _) = probe_core();
        let c = core.clone();
        let (_, t) = stm::speculate(
            move |tx| {
                c.ensure_registered(tx);
                c.with_local(tx, |l| l.push(7));
            },
            0,
        )
        .unwrap();
        t.abort(stm::AbortCause::Explicit);
        assert_eq!(applies.load(Ordering::SeqCst), 0);
        assert_eq!(releases.load(Ordering::SeqCst), 1);
        assert_eq!(core.resident_locals(), 0);
    }

    #[test]
    fn update_local_cannot_resurrect_a_drained_entry() {
        let (core, ..) = probe_core();
        let c = core.clone();
        let (id, t) = stm::speculate(
            move |tx| {
                c.ensure_registered(tx);
                tx.handle().id()
            },
            0,
        )
        .unwrap();
        t.commit();
        // The commit handler drained the entry; a stale undo must be a no-op.
        assert_eq!(core.update_local(id, |l| l.push(9)), None);
        assert_eq!(core.resident_locals(), 0);
    }

    /// Class that logs undo entries and records the order in which the
    /// core hands them back, plus whether `release` had already run.
    struct UndoProbe {
        events: Arc<parking_lot::Mutex<Vec<String>>>,
    }

    impl SemanticClass for UndoProbe {
        type Local = ();
        type Undo = u64;

        fn apply(&self, _local: (), _htx: &mut Txn, _id: u64, _stats: &SemanticStats) {
            self.events.lock().push("apply".into());
        }

        fn release(&self, _local: (), _htx: &mut Txn, _id: u64, _stats: &SemanticStats) {
            self.events.lock().push("release".into());
        }

        fn compensate(&self, undo: u64, _htx: &mut Txn) {
            self.events.lock().push(format!("undo:{undo}"));
        }
    }

    fn undo_core() -> (
        SemanticCore<UndoProbe>,
        Arc<parking_lot::Mutex<Vec<String>>>,
    ) {
        let events = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let core = SemanticCore::new(
            UndoProbe {
                events: events.clone(),
            },
            4,
        );
        (core, events)
    }

    #[test]
    fn abort_drains_undo_log_in_reverse_before_release() {
        let (core, events) = undo_core();
        let c = core.clone();
        let (_, t) = stm::speculate(
            move |tx| {
                c.ensure_registered(tx);
                c.log_undo(tx, 1);
                c.log_undo(tx, 2);
                c.log_undo(tx, 3);
            },
            0,
        )
        .unwrap();
        t.abort(stm::AbortCause::Explicit);
        assert_eq!(
            *events.lock(),
            vec!["undo:3", "undo:2", "undo:1", "release"],
            "compensation must replay newest-first and finish before release"
        );
        assert_eq!(core.resident_undo_logs(), 0);
        assert_eq!(core.resident_locals(), 0);
    }

    #[test]
    fn commit_discards_undo_log_without_compensating() {
        let (core, events) = undo_core();
        let c = core.clone();
        let (_, t) = stm::speculate(
            move |tx| {
                c.ensure_registered(tx);
                c.log_undo(tx, 41);
                c.log_undo(tx, 42);
            },
            0,
        )
        .unwrap();
        t.commit();
        assert_eq!(*events.lock(), vec!["apply"]);
        assert_eq!(core.resident_undo_logs(), 0);
        assert_eq!(core.resident_locals(), 0);
    }

    #[test]
    fn class_tables_sweep_releases_all_locks() {
        // Drive ClassTables directly: take key + size locks as one txn,
        // commit-sweep as that txn, and verify everything is released.
        let tables: ClassTables<u64> = ClassTables::new(4);
        let stats = SemanticStats::default();
        let (_, t) = stm::speculate(
            |tx| {
                let owner = tx.handle().clone();
                for k in 0..32u64 {
                    tables.take_key_lock(&stats, k, owner.clone());
                }
                tables.take_size_lock(&stats, owner);
            },
            0,
        )
        .unwrap();
        let id = t.handle().id();
        assert_eq!(tables.locked_key_count(&stats), 32);
        let keys: Vec<u64> = (0..32).collect();
        let writes: Vec<(u64, u32)> = vec![(1, 10), (2, 20)];
        let mut applied = 0;
        let global = tables.commit_sweep(
            &stats,
            id,
            writes.iter().map(|(k, w)| (k, w)),
            keys.iter(),
            |_k, _w, cx| {
                applied += 1;
                cx.doom(UpdateEffect::KeyWrite, _k);
            },
        );
        global.finish(|g| {
            g.doom(UpdateEffect::SizeChange);
        });
        assert_eq!(applied, 2);
        assert_eq!(tables.locked_key_count(&stats), 0);
        t.commit();
    }
}
