//! An interval tree for range-lock stabbing queries.
//!
//! Paper §3.2 stores range locks in a flat set and scans it on every
//! committed update: "An alternative would have been to use an interval
//! tree to store the range locks, but the extra complexity and potential
//! overhead seemed unnecessary for the common case." This module implements
//! that alternative so the trade-off can be measured
//! (`ablation_rangeindex` bench): a treap keyed by lower endpoint,
//! augmented with the subtree's maximum upper endpoint, giving
//! `O(log n + hits)` stabbing queries instead of `O(n)` scans.
//!
//! Endpoints are `std::ops::Bound`; the two wrapper types implement the two
//! different orders bounds need (a lower `Unbounded` sorts first, an upper
//! `Unbounded` sorts last; on equal keys an inclusive lower starts before an
//! exclusive one, an exclusive upper ends before an inclusive one).

use std::cmp::Ordering;
use std::ops::Bound;

/// A lower endpoint with interval-start ordering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerEnd<K>(pub Bound<K>);

impl<K: Ord> Ord for LowerEnd<K> {
    fn cmp(&self, other: &Self) -> Ordering {
        use Bound::*;
        match (&self.0, &other.0) {
            (Unbounded, Unbounded) => Ordering::Equal,
            (Unbounded, _) => Ordering::Less,
            (_, Unbounded) => Ordering::Greater,
            (Included(a), Included(b)) | (Excluded(a), Excluded(b)) => a.cmp(b),
            (Included(a), Excluded(b)) => a.cmp(b).then(Ordering::Less),
            (Excluded(a), Included(b)) => a.cmp(b).then(Ordering::Greater),
        }
    }
}

impl<K: Ord> PartialOrd for LowerEnd<K> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// An upper endpoint with interval-end ordering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpperEnd<K>(pub Bound<K>);

impl<K: Ord> Ord for UpperEnd<K> {
    fn cmp(&self, other: &Self) -> Ordering {
        use Bound::*;
        match (&self.0, &other.0) {
            (Unbounded, Unbounded) => Ordering::Equal,
            (Unbounded, _) => Ordering::Greater,
            (_, Unbounded) => Ordering::Less,
            (Included(a), Included(b)) | (Excluded(a), Excluded(b)) => a.cmp(b),
            (Included(a), Excluded(b)) => a.cmp(b).then(Ordering::Greater),
            (Excluded(a), Included(b)) => a.cmp(b).then(Ordering::Less),
        }
    }
}

impl<K: Ord> PartialOrd for UpperEnd<K> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

fn lower_admits<K: Ord>(lower: &Bound<K>, point: &K) -> bool {
    match lower {
        Bound::Unbounded => true,
        Bound::Included(l) => point >= l,
        Bound::Excluded(l) => point > l,
    }
}

fn upper_admits<K: Ord>(upper: &Bound<K>, point: &K) -> bool {
    match upper {
        Bound::Unbounded => true,
        Bound::Included(u) => point <= u,
        Bound::Excluded(u) => point < u,
    }
}

/// Whether a lower bound starts at or before an upper bound ends —
/// i.e. the interval `[lo, hi]` they delimit is nonempty. Conservative for
/// `(Excluded, Excluded)` pairs on non-dense key types (see
/// `bounds_overlap` in `locks.rs`).
fn lower_below_upper<K: Ord>(lo: &Bound<K>, hi: &Bound<K>) -> bool {
    match (lo, hi) {
        (Bound::Unbounded, _) | (_, Bound::Unbounded) => true,
        (Bound::Included(a), Bound::Included(b)) => a <= b,
        (Bound::Included(a), Bound::Excluded(b))
        | (Bound::Excluded(a), Bound::Included(b))
        | (Bound::Excluded(a), Bound::Excluded(b)) => a < b,
    }
}

#[derive(Clone)]
struct Node<K, T> {
    id: u64,
    lower: Bound<K>,
    upper: Bound<K>,
    payload: T,
    /// Max upper endpoint in this subtree (the classic augmentation).
    max_upper: Bound<K>,
    priority: u64,
    left: Option<Box<Node<K, T>>>,
    right: Option<Box<Node<K, T>>>,
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl<K: Clone + Ord, T> Node<K, T> {
    fn new(id: u64, lower: Bound<K>, upper: Bound<K>, payload: T) -> Box<Self> {
        Box::new(Node {
            id,
            max_upper: upper.clone(),
            lower,
            upper,
            payload,
            priority: splitmix(id),
            left: None,
            right: None,
        })
    }

    fn refresh_max(&mut self) {
        let mut m = self.upper.clone();
        for child in [&self.left, &self.right].into_iter().flatten() {
            if UpperEnd(child.max_upper.clone()) > UpperEnd(m.clone()) {
                m = child.max_upper.clone();
            }
        }
        self.max_upper = m;
    }
}

/// An interval tree (augmented treap) mapping intervals to payloads.
#[derive(Clone)]
pub struct IntervalTree<K, T> {
    root: Option<Box<Node<K, T>>>,
    len: usize,
    next_id: u64,
}

impl<K: Clone + Ord, T> Default for IntervalTree<K, T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Clone + Ord, T> IntervalTree<K, T> {
    /// Create an empty tree.
    pub fn new() -> Self {
        IntervalTree {
            root: None,
            len: 0,
            next_id: 0,
        }
    }

    /// Number of stored intervals.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert an interval; returns its stable id.
    pub fn insert(&mut self, lower: Bound<K>, upper: Bound<K>, payload: T) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        let node = Node::new(id, lower, upper, payload);
        let root = self.root.take();
        self.root = Some(Self::insert_node(root, node));
        self.len += 1;
        id
    }

    fn insert_node(tree: Option<Box<Node<K, T>>>, node: Box<Node<K, T>>) -> Box<Node<K, T>> {
        let Some(mut t) = tree else { return node };
        if node.priority > t.priority {
            // Node becomes the new subtree root: split t around node's key.
            let (l, r) = Self::split(Some(t), &node.key_owned());
            let mut n = node;
            n.left = l;
            n.right = r;
            n.refresh_max();
            return n;
        }
        if node.key_owned() < t.key_owned() {
            let l = t.left.take();
            t.left = Some(Self::insert_node(l, node));
        } else {
            let r = t.right.take();
            t.right = Some(Self::insert_node(r, node));
        }
        t.refresh_max();
        t
    }

    /// Split by key: left < key <= right.
    #[allow(clippy::type_complexity)]
    fn split(
        tree: Option<Box<Node<K, T>>>,
        key: &(LowerEnd<K>, u64),
    ) -> (Option<Box<Node<K, T>>>, Option<Box<Node<K, T>>>) {
        let Some(mut t) = tree else {
            return (None, None);
        };
        if t.key_owned() < *key {
            let (l, r) = Self::split(t.right.take(), key);
            t.right = l;
            t.refresh_max();
            (Some(t), r)
        } else {
            let (l, r) = Self::split(t.left.take(), key);
            t.left = r;
            t.refresh_max();
            (l, Some(t))
        }
    }

    fn merge(a: Option<Box<Node<K, T>>>, b: Option<Box<Node<K, T>>>) -> Option<Box<Node<K, T>>> {
        match (a, b) {
            (None, b) => b,
            (a, None) => a,
            (Some(mut a), Some(mut b)) => {
                if a.priority > b.priority {
                    let r = a.right.take();
                    a.right = Self::merge(r, Some(b));
                    a.refresh_max();
                    Some(a)
                } else {
                    let l = b.left.take();
                    b.left = Self::merge(Some(a), l);
                    b.refresh_max();
                    Some(b)
                }
            }
        }
    }

    /// Remove an interval by id (and its lower bound, which callers know).
    /// Returns the payload if found.
    pub fn remove(&mut self, lower: &Bound<K>, id: u64) -> Option<T> {
        let root = self.root.take();
        let (root, removed) = Self::remove_node(root, lower, id);
        self.root = root;
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    #[allow(clippy::type_complexity)]
    fn remove_node(
        tree: Option<Box<Node<K, T>>>,
        lower: &Bound<K>,
        id: u64,
    ) -> (Option<Box<Node<K, T>>>, Option<T>) {
        let Some(mut t) = tree else {
            return (None, None);
        };
        let target = (LowerEnd(lower.clone()), id);
        match t.key_owned().cmp(&target) {
            Ordering::Equal => {
                let merged = Self::merge(t.left.take(), t.right.take());
                (merged, Some(t.payload))
            }
            Ordering::Greater => {
                let l = t.left.take();
                let (l, removed) = Self::remove_node(l, lower, id);
                t.left = l;
                t.refresh_max();
                (Some(t), removed)
            }
            Ordering::Less => {
                let r = t.right.take();
                let (r, removed) = Self::remove_node(r, lower, id);
                t.right = r;
                t.refresh_max();
                (Some(t), removed)
            }
        }
    }

    /// Visit every interval containing `point` (a stabbing query).
    pub fn stab<'a>(&'a self, point: &K, visit: &mut impl FnMut(u64, &'a T)) {
        Self::stab_node(&self.root, point, visit);
    }

    fn stab_node<'a>(
        node: &'a Option<Box<Node<K, T>>>,
        point: &K,
        visit: &mut impl FnMut(u64, &'a T),
    ) {
        let Some(n) = node else { return };
        // Prune: nothing in this subtree ends at or after `point`.
        if !upper_admits(&n.max_upper, point) {
            return;
        }
        Self::stab_node(&n.left, point, visit);
        if lower_admits(&n.lower, point) {
            if upper_admits(&n.upper, point) {
                visit(n.id, &n.payload);
            }
            // Right subtree starts at or after our lower: may still admit.
            Self::stab_node(&n.right, point, visit);
        }
        // If our lower is beyond the point, every right descendant's lower
        // is too: pruned by not recursing.
    }

    /// Visit every interval that *intersects* `[lower, upper]` (an
    /// interval-vs-interval query; the interval-map class dooms range
    /// lockers with this when a committing writer publishes a whole span).
    pub fn intersecting<'a>(
        &'a self,
        lower: &Bound<K>,
        upper: &Bound<K>,
        visit: &mut impl FnMut(u64, &'a T),
    ) {
        Self::intersecting_node(&self.root, lower, upper, visit);
    }

    fn intersecting_node<'a>(
        node: &'a Option<Box<Node<K, T>>>,
        lower: &Bound<K>,
        upper: &Bound<K>,
        visit: &mut impl FnMut(u64, &'a T),
    ) {
        let Some(n) = node else { return };
        // Prune: nothing in this subtree ends at or after the query start.
        if !lower_below_upper(lower, &n.max_upper) {
            return;
        }
        Self::intersecting_node(&n.left, lower, upper, visit);
        if lower_below_upper(&n.lower, upper) {
            if lower_below_upper(lower, &n.upper) {
                visit(n.id, &n.payload);
            }
            // Right subtree starts at or after our lower: may still begin
            // before the query end.
            Self::intersecting_node(&n.right, lower, upper, visit);
        }
        // If our lower is beyond the query end, every right descendant's
        // lower is too: pruned by not recursing.
    }

    /// Remove every interval whose payload matches `pred`; returns the
    /// removed `(lower, upper, payload)` triples.
    pub fn remove_by(&mut self, mut pred: impl FnMut(&T) -> bool) -> Vec<(Bound<K>, Bound<K>, T)> {
        fn collect<K: Clone + Ord, T>(
            node: &Option<Box<Node<K, T>>>,
            pred: &mut impl FnMut(&T) -> bool,
            out: &mut Vec<(Bound<K>, Bound<K>, u64)>,
        ) {
            if let Some(n) = node {
                collect(&n.left, pred, out);
                if pred(&n.payload) {
                    out.push((n.lower.clone(), n.upper.clone(), n.id));
                }
                collect(&n.right, pred, out);
            }
        }
        let mut hits = Vec::new();
        collect(&self.root, &mut pred, &mut hits);
        let mut out = Vec::with_capacity(hits.len());
        for (lower, upper, id) in hits {
            if let Some(payload) = self.remove(&lower, id) {
                out.push((lower, upper, payload));
            }
        }
        out
    }

    /// Update the upper bound of interval `id` (its lower bound is the
    /// lookup key). Used by growing iterator range locks.
    pub fn extend_upper(&mut self, lower: &Bound<K>, id: u64, upper: Bound<K>) {
        fn go<K: Clone + Ord, T>(
            node: &mut Option<Box<Node<K, T>>>,
            target: &(LowerEnd<K>, u64),
            upper: &Bound<K>,
        ) -> bool {
            let Some(n) = node else { return false };
            let found = match n.key_owned().cmp(target) {
                Ordering::Equal => {
                    n.upper = upper.clone();
                    true
                }
                Ordering::Greater => go(&mut n.left, target, upper),
                Ordering::Less => go(&mut n.right, target, upper),
            };
            if found {
                n.refresh_max();
            }
            found
        }
        go(&mut self.root, &(LowerEnd(lower.clone()), id), &upper);
    }

    /// Remove every interval whose payload fails `keep`; returns removed
    /// count. (Used to prune locks of finished transactions.)
    pub fn retain(&mut self, mut keep: impl FnMut(&T) -> bool) -> usize {
        fn collect<K: Clone + Ord, T>(
            node: &Option<Box<Node<K, T>>>,
            keep: &mut impl FnMut(&T) -> bool,
            out: &mut Vec<(Bound<K>, u64)>,
        ) {
            if let Some(n) = node {
                collect(&n.left, keep, out);
                if !keep(&n.payload) {
                    out.push((n.lower.clone(), n.id));
                }
                collect(&n.right, keep, out);
            }
        }
        let mut doomed = Vec::new();
        collect(&self.root, &mut keep, &mut doomed);
        let n = doomed.len();
        for (lower, id) in doomed {
            self.remove(&lower, id);
        }
        n
    }

    /// All `(id, lower, upper)` triples, in lower-bound order (testing).
    pub fn entries(&self) -> Vec<(u64, Bound<K>, Bound<K>)> {
        fn walk<K: Clone + Ord, T>(
            node: &Option<Box<Node<K, T>>>,
            out: &mut Vec<(u64, Bound<K>, Bound<K>)>,
        ) {
            if let Some(n) = node {
                walk(&n.left, out);
                out.push((n.id, n.lower.clone(), n.upper.clone()));
                walk(&n.right, out);
            }
        }
        let mut out = Vec::new();
        walk(&self.root, &mut out);
        out
    }
}

impl<K: Clone + Ord, T> Node<K, T> {
    fn key_owned(&self) -> (LowerEnd<K>, u64) {
        (LowerEnd(self.lower.clone()), self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Bound::*;

    fn ids_at(tree: &IntervalTree<i32, ()>, p: i32) -> Vec<u64> {
        let mut v = Vec::new();
        tree.stab(&p, &mut |id, _| v.push(id));
        v.sort_unstable();
        v
    }

    #[test]
    fn stab_finds_covering_intervals() {
        let mut t = IntervalTree::new();
        let a = t.insert(Included(0), Included(10), ());
        let b = t.insert(Included(5), Included(15), ());
        let c = t.insert(Excluded(10), Unbounded, ());
        assert_eq!(ids_at(&t, 3), vec![a]);
        assert_eq!(ids_at(&t, 7), vec![a, b]);
        assert_eq!(ids_at(&t, 10), vec![a, b]);
        assert_eq!(ids_at(&t, 11), vec![b, c]);
        assert_eq!(ids_at(&t, 100), vec![c]);
        assert_eq!(ids_at(&t, -1), Vec::<u64>::new());
    }

    #[test]
    fn unbounded_lower_matches_everything_below() {
        let mut t = IntervalTree::new();
        let a = t.insert(Unbounded, Excluded(0), ());
        assert_eq!(ids_at(&t, -100), vec![a]);
        assert_eq!(ids_at(&t, 0), Vec::<u64>::new());
    }

    #[test]
    fn remove_and_extend() {
        let mut t = IntervalTree::new();
        let a = t.insert(Included(0), Included(5), "a");
        let b = t.insert(Included(3), Included(8), "b");
        assert_eq!(t.len(), 2);
        assert_eq!(t.remove(&Included(0), a), Some("a"));
        assert_eq!(t.len(), 1);
        assert_eq!(ids_at_str(&t, 4), vec![b]);
        t.extend_upper(&Included(3), b, Included(20));
        assert_eq!(ids_at_str(&t, 15), vec![b]);
    }

    fn ids_at_str(tree: &IntervalTree<i32, &str>, p: i32) -> Vec<u64> {
        let mut v = Vec::new();
        tree.stab(&p, &mut |id, _| v.push(id));
        v.sort_unstable();
        v
    }

    #[test]
    fn retain_prunes() {
        let mut t: IntervalTree<i32, u32> = IntervalTree::new();
        for i in 0..10 {
            t.insert(Included(i), Included(i + 5), i as u32);
        }
        let removed = t.retain(|p| p % 2 == 0);
        assert_eq!(removed, 5);
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn matches_flat_scan_on_random_intervals() {
        // Deterministic pseudo-random intervals; compare stab vs linear scan.
        let mut x = 0xDEADBEEFu64;
        let mut rng = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut tree: IntervalTree<i64, usize> = IntervalTree::new();
        let mut flat: Vec<(u64, Bound<i64>, Bound<i64>)> = Vec::new();
        for i in 0..300 {
            let lo = (rng() % 1000) as i64;
            let len = (rng() % 50) as i64;
            let lower = match rng() % 3 {
                0 => Unbounded,
                1 => Included(lo),
                _ => Excluded(lo),
            };
            let upper = match rng() % 3 {
                0 => Unbounded,
                1 => Included(lo + len),
                _ => Excluded(lo + len),
            };
            let id = tree.insert(lower, upper, i);
            flat.push((id, lower, upper));
        }
        // Random removals.
        for _ in 0..80 {
            let idx = (rng() % flat.len() as u64) as usize;
            let (id, lower, _) = flat.remove(idx);
            assert!(tree.remove(&lower, id).is_some());
        }
        for _ in 0..200 {
            let p = (rng() % 1100) as i64 - 50;
            let mut got = Vec::new();
            tree.stab(&p, &mut |id, _| got.push(id));
            got.sort_unstable();
            let mut want: Vec<u64> = flat
                .iter()
                .filter(|(_, lo, hi)| lower_admits(lo, &p) && upper_admits(hi, &p))
                .map(|(id, _, _)| *id)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "stab mismatch at point {p}");
        }
    }

    #[test]
    fn intersecting_finds_overlapping_intervals() {
        let mut t = IntervalTree::new();
        let a = t.insert(Included(0), Excluded(10), ());
        let b = t.insert(Included(5), Excluded(15), ());
        let c = t.insert(Included(20), Unbounded, ());
        let hits = |lo: Bound<i32>, hi: Bound<i32>| {
            let mut v = Vec::new();
            t.intersecting(&lo, &hi, &mut |id, _| v.push(id));
            v.sort_unstable();
            v
        };
        assert_eq!(hits(Included(2), Excluded(4)), vec![a]);
        // A query range strictly inside an interval must hit it — the case
        // a point-stab of the endpoints would miss.
        assert_eq!(hits(Included(6), Excluded(9)), vec![a, b]);
        assert_eq!(hits(Included(12), Included(25)), vec![b, c]);
        assert_eq!(hits(Included(15), Excluded(20)), Vec::<u64>::new());
        assert_eq!(hits(Unbounded, Unbounded), vec![a, b, c]);
    }

    #[test]
    fn intersecting_matches_flat_scan_on_random_intervals() {
        let mut x = 0xC0FFEEu64;
        let mut rng = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut tree: IntervalTree<i64, usize> = IntervalTree::new();
        let mut flat: Vec<(u64, Bound<i64>, Bound<i64>)> = Vec::new();
        for i in 0..200 {
            let lo = (rng() % 1000) as i64;
            let len = (rng() % 60) as i64;
            let id = tree.insert(Included(lo), Excluded(lo + len + 1), i);
            flat.push((id, Included(lo), Excluded(lo + len + 1)));
        }
        for _ in 0..200 {
            let qlo = (rng() % 1100) as i64 - 50;
            let qlen = (rng() % 80) as i64;
            let (ql, qh) = (Included(qlo), Excluded(qlo + qlen + 1));
            let mut got = Vec::new();
            tree.intersecting(&ql, &qh, &mut |id, _| got.push(id));
            got.sort_unstable();
            let mut want: Vec<u64> = flat
                .iter()
                .filter(|(_, lo, hi)| lower_below_upper(lo, &qh) && lower_below_upper(&ql, hi))
                .map(|(id, _, _)| *id)
                .collect();
            want.sort_unstable();
            assert_eq!(
                got,
                want,
                "intersecting mismatch at [{qlo}, {})",
                qlo + qlen + 1
            );
        }
    }

    #[test]
    fn remove_by_returns_spans_and_payloads() {
        let mut t: IntervalTree<i32, u32> = IntervalTree::new();
        for i in 0..6 {
            t.insert(Included(i), Excluded(i + 10), i as u32);
        }
        let removed = t.remove_by(|p| p % 2 == 1);
        assert_eq!(removed.len(), 3);
        assert_eq!(t.len(), 3);
        for (lo, hi, p) in &removed {
            assert!(p % 2 == 1);
            assert_eq!(*lo, Included(*p as i32));
            assert_eq!(*hi, Excluded(*p as i32 + 10));
        }
        assert!(t.remove_by(|p| *p > 100).is_empty());
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn clone_is_independent() {
        let mut t: IntervalTree<i32, u32> = IntervalTree::new();
        t.insert(Included(0), Excluded(10), 1);
        t.insert(Included(5), Excluded(15), 2);
        let snapshot = t.clone();
        t.remove_by(|_| true);
        assert_eq!(t.len(), 0);
        assert_eq!(snapshot.len(), 2);
        let mut v = Vec::new();
        snapshot.intersecting(&Included(6), &Excluded(7), &mut |_, p| v.push(*p));
        v.sort_unstable();
        assert_eq!(v, vec![1, 2]);
    }
}
