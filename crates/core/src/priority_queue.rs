//! `TransactionalPriorityQueue` — a min-priority queue with semantic
//! concurrency control and **synthesized** locks.
//!
//! The queue stores element counts in a sorted backend (duplicates are
//! counted, not materialized), so the committed minimum is the backend's
//! first entry. `insert` is a blind buffered increment, like the
//! multiset's `add`. `peek_min`/`pop_min` observe the **first endpoint**:
//! they take the `First` lock *before* probing (lock-then-read), so any
//! commit that moves the minimum dooms them — no probe/verify loop is
//! needed, unlike the sorted map's range scans where the observation is a
//! whole interval. No hand-written mode table exists for this class: lock
//! modes come from [`PRIORITY_QUEUE_CONFLICT_GRAPH`], validated against
//! the dispatch matrix at construction.

// txlint: semantic-tables
// txlint: fast-path
use crate::backend::SortedMapBackend;
use crate::conflict_graph::{edge, op, ConflictGraph, Overlap};
use crate::kernel::{
    sweep_commit_footprint, sweep_release_footprint, CachedPoint, FootprintOp, SemanticClass,
    SemanticCore,
};
use crate::locks::{
    ObsMode, RangeIndexKind, SemanticStats, SortedGlobal, SortedTables, StripedTables,
    UpdateEffect, DEFAULT_STRIPES,
};
use std::collections::{BTreeMap, HashSet};
use std::hash::Hash;
use stm::{TVar, Txn, TxnMode};
use txstruct::TxTreeMap;

// txlint: conflict-graph
/// The priority queue's declared conflict graph. `insert` is blind;
/// `peek_min` and `pop_min` observe the minimum (`First` + the `Key` of
/// the returned element, `Empty` when there is none), and `pop_min` also
/// writes that element — so it needs the reflexive self-edges in every
/// mode it both observes and publishes. `len` is the total-cardinality
/// observer.
pub static PRIORITY_QUEUE_CONFLICT_GRAPH: ConflictGraph<'static> = ConflictGraph {
    class: "priority_queue",
    ops: &[
        op(
            "insert",
            &[],
            &[
                UpdateEffect::KeyWrite,
                UpdateEffect::SizeChange,
                UpdateEffect::ZeroCross,
                UpdateEffect::FirstChange,
            ],
        ),
        op(
            "peek_min",
            &[ObsMode::First, ObsMode::Key, ObsMode::Empty],
            &[],
        ),
        op(
            "pop_min",
            &[ObsMode::First, ObsMode::Key, ObsMode::Empty],
            &[
                UpdateEffect::KeyWrite,
                UpdateEffect::SizeChange,
                UpdateEffect::ZeroCross,
                UpdateEffect::FirstChange,
            ],
        ),
        op("len", &[ObsMode::Size], &[]),
        op("is_empty_primitive", &[ObsMode::Empty], &[]),
    ],
    edges: &[
        // The observed minimum vs writes of that same element; writes of
        // larger elements commute with having read the min's multiplicity.
        edge(
            "peek_min",
            "insert",
            ObsMode::Key,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        edge(
            "peek_min",
            "pop_min",
            ObsMode::Key,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        edge(
            "pop_min",
            "insert",
            ObsMode::Key,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        edge(
            "pop_min",
            "pop_min",
            ObsMode::Key,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        // Endpoint observers vs commits that move the minimum.
        edge(
            "peek_min",
            "insert",
            ObsMode::First,
            UpdateEffect::FirstChange,
            Overlap::Always,
        ),
        edge(
            "peek_min",
            "pop_min",
            ObsMode::First,
            UpdateEffect::FirstChange,
            Overlap::Always,
        ),
        edge(
            "pop_min",
            "insert",
            ObsMode::First,
            UpdateEffect::FirstChange,
            Overlap::Always,
        ),
        edge(
            "pop_min",
            "pop_min",
            ObsMode::First,
            UpdateEffect::FirstChange,
            Overlap::Always,
        ),
        // Emptiness observers (a `None` result) vs zero-crossings.
        edge(
            "peek_min",
            "insert",
            ObsMode::Empty,
            UpdateEffect::ZeroCross,
            Overlap::Always,
        ),
        edge(
            "peek_min",
            "pop_min",
            ObsMode::Empty,
            UpdateEffect::ZeroCross,
            Overlap::Always,
        ),
        edge(
            "pop_min",
            "insert",
            ObsMode::Empty,
            UpdateEffect::ZeroCross,
            Overlap::Always,
        ),
        edge(
            "pop_min",
            "pop_min",
            ObsMode::Empty,
            UpdateEffect::ZeroCross,
            Overlap::Always,
        ),
        edge(
            "is_empty_primitive",
            "insert",
            ObsMode::Empty,
            UpdateEffect::ZeroCross,
            Overlap::Always,
        ),
        edge(
            "is_empty_primitive",
            "pop_min",
            ObsMode::Empty,
            UpdateEffect::ZeroCross,
            Overlap::Always,
        ),
        // Total-cardinality observer vs any occupancy change.
        edge(
            "len",
            "insert",
            ObsMode::Size,
            UpdateEffect::SizeChange,
            Overlap::Always,
        ),
        edge(
            "len",
            "pop_min",
            ObsMode::Size,
            UpdateEffect::SizeChange,
            Overlap::Always,
        ),
    ],
};

/// Per-transaction local state: buffered multiplicity deltas (ordered so
/// the buffered minimum is a first-entry probe), held element locks, and
/// the buffered change to the total count.
pub(crate) struct PqLocal<T> {
    pub deltas: BTreeMap<T, i64>,
    pub key_locks: HashSet<T>,
    pub total_delta: i64,
}

impl<T> Default for PqLocal<T> {
    fn default() -> Self {
        PqLocal {
            deltas: BTreeMap::new(),
            key_locks: HashSet::new(),
            total_delta: 0,
        }
    }
}

/// The variant half of the priority-queue class: count-valued sorted
/// backend, the total counter, and the striped tables whose global stripe
/// carries the endpoint/size/empty locks.
pub(crate) struct PqClass<T, B> {
    pub(crate) backend: B,
    pub(crate) total: TVar<u64>,
    pub(crate) tables: SortedTables<T>,
}

impl<T, B> SemanticClass for PqClass<T, B>
where
    T: Clone + Ord + Eq + Hash + Send + Sync + 'static,
    B: SortedMapBackend<T, u64>,
{
    type Local = PqLocal<T>;
    type Undo = ();

    fn name(&self) -> &'static str {
        "priority_queue"
    }

    fn conflict_graph(&self) -> Option<&'static ConflictGraph<'static>> {
        Some(&PRIORITY_QUEUE_CONFLICT_GRAPH)
    }

    /// See `MapClass::snapshot_capable`: versioned (TVar) backends serve
    /// snapshot reads, non-transactional ones fall back.
    fn snapshot_capable(&self) -> bool {
        <B as crate::backend::MapReadOps<T, u64>>::TRANSACTIONAL_READS
    }

    /// Commit handler: apply the buffered multiplicity deltas under each
    /// element's stripe (ascending, the kernel's sweep), dooming observers
    /// of each changed element; then the global stripe last for the
    /// endpoint/size/empty dooms. Counts are clamped at zero — visibility
    /// was checked under the element lock, so a negative clamp only fires
    /// for doomed racers.
    fn apply(&self, local: PqLocal<T>, htx: &mut Txn, id: u64, stats: &SemanticStats) {
        // The handler lane serializes handlers and writing open-nested
        // commits, so these pre-apply reads are stable without table locks.
        let min_before = self.backend.first_entry(htx).map(|(k, _)| k);
        let total_before = self.total.read(htx);
        let mut applied: i64 = 0;

        sweep_commit_footprint(
            &self.tables,
            stats,
            local.deltas.iter(),
            local.key_locks.iter(),
            |shard, op| match op {
                FootprintOp::Apply(k, &d) => {
                    if d != 0 {
                        let cur = self.backend.get(htx, k).unwrap_or(0) as i64;
                        let new = (cur + d).max(0);
                        if new != cur {
                            if new == 0 {
                                let _ = self.backend.remove(htx, k);
                            } else {
                                let _ = self.backend.insert(htx, k.clone(), new as u64);
                            }
                            applied += new - cur;
                            let doomed = shard.doom_update(UpdateEffect::KeyWrite, k, id, stats);
                            stats.bump(&stats.key_conflicts, doomed);
                        }
                    }
                }
                FootprintOp::Release(k) => {
                    shard.release_keys(id, std::iter::once(k), stats);
                }
            },
        );

        let total_after = ((total_before as i64) + applied).max(0) as u64;
        if total_after != total_before {
            self.total.write(htx, total_after);
        }

        // Global stripe last: every apply above happens-before this hold.
        // The class takes no range locks, so only endpoint and point dooms
        // are needed here.
        let min_after = self.backend.first_entry(htx).map(|(k, _)| k);
        self.tables.with_global(stats, |g| {
            if min_before != min_after {
                let (_, by_first, _) =
                    g.sorted
                        .doom_update(UpdateEffect::FirstChange, None, 0, id, stats);
                stats.bump(&stats.first_conflicts, by_first);
            }
            if total_after != total_before {
                let (by_size, _) = g.points.doom_update(UpdateEffect::SizeChange, id, stats);
                stats.bump(&stats.size_conflicts, by_size);
                if (total_before == 0) != (total_after == 0) {
                    let (_, by_empty) = g.points.doom_update(UpdateEffect::ZeroCross, id, stats);
                    stats.bump(&stats.empty_conflicts, by_empty);
                }
            }
            g.points.release_owner(id, stats);
            g.sorted.release_owner(id, stats);
        });
    }

    /// Abort handler: writes were only buffered — pure lock release, key
    /// stripes ascending then the global stripe last.
    fn release(&self, local: PqLocal<T>, _htx: &mut Txn, id: u64, stats: &SemanticStats) {
        sweep_release_footprint(
            &self.tables,
            stats,
            local.key_locks.iter(),
            |shard, keys| shard.release_keys(id, keys.iter().copied(), stats),
        );
        self.tables.with_global(stats, |g| {
            g.points.release_owner(id, stats);
            g.sorted.release_owner(id, stats);
        });
    }
}

/// A transactional min-priority queue with synthesized semantic locks.
/// Duplicate elements are supported (counted multiplicities).
///
/// ```
/// use stm::atomic;
/// use txcollections::TransactionalPriorityQueue;
///
/// let pq: TransactionalPriorityQueue<u32> = TransactionalPriorityQueue::new();
/// atomic(|tx| {
///     pq.insert(tx, 5);
///     pq.insert(tx, 3);
///     pq.insert(tx, 3);
///     assert_eq!(pq.pop_min(tx), Some(3));
///     assert_eq!(pq.pop_min(tx), Some(3));
///     assert_eq!(pq.peek_min(tx), Some(5));
/// });
/// ```
pub struct TransactionalPriorityQueue<T, B = TxTreeMap<T, u64>>
where
    T: Clone + Ord + Eq + Hash + Send + Sync + 'static,
    B: SortedMapBackend<T, u64>,
{
    core: SemanticCore<PqClass<T, B>>,
}

impl<T, B> Clone for TransactionalPriorityQueue<T, B>
where
    T: Clone + Ord + Eq + Hash + Send + Sync + 'static,
    B: SortedMapBackend<T, u64>,
{
    fn clone(&self) -> Self {
        TransactionalPriorityQueue {
            core: self.core.clone(),
        }
    }
}

impl<T> TransactionalPriorityQueue<T, TxTreeMap<T, u64>>
where
    T: Clone + Ord + Eq + Hash + Send + Sync + 'static,
{
    /// Create a priority queue over a fresh count-valued [`TxTreeMap`].
    pub fn new() -> Self {
        Self::wrap(TxTreeMap::new())
    }

    /// Create with an explicit lock-table stripe count (rounded up to a
    /// power of two; `1` recovers the unstriped design).
    pub fn with_stripes(nstripes: usize) -> Self {
        Self::wrap_with_stripes(TxTreeMap::new(), nstripes)
    }
}

impl<T> Default for TransactionalPriorityQueue<T, TxTreeMap<T, u64>>
where
    T: Clone + Ord + Eq + Hash + Send + Sync + 'static,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<T, B> TransactionalPriorityQueue<T, B>
where
    T: Clone + Ord + Eq + Hash + Send + Sync + 'static,
    B: SortedMapBackend<T, u64>,
{
    /// Wrap an existing count-valued sorted backend.
    pub fn wrap(backend: B) -> Self {
        Self::wrap_with_stripes(backend, DEFAULT_STRIPES)
    }

    /// Wrap with an explicit stripe count.
    pub fn wrap_with_stripes(backend: B, nstripes: usize) -> Self {
        TransactionalPriorityQueue {
            core: SemanticCore::new(
                PqClass {
                    backend,
                    total: TVar::new(0),
                    tables: StripedTables::new(
                        nstripes,
                        SortedGlobal::with_kind(RangeIndexKind::FlatScan),
                    ),
                },
                nstripes,
            ),
        }
    }

    /// Semantic-conflict counters for this instance.
    pub fn semantic_stats(&self) -> &SemanticStats {
        self.core.stats()
    }

    /// Stripe count of the semantic lock table.
    pub fn stripe_count(&self) -> usize {
        self.core.class().tables.stripe_count()
    }

    fn assert_usable(tx: &Txn) {
        assert!(
            tx.mode() == TxnMode::Speculative,
            "TransactionalPriorityQueue operations cannot run inside commit/abort handlers"
        );
    }

    fn with_local<R>(&self, tx: &Txn, f: impl FnOnce(&mut PqLocal<T>) -> R) -> R {
        self.core.with_local(tx, f)
    }

    fn take_key_lock(&self, tx: &mut Txn, value: &T) {
        if self.core.key_lock_cached(tx, value) {
            return;
        }
        let owner = tx.handle().clone();
        let class = self.core.class();
        let stats = self.core.stats();
        class.tables.with_stripe_for(value, stats, |s| {
            s.take_key_lock(value.clone(), owner, stats);
        });
        self.with_local(tx, |l| {
            l.key_locks.insert(value.clone());
        });
        self.core.note_key_lock(tx, value.clone());
    }

    /// Buffer a multiplicity delta with a local undo (closed-nested
    /// rollback).
    fn buffer_delta(&self, tx: &mut Txn, value: T, d: i64) {
        let id = tx.handle().id();
        self.with_local(tx, |l| {
            *l.deltas.entry(value.clone()).or_insert(0) += d;
            l.total_delta += d;
        });
        let core = self.core.clone();
        tx.on_local_undo(move || {
            core.update_local(id, |l| {
                *l.deltas.entry(value.clone()).or_insert(0) -= d;
                l.total_delta -= d;
            });
        });
    }

    /// Insert an element — a **blind** buffered increment: takes no
    /// semantic lock, so concurrent inserts always commute, even of equal
    /// elements.
    pub fn insert(&self, tx: &mut Txn, value: T) {
        Self::assert_usable(tx);
        self.core.ensure_registered(tx);
        self.buffer_delta(tx, value, 1);
    }

    /// The visible minimum under this transaction's `First` lock.
    ///
    /// Lock-then-read: the `First` lock is taken **before** any probe, so a
    /// concurrent commit that moves the minimum dooms this transaction
    /// rather than letting it read a stale endpoint. The committed side is
    /// walked ascending (skipping elements whose buffered delta cancels
    /// their committed count) and merged with the smallest
    /// positively-buffered local element. The result's element lock — or
    /// the `Empty` lock, when there is no result — is taken before
    /// returning.
    fn visible_min(&self, tx: &mut Txn) -> Option<T> {
        let stats = self.core.stats();
        if !self.core.point_lock_cached(tx, CachedPoint::First) {
            let owner = tx.handle().clone();
            self.core
                .class()
                .tables
                .with_global(stats, |g| g.sorted.take_first_lock(owner, stats));
            self.core.note_point_lock(tx, CachedPoint::First);
        }

        // Committed side: counts stored in the backend are always >= 1, but
        // this transaction's own buffered deltas may cancel them.
        let mut committed_min: Option<T> = None;
        let backend = &self.core.class().backend;
        let mut cur = tx.open_read(|otx| backend.first_entry(otx));
        while let Some((k, c)) = cur {
            let delta = self
                .core
                .try_local(tx, |l| l.deltas.get(&k).copied().unwrap_or(0))
                .unwrap_or(0);
            if c as i64 + delta > 0 {
                committed_min = Some(k);
                break;
            }
            cur = tx.open_read(|otx| backend.next_entry_after(otx, &k));
        }

        // Buffered side: a positive delta is visible regardless of the
        // committed count.
        let buffered_min = self
            .core
            .try_local(tx, |l| {
                l.deltas
                    .iter()
                    .find(|(_, d)| **d > 0)
                    .map(|(k, _)| k.clone())
            })
            .flatten();

        let candidate = match (committed_min, buffered_min) {
            (None, None) => None,
            (Some(c), None) => Some(c),
            (None, Some(b)) => Some(b),
            (Some(c), Some(b)) => Some(if b <= c { b } else { c }),
        };
        match &candidate {
            Some(k) => self.take_key_lock(tx, k),
            None => {
                if !self.core.point_lock_cached(tx, CachedPoint::Empty) {
                    let owner = tx.handle().clone();
                    self.core
                        .class()
                        .tables
                        .with_global(stats, |g| g.points.take_empty_lock(owner, stats));
                    self.core.note_point_lock(tx, CachedPoint::Empty);
                }
            }
        }
        candidate
    }

    /// Smallest visible element without removing it (`First` lock plus the
    /// result's element lock; `Empty` lock when the queue is empty).
    pub fn peek_min(&self, tx: &mut Txn) -> Option<T> {
        Self::assert_usable(tx);
        self.core.ensure_registered(tx);
        self.visible_min(tx)
    }

    /// Remove and return the smallest visible element (peek's observations
    /// plus a buffered decrement of the result).
    pub fn pop_min(&self, tx: &mut Txn) -> Option<T> {
        Self::assert_usable(tx);
        self.core.ensure_registered(tx);
        let min = self.visible_min(tx)?;
        self.buffer_delta(tx, min.clone(), -1);
        Some(min)
    }

    /// Total number of queued elements, duplicates included (size lock).
    pub fn len(&self, tx: &mut Txn) -> usize {
        Self::assert_usable(tx);
        self.core.ensure_registered(tx);
        if !self.core.point_lock_cached(tx, CachedPoint::Size) {
            let owner = tx.handle().clone();
            let stats = self.core.stats();
            self.core
                .class()
                .tables
                .with_global(stats, |g| g.points.take_size_lock(owner, stats));
            self.core.note_point_lock(tx, CachedPoint::Size);
        }
        let total = self.core.class().total.clone();
        let committed = tx.open_read(move |otx| total.read(otx)) as i64;
        let delta = self.core.try_local(tx, |l| l.total_delta).unwrap_or(0);
        (committed + delta).max(0) as usize
    }

    /// `len() == 0` via the size lock.
    pub fn is_empty(&self, tx: &mut Txn) -> bool {
        self.len(tx) == 0
    }

    /// Emptiness as a primitive with its own zero-crossing lock (§5.1):
    /// conflicts only when the total count moves to or from zero.
    pub fn is_empty_primitive(&self, tx: &mut Txn) -> bool {
        Self::assert_usable(tx);
        self.core.ensure_registered(tx);
        if !self.core.point_lock_cached(tx, CachedPoint::Empty) {
            let owner = tx.handle().clone();
            let stats = self.core.stats();
            self.core
                .class()
                .tables
                .with_global(stats, |g| g.points.take_empty_lock(owner, stats));
            self.core.note_point_lock(tx, CachedPoint::Empty);
        }
        let total = self.core.class().total.clone();
        let committed = tx.open_read(move |otx| total.read(otx)) as i64;
        let delta = self.core.try_local(tx, |l| l.total_delta).unwrap_or(0);
        (committed + delta) <= 0
    }
}
