//! `EagerTransactionalMap` — the **pessimistic / undo-logging** alternative
//! implementation strategy discussed in paper §5.1.
//!
//! The main `TransactionalMap` is optimistic with redo logging: writes are
//! buffered and conflicts are detected at commit. This variant explores the
//! other quadrant the paper describes:
//!
//! * **Undo logging** — "update the global state in place. If there are no
//!   conflicts, the undo log is simply dropped at commit time. If ... the
//!   transaction needs to abort, the undo log can be used to perform the
//!   compensating actions."
//! * **Pessimistic (early) conflict detection** — "undo logging requires
//!   early conflict detection since only one writer can be allowed to
//!   update a piece of semantic state in place at a time." Writers take
//!   exclusive key locks at operation time; the [`EagerPolicy`] decides
//!   whether a writer encountering readers waits (self-aborts and retries —
//!   the lock-like behaviour with its "usual problems", which the retry
//!   loop converts to livelock-free waiting) or dooms them (aggressive
//!   contention management).
//!
//! The reader/writer key tables are striped like the optimistic map's:
//! each key's reader set and writer slot live in the key's stripe, so the
//! entire reader-vs-writer negotiation for a key is one short stripe hold;
//! the size-lock set and the pending in-place size delta live in the global
//! stripe.
//!
//! The class preserves the same external semantics (atomicity, isolation,
//! abstract-datatype serializability) — the `eager_vs_lazy` test suite and
//! the `ablation_eager` bench compare the two strategies under contention.
//!
//! Scope: point operations and size. Iteration is provided only by the
//! optimistic wrapper (an eager iterator would have to write-lock every
//! visited key, which §5.1's performance framing argues against).
//!
//! Paired with the non-transactional [`BoostedHashMap`]
//! ([`EagerTransactionalMap::boosted`]), this class is transactional
//! *boosting* proper: in-place mutations against a genuinely concurrent
//! structure, isolation entirely from the semantic locks plus the logged
//! [`UndoOp`] compensations the kernel replays (newest first, before any
//! lock is released) on abort.

// txlint: semantic-tables
// txlint: boosted-backend
// txlint: fast-path
use crate::backend::{MapBackend, UndoOp};
use crate::conflict_graph::{edge, op, ConflictGraph, Overlap};
use crate::kernel::{sweep_commit_footprint, FootprintOp, SemanticClass, SemanticCore};
use crate::locks::{
    doom_others, key_hash64, DoomCtx, ObsMode, Owner, SemanticStats, StripedTables, UpdateEffect,
    DEFAULT_STRIPES,
};
use std::collections::{HashMap, HashSet};
use std::hash::Hash;
use std::marker::PhantomData;
use stm::trace::{self, LockKind};
use stm::{TxState, Txn, TxnMode};
use txstruct::{BoostedHashMap, TxHashMap};

// txlint: conflict-graph
/// The eager (encounter-time) map's declared conflict graph: the same
/// Tables 1–2 key/size semantics as the buffered map, minus the emptiness
/// primitive and zero-crossing effect (the eager map updates in place and
/// publishes only key writes and size changes at commit).
pub static EAGER_MAP_CONFLICT_GRAPH: ConflictGraph<'static> = ConflictGraph {
    class: "eager_map",
    ops: &[
        op("get", &[ObsMode::Key], &[]),
        op(
            "put",
            &[ObsMode::Key],
            &[UpdateEffect::KeyWrite, UpdateEffect::SizeChange],
        ),
        op(
            "remove",
            &[ObsMode::Key],
            &[UpdateEffect::KeyWrite, UpdateEffect::SizeChange],
        ),
        op("size", &[ObsMode::Size], &[]),
    ],
    edges: &[
        edge(
            "get",
            "put",
            ObsMode::Key,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        edge(
            "get",
            "remove",
            ObsMode::Key,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        edge(
            "put",
            "put",
            ObsMode::Key,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        edge(
            "put",
            "remove",
            ObsMode::Key,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        edge(
            "remove",
            "put",
            ObsMode::Key,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        edge(
            "remove",
            "remove",
            ObsMode::Key,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        edge(
            "size",
            "put",
            ObsMode::Size,
            UpdateEffect::SizeChange,
            Overlap::Always,
        ),
        edge(
            "size",
            "remove",
            ObsMode::Size,
            UpdateEffect::SizeChange,
            Overlap::Always,
        ),
    ],
};

/// What a writer does when it meets readers of the key it wants to update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EagerPolicy {
    /// The writer aborts itself and retries later (polite; writers wait for
    /// readers, like write-preferring lock acquisition with deadlock
    /// avoidance by restart).
    WriterWaits,
    /// The writer dooms the readers immediately (aggressive; readers are
    /// rolled back at operation time rather than commit time).
    DoomReaders,
}

struct EagerLocal<K> {
    read_keys: HashSet<K>,
    write_keys: HashSet<K>,
    /// Keys whose pre-transaction state is already captured in the kernel
    /// undo log — only the **first** in-place write of a key logs an
    /// [`UndoOp`]; later writes are undone by the same entry.
    undone_keys: HashSet<K>,
    /// Net size change applied in place by this transaction.
    delta: i64,
    holds_size_lock: bool,
}

impl<K> Default for EagerLocal<K> {
    fn default() -> Self {
        EagerLocal {
            read_keys: HashSet::new(),
            write_keys: HashSet::new(),
            undone_keys: HashSet::new(),
            delta: 0,
            holds_size_lock: false,
        }
    }
}

/// One stripe of the eager map's key tables: reader sets and exclusive
/// writer slots for the keys hashing to this stripe.
struct EagerShard<K> {
    readers: HashMap<K, HashSet<Owner>>,
    writers: HashMap<K, Owner>,
}

impl<K> Default for EagerShard<K> {
    fn default() -> Self {
        EagerShard {
            readers: HashMap::new(),
            writers: HashMap::new(),
        }
    }
}

/// Global-stripe payload: size observers and the uncommitted in-place
/// size delta.
#[derive(Default)]
struct EagerGlobal {
    size_lockers: HashSet<Owner>,
    /// Sum of uncommitted in-place size changes; subtracted from the
    /// backend's length so readers see the committed size.
    pending_delta: i64,
}

/// The variant half of the eager map (kernel [`SemanticClass`]): the wrapped
/// backend, the contention policy, and the striped reader/writer tables.
struct EagerClass<K, V, B> {
    backend: B,
    policy: EagerPolicy,
    tables: StripedTables<EagerShard<K>, EagerGlobal>,
    _value: PhantomData<fn() -> V>,
}

impl<K, V, B> EagerClass<K, V, B>
where
    K: Clone + Eq + Hash + Send + Sync + 'static,
{
    /// Release every lock `id` holds: per-stripe reader/writer entries
    /// (stripes ascending via the kernel sweep, writer slots handled before
    /// reader sets within each stripe), then the global stripe's size lock
    /// and pending delta, last. `doom_write_key_readers` additionally dooms
    /// remaining readers of the written keys (commit path only).
    fn release_owner(
        &self,
        local: &EagerLocal<K>,
        id: u64,
        stats: &SemanticStats,
        doom_write_key_readers: bool,
    ) {
        sweep_commit_footprint(
            &self.tables,
            stats,
            local.write_keys.iter().map(|k| (k, &())),
            local.read_keys.iter(),
            |s, op| match op {
                FootprintOp::Apply(k, _) => {
                    if doom_write_key_readers {
                        if let Some(rs) = s.readers.get_mut(k) {
                            let ctx = DoomCtx {
                                stats,
                                obs: ObsMode::Key,
                                effect: UpdateEffect::KeyWrite,
                                key_hash: key_hash64(k),
                            };
                            let doomed = doom_others(rs, id, &ctx);
                            stats.bump(&stats.key_conflicts, doomed);
                        }
                    }
                    if s.writers.get(k).map(|o| o.id() == id).unwrap_or(false) {
                        s.writers.remove(k);
                    }
                }
                FootprintOp::Release(k) => {
                    if let Some(rs) = s.readers.get_mut(k) {
                        rs.retain(|o| o.id() != id);
                        if rs.is_empty() {
                            s.readers.remove(k);
                        }
                    }
                }
            },
        );
        self.tables.with_global(stats, |g| {
            g.size_lockers.retain(|o| o.id() != id);
            g.pending_delta -= local.delta;
        });
    }
}

impl<K, V, B> SemanticClass for EagerClass<K, V, B>
where
    K: Clone + Eq + Hash + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    B: MapBackend<K, V>,
{
    type Local = EagerLocal<K>;
    type Undo = UndoOp<K, V>;

    fn name(&self) -> &'static str {
        "eager_map"
    }

    fn conflict_graph(&self) -> Option<&'static ConflictGraph<'static>> {
        Some(&EAGER_MAP_CONFLICT_GRAPH)
    }

    /// Never snapshot-capable, regardless of backend: eager writes land in
    /// the committed structure (as committed TVar versions) *before* the
    /// transaction commits, so a snapshot at a version past the in-place
    /// write would observe uncommitted state. Fall back to the validated
    /// path, where write locks make such reads abort instead.
    fn snapshot_capable(&self) -> bool {
        false
    }

    /// Commit handler. Changes are already in place: drop the undo log, doom
    /// the readers of our written keys that appeared after our write lock
    /// (none can exist — they abort on seeing the write lock — but a
    /// doomed-then-revived bookkeeping race is cheap to close), and release
    /// everything.
    fn apply(&self, local: EagerLocal<K>, _htx: &mut Txn, id: u64, stats: &SemanticStats) {
        self.release_owner(&local, id, stats, true);
    }

    /// One undo entry, replayed by the kernel in reverse logging order
    /// **before** [`Self::release`] — this transaction's exclusive write
    /// locks are still held, so no reader can observe the window between a
    /// compensating write and the lock drop. Delegates to the backend's
    /// undo surface ([`crate::backend::MapUndo::compensate`]).
    fn compensate(&self, undo: UndoOp<K, V>, htx: &mut Txn) {
        self.backend.compensate(htx, undo);
    }

    /// Abort handler: the kernel has already drained the undo log through
    /// [`Self::compensate`]; all that is left is releasing the footprint.
    fn release(&self, local: EagerLocal<K>, _htx: &mut Txn, id: u64, stats: &SemanticStats) {
        self.release_owner(&local, id, stats, false);
    }
}

/// Pessimistic, undo-logging transactional map; see the module docs.
pub struct EagerTransactionalMap<K, V, B = TxHashMap<K, V>>
where
    K: Clone + Eq + Hash + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    B: MapBackend<K, V>,
{
    core: SemanticCore<EagerClass<K, V, B>>,
}

impl<K, V, B> Clone for EagerTransactionalMap<K, V, B>
where
    K: Clone + Eq + Hash + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    B: MapBackend<K, V>,
{
    fn clone(&self) -> Self {
        EagerTransactionalMap {
            core: self.core.clone(),
        }
    }
}

impl<K, V> EagerTransactionalMap<K, V, TxHashMap<K, V>>
where
    K: Clone + Eq + Hash + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// Create over a fresh [`TxHashMap`] with the given contention policy.
    pub fn new(policy: EagerPolicy) -> Self {
        Self::wrap(TxHashMap::new(), policy)
    }

    /// Create over a fresh pre-sized [`TxHashMap`].
    pub fn with_capacity(capacity: usize, policy: EagerPolicy) -> Self {
        Self::wrap(TxHashMap::with_capacity(capacity), policy)
    }
}

impl<K, V> EagerTransactionalMap<K, V, BoostedHashMap<K, V>>
where
    K: Clone + Eq + Hash + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// Create over a fresh non-transactional [`BoostedHashMap`] —
    /// transactional boosting proper (see the module docs): eager in-place
    /// mutation of a real concurrent map, isolation entirely from this
    /// wrapper's semantic locks and logged compensations.
    pub fn boosted(policy: EagerPolicy) -> Self {
        Self::wrap(BoostedHashMap::new(), policy)
    }

    /// [`Self::boosted`] with explicit stripe counts for the semantic
    /// tables (the backend's shard count is its own, independent knob).
    pub fn boosted_with_stripes(policy: EagerPolicy, nstripes: usize) -> Self {
        Self::wrap_with_stripes(BoostedHashMap::new(), policy, nstripes)
    }
}

impl<K, V, B> EagerTransactionalMap<K, V, B>
where
    K: Clone + Eq + Hash + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    B: MapBackend<K, V>,
{
    /// Wrap an existing map implementation ([`DEFAULT_STRIPES`] stripes).
    pub fn wrap(backend: B, policy: EagerPolicy) -> Self {
        Self::wrap_with_stripes(backend, policy, DEFAULT_STRIPES)
    }

    /// Wrap with an explicit stripe count for the reader/writer key tables.
    pub fn wrap_with_stripes(backend: B, policy: EagerPolicy, nstripes: usize) -> Self {
        EagerTransactionalMap {
            core: SemanticCore::new(
                EagerClass {
                    backend,
                    policy,
                    tables: StripedTables::new(nstripes, EagerGlobal::default()),
                    _value: PhantomData,
                },
                nstripes,
            ),
        }
    }

    /// Semantic-conflict counters for this instance.
    pub fn semantic_stats(&self) -> &SemanticStats {
        self.core.stats()
    }

    fn assert_usable(tx: &Txn) {
        assert!(
            tx.mode() == TxnMode::Speculative,
            "EagerTransactionalMap operations cannot run inside commit/abort handlers"
        );
    }

    /// First-touch registration, discharged by the kernel (probe, then the
    /// paired handlers, then the locals entry — in exactly that order).
    fn ensure_registered(&self, tx: &mut Txn) {
        self.core.ensure_registered(tx);
    }

    fn with_local<R>(&self, tx: &Txn, f: impl FnOnce(&mut EagerLocal<K>) -> R) -> R {
        self.core.with_local(tx, f)
    }

    /// Is this owner (by id) an *other, still-active* transaction?
    fn is_other_active(owner: &Owner, self_id: u64) -> bool {
        owner.id() != self_id && owner.state() == TxState::Active
    }

    // ------------------------------------------------------------------
    // Reads
    // ------------------------------------------------------------------

    /// Look up a key. Pessimistic: if another transaction holds the write
    /// lock (its in-place value is uncommitted), this transaction aborts and
    /// retries rather than read dirty data.
    pub fn get(&self, tx: &mut Txn, key: &K) -> Option<V> {
        Self::assert_usable(tx);
        self.ensure_registered(tx);
        let self_id = tx.handle().id();
        let owner = tx.handle().clone();
        let class = self.core.class();
        let stats = self.core.stats();
        let blocked = class.tables.with_stripe_for(key, stats, |s| {
            if let Some(w) = s.writers.get(key) {
                if Self::is_other_active(w, self_id) {
                    return true;
                }
            }
            stats.bump(&stats.lock_acquisitions, 1);
            trace::sem_lock_acquired(
                owner.id(),
                stats.class_sym(),
                LockKind::Key,
                key_hash64(key),
            );
            s.readers.entry(key.clone()).or_default().insert(owner);
            false
        });
        if blocked {
            stm::abort_and_retry();
        }
        self.with_local(tx, |l| {
            l.read_keys.insert(key.clone());
        });
        // Read locks are re-taken on every call rather than cached: caching
        // would skip the stripe visit, and the stripe visit is where an
        // in-place writer holding this key is detected. Skipping it opens a
        // dirty-read window, so the eager map gets flattened reads only.
        let backend = &class.backend;
        tx.open_read(|otx| backend.get(otx, key))
    }

    /// Whether a key is present (same locking as [`Self::get`]).
    pub fn contains_key(&self, tx: &mut Txn, key: &K) -> bool {
        self.get(tx, key).is_some()
    }

    /// Committed size: the backend length minus all pending in-place deltas,
    /// plus this transaction's own delta. Takes the size lock (global
    /// stripe).
    pub fn size(&self, tx: &mut Txn) -> usize {
        Self::assert_usable(tx);
        self.ensure_registered(tx);
        let own = self.with_local(tx, |l| {
            l.holds_size_lock = true;
            l.delta
        });
        let owner = tx.handle().clone();
        let class = self.core.class();
        let stats = self.core.stats();
        let pending = class.tables.with_global(stats, |g| {
            stats.bump(&stats.lock_acquisitions, 1);
            trace::sem_lock_acquired(owner.id(), stats.class_sym(), LockKind::Size, 0);
            g.size_lockers.insert(owner);
            g.pending_delta
        });
        let backend = &class.backend;
        let raw = tx.open_read(|otx| backend.len(otx)) as i64;
        (raw - pending + own).max(0) as usize
    }

    /// Whether the map is empty (derived; takes the size lock).
    pub fn is_empty(&self, tx: &mut Txn) -> bool {
        self.size(tx) == 0
    }

    // ------------------------------------------------------------------
    // Writes (in place, early conflict detection)
    // ------------------------------------------------------------------

    /// Acquire the exclusive write lock on `key`, resolving conflicts by
    /// policy. Returns without the lock only by unwinding (abort & retry).
    fn acquire_write_lock(&self, tx: &mut Txn, key: &K) {
        let self_id = tx.handle().id();
        let owner = tx.handle().clone();
        let class = self.core.class();
        let policy = class.policy;
        let stats = self.core.stats();
        let blocked = class.tables.with_stripe_for(key, stats, |s| {
            if let Some(w) = s.writers.get(key) {
                if Self::is_other_active(w, self_id) {
                    // Two in-place writers on one key can never coexist.
                    return true;
                }
            }
            let readers_present = s
                .readers
                .get(key)
                .map(|rs| rs.iter().any(|o| Self::is_other_active(o, self_id)))
                .unwrap_or(false);
            if readers_present {
                match policy {
                    EagerPolicy::WriterWaits => return true,
                    EagerPolicy::DoomReaders => {
                        if let Some(rs) = s.readers.get_mut(key) {
                            let ctx = DoomCtx {
                                stats,
                                obs: ObsMode::Key,
                                effect: UpdateEffect::KeyWrite,
                                key_hash: key_hash64(key),
                            };
                            let doomed = doom_others(rs, self_id, &ctx);
                            stats.bump(&stats.key_conflicts, doomed);
                        }
                    }
                }
            }
            stats.bump(&stats.lock_acquisitions, 1);
            trace::sem_lock_acquired(
                owner.id(),
                stats.class_sym(),
                LockKind::Key,
                key_hash64(key),
            );
            s.writers.insert(key.clone(), owner);
            false
        });
        if blocked {
            stm::abort_and_retry();
        }
        self.with_local(tx, |l| {
            l.write_keys.insert(key.clone());
        });
    }

    /// Account an in-place size change: adjust the pending delta and doom
    /// size observers (early, pessimistic).
    fn size_changed(&self, tx: &mut Txn, change: i64) {
        let self_id = tx.handle().id();
        let stats = self.core.stats();
        self.core.class().tables.with_global(stats, |g| {
            g.pending_delta += change;
            let ctx = DoomCtx {
                stats,
                obs: ObsMode::Size,
                effect: UpdateEffect::SizeChange,
                key_hash: 0,
            };
            let doomed = doom_others(&mut g.size_lockers, self_id, &ctx);
            stats.bump(&stats.size_conflicts, doomed);
        });
        self.with_local(tx, |l| l.delta += change);
    }

    /// Insert or replace **in place**; returns the previous value. The undo
    /// log restores it if the transaction aborts.
    pub fn put(&self, tx: &mut Txn, key: K, value: V) -> Option<V> {
        Self::assert_usable(tx);
        self.ensure_registered(tx);
        self.acquire_write_lock(tx, &key);
        let backend = &self.core.class().backend;
        let k2 = key.clone();
        let old = tx.open(move |otx| backend.insert(otx, k2.clone(), value.clone()));
        // Only the first in-place write of a key needs an undo entry; later
        // writes are undone by the same restore.
        if self.with_local(tx, |l| l.undone_keys.insert(key.clone())) {
            match &old {
                Some(v) => self
                    .core
                    .log_undo(tx, UndoOp::Restore(key.clone(), v.clone())),
                None => self.core.log_undo(tx, UndoOp::Delete(key.clone())),
            }
        }
        if old.is_none() {
            self.size_changed(tx, 1);
        }
        old
    }

    /// Remove **in place**; returns the previous value.
    pub fn remove(&self, tx: &mut Txn, key: &K) -> Option<V> {
        Self::assert_usable(tx);
        self.ensure_registered(tx);
        self.acquire_write_lock(tx, key);
        let backend = &self.core.class().backend;
        let k2 = key.clone();
        let old = tx.open(move |otx| backend.remove(otx, &k2));
        if let Some(v) = &old {
            if self.with_local(tx, |l| l.undone_keys.insert(key.clone())) {
                self.core
                    .log_undo(tx, UndoOp::Restore(key.clone(), v.clone()));
            }
            self.size_changed(tx, -1);
        }
        old
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use stm::atomic;

    #[test]
    fn basic_roundtrip() {
        let m: EagerTransactionalMap<u32, String> =
            EagerTransactionalMap::new(EagerPolicy::WriterWaits);
        atomic(|tx| {
            assert_eq!(m.put(tx, 1, "a".into()), None);
            assert_eq!(m.put(tx, 1, "b".into()), Some("a".into()));
            assert_eq!(m.get(tx, &1).as_deref(), Some("b"));
            assert_eq!(m.size(tx), 1);
            assert_eq!(m.remove(tx, &1), Some("b".into()));
            assert_eq!(m.size(tx), 0);
        });
    }

    #[test]
    fn in_place_writes_roll_back_on_abort() {
        let m: EagerTransactionalMap<u32, u32> =
            EagerTransactionalMap::new(EagerPolicy::WriterWaits);
        atomic(|tx| {
            m.put(tx, 1, 10);
        });
        let m2 = m.clone();
        let (_, t1) = stm::speculate(
            move |tx| {
                m2.put(tx, 1, 99); // in place!
                m2.put(tx, 2, 20);
                m2.remove(tx, &1);
            },
            0,
        )
        .unwrap();
        t1.abort(stm::AbortCause::Explicit);
        atomic(|tx| {
            assert_eq!(m.get(tx, &1), Some(10), "undo failed to restore");
            assert_eq!(m.get(tx, &2), None, "undo failed to delete");
            assert_eq!(m.size(tx), 1);
        });
    }

    #[test]
    fn writer_waits_for_reader() {
        let m: EagerTransactionalMap<u32, u32> =
            EagerTransactionalMap::new(EagerPolicy::WriterWaits);
        atomic(|tx| {
            m.put(tx, 1, 1);
        });
        // Reader holds the key...
        let m2 = m.clone();
        let (_, reader) = stm::speculate(
            move |tx| {
                m2.get(tx, &1);
            },
            0,
        )
        .unwrap();
        // ...writer self-aborts.
        let m3 = m.clone();
        let writer = stm::speculate(
            move |tx| {
                m3.put(tx, 1, 2);
            },
            0,
        );
        assert!(
            writer.is_err(),
            "writer must abort while a reader holds the key"
        );
        assert!(!reader.handle().is_doomed());
        reader.abort(stm::AbortCause::Explicit);
        // Reader gone: writer succeeds.
        let m4 = m.clone();
        let (_, w) = stm::speculate(
            move |tx| {
                m4.put(tx, 1, 2);
            },
            0,
        )
        .unwrap();
        w.commit();
        assert_eq!(atomic(|tx| m.get(tx, &1)), Some(2));
    }

    #[test]
    fn doom_readers_policy_dooms_at_write_time() {
        let m: EagerTransactionalMap<u32, u32> =
            EagerTransactionalMap::new(EagerPolicy::DoomReaders);
        atomic(|tx| {
            m.put(tx, 1, 1);
        });
        let m2 = m.clone();
        let (_, reader) = stm::speculate(
            move |tx| {
                m2.get(tx, &1);
            },
            0,
        )
        .unwrap();
        let m3 = m.clone();
        let (_, writer) = stm::speculate(
            move |tx| {
                m3.put(tx, 1, 2);
            },
            0,
        )
        .unwrap();
        assert!(
            reader.handle().is_doomed(),
            "aggressive writer must doom the reader at operation time"
        );
        writer.commit();
        reader.abort(stm::AbortCause::Doomed);
        assert_eq!(atomic(|tx| m.get(tx, &1)), Some(2));
    }

    #[test]
    fn size_hides_uncommitted_deltas() {
        let m: EagerTransactionalMap<u32, u32> =
            EagerTransactionalMap::new(EagerPolicy::DoomReaders);
        atomic(|tx| {
            m.put(tx, 1, 1);
        });
        let m2 = m.clone();
        let (_, writer) = stm::speculate(
            move |tx| {
                m2.put(tx, 2, 2); // in place, uncommitted
                assert_eq!(m2.size(tx), 2, "own delta must count");
            },
            0,
        )
        .unwrap();
        // An outside observer sees the committed size only.
        let observed = atomic(|tx| m.size(tx));
        assert_eq!(observed, 1, "uncommitted in-place insert leaked into size");
        writer.commit();
        assert_eq!(atomic(|tx| m.size(tx)), 2);
    }

    #[test]
    fn concurrent_threads_conserve_data() {
        let m: Arc<EagerTransactionalMap<u64, u64>> = Arc::new(
            EagerTransactionalMap::with_capacity(4096, EagerPolicy::WriterWaits),
        );
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let m = m.clone();
                s.spawn(move || {
                    for i in 0..150u64 {
                        let k = t * 1000 + (i % 60);
                        atomic(|tx| {
                            let cur = m.get(tx, &k).unwrap_or(0);
                            m.put(tx, k, cur + 1);
                        });
                    }
                });
            }
        });
        // Each thread incremented each of its 60 keys 150/60 times (2 or 3).
        let total: u64 = atomic(|tx| {
            let mut sum = 0;
            for t in 0..4u64 {
                for j in 0..60u64 {
                    sum += m.get(tx, &(t * 1000 + j)).unwrap_or(0);
                }
            }
            sum
        });
        assert_eq!(total, 4 * 150, "lost updates under eager concurrency");
    }
}
