//! `TransactionalSet` / `TransactionalSortedSet` — thin wrappers over the
//! transactional maps, "as has been done similarly for ConcurrentHashSet
//! implementations built on top of ConcurrentHashMap" (paper §5.1).
//!
//! The sets carry no protocol code of their own: they ride the maps'
//! [`crate::SemanticCore`], so the kernel's registration/sweep obligations
//! are discharged for them too.

use crate::backend::{MapBackend, SortedMapBackend};
use crate::conflict_graph::{edge, op, ConflictGraph, Overlap};
use crate::locks::{ObsMode, SemanticStats, UpdateEffect};
use crate::map::TransactionalMap;
use crate::sorted_map::TransactionalSortedMap;
use std::hash::Hash;
use std::ops::Bound;
use stm::Txn;
use txstruct::{BoostedHashMap, TxHashMap, TxTreeMap};

// txlint: conflict-graph
/// The set abstraction's declared conflict graph (paper §3.2: the set is
/// the map with unit values, so its graph is the map graph restricted to
/// the element-keyed operations). The set classes dispatch through the
/// underlying map cores — this declaration exists so the set's conflict
/// semantics are checkable data like every other class's, and it is
/// registered in [`declared_graphs`](crate::conflict_graph::declared_graphs).
pub static SET_CONFLICT_GRAPH: ConflictGraph<'static> = ConflictGraph {
    class: "set",
    ops: &[
        op("contains", &[ObsMode::Key], &[]),
        op(
            "add",
            &[ObsMode::Key],
            &[
                UpdateEffect::KeyWrite,
                UpdateEffect::SizeChange,
                UpdateEffect::ZeroCross,
            ],
        ),
        op(
            "remove",
            &[ObsMode::Key],
            &[
                UpdateEffect::KeyWrite,
                UpdateEffect::SizeChange,
                UpdateEffect::ZeroCross,
            ],
        ),
        op(
            "add_blind",
            &[],
            &[
                UpdateEffect::KeyWrite,
                UpdateEffect::SizeChange,
                UpdateEffect::ZeroCross,
            ],
        ),
        op("size", &[ObsMode::Size], &[]),
        op("elements", &[ObsMode::Key, ObsMode::Size], &[]),
    ],
    edges: &[
        // Element observers vs same-element writes; distinct elements
        // commute.
        edge(
            "contains",
            "add",
            ObsMode::Key,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        edge(
            "contains",
            "remove",
            ObsMode::Key,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        edge(
            "contains",
            "add_blind",
            ObsMode::Key,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        edge(
            "add",
            "add",
            ObsMode::Key,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        edge(
            "add",
            "remove",
            ObsMode::Key,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        edge(
            "add",
            "add_blind",
            ObsMode::Key,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        edge(
            "remove",
            "add",
            ObsMode::Key,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        edge(
            "remove",
            "remove",
            ObsMode::Key,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        edge(
            "remove",
            "add_blind",
            ObsMode::Key,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        edge(
            "elements",
            "add",
            ObsMode::Key,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        edge(
            "elements",
            "remove",
            ObsMode::Key,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        edge(
            "elements",
            "add_blind",
            ObsMode::Key,
            UpdateEffect::KeyWrite,
            Overlap::OnOverlap,
        ),
        // Cardinality observers vs membership changes.
        edge(
            "size",
            "add",
            ObsMode::Size,
            UpdateEffect::SizeChange,
            Overlap::Always,
        ),
        edge(
            "size",
            "remove",
            ObsMode::Size,
            UpdateEffect::SizeChange,
            Overlap::Always,
        ),
        edge(
            "size",
            "add_blind",
            ObsMode::Size,
            UpdateEffect::SizeChange,
            Overlap::Always,
        ),
        edge(
            "elements",
            "add",
            ObsMode::Size,
            UpdateEffect::SizeChange,
            Overlap::Always,
        ),
        edge(
            "elements",
            "remove",
            ObsMode::Size,
            UpdateEffect::SizeChange,
            Overlap::Always,
        ),
        edge(
            "elements",
            "add_blind",
            ObsMode::Size,
            UpdateEffect::SizeChange,
            Overlap::Always,
        ),
    ],
};

/// A transactional set with semantic concurrency control, backed by a
/// [`TransactionalMap`] with unit values.
pub struct TransactionalSet<K, B = TxHashMap<K, ()>>
where
    K: Clone + Eq + Hash + Send + Sync + 'static,
    B: MapBackend<K, ()>,
{
    map: TransactionalMap<K, (), B>,
}

impl<K, B> Clone for TransactionalSet<K, B>
where
    K: Clone + Eq + Hash + Send + Sync + 'static,
    B: MapBackend<K, ()>,
{
    fn clone(&self) -> Self {
        TransactionalSet {
            map: self.map.clone(),
        }
    }
}

impl<K> TransactionalSet<K, TxHashMap<K, ()>>
where
    K: Clone + Eq + Hash + Send + Sync + 'static,
{
    /// Create an empty set.
    pub fn new() -> Self {
        TransactionalSet {
            map: TransactionalMap::new(),
        }
    }
}

impl<K> TransactionalSet<K, BoostedHashMap<K, ()>>
where
    K: Clone + Eq + Hash + Send + Sync + 'static,
{
    /// Create over a fresh non-transactional [`BoostedHashMap`] (the
    /// boosted configuration; see [`TransactionalMap::boosted`]).
    pub fn boosted() -> Self {
        TransactionalSet {
            map: TransactionalMap::boosted(),
        }
    }
}

impl<K> Default for TransactionalSet<K, TxHashMap<K, ()>>
where
    K: Clone + Eq + Hash + Send + Sync + 'static,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, B> TransactionalSet<K, B>
where
    K: Clone + Eq + Hash + Send + Sync + 'static,
    B: MapBackend<K, ()>,
{
    /// Wrap an existing map backend as a set.
    pub fn wrap(backend: B) -> Self {
        TransactionalSet {
            map: TransactionalMap::wrap(backend),
        }
    }

    /// Wrap with an explicit semantic-lock stripe count (forwarded to
    /// [`TransactionalMap::wrap_with_stripes`]).
    pub fn wrap_with_stripes(backend: B, nstripes: usize) -> Self {
        TransactionalSet {
            map: TransactionalMap::wrap_with_stripes(backend, nstripes),
        }
    }

    /// Add an element; `true` if it was not already present (reads the
    /// element's presence, so it takes a key lock).
    pub fn add(&self, tx: &mut Txn, value: K) -> bool {
        self.map.put(tx, value, ()).is_none()
    }

    /// Add without observing prior presence (blind; commutes with other
    /// blind adds of the same element).
    pub fn add_discard(&self, tx: &mut Txn, value: K) {
        self.map.put_discard(tx, value, ());
    }

    /// Remove an element; `true` if it was present.
    pub fn remove(&self, tx: &mut Txn, value: &K) -> bool {
        self.map.remove(tx, value).is_some()
    }

    /// Whether the element is present (key lock).
    pub fn contains(&self, tx: &mut Txn, value: &K) -> bool {
        self.map.contains_key(tx, value)
    }

    /// Number of elements (size lock).
    pub fn size(&self, tx: &mut Txn) -> usize {
        self.map.size(tx)
    }

    /// Whether empty (size lock; see `is_empty_primitive` on the map for the
    /// zero-crossing variant).
    pub fn is_empty(&self, tx: &mut Txn) -> bool {
        self.map.is_empty(tx)
    }

    /// All visible elements (full enumeration: size lock at the end).
    pub fn elements(&self, tx: &mut Txn) -> Vec<K> {
        self.map.keys(tx)
    }

    /// Semantic-conflict counters.
    pub fn semantic_stats(&self) -> &SemanticStats {
        self.map.semantic_stats()
    }
}

/// A transactional sorted set backed by a [`TransactionalSortedMap`].
pub struct TransactionalSortedSet<K, B = TxTreeMap<K, ()>>
where
    K: Clone + Ord + Eq + Hash + Send + Sync + 'static,
    B: SortedMapBackend<K, ()>,
{
    map: TransactionalSortedMap<K, (), B>,
}

impl<K, B> Clone for TransactionalSortedSet<K, B>
where
    K: Clone + Ord + Eq + Hash + Send + Sync + 'static,
    B: SortedMapBackend<K, ()>,
{
    fn clone(&self) -> Self {
        TransactionalSortedSet {
            map: self.map.clone(),
        }
    }
}

impl<K> TransactionalSortedSet<K, TxTreeMap<K, ()>>
where
    K: Clone + Ord + Eq + Hash + Send + Sync + 'static,
{
    /// Create an empty sorted set.
    pub fn new() -> Self {
        TransactionalSortedSet {
            map: TransactionalSortedMap::new(),
        }
    }
}

impl<K> Default for TransactionalSortedSet<K, TxTreeMap<K, ()>>
where
    K: Clone + Ord + Eq + Hash + Send + Sync + 'static,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, B> TransactionalSortedSet<K, B>
where
    K: Clone + Ord + Eq + Hash + Send + Sync + 'static,
    B: SortedMapBackend<K, ()>,
{
    /// Wrap an existing sorted map backend as a set.
    pub fn wrap(backend: B) -> Self {
        TransactionalSortedSet {
            map: TransactionalSortedMap::wrap(backend),
        }
    }

    /// Wrap with an explicit semantic-lock stripe count (forwarded to
    /// [`TransactionalSortedMap::wrap_with_stripes`]).
    pub fn wrap_with_stripes(backend: B, nstripes: usize) -> Self {
        TransactionalSortedSet {
            map: TransactionalSortedMap::wrap_with_stripes(backend, nstripes),
        }
    }

    /// Add an element; `true` if newly added.
    pub fn add(&self, tx: &mut Txn, value: K) -> bool {
        self.map.put(tx, value, ()).is_none()
    }

    /// Remove an element; `true` if it was present.
    pub fn remove(&self, tx: &mut Txn, value: &K) -> bool {
        self.map.remove(tx, value).is_some()
    }

    /// Whether the element is present.
    pub fn contains(&self, tx: &mut Txn, value: &K) -> bool {
        self.map.contains_key(tx, value)
    }

    /// Number of elements.
    pub fn size(&self, tx: &mut Txn) -> usize {
        self.map.size(tx)
    }

    /// Smallest element (first lock).
    pub fn first(&self, tx: &mut Txn) -> Option<K> {
        self.map.first_key(tx)
    }

    /// Largest element (last lock).
    pub fn last(&self, tx: &mut Txn) -> Option<K> {
        self.map.last_key(tx)
    }

    /// Elements within bounds, in order (growing range lock).
    pub fn range(&self, tx: &mut Txn, lower: Bound<K>, upper: Bound<K>) -> Vec<K> {
        self.map
            .range_entries(tx, lower, upper)
            .into_iter()
            .map(|(k, _)| k)
            .collect()
    }

    /// All elements in order.
    pub fn elements(&self, tx: &mut Txn) -> Vec<K> {
        self.map.entries(tx).into_iter().map(|(k, _)| k).collect()
    }

    /// Semantic-conflict counters.
    pub fn semantic_stats(&self) -> &SemanticStats {
        self.map.semantic_stats()
    }
}
